//! Declarative experiment scenarios.
//!
//! A [`Scenario`] is a JSON-serialisable description of one experiment:
//! the platform (node, optional core count / DTM threshold / variation
//! seed), a workload (application instances), and what to do with it —
//! budget-constrained mapping, a thermal-constraint evaluation, one of
//! the mapping policies, or a transient boosting-vs-constant run. The
//! `darksil run <file.json>` subcommand executes scenarios; library
//! users call [`run_scenario`] directly.
//!
//! ```json
//! {
//!   "name": "x264 under TDP",
//!   "node": 16,
//!   "workload": [{ "app": "x264", "instances": 12, "threads": 8 }],
//!   "experiment": { "type": "policy", "policy": "dsrem", "tdp_watts": 185.0 }
//! }
//! ```

use darksil_boost::{run_boosting, run_constant, PolicyConfig};
use darksil_mapping::{place_contiguous, DsRem, Platform, TdpMap};
use darksil_power::{TechnologyNode, VariationModel};
use darksil_units::{Celsius, Hertz, Seconds, Watts};
use darksil_workload::{AppInstance, ParsecApp, Workload};
use serde::{Deserialize, Serialize};

/// One workload line: `instances` copies of `app`, each with `threads`
/// threads.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct WorkloadSpec {
    /// Application name (`x264`, `canneal`, …).
    pub app: String,
    /// Number of instances.
    pub instances: usize,
    /// Threads per instance (1–8).
    pub threads: usize,
}

/// What to do with the platform and workload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(tag = "type", rename_all = "snake_case")]
pub enum ExperimentSpec {
    /// Map instances in order until the budget is exhausted (TDPmap).
    PowerBudget {
        /// The TDP in watts.
        tdp_watts: f64,
    },
    /// Map the whole workload contiguously and report the thermal
    /// outcome.
    Thermal {
        /// Frequency in GHz; the node's nominal maximum if omitted.
        #[serde(default)]
        frequency_ghz: Option<f64>,
    },
    /// Run a mapping policy.
    Policy {
        /// `"tdpmap"` or `"dsrem"`.
        policy: String,
        /// The TDP in watts.
        tdp_watts: f64,
    },
    /// Transient boosting vs constant frequency.
    Boost {
        /// Simulated seconds.
        duration_s: f64,
        /// Control period in seconds.
        #[serde(default = "default_period")]
        period_s: f64,
    },
}

fn default_period() -> f64 {
    0.01
}

/// A complete scenario file.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Scenario {
    /// Human-readable name, echoed into the report.
    pub name: String,
    /// Technology node in nm (22, 16, 11 or 8).
    pub node: u32,
    /// Core count override (the node's evaluated count if omitted).
    #[serde(default)]
    pub cores: Option<usize>,
    /// DTM threshold override in °C (80 if omitted).
    #[serde(default)]
    pub t_dtm_celsius: Option<f64>,
    /// Process-variation seed; an ideal chip if omitted.
    #[serde(default)]
    pub variation_seed: Option<u64>,
    /// The workload.
    pub workload: Vec<WorkloadSpec>,
    /// The experiment to run.
    pub experiment: ExperimentSpec,
}

/// The outcome of a scenario run — JSON-serialisable, one per scenario.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioReport {
    /// Echo of the scenario name.
    pub name: String,
    /// Active cores after mapping (or during the transient).
    pub active_cores: usize,
    /// Dark-silicon fraction.
    pub dark_fraction: f64,
    /// Total throughput in GIPS.
    pub total_gips: f64,
    /// Total power in watts (steady state / peak for transients).
    pub total_power_w: f64,
    /// Peak die temperature in °C.
    pub peak_temperature_c: f64,
    /// Whether the DTM threshold was exceeded.
    pub thermal_violation: bool,
    /// Extra per-experiment detail lines.
    pub notes: Vec<String>,
}

/// Errors from scenario parsing/execution.
#[derive(Debug)]
pub enum ScenarioError {
    /// The JSON was syntactically or structurally invalid.
    Parse(serde_json::Error),
    /// A field value was out of range.
    Invalid(String),
    /// An inner toolkit error.
    Run(Box<dyn std::error::Error>),
}

impl std::fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Parse(e) => write!(f, "scenario parse error: {e}"),
            Self::Invalid(msg) => write!(f, "invalid scenario: {msg}"),
            Self::Run(e) => write!(f, "scenario failed: {e}"),
        }
    }
}

impl std::error::Error for ScenarioError {}

impl From<serde_json::Error> for ScenarioError {
    fn from(e: serde_json::Error) -> Self {
        Self::Parse(e)
    }
}

fn run_err<E: std::error::Error + 'static>(e: E) -> ScenarioError {
    ScenarioError::Run(Box::new(e))
}

/// Parses a scenario from JSON text.
///
/// # Errors
///
/// Returns [`ScenarioError::Parse`] for malformed JSON.
pub fn parse_scenario(json: &str) -> Result<Scenario, ScenarioError> {
    Ok(serde_json::from_str(json)?)
}

fn node_of(nm: u32) -> Result<TechnologyNode, ScenarioError> {
    TechnologyNode::ALL
        .iter()
        .find(|n| n.nanometers() == nm)
        .copied()
        .ok_or_else(|| ScenarioError::Invalid(format!("unknown node {nm} nm")))
}

fn app_of(name: &str) -> Result<ParsecApp, ScenarioError> {
    ParsecApp::ALL
        .iter()
        .find(|a| a.name() == name)
        .copied()
        .ok_or_else(|| ScenarioError::Invalid(format!("unknown application '{name}'")))
}

fn build_platform(s: &Scenario) -> Result<Platform, ScenarioError> {
    let node = node_of(s.node)?;
    let mut platform = match s.cores {
        Some(cores) => Platform::with_core_count(node, cores).map_err(run_err)?,
        None => Platform::for_node(node).map_err(run_err)?,
    };
    if let Some(t) = s.t_dtm_celsius {
        platform = platform.with_t_dtm(Celsius::new(t));
    }
    if let Some(seed) = s.variation_seed {
        platform = platform.with_variation(VariationModel::typical(seed));
    }
    Ok(platform)
}

fn build_workload(s: &Scenario) -> Result<Workload, ScenarioError> {
    let mut w = Workload::new();
    for line in &s.workload {
        let app = app_of(&line.app)?;
        for _ in 0..line.instances {
            w.push(AppInstance::new(app, line.threads).map_err(run_err)?);
        }
    }
    if w.is_empty() {
        return Err(ScenarioError::Invalid("workload is empty".into()));
    }
    Ok(w)
}

fn report_mapping(
    name: &str,
    platform: &Platform,
    mapping: &darksil_mapping::Mapping,
    notes: Vec<String>,
) -> Result<ScenarioReport, ScenarioError> {
    let (peak, power) = if mapping.entries().is_empty() {
        (platform.thermal().ambient(), Watts::zero())
    } else {
        let map = mapping.steady_temperatures(platform).map_err(run_err)?;
        let temps: Vec<Celsius> = map.die_temperatures().collect();
        let power: Watts = mapping.power_map_at(platform, &temps).iter().sum();
        (map.peak(), power)
    };
    Ok(ScenarioReport {
        name: name.to_string(),
        active_cores: mapping.active_core_count(),
        dark_fraction: mapping.dark_fraction(),
        total_gips: mapping.total_gips(platform).value(),
        total_power_w: power.value(),
        peak_temperature_c: peak.value(),
        thermal_violation: peak > platform.t_dtm(),
        notes,
    })
}

/// Executes a scenario and returns its report.
///
/// # Errors
///
/// Returns [`ScenarioError::Invalid`] for out-of-range fields and
/// [`ScenarioError::Run`] for toolkit failures (workload too large,
/// solver failure, …).
pub fn run_scenario(scenario: &Scenario) -> Result<ScenarioReport, ScenarioError> {
    let platform = build_platform(scenario)?;
    let workload = build_workload(scenario)?;

    match &scenario.experiment {
        ExperimentSpec::PowerBudget { tdp_watts } => {
            if !tdp_watts.is_finite() || *tdp_watts <= 0.0 {
                return Err(ScenarioError::Invalid("tdp_watts must be positive".into()));
            }
            let mapping = TdpMap::new(Watts::new(*tdp_watts))
                .map(&platform, &workload)
                .map_err(run_err)?;
            report_mapping(
                &scenario.name,
                &platform,
                &mapping,
                vec![format!("TDPmap admission under {tdp_watts} W")],
            )
        }
        ExperimentSpec::Thermal { frequency_ghz } => {
            let f = frequency_ghz
                .map_or(platform.node().nominal_max_frequency(), Hertz::from_ghz);
            let level = platform
                .dvfs()
                .floor(f)
                .ok_or_else(|| ScenarioError::Invalid(format!("frequency {f} below ladder")))?;
            let mapping = place_contiguous(platform.floorplan(), &workload, level)
                .map_err(run_err)?;
            report_mapping(
                &scenario.name,
                &platform,
                &mapping,
                vec![format!("whole workload at {:.1} GHz", level.frequency.as_ghz())],
            )
        }
        ExperimentSpec::Policy { policy, tdp_watts } => {
            if !tdp_watts.is_finite() || *tdp_watts <= 0.0 {
                return Err(ScenarioError::Invalid("tdp_watts must be positive".into()));
            }
            let tdp = Watts::new(*tdp_watts);
            let mapping = match policy.as_str() {
                "tdpmap" => TdpMap::new(tdp).map(&platform, &workload).map_err(run_err)?,
                "dsrem" => DsRem::new(tdp).map(&platform, &workload).map_err(run_err)?,
                other => {
                    return Err(ScenarioError::Invalid(format!(
                        "unknown policy '{other}' (use tdpmap|dsrem)"
                    )))
                }
            };
            report_mapping(
                &scenario.name,
                &platform,
                &mapping,
                vec![format!("{policy} under {tdp_watts} W")],
            )
        }
        ExperimentSpec::Boost {
            duration_s,
            period_s,
        } => {
            let platform = platform
                .with_boost_levels(node_of(scenario.node)?.nominal_max_frequency() * 1.25)
                .map_err(run_err)?;
            let mapping = darksil_mapping::place_patterned(
                platform.floorplan(),
                &workload,
                platform.max_level(),
            )
            .map_err(run_err)?;
            let config = PolicyConfig {
                period: Seconds::new(*period_s),
                ..PolicyConfig::default()
            };
            let horizon = Seconds::new(*duration_s);
            let boost =
                run_boosting(&platform, &mapping, horizon, &config).map_err(run_err)?;
            let constant =
                run_constant(&platform, &mapping, horizon, &config).map_err(run_err)?;
            Ok(ScenarioReport {
                name: scenario.name.clone(),
                active_cores: mapping.active_core_count(),
                dark_fraction: mapping.dark_fraction(),
                total_gips: boost.average_gips_tail(0.5).value(),
                total_power_w: boost.peak_power().value(),
                peak_temperature_c: boost.peak_temperature().value(),
                thermal_violation: boost.peak_temperature()
                    > platform.t_dtm() + 1.0,
                notes: vec![
                    format!(
                        "boosting avg {:.1} GIPS / peak {:.0} W",
                        boost.average_gips_tail(0.5).value(),
                        boost.peak_power().value()
                    ),
                    format!(
                        "constant avg {:.1} GIPS / peak {:.0} W",
                        constant.average_gips_tail(0.5).value(),
                        constant.peak_power().value()
                    ),
                ],
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn policy_scenario() -> Scenario {
        Scenario {
            name: "mix under DsRem".into(),
            node: 16,
            cores: Some(36),
            t_dtm_celsius: None,
            variation_seed: None,
            workload: vec![
                WorkloadSpec {
                    app: "x264".into(),
                    instances: 2,
                    threads: 8,
                },
                WorkloadSpec {
                    app: "canneal".into(),
                    instances: 1,
                    threads: 4,
                },
            ],
            experiment: ExperimentSpec::Policy {
                policy: "dsrem".into(),
                tdp_watts: 60.0,
            },
        }
    }

    #[test]
    fn json_round_trip() {
        let s = policy_scenario();
        let json = serde_json::to_string_pretty(&s).unwrap();
        let back = parse_scenario(&json).unwrap();
        assert_eq!(s, back);
    }

    #[test]
    fn parses_external_style_json() {
        let json = r#"{
            "name": "quick look",
            "node": 16,
            "workload": [{ "app": "swaptions", "instances": 3, "threads": 8 }],
            "experiment": { "type": "power_budget", "tdp_watts": 100.0 }
        }"#;
        let s = parse_scenario(json).unwrap();
        assert_eq!(s.cores, None);
        assert!(matches!(
            s.experiment,
            ExperimentSpec::PowerBudget { tdp_watts } if tdp_watts == 100.0
        ));
    }

    #[test]
    fn runs_policy_scenario() {
        let report = run_scenario(&policy_scenario()).unwrap();
        assert_eq!(report.name, "mix under DsRem");
        assert!(report.active_cores > 0);
        assert!(report.total_gips > 0.0);
        assert!(!report.thermal_violation);
        assert!(report.total_power_w <= 61.0);
    }

    #[test]
    fn runs_thermal_scenario() {
        let mut s = policy_scenario();
        s.experiment = ExperimentSpec::Thermal {
            frequency_ghz: Some(2.8),
        };
        let report = run_scenario(&s).unwrap();
        assert_eq!(report.active_cores, 20);
        assert!(report.peak_temperature_c > 45.0);
    }

    #[test]
    fn runs_boost_scenario() {
        let mut s = policy_scenario();
        s.experiment = ExperimentSpec::Boost {
            duration_s: 5.0,
            period_s: 0.05,
        };
        let report = run_scenario(&s).unwrap();
        assert_eq!(report.notes.len(), 2);
        assert!(report.total_gips > 0.0);
    }

    #[test]
    fn invalid_scenarios_are_reported() {
        let mut s = policy_scenario();
        s.node = 14;
        assert!(matches!(run_scenario(&s), Err(ScenarioError::Invalid(_))));

        let mut s = policy_scenario();
        s.workload.clear();
        assert!(matches!(run_scenario(&s), Err(ScenarioError::Invalid(_))));

        let mut s = policy_scenario();
        s.workload[0].app = "doom".into();
        assert!(run_scenario(&s).is_err());

        let mut s = policy_scenario();
        s.experiment = ExperimentSpec::Policy {
            policy: "magic".into(),
            tdp_watts: 60.0,
        };
        assert!(run_scenario(&s).is_err());

        assert!(parse_scenario("{not json").is_err());
    }

    #[test]
    fn variation_and_threshold_overrides_apply() {
        let mut s = policy_scenario();
        s.t_dtm_celsius = Some(70.0);
        s.variation_seed = Some(9);
        let report = run_scenario(&s).unwrap();
        assert!(report.peak_temperature_c <= 70.2);
    }
}
