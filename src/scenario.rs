//! Declarative experiment scenarios — re-exported from
//! [`darksil_scenario`] so existing `darksil::scenario::…` paths keep
//! working now that the types live in their own crate (the fuzzing
//! arena depends on them without pulling in the CLI).

pub use darksil_scenario::*;
