//! Declarative design-space exploration — re-exported from
//! [`darksil_sweep`] so `darksil::sweep::…` paths work like the other
//! subsystem shims (the sweep engine lives in its own crate so tools
//! can depend on it without pulling in the CLI).

pub use darksil_sweep::*;
