//! `darksil` — a dark-silicon analysis toolkit for manycore chips.
//!
//! This meta-crate re-exports every subsystem of the workspace under one
//! roof and hosts the `darksil` command-line tool. Reproduction of
//! *New Trends in Dark Silicon* (Henkel, Khdr, Pagani, Shafique —
//! DAC 2015); see the README for the architecture and EXPERIMENTS.md
//! for the paper-vs-measured record.
//!
//! # Examples
//!
//! ```no_run
//! use darksil::core::DarkSiliconEstimator;
//! use darksil::power::TechnologyNode;
//! use darksil::units::{Hertz, Watts};
//! use darksil::workload::ParsecApp;
//!
//! let est = DarkSiliconEstimator::for_node(TechnologyNode::Nm16)?;
//! let e = est.under_power_budget(
//!     ParsecApp::X264,
//!     8,
//!     Hertz::from_ghz(3.6),
//!     Watts::new(185.0),
//! )?;
//! println!("{:.0}% dark", 100.0 * e.dark_fraction);
//! # Ok::<(), darksil::core::EstimateError>(())
//! ```
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub use darksil_archsim as archsim;
pub use darksil_arena as arena;
pub use darksil_boost as boost;
pub use darksil_core as core;
pub use darksil_floorplan as floorplan;
pub use darksil_mapping as mapping;
pub use darksil_numerics as numerics;
pub use darksil_power as power;
pub use darksil_thermal as thermal;
pub use darksil_tsp as tsp;
pub use darksil_units as units;
pub use darksil_workload as workload;

pub mod cli;
pub mod scenario;
pub mod sweep;
pub mod top;
