//! Command-line interface of the `darksil` binary.
//!
//! Dependency-free argument parsing split from `main` so every path is
//! unit-testable. Commands:
//!
//! ```text
//! darksil estimate --node <22|16|11|8> --app <name> [--threads N]
//!                  [--freq GHZ] (--tdp WATTS | --thermal)
//! darksil tsp      --node <nm> [--active N]
//! darksil map      --node <nm> --policy <tdpmap|dsrem> [--mix N] [--tdp W]
//! darksil boost    --node <nm> [--app NAME] [--instances N] [--duration S]
//! ```
//!
//! Every subcommand additionally accepts `--jobs N` to size the
//! execution-engine worker pool (default: `DARKSIL_JOBS`, else the
//! available parallelism; `--jobs 1` runs serially).

use std::fmt;

use darksil_boost::{run_boosting, run_constant, PolicyConfig};
use darksil_core::DarkSiliconEstimator;
use darksil_engine::Engine;
use darksil_mapping::{place_patterned, DsRem, Platform, TdpMap};
use darksil_power::TechnologyNode;
use darksil_robust::DarksilError;
use darksil_tsp::TspCalculator;
use darksil_units::{Hertz, Seconds, Watts};
use darksil_workload::{ParsecApp, Workload};

/// A parsed command, ready to run.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// Execute a JSON scenario file.
    Run {
        /// Path to the scenario JSON.
        path: String,
        /// Emit the report as JSON instead of text.
        json: bool,
    },
    /// Dark-silicon estimation under a budget or the thermal constraint.
    Estimate {
        /// Technology node.
        node: TechnologyNode,
        /// Application.
        app: ParsecApp,
        /// Threads per instance.
        threads: usize,
        /// Frequency (defaults to the node's nominal maximum).
        freq: Option<Hertz>,
        /// TDP budget; `None` means the thermal constraint.
        tdp: Option<Watts>,
    },
    /// TSP curve or a single TSP value.
    Tsp {
        /// Technology node.
        node: TechnologyNode,
        /// Specific active-core count; `None` prints the curve.
        active: Option<usize>,
    },
    /// Run a mapping policy on a Parsec mix.
    Map {
        /// Technology node.
        node: TechnologyNode,
        /// Policy name.
        dsrem: bool,
        /// Instances in the mix.
        mix: usize,
        /// Budget.
        tdp: Watts,
    },
    /// Transient boosting vs constant comparison.
    Boost {
        /// Technology node.
        node: TechnologyNode,
        /// Application.
        app: ParsecApp,
        /// 8-thread instances.
        instances: usize,
        /// Simulated seconds.
        duration: f64,
    },
    /// Result-cache maintenance (`results/.cache` by default).
    Cache {
        /// What to do with the cache.
        action: CacheAction,
        /// Cache directory.
        dir: String,
        /// For `verify`: delete corrupt entries instead of only
        /// reporting them.
        evict: bool,
    },
    /// Inspect traces and perf baselines written by `repro --profile`.
    Trace(TraceAction),
    /// Inspect domain event streams written by `repro --events`.
    Events(EventsAction),
    /// Physics-invariant fuzzing: generated scenarios through the
    /// event-stream oracle, with shrinking and corpus persistence.
    Fuzz {
        /// Population seed.
        seed: u64,
        /// Number of generated cases.
        cases: usize,
        /// Deliberate-violation mode (`nan`|`time`|`tsp`).
        inject: Option<darksil_arena::InjectMode>,
        /// Reproducer corpus directory.
        corpus: String,
        /// Replay the corpus instead of fuzzing.
        replay: bool,
    },
    /// Policy tournament over a generated population; writes a
    /// deterministic leaderboard (JSON + HTML).
    Tournament {
        /// Population seed.
        seed: u64,
        /// Number of base cases (each fights all policies).
        cases: usize,
        /// Output directory for leaderboard artefacts.
        out: String,
    },
    /// Declarative design-space sweep: expand a sweep spec into a
    /// cached, parallel job plan and write Pareto/band artefacts.
    Sweep {
        /// Path to the sweep-spec JSON.
        path: String,
        /// Output directory for result artefacts.
        out: String,
        /// Cache directory; `None` uses `results/.cache`.
        cache_dir: Option<String>,
        /// Disable the result cache entirely.
        no_cache: bool,
        /// Resume the journal of an interrupted run.
        resume: bool,
    },
    /// Render a self-contained HTML run report from an event stream.
    Report {
        /// Run label or events file; `None` picks the sole
        /// `results/events_*.jsonl`.
        run: Option<String>,
        /// Optional trace file for the span Gantt and histograms
        /// (`results/trace_repro.json` is used when present).
        trace: Option<String>,
        /// Output path; defaults to `results/report_<run>.html`.
        out: Option<String>,
    },
    /// Long-running multi-tenant HTTP service over the engine
    /// (`darksil-d`).
    Serve {
        /// Listen address (`host:port`; port 0 picks a free one).
        addr: String,
        /// Global cap on jobs queued or running.
        max_inflight: usize,
        /// Per-tenant cap on jobs queued or running.
        tenant_quota: usize,
        /// Durable state directory (journal, request spool, artefacts,
        /// result cache).
        state_dir: String,
        /// Per-attempt solve deadline in seconds.
        deadline_s: f64,
        /// Drain grace period in seconds.
        drain_grace_s: f64,
    },
    /// Live plain-text dashboard over a running darksil-d.
    Top {
        /// Daemon address (`host:port`).
        addr: String,
        /// Refresh interval in seconds.
        interval_s: f64,
        /// Render a single frame and exit.
        once: bool,
    },
    /// Print usage.
    Help,
}

/// A `darksil events` action.
#[derive(Debug, Clone, PartialEq)]
pub enum EventsAction {
    /// Print per-kind counts and derived statistics of a stream.
    Summarize {
        /// Run label or events file; `None` picks the sole
        /// `results/events_*.jsonl`.
        path: Option<String>,
    },
    /// Print matching events of one kind as JSONL.
    Filter {
        /// Run label or events file; `None` picks the sole
        /// `results/events_*.jsonl`.
        path: Option<String>,
        /// Event kind to keep (e.g. `boost.transition`).
        kind: String,
        /// Maximum number of events to print (0 = unlimited).
        limit: usize,
    },
    /// Check every physical invariant over a stream; non-zero exit on
    /// the first violated invariant.
    Verify {
        /// Run label or events file; `None` picks the sole
        /// `results/events_*.jsonl`.
        path: Option<String>,
    },
}

/// Default fuzz population seed.
const DEFAULT_FUZZ_SEED: u64 = 1;

/// Default fuzz population size.
const DEFAULT_FUZZ_CASES: usize = 25;

/// Default tournament base-case count.
const DEFAULT_TOURNAMENT_CASES: usize = 8;

/// Default reproducer corpus directory (committed, replayed in CI).
pub const DEFAULT_CORPUS_DIR: &str = "tests/corpus";

/// Default row cap for `darksil events filter`.
const DEFAULT_FILTER_LIMIT: usize = 20;

/// A `darksil trace` action.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceAction {
    /// Render the hot-path table of a recorded trace.
    Summarize {
        /// Trace file (`results/trace_repro.json` by default).
        path: String,
        /// Number of span rows to print.
        top: usize,
    },
    /// Compare a current `BENCH_repro.json` against a committed
    /// baseline; non-zero exit when any phase exceeds its bound.
    Compare {
        /// Baseline report (the committed reference).
        baseline: String,
        /// Current report (the fresh measurement).
        current: String,
    },
}

/// Default trace path used by `darksil trace summarize`.
pub const DEFAULT_TRACE_PATH: &str = "results/trace_repro.json";

/// Default row count for the summarize hot-path table.
const DEFAULT_SUMMARY_TOP: usize = 12;

/// A `darksil cache` action.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheAction {
    /// Summarise the cache: entry count, bytes, corrupt entries.
    Stats,
    /// Re-check every entry's envelope and payload digest; non-zero
    /// exit when corruption is found (unless `--evict` removes it).
    Verify,
    /// Delete every cache entry.
    Clear,
}

impl CacheAction {
    fn parse(s: &str) -> Result<Self, ParseError> {
        match s {
            "stats" => Ok(Self::Stats),
            "verify" => Ok(Self::Verify),
            "clear" => Ok(Self::Clear),
            other => Err(ParseError(format!(
                "unknown cache action '{other}' (use stats|verify|clear)"
            ))),
        }
    }
}

/// A parse failure with a user-facing message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError(pub String);

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for ParseError {}

/// Usage text printed by `darksil help` and on parse errors.
pub const USAGE: &str = "\
darksil — dark-silicon analysis toolkit (DAC'15 reproduction)

USAGE:
  darksil estimate --node <22|16|11|8> --app <name> [--threads N]
                   [--freq GHZ] (--tdp WATTS | --thermal)
  darksil tsp      --node <nm> [--active N]
  darksil map      --node <nm> --policy <tdpmap|dsrem> [--mix N] [--tdp W]
  darksil boost    --node <nm> [--app NAME] [--instances N] [--duration S]
  darksil run      <scenario.json> [--json]
  darksil cache    <stats|verify|clear> [--dir DIR] [--evict]
  darksil trace    summarize [PATH] [--top N]
  darksil trace    compare <BASELINE> <CURRENT>
  darksil events   summarize [RUN|PATH]
  darksil events   filter <KIND> [RUN|PATH] [--limit N]
  darksil events   verify [RUN|PATH]
  darksil report   [RUN|PATH] [--trace PATH] [--out PATH]
  darksil fuzz     [--seed N] [--cases N] [--inject nan|time|tsp]
                   [--corpus DIR] [--replay]
  darksil tournament [--seed N] [--cases N] [--out DIR]
  darksil sweep    <spec.json> [--out DIR] [--cache-dir DIR] [--no-cache]
                   [--resume]
  darksil serve    [--addr HOST:PORT] [--max-inflight N] [--tenant-quota N]
                   [--state-dir DIR] [--deadline-s S] [--drain-grace-s S]
  darksil top      [--addr HOST:PORT] [--interval S] [--once]
  darksil help

`trace summarize` renders the hot-path table of a trace recorded by
`repro --profile` (default PATH: results/trace_repro.json); `trace
compare` checks a fresh BENCH_repro.json against a committed baseline
and exits non-zero on any regression beyond the recorded bounds.

`events` inspects a domain event stream written by `repro --events`
(per-kind counts, throttle residency, time above threshold; `filter`
prints one kind as JSONL). `report` renders the stream — plus the trace
when available — into a self-contained HTML report with a temperature
timeline, event overlays, a span Gantt and histogram tables, written to
results/report_<run>.html. RUN may be a run label (resolved against
results/events_<RUN>.jsonl) or an explicit file path; with a single
recorded stream in results/ it may be omitted.

`events verify` checks every physical invariant (no-nan, monotone-time,
temp-bound, watermark-alternation, watermark-windows, tsp-monotone,
energy-conserved, dtm-failsafe, throttle-residency) over a stream and
exits non-zero naming the first violated invariant and the offending
event's seq.

`fuzz` generates seeded, schema-valid scenarios, runs them through the
engine pipeline with events on, and verdicts each case against the same
invariants; violations are shrunk to minimal reproducers persisted in
the corpus (default tests/corpus/) and the exit code is non-zero.
`--replay` re-runs the committed corpus instead: reproducers with an
inject mode must still be caught, fixed real-bug reproducers must stay
clean. `tournament` pits dsrem vs tdpmap vs boosting over the generated
population and writes leaderboard.json + leaderboard.html (deterministic
bytes for a given --seed/--cases at any --jobs).

`sweep` expands a darksil-sweepspec-v1 file (a base scenario plus
list/range/logrange/gauss axes) into the full cartesian grid × N
Monte-Carlo draws, runs every evaluation through the engine pool and
the result cache, and writes sweep_<name>.json (Pareto frontier,
p5/p50/p95 bands, cache counters), sweep_<name>.html and a resumable
journal into --out. Output bytes are identical at any --jobs; editing
one axis value recomputes only the affected points. Exit codes: 0 on
success, 1 on a spec/validation error or a failed evaluation.

`serve` starts darksil-d, a multi-tenant HTTP/1.1 daemon over the
engine: POST /v1/jobs submits {tenant, scenario, faults?}, identical
submissions dedupe by content digest across tenants, per-tenant quotas
and --max-inflight reject excess load with 429 + Retry-After, and every
job is journalled under --state-dir so a killed daemon resumes
unfinished work on restart and serves byte-identical artefacts. Poll
GET /v1/jobs/<digest>, fetch GET /v1/artefacts/<digest> or
/v1/jobs/<digest>/report, and drain gracefully with SIGTERM or
POST /v1/drain (exit 0). See DESIGN.md §17 for the full protocol.

`top` renders a live plain-text dashboard over a running darksil-d:
it polls GET /metrics (Prometheus text) and GET /v1/stats every
--interval seconds (default 2) and shows job states, admission
counters, in-flight/queue/connection gauges, solve- and factor-cache
hit rates, rolling p50/p95/p99 request latency (last ~5 minutes), the
circuit-breaker state, and a per-tenant request table. --once prints
a single frame and exits 0 — handy in scripts and CI. Streaming
consumers can follow one job live instead with
GET /v1/jobs/<digest>/watch (chunked JSON lines) and fetch derived
event statistics from GET /v1/jobs/<digest>/events; see DESIGN.md §19
for the metrics contract.

Every subcommand also accepts --jobs N (worker threads for parallel
sweeps; default DARKSIL_JOBS or the available parallelism; --jobs
always wins over DARKSIL_JOBS, and an unparseable DARKSIL_JOBS is
ignored with a warning on stderr).

apps: x264 blackscholes bodytrack ferret canneal dedup swaptions";

/// Splits `--jobs N` (accepted uniformly, anywhere on the command
/// line) out of argv so the subcommand parsers never see it. Returns
/// the remaining arguments and the requested worker count.
///
/// # Errors
///
/// Returns [`ParseError`] when `--jobs` is missing its value or the
/// value is not a positive integer.
pub fn extract_jobs(args: &[String]) -> Result<(Vec<String>, Option<usize>), ParseError> {
    let mut rest = Vec::with_capacity(args.len());
    let mut jobs = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        if arg == "--jobs" {
            let value = it
                .next()
                .ok_or_else(|| ParseError("--jobs expects a value".into()))?;
            let n = parse_usize("--jobs", value)?;
            if n == 0 {
                return Err(ParseError("--jobs expects a positive integer".into()));
            }
            jobs = Some(n);
        } else {
            rest.push(arg.clone());
        }
    }
    Ok((rest, jobs))
}

fn parse_node(s: &str) -> Result<TechnologyNode, ParseError> {
    match s {
        "22" => Ok(TechnologyNode::Nm22),
        "16" => Ok(TechnologyNode::Nm16),
        "11" => Ok(TechnologyNode::Nm11),
        "8" => Ok(TechnologyNode::Nm8),
        other => Err(ParseError(format!(
            "unknown node '{other}' (use 22|16|11|8)"
        ))),
    }
}

fn parse_app(s: &str) -> Result<ParsecApp, ParseError> {
    ParsecApp::ALL
        .iter()
        .find(|a| a.name() == s)
        .copied()
        .ok_or_else(|| ParseError(format!("unknown application '{s}'")))
}

fn parse_f64(flag: &str, s: &str) -> Result<f64, ParseError> {
    s.parse()
        .map_err(|_| ParseError(format!("{flag} expects a number, got '{s}'")))
}

fn parse_usize(flag: &str, s: &str) -> Result<usize, ParseError> {
    s.parse()
        .map_err(|_| ParseError(format!("{flag} expects an integer, got '{s}'")))
}

fn parse_u64(flag: &str, s: &str) -> Result<u64, ParseError> {
    s.parse()
        .map_err(|_| ParseError(format!("{flag} expects an integer, got '{s}'")))
}

/// Parses argv (without the program name) into a [`Command`].
///
/// # Errors
///
/// Returns [`ParseError`] with a user-facing message for unknown
/// commands, flags, values, or missing required arguments.
pub fn parse(args: &[String]) -> Result<Command, ParseError> {
    let mut it = args.iter();
    let Some(cmd) = it.next() else {
        return Ok(Command::Help);
    };
    if cmd == "run" {
        let mut path = None;
        let mut json = false;
        for arg in it {
            match arg.as_str() {
                "--json" => json = true,
                p if path.is_none() && !p.starts_with('-') => path = Some(p.to_string()),
                other => return Err(ParseError(format!("unknown argument '{other}'"))),
            }
        }
        let path = path.ok_or_else(|| ParseError("run expects a scenario file".into()))?;
        return Ok(Command::Run { path, json });
    }
    if cmd == "cache" {
        let action =
            CacheAction::parse(it.next().ok_or_else(|| {
                ParseError("cache expects an action (stats|verify|clear)".into())
            })?)?;
        let mut dir = darksil_engine::DEFAULT_CACHE_DIR.to_string();
        let mut evict = false;
        while let Some(arg) = it.next() {
            match arg.as_str() {
                "--dir" => {
                    dir = it
                        .next()
                        .cloned()
                        .ok_or_else(|| ParseError("--dir expects a value".into()))?;
                }
                "--evict" => evict = true,
                other => return Err(ParseError(format!("unknown argument '{other}'"))),
            }
        }
        if evict && action != CacheAction::Verify {
            return Err(ParseError("--evict only applies to cache verify".into()));
        }
        return Ok(Command::Cache { action, dir, evict });
    }
    if cmd == "trace" {
        return parse_trace(&mut it);
    }
    if cmd == "events" {
        return parse_events(&mut it);
    }
    if cmd == "report" {
        return parse_report(&mut it);
    }
    if cmd == "fuzz" {
        return parse_fuzz(&mut it);
    }
    if cmd == "tournament" {
        return parse_tournament(&mut it);
    }
    if cmd == "sweep" {
        return parse_sweep(&mut it);
    }
    if cmd == "serve" {
        return parse_serve(&mut it);
    }
    if cmd == "top" {
        return parse_top(&mut it);
    }
    let mut node = None;
    let mut app = None;
    let mut threads = 8_usize;
    let mut freq = None;
    let mut tdp = None;
    let mut thermal = false;
    let mut active = None;
    let mut policy = None;
    let mut mix = 14_usize;
    let mut instances = 12_usize;
    let mut duration = 40.0_f64;

    let next_value = |flag: &str, it: &mut std::slice::Iter<'_, String>| {
        it.next()
            .cloned()
            .ok_or_else(|| ParseError(format!("{flag} expects a value")))
    };

    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--node" => node = Some(parse_node(&next_value("--node", &mut it)?)?),
            "--app" => app = Some(parse_app(&next_value("--app", &mut it)?)?),
            "--threads" => {
                threads = parse_usize("--threads", &next_value("--threads", &mut it)?)?;
            }
            "--freq" => {
                freq = Some(Hertz::from_ghz(parse_f64(
                    "--freq",
                    &next_value("--freq", &mut it)?,
                )?));
            }
            "--tdp" => {
                tdp = Some(Watts::new(parse_f64(
                    "--tdp",
                    &next_value("--tdp", &mut it)?,
                )?));
            }
            "--thermal" => thermal = true,
            "--active" => {
                active = Some(parse_usize("--active", &next_value("--active", &mut it)?)?);
            }
            "--policy" => policy = Some(next_value("--policy", &mut it)?),
            "--mix" => mix = parse_usize("--mix", &next_value("--mix", &mut it)?)?,
            "--instances" => {
                instances = parse_usize("--instances", &next_value("--instances", &mut it)?)?;
            }
            "--duration" => {
                duration = parse_f64("--duration", &next_value("--duration", &mut it)?)?;
            }
            other => return Err(ParseError(format!("unknown flag '{other}'"))),
        }
    }

    let require_node =
        |node: Option<TechnologyNode>| node.ok_or_else(|| ParseError("--node is required".into()));

    match cmd.as_str() {
        "estimate" => {
            let node = require_node(node)?;
            let app = app.ok_or_else(|| ParseError("--app is required".into()))?;
            if tdp.is_none() && !thermal {
                return Err(ParseError("pass --tdp WATTS or --thermal".into()));
            }
            if tdp.is_some() && thermal {
                return Err(ParseError(
                    "--tdp and --thermal are mutually exclusive".into(),
                ));
            }
            Ok(Command::Estimate {
                node,
                app,
                threads,
                freq,
                tdp,
            })
        }
        "tsp" => Ok(Command::Tsp {
            node: require_node(node)?,
            active,
        }),
        "map" => {
            let node = require_node(node)?;
            let policy = policy.ok_or_else(|| ParseError("--policy is required".into()))?;
            let dsrem = match policy.as_str() {
                "dsrem" => true,
                "tdpmap" => false,
                other => {
                    return Err(ParseError(format!(
                        "unknown policy '{other}' (use tdpmap|dsrem)"
                    )))
                }
            };
            Ok(Command::Map {
                node,
                dsrem,
                mix,
                tdp: tdp.unwrap_or(Watts::new(185.0)),
            })
        }
        "boost" => Ok(Command::Boost {
            node: require_node(node)?,
            app: app.unwrap_or(ParsecApp::X264),
            instances,
            duration,
        }),
        "help" | "--help" | "-h" => Ok(Command::Help),
        other => Err(ParseError(format!("unknown command '{other}'"))),
    }
}

/// Parses the arguments after `darksil trace`.
fn parse_trace(it: &mut std::slice::Iter<'_, String>) -> Result<Command, ParseError> {
    let action = it
        .next()
        .ok_or_else(|| ParseError("trace expects an action (summarize|compare)".into()))?;
    match action.as_str() {
        "summarize" => {
            let mut path = None;
            let mut top = DEFAULT_SUMMARY_TOP;
            while let Some(arg) = it.next() {
                match arg.as_str() {
                    "--top" => {
                        let value = it
                            .next()
                            .ok_or_else(|| ParseError("--top expects a value".into()))?;
                        top = parse_usize("--top", value)?;
                        if top == 0 {
                            return Err(ParseError("--top expects a positive integer".into()));
                        }
                    }
                    p if path.is_none() && !p.starts_with('-') => path = Some(p.to_string()),
                    other => return Err(ParseError(format!("unknown argument '{other}'"))),
                }
            }
            Ok(Command::Trace(TraceAction::Summarize {
                path: path.unwrap_or_else(|| DEFAULT_TRACE_PATH.to_string()),
                top,
            }))
        }
        "compare" => {
            let mut paths = Vec::new();
            for arg in it {
                if arg.starts_with('-') {
                    return Err(ParseError(format!("unknown argument '{arg}'")));
                }
                paths.push(arg.clone());
            }
            if paths.len() != 2 {
                return Err(ParseError(
                    "trace compare expects exactly two files: <BASELINE> <CURRENT>".into(),
                ));
            }
            let mut paths = paths.into_iter();
            let (Some(baseline), Some(current)) = (paths.next(), paths.next()) else {
                return Err(ParseError("trace compare expects two files".into()));
            };
            Ok(Command::Trace(TraceAction::Compare { baseline, current }))
        }
        other => Err(ParseError(format!(
            "unknown trace action '{other}' (use summarize|compare)"
        ))),
    }
}

/// Parses the arguments after `darksil events`.
fn parse_events(it: &mut std::slice::Iter<'_, String>) -> Result<Command, ParseError> {
    let action = it
        .next()
        .ok_or_else(|| ParseError("events expects an action (summarize|filter|verify)".into()))?;
    match action.as_str() {
        "summarize" | "verify" => {
            let verify = action == "verify";
            let mut path = None;
            for arg in it {
                if path.is_none() && !arg.starts_with('-') {
                    path = Some(arg.clone());
                } else {
                    return Err(ParseError(format!("unknown argument '{arg}'")));
                }
            }
            Ok(Command::Events(if verify {
                EventsAction::Verify { path }
            } else {
                EventsAction::Summarize { path }
            }))
        }
        "filter" => {
            let kind = it
                .next()
                .cloned()
                .ok_or_else(|| ParseError("events filter expects an event kind".into()))?;
            if kind.starts_with('-') {
                return Err(ParseError("events filter expects an event kind".into()));
            }
            let mut path = None;
            let mut limit = DEFAULT_FILTER_LIMIT;
            while let Some(arg) = it.next() {
                match arg.as_str() {
                    "--limit" => {
                        let value = it
                            .next()
                            .ok_or_else(|| ParseError("--limit expects a value".into()))?;
                        limit = parse_usize("--limit", value)?;
                    }
                    p if path.is_none() && !p.starts_with('-') => path = Some(p.to_string()),
                    other => return Err(ParseError(format!("unknown argument '{other}'"))),
                }
            }
            Ok(Command::Events(EventsAction::Filter { path, kind, limit }))
        }
        other => Err(ParseError(format!(
            "unknown events action '{other}' (use summarize|filter|verify)"
        ))),
    }
}

/// Parses the arguments after `darksil fuzz`.
fn parse_fuzz(it: &mut std::slice::Iter<'_, String>) -> Result<Command, ParseError> {
    let mut seed = DEFAULT_FUZZ_SEED;
    let mut cases = DEFAULT_FUZZ_CASES;
    let mut inject = None;
    let mut corpus = DEFAULT_CORPUS_DIR.to_string();
    let mut replay = false;
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--seed" => {
                let value = it
                    .next()
                    .ok_or_else(|| ParseError("--seed expects a value".into()))?;
                seed = parse_u64("--seed", value)?;
            }
            "--cases" => {
                let value = it
                    .next()
                    .ok_or_else(|| ParseError("--cases expects a value".into()))?;
                cases = parse_usize("--cases", value)?;
                if cases == 0 {
                    return Err(ParseError("--cases expects a positive integer".into()));
                }
            }
            "--inject" => {
                let value = it
                    .next()
                    .ok_or_else(|| ParseError("--inject expects a mode".into()))?;
                inject = Some(darksil_arena::InjectMode::parse(value).ok_or_else(|| {
                    ParseError(format!("unknown inject mode '{value}' (use nan|time|tsp)"))
                })?);
            }
            "--corpus" => {
                corpus = it
                    .next()
                    .cloned()
                    .ok_or_else(|| ParseError("--corpus expects a directory".into()))?;
            }
            "--replay" => replay = true,
            other => return Err(ParseError(format!("unknown argument '{other}'"))),
        }
    }
    if replay && inject.is_some() {
        return Err(ParseError(
            "--replay re-runs the corpus; --inject only applies to fuzzing".into(),
        ));
    }
    Ok(Command::Fuzz {
        seed,
        cases,
        inject,
        corpus,
        replay,
    })
}

/// Parses the arguments after `darksil tournament`.
fn parse_tournament(it: &mut std::slice::Iter<'_, String>) -> Result<Command, ParseError> {
    let mut seed = DEFAULT_FUZZ_SEED;
    let mut cases = DEFAULT_TOURNAMENT_CASES;
    let mut out = "results".to_string();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--seed" => {
                let value = it
                    .next()
                    .ok_or_else(|| ParseError("--seed expects a value".into()))?;
                seed = parse_u64("--seed", value)?;
            }
            "--cases" => {
                let value = it
                    .next()
                    .ok_or_else(|| ParseError("--cases expects a value".into()))?;
                cases = parse_usize("--cases", value)?;
                if cases == 0 {
                    return Err(ParseError("--cases expects a positive integer".into()));
                }
            }
            "--out" => {
                out = it
                    .next()
                    .cloned()
                    .ok_or_else(|| ParseError("--out expects a directory".into()))?;
            }
            other => return Err(ParseError(format!("unknown argument '{other}'"))),
        }
    }
    Ok(Command::Tournament { seed, cases, out })
}

/// Parses the arguments after `darksil sweep`.
fn parse_sweep(it: &mut std::slice::Iter<'_, String>) -> Result<Command, ParseError> {
    let mut path = None;
    let mut out = "results".to_string();
    let mut cache_dir = None;
    let mut no_cache = false;
    let mut resume = false;
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--out" => {
                out = it
                    .next()
                    .cloned()
                    .ok_or_else(|| ParseError("--out expects a directory".into()))?;
            }
            "--cache-dir" => {
                cache_dir = Some(
                    it.next()
                        .cloned()
                        .ok_or_else(|| ParseError("--cache-dir expects a directory".into()))?,
                );
            }
            "--no-cache" => no_cache = true,
            "--resume" => resume = true,
            p if path.is_none() && !p.starts_with('-') => path = Some(p.to_string()),
            other => return Err(ParseError(format!("unknown argument '{other}'"))),
        }
    }
    let path = path.ok_or_else(|| ParseError("sweep expects a spec file".into()))?;
    if no_cache && cache_dir.is_some() {
        return Err(ParseError(
            "--no-cache and --cache-dir are mutually exclusive".into(),
        ));
    }
    Ok(Command::Sweep {
        path,
        out,
        cache_dir,
        no_cache,
        resume,
    })
}

/// Parses the arguments after `darksil serve`.
fn parse_serve(it: &mut std::slice::Iter<'_, String>) -> Result<Command, ParseError> {
    let mut addr = "127.0.0.1:8787".to_string();
    let mut max_inflight = 64_usize;
    let mut tenant_quota = 8_usize;
    let mut state_dir = "state".to_string();
    let mut deadline_s = 30.0_f64;
    let mut drain_grace_s = 30.0_f64;
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--addr" => {
                addr = it
                    .next()
                    .cloned()
                    .ok_or_else(|| ParseError("--addr expects host:port".into()))?;
            }
            "--max-inflight" => {
                let value = it
                    .next()
                    .ok_or_else(|| ParseError("--max-inflight expects a value".into()))?;
                max_inflight = parse_usize("--max-inflight", value)?;
            }
            "--tenant-quota" => {
                let value = it
                    .next()
                    .ok_or_else(|| ParseError("--tenant-quota expects a value".into()))?;
                tenant_quota = parse_usize("--tenant-quota", value)?;
            }
            "--state-dir" => {
                state_dir = it
                    .next()
                    .cloned()
                    .ok_or_else(|| ParseError("--state-dir expects a directory".into()))?;
            }
            "--deadline-s" => {
                let value = it
                    .next()
                    .ok_or_else(|| ParseError("--deadline-s expects seconds".into()))?;
                deadline_s = parse_f64("--deadline-s", value)?;
            }
            "--drain-grace-s" => {
                let value = it
                    .next()
                    .ok_or_else(|| ParseError("--drain-grace-s expects seconds".into()))?;
                drain_grace_s = parse_f64("--drain-grace-s", value)?;
            }
            other => return Err(ParseError(format!("unknown argument '{other}'"))),
        }
    }
    if max_inflight == 0 || tenant_quota == 0 {
        return Err(ParseError(
            "--max-inflight and --tenant-quota must be positive".into(),
        ));
    }
    let sane = deadline_s.is_finite()
        && deadline_s > 0.0
        && drain_grace_s.is_finite()
        && drain_grace_s >= 0.0;
    if !sane {
        return Err(ParseError(
            "--deadline-s must be positive and --drain-grace-s non-negative".into(),
        ));
    }
    Ok(Command::Serve {
        addr,
        max_inflight,
        tenant_quota,
        state_dir,
        deadline_s,
        drain_grace_s,
    })
}

/// Parses the arguments after `darksil top`.
fn parse_top(it: &mut std::slice::Iter<'_, String>) -> Result<Command, ParseError> {
    let mut addr = "127.0.0.1:8787".to_string();
    let mut interval_s = 2.0_f64;
    let mut once = false;
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--addr" => {
                addr = it
                    .next()
                    .cloned()
                    .ok_or_else(|| ParseError("--addr expects host:port".into()))?;
            }
            "--interval" => {
                let value = it
                    .next()
                    .ok_or_else(|| ParseError("--interval expects seconds".into()))?;
                interval_s = parse_f64("--interval", value)?;
            }
            "--once" => once = true,
            other => return Err(ParseError(format!("unknown argument '{other}'"))),
        }
    }
    if !interval_s.is_finite() || interval_s <= 0.0 {
        return Err(ParseError("--interval expects positive seconds".into()));
    }
    Ok(Command::Top {
        addr,
        interval_s,
        once,
    })
}

/// Parses the arguments after `darksil report`.
fn parse_report(it: &mut std::slice::Iter<'_, String>) -> Result<Command, ParseError> {
    let mut run = None;
    let mut trace = None;
    let mut out = None;
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--trace" => {
                trace = Some(
                    it.next()
                        .cloned()
                        .ok_or_else(|| ParseError("--trace expects a value".into()))?,
                );
            }
            "--out" => {
                out = Some(
                    it.next()
                        .cloned()
                        .ok_or_else(|| ParseError("--out expects a value".into()))?,
                );
            }
            p if run.is_none() && !p.starts_with('-') => run = Some(p.to_string()),
            other => return Err(ParseError(format!("unknown argument '{other}'"))),
        }
    }
    Ok(Command::Report { run, trace, out })
}

/// Executes a command, writing human-readable output to stdout.
///
/// # Errors
///
/// Propagates estimation/simulation failures as boxed errors.
pub fn run(command: &Command) -> Result<(), Box<dyn std::error::Error>> {
    match command {
        Command::Help => println!("{USAGE}"),
        Command::Run { path, json } => {
            let scenario = crate::scenario::parse_scenario_file(std::path::Path::new(path))?;
            let report = crate::scenario::run_scenario(&scenario)?;
            if *json {
                println!("{}", darksil_json::to_string_pretty(&report));
            } else {
                println!("{}:", report.name);
                println!(
                    "  {} active cores ({:.0}% dark), {:.0} GIPS, {:.0} W, peak {:.1} °C{}",
                    report.active_cores,
                    100.0 * report.dark_fraction,
                    report.total_gips,
                    report.total_power_w,
                    report.peak_temperature_c,
                    if report.thermal_violation {
                        " (EXCEEDS T_DTM)"
                    } else {
                        ""
                    }
                );
                for note in &report.notes {
                    println!("  - {note}");
                }
            }
        }
        Command::Estimate {
            node,
            app,
            threads,
            freq,
            tdp,
        } => {
            let est = DarkSiliconEstimator::for_node(*node)?;
            let f = freq.unwrap_or(node.nominal_max_frequency());
            let e = match tdp {
                Some(budget) => est.under_power_budget(*app, *threads, f, *budget)?,
                None => est.under_temperature_constraint(*app, *threads, f)?,
            };
            println!(
                "{node} / {app} × {threads} threads @ {:.1} GHz ({})",
                f.as_ghz(),
                match tdp {
                    Some(b) => format!("TDP {b}"),
                    None => "thermal constraint 80 °C".into(),
                }
            );
            println!(
                "  {} active / {} dark ({:.0}% dark)",
                e.active_cores,
                e.dark_cores,
                100.0 * e.dark_fraction
            );
            println!(
                "  {:.0} W total, peak {:.1} °C{}, {:.0} GIPS",
                e.total_power.value(),
                e.peak_temperature.value(),
                if e.thermal_violation {
                    " (EXCEEDS T_DTM)"
                } else {
                    ""
                },
                e.total_gips.value()
            );
        }
        Command::Tsp { node, active } => {
            let platform = Platform::for_node(*node)?;
            let tsp =
                TspCalculator::new(platform.floorplan(), platform.thermal(), platform.t_dtm());
            let counts: Vec<usize> = match active {
                Some(m) => vec![*m],
                None => {
                    let n = platform.core_count();
                    (1..=10).map(|i| i * n / 10).collect()
                }
            };
            println!("{node}: TSP (worst-case mappings, T_DTM = 80 °C)");
            println!("  active  per-core[W]  total[W]");
            // Each worst-case TSP solve is independent — fan the curve
            // out over the engine; rows come back in count order.
            let rows = Engine::auto().try_par_map(counts, |m| Ok((m, tsp.worst_case(m)?)))?;
            for (m, per) in rows {
                println!(
                    "  {m:>6}  {:>10.2}  {:>8.0}",
                    per.value(),
                    per.value() * m as f64
                );
            }
        }
        Command::Map {
            node,
            dsrem,
            mix,
            tdp,
        } => {
            let platform = Platform::for_node(*node)?;
            let workload = Workload::parsec_mix(*mix, 8)?;
            let mapping = if *dsrem {
                DsRem::new(*tdp)?.map(&platform, &workload)?
            } else {
                TdpMap::new(*tdp).map(&platform, &workload)?
            };
            let peak = mapping.peak_temperature(&platform)?;
            println!(
                "{node} / {} / mix of {mix} × 8t under {tdp}:",
                if *dsrem { "DsRem" } else { "TDPmap" }
            );
            println!(
                "  {} active cores ({:.0}% dark), {:.0} GIPS, peak {:.1} °C",
                mapping.active_core_count(),
                100.0 * mapping.dark_fraction(),
                mapping.total_gips(&platform).value(),
                peak.value()
            );
        }
        Command::Boost {
            node,
            app,
            instances,
            duration,
        } => {
            let platform = Platform::for_node(*node)?
                .with_boost_levels(node.nominal_max_frequency() * 1.25)?;
            let workload = Workload::uniform(*app, *instances, 8)?;
            let mapping = place_patterned(platform.floorplan(), &workload, platform.max_level())?;
            let config = PolicyConfig {
                period: Seconds::new(0.01),
                ..PolicyConfig::default()
            };
            let horizon = Seconds::new(*duration);
            let boost = run_boosting(&platform, &mapping, horizon, &config)?;
            let constant = run_constant(&platform, &mapping, horizon, &config)?;
            println!("{node} / {app} × {instances} instances × 8t, {duration} s simulated:");
            println!(
                "  boosting: avg {:.0} GIPS, peak {:.1} °C, peak {:.0} W",
                boost.average_gips_tail(0.5).value(),
                boost.peak_temperature().value(),
                boost.peak_power().value()
            );
            println!(
                "  constant: avg {:.0} GIPS, peak {:.1} °C, peak {:.0} W",
                constant.average_gips_tail(0.5).value(),
                constant.peak_temperature().value(),
                constant.peak_power().value()
            );
        }
        Command::Cache { action, dir, evict } => run_cache(*action, dir, *evict)?,
        Command::Trace(action) => run_trace(action)?,
        Command::Events(action) => run_events(action)?,
        Command::Fuzz {
            seed,
            cases,
            inject,
            corpus,
            replay,
        } => {
            if *replay {
                run_fuzz_replay(corpus)?;
            } else {
                run_fuzz(*seed, *cases, *inject, corpus)?;
            }
        }
        Command::Tournament { seed, cases, out } => run_tournament_cmd(*seed, *cases, out)?,
        Command::Sweep {
            path,
            out,
            cache_dir,
            no_cache,
            resume,
        } => run_sweep_cmd(path, out, cache_dir.as_deref(), *no_cache, *resume)?,
        Command::Report { run, trace, out } => {
            run_report(run.as_deref(), trace.as_deref(), out.as_deref())?;
        }
        Command::Serve {
            addr,
            max_inflight,
            tenant_quota,
            state_dir,
            deadline_s,
            drain_grace_s,
        } => {
            let config = darksil_serve::ServeConfig {
                addr: addr.clone(),
                // --jobs is stripped by `extract_jobs` and lands in
                // `darksil_engine::set_default_jobs`; 0 defers to it.
                jobs: 0,
                max_inflight: *max_inflight,
                tenant_quota: *tenant_quota,
                state_dir: std::path::PathBuf::from(state_dir),
                job_deadline: std::time::Duration::from_secs_f64(*deadline_s),
                drain_grace: std::time::Duration::from_secs_f64(*drain_grace_s),
                ..darksil_serve::ServeConfig::default()
            };
            let server = darksil_serve::Server::bind(config)?;
            println!("darksil-d listening on {}", server.local_addr()?);
            let summary = server.run()?;
            println!(
                "drained ({}, {} unfinished job(s) checkpointed in the journal)",
                if summary.drained {
                    "all jobs finished"
                } else {
                    "grace period expired"
                },
                summary.unfinished
            );
        }
        Command::Top {
            addr,
            interval_s,
            once,
        } => {
            crate::top::run_top(addr, std::time::Duration::from_secs_f64(*interval_s), *once)?;
        }
    }
    Ok(())
}

/// Recorded event streams (`results/events_*.jsonl`), sorted. An
/// absent or empty `results/` directory yields an empty list, not an
/// I/O error.
fn available_runs() -> Vec<std::path::PathBuf> {
    let mut found = Vec::new();
    if let Ok(entries) = std::fs::read_dir("results") {
        for entry in entries.flatten() {
            let name = entry.file_name().to_string_lossy().into_owned();
            if name.starts_with("events_") && name.ends_with(".jsonl") {
                found.push(entry.path());
            }
        }
    }
    found.sort();
    found
}

/// Human-readable listing of the recorded runs, for error messages.
fn available_runs_listing(found: &[std::path::PathBuf]) -> String {
    if found.is_empty() {
        "(none recorded — record one with `repro --events`)".to_string()
    } else {
        found
            .iter()
            .map(|p| p.display().to_string())
            .collect::<Vec<_>>()
            .join(", ")
    }
}

/// Resolves a `RUN|PATH` argument to an events file: an existing path
/// is taken as-is, otherwise the run label is looked up as
/// `results/events_<RUN>.jsonl`; with no argument the sole
/// `results/events_*.jsonl` is picked. Failures are typed
/// [`DarksilError`]s naming the paths that were tried and listing the
/// runs that do exist, so `darksil report NO-SUCH-RUN` exits 1 with an
/// actionable message instead of a bare I/O error.
fn resolve_events_path(spec: Option<&str>) -> Result<std::path::PathBuf, DarksilError> {
    use std::path::{Path, PathBuf};
    let found = available_runs();
    if let Some(spec) = spec {
        let direct = PathBuf::from(spec);
        if direct.is_file() {
            return Ok(direct);
        }
        let labelled = Path::new("results").join(format!("events_{spec}.jsonl"));
        if labelled.is_file() {
            return Ok(labelled);
        }
        return Err(DarksilError::io(format!(
            "no events file '{spec}' (looked for the path itself and {}); available runs: {}",
            labelled.display(),
            available_runs_listing(&found)
        ))
        .context("report"));
    }
    let mut found = found;
    match found.len() {
        0 => Err(DarksilError::io(
            "no results/events_*.jsonl found — record one with `repro --events`",
        )
        .context("report")),
        1 => Ok(found.remove(0)),
        _ => Err(DarksilError::config(format!(
            "{} event streams in results/ — name one: {}",
            found.len(),
            available_runs_listing(&found)
        ))
        .context("report")),
    }
}

/// Loads an event stream from a resolved path.
fn load_events(path: &std::path::Path) -> Result<darksil_obs::EventStream, ParseError> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| ParseError(format!("cannot read events '{}': {e}", path.display())))?;
    darksil_obs::EventStream::from_jsonl(&text).map_err(|e| {
        ParseError(format!(
            "'{}' is not a valid event stream: {e}",
            path.display()
        ))
    })
}

/// The run label an events file was recorded under (`events_X.jsonl`
/// → `X`), used to name the report output.
fn run_label(path: &std::path::Path) -> String {
    let stem = path
        .file_stem()
        .map_or_else(|| "run".into(), |s| s.to_string_lossy().into_owned());
    stem.strip_prefix("events_").unwrap_or(&stem).to_string()
}

/// Executes `darksil events summarize|filter`.
fn run_events(action: &EventsAction) -> Result<(), Box<dyn std::error::Error>> {
    match action {
        EventsAction::Summarize { path } => {
            let path = resolve_events_path(path.as_deref())?;
            let stream = load_events(&path)?;
            println!("events {}:", path.display());
            println!("{}", stream.render_summary());
        }
        EventsAction::Filter { path, kind, limit } => {
            let path = resolve_events_path(path.as_deref())?;
            let stream = load_events(&path)?;
            let mut shown = 0_usize;
            let mut total = 0_usize;
            for event in stream.of_kind(kind) {
                total += 1;
                if *limit == 0 || shown < *limit {
                    println!("{}", event.to_jsonl_line());
                    shown += 1;
                }
            }
            if total == 0 {
                println!("no '{kind}' events in {}", path.display());
            } else if shown < total {
                println!("… {} more ({total} total; raise --limit)", total - shown);
            }
        }
        EventsAction::Verify { path } => {
            let path = resolve_events_path(path.as_deref())?;
            let stream = load_events(&path)?;
            let violations = darksil_arena::Oracle::default().verify(&stream);
            if violations.is_empty() {
                println!(
                    "ok: {} events in {}, all invariants hold",
                    stream.events.len(),
                    path.display()
                );
            } else {
                for violation in &violations {
                    println!("VIOLATION {violation}");
                }
                let first = &violations[0];
                return Err(Box::new(ParseError(format!(
                    "invariant `{}` violated (first at seq [{}])",
                    first.invariant,
                    first
                        .seq
                        .iter()
                        .map(u64::to_string)
                        .collect::<Vec<_>>()
                        .join(",")
                ))));
            }
        }
    }
    Ok(())
}

/// Executes `darksil fuzz`: generate → run → verdict → shrink →
/// persist. Non-zero exit when any invariant was violated.
fn run_fuzz(
    seed: u64,
    cases: usize,
    inject: Option<darksil_arena::InjectMode>,
    corpus: &str,
) -> Result<(), Box<dyn std::error::Error>> {
    use darksil_arena::{generate_cases, run_cases, save_reproducer, shrink, Oracle, Reproducer};
    let oracle = Oracle::default();
    let population = generate_cases(seed, cases, inject);
    let jobs = Engine::auto().jobs();
    let (outcomes, stream) = run_cases(&population, jobs, &oracle);

    let mut passed = 0_usize;
    let mut errored = 0_usize;
    let mut violated: Vec<usize> = Vec::new();
    for (position, outcome) in outcomes.iter().enumerate() {
        match outcome.verdict() {
            darksil_arena::Verdict::Pass => passed += 1,
            darksil_arena::Verdict::Error => errored += 1,
            darksil_arena::Verdict::Violated => violated.push(position),
        }
    }
    println!(
        "fuzz seed {seed}: {cases} cases over {jobs} jobs — {passed} pass, \
         {errored} errors, {} violated ({} events)",
        violated.len(),
        stream.events.len()
    );
    for &position in &violated {
        let outcome = &outcomes[position];
        for violation in &outcome.violations {
            println!("  {}: {violation}", outcome.name);
        }
    }
    for outcome in &outcomes {
        if let (darksil_arena::Verdict::Error, Some(error)) =
            (outcome.verdict(), outcome.error.as_ref())
        {
            println!("  {} error: {error}", outcome.name);
        }
    }
    if violated.is_empty() {
        println!("corpus untouched — no violations");
        return Ok(());
    }

    // Shrink and persist one reproducer per violated invariant: the
    // first case to trip it. Shrinking reruns candidates serially, so
    // bounding the work per invariant keeps even --inject runs (where
    // every case violates) fast.
    let mut persisted: Vec<String> = Vec::new();
    for &position in &violated {
        let outcome = &outcomes[position];
        let Some(first) = outcome.violations.first() else {
            continue;
        };
        if persisted.iter().any(|i| i == &first.invariant) {
            continue;
        }
        persisted.push(first.invariant.clone());
        let minimal = shrink(&population[position], &first.invariant, &oracle);
        let repro = Reproducer {
            schema: darksil_arena::REPRO_SCHEMA.to_string(),
            seed,
            case_index: outcome.index,
            invariant: first.invariant.clone(),
            detail: first.detail.clone(),
            scenario: minimal.scenario.clone(),
            inject: minimal.inject.map(|m| m.name().to_string()),
            faults: minimal.faults.clone(),
        };
        let path = save_reproducer(std::path::Path::new(corpus), &repro)?;
        println!(
            "  shrunk `{}` reproducer -> {}",
            first.invariant,
            path.display()
        );
    }
    Err(Box::new(ParseError(format!(
        "{} of {cases} cases violated physical invariants",
        violated.len()
    ))))
}

/// Executes `darksil fuzz --replay`: the corpus regression gate.
/// Reproducers with an inject mode must still be *caught* (the oracle
/// keeps catching that violation class); reproducers without one
/// captured real, since-fixed bugs and must now run *clean*.
/// Replays the committed `*.jsonl` stream regressions in the corpus:
/// recorded event streams that once tripped an invariant and must now
/// verify clean. Returns (replayed, failed).
fn replay_stream_corpus(
    corpus: &std::path::Path,
    oracle: &darksil_arena::Oracle,
) -> (usize, usize) {
    let mut paths: Vec<std::path::PathBuf> = std::fs::read_dir(corpus)
        .map(|dir| {
            dir.filter_map(Result::ok)
                .map(|entry| entry.path())
                .filter(|p| p.extension().is_some_and(|e| e == "jsonl"))
                .collect()
        })
        .unwrap_or_default();
    paths.sort();
    let mut failures = 0_usize;
    for path in &paths {
        let violations = std::fs::read_to_string(path)
            .map_err(|e| e.to_string())
            .and_then(|text| darksil_obs::EventStream::from_jsonl(&text).map_err(|e| e.to_string()))
            .map(|stream| oracle.verify(&stream));
        match violations {
            Ok(violations) if violations.is_empty() => {
                println!("replay {} [stream]: ok", path.display());
            }
            Ok(violations) => {
                println!("replay {} [stream]: FAIL", path.display());
                for violation in &violations {
                    println!("  {violation}");
                }
                failures += 1;
            }
            Err(error) => {
                println!("replay {} [stream]: FAIL ({error})", path.display());
                failures += 1;
            }
        }
    }
    (paths.len(), failures)
}

fn run_fuzz_replay(corpus: &str) -> Result<(), Box<dyn std::error::Error>> {
    use darksil_arena::{load_corpus, replay, Oracle};
    let oracle = Oracle::default();
    let corpus_dir = std::path::Path::new(corpus);
    let entries = load_corpus(corpus_dir)?;
    let (streams, mut failures) = replay_stream_corpus(corpus_dir, &oracle);
    if entries.is_empty() && streams == 0 {
        println!("corpus {corpus}: empty — nothing to replay");
        return Ok(());
    }
    for (path, repro) in &entries {
        let outcome = replay(repro, &oracle);
        let caught = outcome
            .violations
            .iter()
            .any(|v| v.invariant == repro.invariant);
        let ok = if repro.inject.is_some() {
            caught // the oracle must keep catching the injected class
        } else {
            outcome.violations.is_empty() // the real bug must stay fixed
        };
        let verdict = if ok { "ok" } else { "FAIL" };
        println!(
            "replay {} [{}] `{}`: {verdict}",
            path.display(),
            if repro.inject.is_some() {
                "inject"
            } else {
                "regression"
            },
            repro.invariant
        );
        if !ok {
            for violation in &outcome.violations {
                println!("  {violation}");
            }
            failures += 1;
        }
    }
    println!(
        "corpus {corpus}: {} reproducer(s) replayed ({} scenario, {streams} stream)",
        entries.len() + streams,
        entries.len()
    );
    if failures > 0 {
        return Err(Box::new(ParseError(format!(
            "{failures} corpus reproducer(s) failed replay"
        ))));
    }
    Ok(())
}

/// Executes `darksil tournament`: fight the policies and write the
/// deterministic leaderboard artefacts.
fn run_tournament_cmd(
    seed: u64,
    cases: usize,
    out: &str,
) -> Result<(), Box<dyn std::error::Error>> {
    use darksil_arena::{leaderboard_html, run_tournament, Oracle};
    let jobs = Engine::auto().jobs();
    let board = run_tournament(seed, cases, jobs, &Oracle::default());
    println!("tournament seed {seed}: {cases} cases × 3 policies over {jobs} jobs");
    println!(
        "  {:<3} {:<8} {:>6} {:>5} {:>4} {:>10} {:>11}",
        "#", "policy", "points", "wins", "DQ", "mean GIPS", "mean peak C"
    );
    for (rank, score) in board.scores.iter().enumerate() {
        println!(
            "  {:<3} {:<8} {:>6} {:>5} {:>4} {:>10.1} {:>11.1}",
            rank + 1,
            score.policy,
            score.points,
            score.wins,
            score.disqualified,
            score.mean_gips,
            score.mean_peak_c,
        );
    }
    let dir = std::path::Path::new(out);
    std::fs::create_dir_all(dir)?;
    let json_path = dir.join("leaderboard.json");
    let mut json = darksil_json::to_string_pretty(&board);
    if !json.ends_with('\n') {
        json.push('\n');
    }
    std::fs::write(&json_path, json)?;
    let html_path = dir.join("leaderboard.html");
    std::fs::write(&html_path, leaderboard_html(&board))?;
    println!(
        "[wrote {} and {}]",
        json_path.display(),
        html_path.display()
    );
    Ok(())
}

/// Filesystem-safe artefact label for a sweep name (mirrors the cache
/// key file-name policy: ASCII alphanumerics, `-` and `_` survive).
fn sweep_label(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '-' || c == '_' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

/// Executes `darksil sweep`: expand, run, analyse, write artefacts.
fn run_sweep_cmd(
    path: &str,
    out: &str,
    cache_dir: Option<&str>,
    no_cache: bool,
    resume: bool,
) -> Result<(), Box<dyn std::error::Error>> {
    use darksil_sweep::{parse_sweep_spec_file, render_sweep_report, run_sweep, SweepOptions};
    let spec = parse_sweep_spec_file(std::path::Path::new(path))?;
    let dir = std::path::Path::new(out);
    std::fs::create_dir_all(dir)?;
    let label = sweep_label(&spec.name);
    let journal_path = dir.join(format!("sweep_{label}.journal.json"));
    let opts = SweepOptions {
        jobs: Engine::auto().jobs(),
        cache_dir: cache_dir.map(std::path::PathBuf::from),
        use_cache: !no_cache,
        journal_path: Some(journal_path.clone()),
        resume,
    };
    let result = run_sweep(&spec, &opts)?;
    println!(
        "sweep '{}': {} grid point(s) × {} draw(s) = {} evaluation(s) over {} job(s)",
        spec.name, result.grid_points, result.draws, result.evals, opts.jobs,
    );
    println!(
        "  cache: {} hit, {} miss, {} recovered{}",
        result.cache.hit,
        result.cache.miss,
        result.cache.recovered,
        if no_cache { " (cache off)" } else { "" },
    );
    // Fully cache-served sweeps do no solves and so no factor lookups;
    // only print the line when the solver actually ran.
    let fc = darksil_numerics::factor_cache_stats();
    if fc.hits + fc.misses > 0 {
        println!("  factor cache: {} reused, {} factored", fc.hits, fc.misses);
    }
    println!(
        "  Pareto frontier: {} of {} point(s)",
        result.frontier.len(),
        result.points.len(),
    );
    let json_path = dir.join(format!("sweep_{label}.json"));
    let mut json = darksil_json::to_string_pretty(&result);
    if !json.ends_with('\n') {
        json.push('\n');
    }
    std::fs::write(&json_path, json)?;
    let html_path = dir.join(format!("sweep_{label}.html"));
    std::fs::write(&html_path, render_sweep_report(&result))?;
    println!(
        "[wrote {}, {} and {}]",
        json_path.display(),
        html_path.display(),
        journal_path.display(),
    );
    Ok(())
}

/// Executes `darksil report`: renders the event stream (plus the trace
/// when available) into a self-contained HTML file.
fn run_report(
    run: Option<&str>,
    trace: Option<&str>,
    out: Option<&str>,
) -> Result<(), Box<dyn std::error::Error>> {
    let events_path = resolve_events_path(run)?;
    let stream = load_events(&events_path)?;
    let label = run_label(&events_path);
    let trace_loaded: Option<darksil_obs::Trace> = match trace {
        Some(path) => {
            let text = std::fs::read_to_string(path)
                .map_err(|e| ParseError(format!("cannot read trace '{path}': {e}")))?;
            Some(
                darksil_json::from_str(&text)
                    .map_err(|e| ParseError(format!("'{path}' is not a valid trace: {e}")))?,
            )
        }
        // No explicit trace: use the default profile output when it
        // exists, quietly skipping the Gantt/histograms otherwise.
        None => std::fs::read_to_string(DEFAULT_TRACE_PATH)
            .ok()
            .and_then(|text| darksil_json::from_str(&text).ok()),
    };
    let html = darksil_obs::render_report(&label, &stream, trace_loaded.as_ref());
    let out_path = out.map_or_else(
        || std::path::Path::new("results").join(format!("report_{label}.html")),
        std::path::PathBuf::from,
    );
    if let Some(parent) = out_path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    std::fs::write(&out_path, html)?;
    println!(
        "[wrote {} ({} events{})]",
        out_path.display(),
        stream.events.len(),
        if trace_loaded.is_some() {
            ", with trace"
        } else {
            ", no trace"
        }
    );
    Ok(())
}

/// Executes `darksil trace summarize|compare`.
fn run_trace(action: &TraceAction) -> Result<(), Box<dyn std::error::Error>> {
    match action {
        TraceAction::Summarize { path, top } => {
            let text = std::fs::read_to_string(path)
                .map_err(|e| ParseError(format!("cannot read trace '{path}': {e}")))?;
            let trace: darksil_obs::Trace = darksil_json::from_str(&text)
                .map_err(|e| ParseError(format!("'{path}' is not a valid trace: {e}")))?;
            println!("trace {path}:");
            println!("{}", trace.render_summary(*top));
            Ok(())
        }
        TraceAction::Compare { baseline, current } => {
            let load = |path: &str| -> Result<darksil_obs::BenchBaseline, ParseError> {
                let text = std::fs::read_to_string(path)
                    .map_err(|e| ParseError(format!("cannot read baseline '{path}': {e}")))?;
                darksil_json::from_str(&text)
                    .map_err(|e| ParseError(format!("'{path}' is not a valid baseline: {e}")))
            };
            let base = load(baseline)?;
            let cur = load(current)?;
            let regressions = base.regressions_in(&cur);
            println!(
                "baseline {baseline} (selection '{}', jobs {}) vs {current} (selection '{}', jobs {}):",
                base.selection, base.jobs, cur.selection, cur.jobs
            );
            println!(
                "  total: {:.2} s (bound {:.2} s)",
                cur.total_seconds, base.max_total_seconds
            );
            // A phase that vanished from the current run is suspicious
            // (renamed span, dead instrumentation) but not a regression:
            // warn without failing.
            for span in base.missing_phases(&cur) {
                println!("  warning: phase `{span}` missing from current run");
            }
            if regressions.is_empty() {
                println!("  no regressions beyond recorded bounds");
                return Ok(());
            }
            for regression in &regressions {
                println!("  REGRESSION {regression}");
            }
            Err(Box::new(ParseError(format!(
                "{} perf regression(s) beyond baseline bounds",
                regressions.len()
            ))))
        }
    }
}

/// Executes `darksil cache <action>` against `dir`.
fn run_cache(
    action: CacheAction,
    dir: &str,
    evict: bool,
) -> Result<(), Box<dyn std::error::Error>> {
    use darksil_engine::{clear_dir, evict_corrupt, scan_dir, EntryCondition};
    let dir = std::path::Path::new(dir);
    if action == CacheAction::Clear {
        let removed = clear_dir(dir)?;
        println!("cache {}: removed {removed} entries", dir.display());
        return Ok(());
    }
    let reports = scan_dir(dir)?;
    let bytes: u64 = reports.iter().map(|r| r.bytes).sum();
    let corrupt: Vec<_> = reports.iter().filter(|r| !r.is_valid()).collect();
    println!(
        "cache {}: {} entries, {} bytes, {} corrupt",
        dir.display(),
        reports.len(),
        bytes,
        corrupt.len()
    );
    if action == CacheAction::Stats {
        return Ok(());
    }
    for report in &corrupt {
        if let EntryCondition::Corrupt(reason) = &report.condition {
            println!("  corrupt: {} — {reason}", report.file_name);
        }
    }
    if corrupt.is_empty() {
        println!("  all entries verified");
        return Ok(());
    }
    if evict {
        let removed = evict_corrupt(dir, &reports)?;
        println!("  evicted {removed} corrupt entries");
        Ok(())
    } else {
        Err(Box::new(ParseError(format!(
            "{} corrupt cache entries found (re-run with --evict to remove them)",
            corrupt.len()
        ))))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(str::to_string).collect()
    }

    #[test]
    fn parses_estimate() {
        let cmd = parse(&argv(
            "estimate --node 16 --app swaptions --threads 8 --freq 3.6 --tdp 185",
        ))
        .unwrap();
        assert_eq!(
            cmd,
            Command::Estimate {
                node: TechnologyNode::Nm16,
                app: ParsecApp::Swaptions,
                threads: 8,
                freq: Some(Hertz::from_ghz(3.6)),
                tdp: Some(Watts::new(185.0)),
            }
        );
    }

    #[test]
    fn estimate_thermal_mode() {
        let cmd = parse(&argv("estimate --node 11 --app canneal --thermal")).unwrap();
        match cmd {
            Command::Estimate { node, app, tdp, .. } => {
                assert_eq!(node, TechnologyNode::Nm11);
                assert_eq!(app, ParsecApp::Canneal);
                assert_eq!(tdp, None);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn estimate_requires_a_constraint() {
        let err = parse(&argv("estimate --node 16 --app x264")).unwrap_err();
        assert!(err.to_string().contains("--tdp"));
        let err = parse(&argv("estimate --node 16 --app x264 --tdp 185 --thermal")).unwrap_err();
        assert!(err.to_string().contains("mutually exclusive"));
    }

    #[test]
    fn parses_tsp_and_map_and_boost() {
        assert_eq!(
            parse(&argv("tsp --node 8 --active 200")).unwrap(),
            Command::Tsp {
                node: TechnologyNode::Nm8,
                active: Some(200),
            }
        );
        assert_eq!(
            parse(&argv("map --node 16 --policy dsrem --mix 10 --tdp 150")).unwrap(),
            Command::Map {
                node: TechnologyNode::Nm16,
                dsrem: true,
                mix: 10,
                tdp: Watts::new(150.0),
            }
        );
        match parse(&argv("boost --node 16 --instances 6 --duration 20")).unwrap() {
            Command::Boost {
                instances,
                duration,
                app,
                ..
            } => {
                assert_eq!(instances, 6);
                assert_eq!(duration, 20.0);
                assert_eq!(app, ParsecApp::X264);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn bad_inputs_are_reported() {
        assert!(parse(&argv("estimate --node 14 --app x264 --tdp 1")).is_err());
        assert!(parse(&argv("estimate --node 16 --app doom --tdp 1")).is_err());
        assert!(parse(&argv("map --node 16 --policy magic")).is_err());
        assert!(parse(&argv("frobnicate")).is_err());
        assert!(parse(&argv("tsp")).is_err()); // missing --node
        assert!(parse(&argv("tsp --node")).is_err()); // dangling value
        assert!(parse(&argv("boost --node 16 --duration many")).is_err());
    }

    #[test]
    fn parses_run() {
        assert_eq!(
            parse(&argv("run scenario.json --json")).unwrap(),
            Command::Run {
                path: "scenario.json".into(),
                json: true,
            }
        );
        assert!(parse(&argv("run")).is_err());
        assert!(parse(&argv("run a.json --frob")).is_err());
    }

    #[test]
    fn jobs_flag_is_stripped_uniformly() {
        let (rest, jobs) = extract_jobs(&argv("tsp --jobs 4 --node 16")).unwrap();
        assert_eq!(jobs, Some(4));
        assert_eq!(rest, argv("tsp --node 16"));
        assert_eq!(
            parse(&rest).unwrap(),
            Command::Tsp {
                node: TechnologyNode::Nm16,
                active: None,
            }
        );
        // Trailing position and the run subcommand work too.
        let (rest, jobs) = extract_jobs(&argv("run scenario.json --json --jobs 2")).unwrap();
        assert_eq!(jobs, Some(2));
        assert!(parse(&rest).is_ok());
        // Absent flag passes argv through untouched.
        let (rest, jobs) = extract_jobs(&argv("help")).unwrap();
        assert_eq!(jobs, None);
        assert_eq!(rest, argv("help"));
    }

    #[test]
    fn jobs_flag_rejects_bad_values() {
        assert!(extract_jobs(&argv("tsp --node 16 --jobs")).is_err());
        assert!(extract_jobs(&argv("tsp --node 16 --jobs zero")).is_err());
        assert!(extract_jobs(&argv("tsp --node 16 --jobs 0")).is_err());
        // Without the pre-strip, subcommand parsers reject the flag.
        assert!(parse(&argv("tsp --node 16 --jobs 4")).is_err());
    }

    #[test]
    fn parses_cache() {
        assert_eq!(
            parse(&argv("cache stats")).unwrap(),
            Command::Cache {
                action: CacheAction::Stats,
                dir: darksil_engine::DEFAULT_CACHE_DIR.into(),
                evict: false,
            }
        );
        assert_eq!(
            parse(&argv("cache verify --dir /tmp/c --evict")).unwrap(),
            Command::Cache {
                action: CacheAction::Verify,
                dir: "/tmp/c".into(),
                evict: true,
            }
        );
        assert!(parse(&argv("cache")).is_err()); // missing action
        assert!(parse(&argv("cache defrag")).is_err()); // unknown action
        assert!(parse(&argv("cache stats --dir")).is_err()); // dangling value
        assert!(parse(&argv("cache clear --evict")).is_err()); // evict needs verify
    }

    #[test]
    fn cache_command_reports_and_evicts_corruption() {
        let dir = std::env::temp_dir().join(format!("darksil-cli-cache-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("broken.json"), "{ not json").unwrap();
        let dir_s = dir.to_string_lossy().into_owned();

        // Stats never fails, verify without --evict does, verify with
        // --evict removes the bad entry, and clear empties the rest.
        run(&Command::Cache {
            action: CacheAction::Stats,
            dir: dir_s.clone(),
            evict: false,
        })
        .unwrap();
        let err = run(&Command::Cache {
            action: CacheAction::Verify,
            dir: dir_s.clone(),
            evict: false,
        })
        .unwrap_err();
        assert!(err.to_string().contains("--evict"));
        run(&Command::Cache {
            action: CacheAction::Verify,
            dir: dir_s.clone(),
            evict: true,
        })
        .unwrap();
        assert!(!dir.join("broken.json").exists());
        run(&Command::Cache {
            action: CacheAction::Clear,
            dir: dir_s,
            evict: false,
        })
        .unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn parses_trace() {
        assert_eq!(
            parse(&argv("trace summarize")).unwrap(),
            Command::Trace(TraceAction::Summarize {
                path: DEFAULT_TRACE_PATH.into(),
                top: DEFAULT_SUMMARY_TOP,
            })
        );
        assert_eq!(
            parse(&argv("trace summarize my_trace.json --top 5")).unwrap(),
            Command::Trace(TraceAction::Summarize {
                path: "my_trace.json".into(),
                top: 5,
            })
        );
        assert_eq!(
            parse(&argv("trace compare BENCH_base.json BENCH_new.json")).unwrap(),
            Command::Trace(TraceAction::Compare {
                baseline: "BENCH_base.json".into(),
                current: "BENCH_new.json".into(),
            })
        );
        assert!(parse(&argv("trace")).is_err()); // missing action
        assert!(parse(&argv("trace frob")).is_err()); // unknown action
        assert!(parse(&argv("trace summarize --top")).is_err()); // dangling
        assert!(parse(&argv("trace summarize --top 0")).is_err());
        assert!(parse(&argv("trace summarize a.json b.json")).is_err());
        assert!(parse(&argv("trace compare one.json")).is_err());
        assert!(parse(&argv("trace compare a b c")).is_err());
        assert!(parse(&argv("trace compare a --frob")).is_err());
    }

    #[test]
    fn trace_summarize_and_compare_roundtrip() {
        use darksil_obs::{ArtefactTiming, BenchBaseline, SpanRecord, Trace};
        let dir = std::env::temp_dir().join(format!("darksil-cli-trace-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();

        let trace = Trace {
            spans: vec![
                SpanRecord {
                    id: 1,
                    parent: None,
                    thread: 0,
                    name: "repro.run".into(),
                    start_s: 0.0,
                    seconds: 2.0,
                },
                SpanRecord {
                    id: 2,
                    parent: Some(1),
                    thread: 0,
                    name: "artefact.fig5".into(),
                    start_s: 0.1,
                    seconds: 1.5,
                },
            ],
            counters: vec![
                ("engine.cache.hit".into(), 3),
                ("engine.cache.miss".into(), 1),
            ],
            observations: Vec::new(),
            hists: Vec::new(),
        };
        let trace_path = dir.join("trace.json");
        std::fs::write(&trace_path, darksil_json::to_string_pretty(&trace)).unwrap();
        run(&Command::Trace(TraceAction::Summarize {
            path: trace_path.to_string_lossy().into_owned(),
            top: 10,
        }))
        .unwrap();

        // A report compared against itself passes; inflating the total
        // beyond the recorded bound is caught as a regression.
        let base = BenchBaseline::from_trace(
            &trace,
            2,
            "fig5",
            25.0,
            2.0,
            vec![ArtefactTiming {
                artefact: "fig5".into(),
                seconds: 1.5,
                cache: "miss".into(),
            }],
        );
        let base_path = dir.join("base.json");
        std::fs::write(&base_path, darksil_json::to_string_pretty(&base)).unwrap();
        let base_s = base_path.to_string_lossy().into_owned();
        run(&Command::Trace(TraceAction::Compare {
            baseline: base_s.clone(),
            current: base_s.clone(),
        }))
        .unwrap();

        let mut slow = base.clone();
        slow.total_seconds = base.max_total_seconds + 1.0;
        let slow_path = dir.join("slow.json");
        std::fs::write(&slow_path, darksil_json::to_string_pretty(&slow)).unwrap();
        let err = run(&Command::Trace(TraceAction::Compare {
            baseline: base_s,
            current: slow_path.to_string_lossy().into_owned(),
        }))
        .unwrap_err();
        assert!(err.to_string().contains("regression"), "{err}");

        // Missing or malformed inputs surface readable errors.
        let missing = dir.join("nope.json").to_string_lossy().into_owned();
        assert!(run(&Command::Trace(TraceAction::Summarize {
            path: missing.clone(),
            top: 3,
        }))
        .is_err());
        assert!(run(&Command::Trace(TraceAction::Compare {
            baseline: missing.clone(),
            current: missing,
        }))
        .is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn compare_rejects_empty_and_non_numeric_baselines() {
        let dir = std::env::temp_dir().join(format!("darksil-cli-cmp-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();

        // An empty baseline file is a parse error, not a silent pass.
        let empty = dir.join("empty.json");
        std::fs::write(&empty, "").unwrap();
        let empty_s = empty.to_string_lossy().into_owned();
        let err = run(&Command::Trace(TraceAction::Compare {
            baseline: empty_s.clone(),
            current: empty_s,
        }))
        .unwrap_err();
        assert!(err.to_string().contains("not a valid baseline"), "{err}");

        // Non-numeric seconds (null) are rejected on load.
        let nan = dir.join("nan.json");
        std::fs::write(
            &nan,
            r#"{"schema": "darksil-bench-v1", "jobs": 1, "selection": "fig5",
                "total_seconds": null, "max_total_seconds": 1.0,
                "artefacts": [], "phases": []}"#,
        )
        .unwrap();
        let nan_s = nan.to_string_lossy().into_owned();
        let err = run(&Command::Trace(TraceAction::Compare {
            baseline: nan_s.clone(),
            current: nan_s,
        }))
        .unwrap_err();
        assert!(err.to_string().contains("not a valid baseline"), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn compare_warns_but_passes_when_a_baseline_phase_is_missing() {
        use darksil_obs::{ArtefactTiming, BenchBaseline, SpanRecord, Trace};
        let dir = std::env::temp_dir().join(format!("darksil-cli-miss-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();

        let trace = |names: &[&str]| Trace {
            spans: names
                .iter()
                .enumerate()
                .map(|(i, name)| SpanRecord {
                    id: i as u64 + 1,
                    parent: None,
                    thread: 0,
                    name: (*name).to_string(),
                    start_s: 0.0,
                    seconds: 1.0,
                })
                .collect(),
            counters: Vec::new(),
            observations: Vec::new(),
            hists: Vec::new(),
        };
        let report = |t: &Trace| {
            BenchBaseline::from_trace(
                t,
                1,
                "fig5",
                25.0,
                1.0,
                vec![ArtefactTiming {
                    artefact: "fig5".into(),
                    seconds: 1.0,
                    cache: "miss".into(),
                }],
            )
        };
        let base = report(&trace(&["repro.run", "thermal.steady_state"]));
        let cur = report(&trace(&["repro.run"]));
        assert_eq!(base.missing_phases(&cur), vec!["thermal.steady_state"]);
        let base_path = dir.join("base.json");
        let cur_path = dir.join("cur.json");
        std::fs::write(&base_path, darksil_json::to_string_pretty(&base)).unwrap();
        std::fs::write(&cur_path, darksil_json::to_string_pretty(&cur)).unwrap();
        // The vanished phase is a warning, not a regression failure.
        run(&Command::Trace(TraceAction::Compare {
            baseline: base_path.to_string_lossy().into_owned(),
            current: cur_path.to_string_lossy().into_owned(),
        }))
        .unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn parses_events_and_report() {
        assert_eq!(
            parse(&argv("events summarize")).unwrap(),
            Command::Events(EventsAction::Summarize { path: None })
        );
        assert_eq!(
            parse(&argv("events summarize all")).unwrap(),
            Command::Events(EventsAction::Summarize {
                path: Some("all".into()),
            })
        );
        assert_eq!(
            parse(&argv("events filter boost.transition all --limit 5")).unwrap(),
            Command::Events(EventsAction::Filter {
                path: Some("all".into()),
                kind: "boost.transition".into(),
                limit: 5,
            })
        );
        assert_eq!(
            parse(&argv("report table1 --trace t.json --out r.html")).unwrap(),
            Command::Report {
                run: Some("table1".into()),
                trace: Some("t.json".into()),
                out: Some("r.html".into()),
            }
        );
        assert_eq!(
            parse(&argv("report")).unwrap(),
            Command::Report {
                run: None,
                trace: None,
                out: None,
            }
        );
        assert!(parse(&argv("events")).is_err()); // missing action
        assert!(parse(&argv("events frob")).is_err()); // unknown action
        assert!(parse(&argv("events summarize a b")).is_err());
        assert!(parse(&argv("events filter")).is_err()); // missing kind
        assert!(parse(&argv("events filter k --limit")).is_err());
        assert!(parse(&argv("report a b")).is_err());
        assert!(parse(&argv("report --trace")).is_err());
    }

    /// Serializes tests that drive the process-global event recorder.
    fn recorder_lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
        LOCK.lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// A tiny valid stream: two boost transitions and two core samples.
    fn sample_stream_jsonl() -> String {
        let mut s = darksil_obs::EventStream::default();
        let mut push = |kind: &str, fields: Vec<(String, darksil_obs::EventValue)>| {
            let seq = vec![s.events.len() as u64];
            s.events.push(darksil_obs::EventRecord {
                seq,
                kind: kind.to_string(),
                fields,
            });
        };
        push(
            "boost.transition",
            vec![
                ("t_s".into(), 0.5.into()),
                ("from_ghz".into(), 3.4.into()),
                ("to_ghz".into(), 3.6.into()),
                ("peak_c".into(), 71.0.into()),
                ("reason".into(), "boost".into()),
            ],
        );
        push(
            "thermal.cores",
            vec![
                ("t_s".into(), 0.5.into()),
                ("cores".into(), vec![70.0, 72.0].into()),
                ("threshold_c".into(), 80.0.into()),
            ],
        );
        push(
            "boost.transition",
            vec![
                ("t_s".into(), 1.0.into()),
                ("from_ghz".into(), 3.6.into()),
                ("to_ghz".into(), 3.4.into()),
                ("peak_c".into(), 81.0.into()),
                ("reason".into(), "thermal".into()),
            ],
        );
        push(
            "thermal.cores",
            vec![
                ("t_s".into(), 1.0.into()),
                ("cores".into(), vec![74.0, 81.0].into()),
                ("threshold_c".into(), 80.0.into()),
            ],
        );
        s.to_jsonl()
    }

    #[test]
    fn events_summarize_filter_and_report_roundtrip() {
        let dir = std::env::temp_dir().join(format!("darksil-cli-events-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let events = dir.join("events_smoke.jsonl");
        std::fs::write(&events, sample_stream_jsonl()).unwrap();
        let events_s = events.to_string_lossy().into_owned();

        run(&Command::Events(EventsAction::Summarize {
            path: Some(events_s.clone()),
        }))
        .unwrap();
        run(&Command::Events(EventsAction::Filter {
            path: Some(events_s.clone()),
            kind: "boost.transition".into(),
            limit: 1,
        }))
        .unwrap();

        // The report is written where --out points and is standalone.
        let out = dir.join("report.html");
        run(&Command::Report {
            run: Some(events_s.clone()),
            trace: None,
            out: Some(out.to_string_lossy().into_owned()),
        })
        .unwrap();
        let html = std::fs::read_to_string(&out).unwrap();
        assert!(html.contains("<svg"), "report embeds SVG");
        assert!(html.contains("boost.transition"));
        assert!(!html.contains("<script"), "report is dependency-free");

        // Unknown labels and malformed streams surface readable errors.
        assert!(run(&Command::Events(EventsAction::Summarize {
            path: Some("no-such-run-label".into()),
        }))
        .is_err());
        let bad = dir.join("events_bad.jsonl");
        std::fs::write(&bad, "not jsonl").unwrap();
        assert!(run(&Command::Events(EventsAction::Summarize {
            path: Some(bad.to_string_lossy().into_owned()),
        }))
        .is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn parses_fuzz_and_tournament() {
        assert_eq!(
            parse(&argv("fuzz")).unwrap(),
            Command::Fuzz {
                seed: DEFAULT_FUZZ_SEED,
                cases: DEFAULT_FUZZ_CASES,
                inject: None,
                corpus: DEFAULT_CORPUS_DIR.into(),
                replay: false,
            }
        );
        assert_eq!(
            parse(&argv(
                "fuzz --seed 7 --cases 200 --inject nan --corpus /tmp/c"
            ))
            .unwrap(),
            Command::Fuzz {
                seed: 7,
                cases: 200,
                inject: Some(darksil_arena::InjectMode::Nan),
                corpus: "/tmp/c".into(),
                replay: false,
            }
        );
        assert_eq!(
            parse(&argv("fuzz --replay --corpus tests/corpus")).unwrap(),
            Command::Fuzz {
                seed: DEFAULT_FUZZ_SEED,
                cases: DEFAULT_FUZZ_CASES,
                inject: None,
                corpus: "tests/corpus".into(),
                replay: true,
            }
        );
        assert_eq!(
            parse(&argv("tournament --seed 3 --cases 5 --out /tmp/t")).unwrap(),
            Command::Tournament {
                seed: 3,
                cases: 5,
                out: "/tmp/t".into(),
            }
        );
        assert!(parse(&argv("fuzz --cases 0")).is_err());
        assert!(parse(&argv("fuzz --inject frob")).is_err());
        assert!(parse(&argv("fuzz --inject")).is_err());
        assert!(parse(&argv("fuzz --replay --inject nan")).is_err());
        assert!(parse(&argv("fuzz --frob")).is_err());
        assert!(parse(&argv("tournament --cases 0")).is_err());
        assert!(parse(&argv("tournament --out")).is_err());
    }

    #[test]
    fn parses_sweep() {
        assert_eq!(
            parse(&argv("sweep scenarios/sweeps/fig8_node_parallelism.json")).unwrap(),
            Command::Sweep {
                path: "scenarios/sweeps/fig8_node_parallelism.json".into(),
                out: "results".into(),
                cache_dir: None,
                no_cache: false,
                resume: false,
            }
        );
        assert_eq!(
            parse(&argv(
                "sweep spec.json --out /tmp/s --cache-dir /tmp/c --resume"
            ))
            .unwrap(),
            Command::Sweep {
                path: "spec.json".into(),
                out: "/tmp/s".into(),
                cache_dir: Some("/tmp/c".into()),
                no_cache: false,
                resume: true,
            }
        );
        assert!(parse(&argv("sweep")).is_err());
        assert!(parse(&argv("sweep spec.json --no-cache --cache-dir /tmp/c")).is_err());
        assert!(parse(&argv("sweep spec.json --frob")).is_err());
        assert!(parse(&argv("sweep spec.json --out")).is_err());
    }

    #[test]
    fn sweep_writes_deterministic_artefacts() {
        let _guard = recorder_lock();
        let dir = std::env::temp_dir().join(format!("darksil-cli-sweep-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let spec = dir.join("spec.json");
        std::fs::write(
            &spec,
            r#"{
              "schema": "darksil-sweepspec-v1",
              "name": "cli demo",
              "base": {
                "name": "base",
                "node": 16,
                "cores": 16,
                "workload": [{ "app": "x264", "instances": 1, "threads": 2 }],
                "experiment": { "type": "power_budget", "tdp_watts": 40.0 }
              },
              "axes": [{ "param": "node", "list": [22, 16] }]
            }"#,
        )
        .unwrap();
        let out = dir.join("out");
        run(&Command::Sweep {
            path: spec.to_string_lossy().into_owned(),
            out: out.to_string_lossy().into_owned(),
            cache_dir: Some(dir.join("cache").to_string_lossy().into_owned()),
            no_cache: false,
            resume: false,
        })
        .unwrap();
        let json = std::fs::read_to_string(out.join("sweep_cli_demo.json")).unwrap();
        assert!(json.contains("\"darksil-sweepresult-v1\""), "{json}");
        assert!(json.contains("\"frontier\""));
        let html = std::fs::read_to_string(out.join("sweep_cli_demo.html")).unwrap();
        assert!(html.starts_with("<!DOCTYPE html>"));
        assert!(!html.contains("<script"));
        assert!(out.join("sweep_cli_demo.journal.json").exists());

        // A bad spec surfaces the file and field in the error.
        std::fs::write(&spec, r#"{ "schema": "nope" }"#).unwrap();
        let err = run(&Command::Sweep {
            path: spec.to_string_lossy().into_owned(),
            out: out.to_string_lossy().into_owned(),
            cache_dir: None,
            no_cache: true,
            resume: false,
        })
        .unwrap_err();
        assert!(err.to_string().contains("spec.json"), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn parses_events_verify() {
        assert_eq!(
            parse(&argv("events verify")).unwrap(),
            Command::Events(EventsAction::Verify { path: None })
        );
        assert_eq!(
            parse(&argv("events verify results/events_all.jsonl")).unwrap(),
            Command::Events(EventsAction::Verify {
                path: Some("results/events_all.jsonl".into()),
            })
        );
        assert!(parse(&argv("events verify a b")).is_err());
    }

    #[test]
    fn events_verify_passes_clean_and_fails_poisoned_streams() {
        let dir = std::env::temp_dir().join(format!("darksil-cli-verify-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();

        let clean = dir.join("events_clean.jsonl");
        std::fs::write(&clean, sample_stream_jsonl()).unwrap();
        run(&Command::Events(EventsAction::Verify {
            path: Some(clean.to_string_lossy().into_owned()),
        }))
        .unwrap();

        // A backwards-time stream inside a policy segment must fail,
        // naming the invariant.
        let mut s = darksil_obs::EventStream::default();
        let mut push = |kind: &str, fields: Vec<(String, darksil_obs::EventValue)>| {
            let seq = vec![s.events.len() as u64];
            s.events.push(darksil_obs::EventRecord {
                seq,
                kind: kind.to_string(),
                fields,
            });
        };
        push(
            "boost.run",
            vec![
                ("policy".into(), "boosting".into()),
                ("threshold_c".into(), 80.0.into()),
            ],
        );
        push(
            "thermal.step",
            vec![("t_s".into(), 2.0.into()), ("peak_c".into(), 40.0.into())],
        );
        push(
            "thermal.step",
            vec![("t_s".into(), 1.0.into()), ("peak_c".into(), 40.0.into())],
        );
        let bad = dir.join("events_bad.jsonl");
        std::fs::write(&bad, s.to_jsonl()).unwrap();
        let err = run(&Command::Events(EventsAction::Verify {
            path: Some(bad.to_string_lossy().into_owned()),
        }))
        .unwrap_err();
        assert!(err.to_string().contains("monotone-time"), "{err}");
        assert!(err.to_string().contains("seq [2]"), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn fuzz_inject_caught_shrunk_and_replayed() {
        let _guard = recorder_lock();
        let dir = std::env::temp_dir().join(format!("darksil-cli-fuzz-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let corpus = dir.join("corpus").to_string_lossy().into_owned();

        // An injected NaN must fail the run and persist a reproducer…
        let err = run(&Command::Fuzz {
            seed: 11,
            cases: 2,
            inject: Some(darksil_arena::InjectMode::Nan),
            corpus: corpus.clone(),
            replay: false,
        })
        .unwrap_err();
        assert!(err.to_string().contains("violated"), "{err}");
        let saved: Vec<_> = std::fs::read_dir(&corpus).unwrap().collect();
        assert_eq!(saved.len(), 1, "one reproducer per violated invariant");

        // …which the corpus replay gate then keeps catching.
        run(&Command::Fuzz {
            seed: 11,
            cases: 2,
            inject: None,
            corpus: corpus.clone(),
            replay: true,
        })
        .unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn tournament_writes_deterministic_leaderboard() {
        let _guard = recorder_lock();
        let dir = std::env::temp_dir().join(format!("darksil-cli-tour-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let out = dir.to_string_lossy().into_owned();
        run(&Command::Tournament {
            seed: 5,
            cases: 2,
            out: out.clone(),
        })
        .unwrap();
        let json1 = std::fs::read_to_string(dir.join("leaderboard.json")).unwrap();
        let html = std::fs::read_to_string(dir.join("leaderboard.html")).unwrap();
        assert!(json1.contains("darksil-leaderboard-v1"));
        assert!(html.contains("<!DOCTYPE html>"));
        assert!(!html.contains("<script"));
        // Re-running produces identical bytes.
        run(&Command::Tournament {
            seed: 5,
            cases: 2,
            out,
        })
        .unwrap();
        let json2 = std::fs::read_to_string(dir.join("leaderboard.json")).unwrap();
        assert_eq!(json1, json2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn help_paths() {
        assert_eq!(parse(&[]).unwrap(), Command::Help);
        assert_eq!(parse(&argv("help")).unwrap(), Command::Help);
        assert_eq!(parse(&argv("--help")).unwrap(), Command::Help);
        assert!(USAGE.contains("darksil estimate"));
    }

    #[test]
    fn parses_serve_with_defaults_and_overrides() {
        assert_eq!(
            parse(&argv("serve")).unwrap(),
            Command::Serve {
                addr: "127.0.0.1:8787".to_string(),
                max_inflight: 64,
                tenant_quota: 8,
                state_dir: "state".to_string(),
                deadline_s: 30.0,
                drain_grace_s: 30.0,
            }
        );
        assert_eq!(
            parse(&argv(
                "serve --addr 0.0.0.0:9000 --max-inflight 128 --tenant-quota 4 \
                 --state-dir /tmp/darksil --deadline-s 5.5 --drain-grace-s 0"
            ))
            .unwrap(),
            Command::Serve {
                addr: "0.0.0.0:9000".to_string(),
                max_inflight: 128,
                tenant_quota: 4,
                state_dir: "/tmp/darksil".to_string(),
                deadline_s: 5.5,
                drain_grace_s: 0.0,
            }
        );
    }

    #[test]
    fn serve_rejects_nonsense_limits() {
        assert!(parse(&argv("serve --max-inflight 0")).is_err());
        assert!(parse(&argv("serve --tenant-quota 0")).is_err());
        assert!(parse(&argv("serve --deadline-s 0")).is_err());
        assert!(parse(&argv("serve --deadline-s nan")).is_err());
        assert!(parse(&argv("serve --drain-grace-s -1")).is_err());
        assert!(parse(&argv("serve --addr")).is_err());
        assert!(parse(&argv("serve --bogus")).is_err());
    }

    #[test]
    fn top_parses_defaults_and_flags() {
        assert_eq!(
            parse(&argv("top")).unwrap(),
            Command::Top {
                addr: "127.0.0.1:8787".to_string(),
                interval_s: 2.0,
                once: false,
            }
        );
        assert_eq!(
            parse(&argv("top --addr 10.0.0.1:9 --interval 0.5 --once")).unwrap(),
            Command::Top {
                addr: "10.0.0.1:9".to_string(),
                interval_s: 0.5,
                once: true,
            }
        );
    }

    #[test]
    fn top_rejects_nonsense_intervals() {
        assert!(parse(&argv("top --interval 0")).is_err());
        assert!(parse(&argv("top --interval -1")).is_err());
        assert!(parse(&argv("top --interval nan")).is_err());
        assert!(parse(&argv("top --addr")).is_err());
        assert!(parse(&argv("top --bogus")).is_err());
    }

    #[test]
    fn nonpositive_trace_top_errors_name_the_flag() {
        let err = parse(&argv("trace summarize --top 0")).unwrap_err();
        assert!(err.0.contains("--top"), "{}", err.0);
        let err = parse(&argv("trace summarize --top -3")).unwrap_err();
        assert!(err.0.contains("--top"), "{}", err.0);
    }

    #[test]
    fn missing_events_run_is_a_typed_error_listing_alternatives() {
        let err = resolve_events_path(Some("/nonexistent/darksil-zzz.jsonl")).unwrap_err();
        assert_eq!(err.class(), darksil_robust::ErrorClass::Io);
        let msg = err.to_string();
        assert!(msg.contains("/nonexistent/darksil-zzz.jsonl"), "{msg}");
        assert!(msg.contains("available runs"), "{msg}");
        assert!(
            msg.contains("report"),
            "context names the subcommand: {msg}"
        );
    }

    #[test]
    fn run_help_and_small_commands() {
        run(&Command::Help).unwrap();
        run(&Command::Tsp {
            node: TechnologyNode::Nm16,
            active: Some(40),
        })
        .unwrap();
        run(&Command::Estimate {
            node: TechnologyNode::Nm16,
            app: ParsecApp::Canneal,
            threads: 8,
            freq: None,
            tdp: Some(Watts::new(185.0)),
        })
        .unwrap();
    }
}
