//! Command-line interface of the `darksil` binary.
//!
//! Dependency-free argument parsing split from `main` so every path is
//! unit-testable. Commands:
//!
//! ```text
//! darksil estimate --node <22|16|11|8> --app <name> [--threads N]
//!                  [--freq GHZ] (--tdp WATTS | --thermal)
//! darksil tsp      --node <nm> [--active N]
//! darksil map      --node <nm> --policy <tdpmap|dsrem> [--mix N] [--tdp W]
//! darksil boost    --node <nm> [--app NAME] [--instances N] [--duration S]
//! ```
//!
//! Every subcommand additionally accepts `--jobs N` to size the
//! execution-engine worker pool (default: `DARKSIL_JOBS`, else the
//! available parallelism; `--jobs 1` runs serially).

use std::fmt;

use darksil_boost::{run_boosting, run_constant, PolicyConfig};
use darksil_core::DarkSiliconEstimator;
use darksil_engine::Engine;
use darksil_mapping::{place_patterned, DsRem, Platform, TdpMap};
use darksil_power::TechnologyNode;
use darksil_tsp::TspCalculator;
use darksil_units::{Hertz, Seconds, Watts};
use darksil_workload::{ParsecApp, Workload};

/// A parsed command, ready to run.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// Execute a JSON scenario file.
    Run {
        /// Path to the scenario JSON.
        path: String,
        /// Emit the report as JSON instead of text.
        json: bool,
    },
    /// Dark-silicon estimation under a budget or the thermal constraint.
    Estimate {
        /// Technology node.
        node: TechnologyNode,
        /// Application.
        app: ParsecApp,
        /// Threads per instance.
        threads: usize,
        /// Frequency (defaults to the node's nominal maximum).
        freq: Option<Hertz>,
        /// TDP budget; `None` means the thermal constraint.
        tdp: Option<Watts>,
    },
    /// TSP curve or a single TSP value.
    Tsp {
        /// Technology node.
        node: TechnologyNode,
        /// Specific active-core count; `None` prints the curve.
        active: Option<usize>,
    },
    /// Run a mapping policy on a Parsec mix.
    Map {
        /// Technology node.
        node: TechnologyNode,
        /// Policy name.
        dsrem: bool,
        /// Instances in the mix.
        mix: usize,
        /// Budget.
        tdp: Watts,
    },
    /// Transient boosting vs constant comparison.
    Boost {
        /// Technology node.
        node: TechnologyNode,
        /// Application.
        app: ParsecApp,
        /// 8-thread instances.
        instances: usize,
        /// Simulated seconds.
        duration: f64,
    },
    /// Result-cache maintenance (`results/.cache` by default).
    Cache {
        /// What to do with the cache.
        action: CacheAction,
        /// Cache directory.
        dir: String,
        /// For `verify`: delete corrupt entries instead of only
        /// reporting them.
        evict: bool,
    },
    /// Inspect traces and perf baselines written by `repro --profile`.
    Trace(TraceAction),
    /// Inspect domain event streams written by `repro --events`.
    Events(EventsAction),
    /// Render a self-contained HTML run report from an event stream.
    Report {
        /// Run label or events file; `None` picks the sole
        /// `results/events_*.jsonl`.
        run: Option<String>,
        /// Optional trace file for the span Gantt and histograms
        /// (`results/trace_repro.json` is used when present).
        trace: Option<String>,
        /// Output path; defaults to `results/report_<run>.html`.
        out: Option<String>,
    },
    /// Print usage.
    Help,
}

/// A `darksil events` action.
#[derive(Debug, Clone, PartialEq)]
pub enum EventsAction {
    /// Print per-kind counts and derived statistics of a stream.
    Summarize {
        /// Run label or events file; `None` picks the sole
        /// `results/events_*.jsonl`.
        path: Option<String>,
    },
    /// Print matching events of one kind as JSONL.
    Filter {
        /// Run label or events file; `None` picks the sole
        /// `results/events_*.jsonl`.
        path: Option<String>,
        /// Event kind to keep (e.g. `boost.transition`).
        kind: String,
        /// Maximum number of events to print (0 = unlimited).
        limit: usize,
    },
}

/// Default row cap for `darksil events filter`.
const DEFAULT_FILTER_LIMIT: usize = 20;

/// A `darksil trace` action.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceAction {
    /// Render the hot-path table of a recorded trace.
    Summarize {
        /// Trace file (`results/trace_repro.json` by default).
        path: String,
        /// Number of span rows to print.
        top: usize,
    },
    /// Compare a current `BENCH_repro.json` against a committed
    /// baseline; non-zero exit when any phase exceeds its bound.
    Compare {
        /// Baseline report (the committed reference).
        baseline: String,
        /// Current report (the fresh measurement).
        current: String,
    },
}

/// Default trace path used by `darksil trace summarize`.
pub const DEFAULT_TRACE_PATH: &str = "results/trace_repro.json";

/// Default row count for the summarize hot-path table.
const DEFAULT_SUMMARY_TOP: usize = 12;

/// A `darksil cache` action.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheAction {
    /// Summarise the cache: entry count, bytes, corrupt entries.
    Stats,
    /// Re-check every entry's envelope and payload digest; non-zero
    /// exit when corruption is found (unless `--evict` removes it).
    Verify,
    /// Delete every cache entry.
    Clear,
}

impl CacheAction {
    fn parse(s: &str) -> Result<Self, ParseError> {
        match s {
            "stats" => Ok(Self::Stats),
            "verify" => Ok(Self::Verify),
            "clear" => Ok(Self::Clear),
            other => Err(ParseError(format!(
                "unknown cache action '{other}' (use stats|verify|clear)"
            ))),
        }
    }
}

/// A parse failure with a user-facing message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError(pub String);

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for ParseError {}

/// Usage text printed by `darksil help` and on parse errors.
pub const USAGE: &str = "\
darksil — dark-silicon analysis toolkit (DAC'15 reproduction)

USAGE:
  darksil estimate --node <22|16|11|8> --app <name> [--threads N]
                   [--freq GHZ] (--tdp WATTS | --thermal)
  darksil tsp      --node <nm> [--active N]
  darksil map      --node <nm> --policy <tdpmap|dsrem> [--mix N] [--tdp W]
  darksil boost    --node <nm> [--app NAME] [--instances N] [--duration S]
  darksil run      <scenario.json> [--json]
  darksil cache    <stats|verify|clear> [--dir DIR] [--evict]
  darksil trace    summarize [PATH] [--top N]
  darksil trace    compare <BASELINE> <CURRENT>
  darksil events   summarize [RUN|PATH]
  darksil events   filter <KIND> [RUN|PATH] [--limit N]
  darksil report   [RUN|PATH] [--trace PATH] [--out PATH]
  darksil help

`trace summarize` renders the hot-path table of a trace recorded by
`repro --profile` (default PATH: results/trace_repro.json); `trace
compare` checks a fresh BENCH_repro.json against a committed baseline
and exits non-zero on any regression beyond the recorded bounds.

`events` inspects a domain event stream written by `repro --events`
(per-kind counts, throttle residency, time above threshold; `filter`
prints one kind as JSONL). `report` renders the stream — plus the trace
when available — into a self-contained HTML report with a temperature
timeline, event overlays, a span Gantt and histogram tables, written to
results/report_<run>.html. RUN may be a run label (resolved against
results/events_<RUN>.jsonl) or an explicit file path; with a single
recorded stream in results/ it may be omitted.

Every subcommand also accepts --jobs N (worker threads for parallel
sweeps; default DARKSIL_JOBS or the available parallelism).

apps: x264 blackscholes bodytrack ferret canneal dedup swaptions";

/// Splits `--jobs N` (accepted uniformly, anywhere on the command
/// line) out of argv so the subcommand parsers never see it. Returns
/// the remaining arguments and the requested worker count.
///
/// # Errors
///
/// Returns [`ParseError`] when `--jobs` is missing its value or the
/// value is not a positive integer.
pub fn extract_jobs(args: &[String]) -> Result<(Vec<String>, Option<usize>), ParseError> {
    let mut rest = Vec::with_capacity(args.len());
    let mut jobs = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        if arg == "--jobs" {
            let value = it
                .next()
                .ok_or_else(|| ParseError("--jobs expects a value".into()))?;
            let n = parse_usize("--jobs", value)?;
            if n == 0 {
                return Err(ParseError("--jobs expects a positive integer".into()));
            }
            jobs = Some(n);
        } else {
            rest.push(arg.clone());
        }
    }
    Ok((rest, jobs))
}

fn parse_node(s: &str) -> Result<TechnologyNode, ParseError> {
    match s {
        "22" => Ok(TechnologyNode::Nm22),
        "16" => Ok(TechnologyNode::Nm16),
        "11" => Ok(TechnologyNode::Nm11),
        "8" => Ok(TechnologyNode::Nm8),
        other => Err(ParseError(format!(
            "unknown node '{other}' (use 22|16|11|8)"
        ))),
    }
}

fn parse_app(s: &str) -> Result<ParsecApp, ParseError> {
    ParsecApp::ALL
        .iter()
        .find(|a| a.name() == s)
        .copied()
        .ok_or_else(|| ParseError(format!("unknown application '{s}'")))
}

fn parse_f64(flag: &str, s: &str) -> Result<f64, ParseError> {
    s.parse()
        .map_err(|_| ParseError(format!("{flag} expects a number, got '{s}'")))
}

fn parse_usize(flag: &str, s: &str) -> Result<usize, ParseError> {
    s.parse()
        .map_err(|_| ParseError(format!("{flag} expects an integer, got '{s}'")))
}

/// Parses argv (without the program name) into a [`Command`].
///
/// # Errors
///
/// Returns [`ParseError`] with a user-facing message for unknown
/// commands, flags, values, or missing required arguments.
pub fn parse(args: &[String]) -> Result<Command, ParseError> {
    let mut it = args.iter();
    let Some(cmd) = it.next() else {
        return Ok(Command::Help);
    };
    if cmd == "run" {
        let mut path = None;
        let mut json = false;
        for arg in it {
            match arg.as_str() {
                "--json" => json = true,
                p if path.is_none() && !p.starts_with('-') => path = Some(p.to_string()),
                other => return Err(ParseError(format!("unknown argument '{other}'"))),
            }
        }
        let path = path.ok_or_else(|| ParseError("run expects a scenario file".into()))?;
        return Ok(Command::Run { path, json });
    }
    if cmd == "cache" {
        let action =
            CacheAction::parse(it.next().ok_or_else(|| {
                ParseError("cache expects an action (stats|verify|clear)".into())
            })?)?;
        let mut dir = darksil_engine::DEFAULT_CACHE_DIR.to_string();
        let mut evict = false;
        while let Some(arg) = it.next() {
            match arg.as_str() {
                "--dir" => {
                    dir = it
                        .next()
                        .cloned()
                        .ok_or_else(|| ParseError("--dir expects a value".into()))?;
                }
                "--evict" => evict = true,
                other => return Err(ParseError(format!("unknown argument '{other}'"))),
            }
        }
        if evict && action != CacheAction::Verify {
            return Err(ParseError("--evict only applies to cache verify".into()));
        }
        return Ok(Command::Cache { action, dir, evict });
    }
    if cmd == "trace" {
        return parse_trace(&mut it);
    }
    if cmd == "events" {
        return parse_events(&mut it);
    }
    if cmd == "report" {
        return parse_report(&mut it);
    }
    let mut node = None;
    let mut app = None;
    let mut threads = 8_usize;
    let mut freq = None;
    let mut tdp = None;
    let mut thermal = false;
    let mut active = None;
    let mut policy = None;
    let mut mix = 14_usize;
    let mut instances = 12_usize;
    let mut duration = 40.0_f64;

    let next_value = |flag: &str, it: &mut std::slice::Iter<'_, String>| {
        it.next()
            .cloned()
            .ok_or_else(|| ParseError(format!("{flag} expects a value")))
    };

    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--node" => node = Some(parse_node(&next_value("--node", &mut it)?)?),
            "--app" => app = Some(parse_app(&next_value("--app", &mut it)?)?),
            "--threads" => {
                threads = parse_usize("--threads", &next_value("--threads", &mut it)?)?;
            }
            "--freq" => {
                freq = Some(Hertz::from_ghz(parse_f64(
                    "--freq",
                    &next_value("--freq", &mut it)?,
                )?));
            }
            "--tdp" => {
                tdp = Some(Watts::new(parse_f64(
                    "--tdp",
                    &next_value("--tdp", &mut it)?,
                )?));
            }
            "--thermal" => thermal = true,
            "--active" => {
                active = Some(parse_usize("--active", &next_value("--active", &mut it)?)?);
            }
            "--policy" => policy = Some(next_value("--policy", &mut it)?),
            "--mix" => mix = parse_usize("--mix", &next_value("--mix", &mut it)?)?,
            "--instances" => {
                instances = parse_usize("--instances", &next_value("--instances", &mut it)?)?;
            }
            "--duration" => {
                duration = parse_f64("--duration", &next_value("--duration", &mut it)?)?;
            }
            other => return Err(ParseError(format!("unknown flag '{other}'"))),
        }
    }

    let require_node =
        |node: Option<TechnologyNode>| node.ok_or_else(|| ParseError("--node is required".into()));

    match cmd.as_str() {
        "estimate" => {
            let node = require_node(node)?;
            let app = app.ok_or_else(|| ParseError("--app is required".into()))?;
            if tdp.is_none() && !thermal {
                return Err(ParseError("pass --tdp WATTS or --thermal".into()));
            }
            if tdp.is_some() && thermal {
                return Err(ParseError(
                    "--tdp and --thermal are mutually exclusive".into(),
                ));
            }
            Ok(Command::Estimate {
                node,
                app,
                threads,
                freq,
                tdp,
            })
        }
        "tsp" => Ok(Command::Tsp {
            node: require_node(node)?,
            active,
        }),
        "map" => {
            let node = require_node(node)?;
            let policy = policy.ok_or_else(|| ParseError("--policy is required".into()))?;
            let dsrem = match policy.as_str() {
                "dsrem" => true,
                "tdpmap" => false,
                other => {
                    return Err(ParseError(format!(
                        "unknown policy '{other}' (use tdpmap|dsrem)"
                    )))
                }
            };
            Ok(Command::Map {
                node,
                dsrem,
                mix,
                tdp: tdp.unwrap_or(Watts::new(185.0)),
            })
        }
        "boost" => Ok(Command::Boost {
            node: require_node(node)?,
            app: app.unwrap_or(ParsecApp::X264),
            instances,
            duration,
        }),
        "help" | "--help" | "-h" => Ok(Command::Help),
        other => Err(ParseError(format!("unknown command '{other}'"))),
    }
}

/// Parses the arguments after `darksil trace`.
fn parse_trace(it: &mut std::slice::Iter<'_, String>) -> Result<Command, ParseError> {
    let action = it
        .next()
        .ok_or_else(|| ParseError("trace expects an action (summarize|compare)".into()))?;
    match action.as_str() {
        "summarize" => {
            let mut path = None;
            let mut top = DEFAULT_SUMMARY_TOP;
            while let Some(arg) = it.next() {
                match arg.as_str() {
                    "--top" => {
                        let value = it
                            .next()
                            .ok_or_else(|| ParseError("--top expects a value".into()))?;
                        top = parse_usize("--top", value)?;
                        if top == 0 {
                            return Err(ParseError("--top expects a positive integer".into()));
                        }
                    }
                    p if path.is_none() && !p.starts_with('-') => path = Some(p.to_string()),
                    other => return Err(ParseError(format!("unknown argument '{other}'"))),
                }
            }
            Ok(Command::Trace(TraceAction::Summarize {
                path: path.unwrap_or_else(|| DEFAULT_TRACE_PATH.to_string()),
                top,
            }))
        }
        "compare" => {
            let mut paths = Vec::new();
            for arg in it {
                if arg.starts_with('-') {
                    return Err(ParseError(format!("unknown argument '{arg}'")));
                }
                paths.push(arg.clone());
            }
            if paths.len() != 2 {
                return Err(ParseError(
                    "trace compare expects exactly two files: <BASELINE> <CURRENT>".into(),
                ));
            }
            let mut paths = paths.into_iter();
            let (Some(baseline), Some(current)) = (paths.next(), paths.next()) else {
                return Err(ParseError("trace compare expects two files".into()));
            };
            Ok(Command::Trace(TraceAction::Compare { baseline, current }))
        }
        other => Err(ParseError(format!(
            "unknown trace action '{other}' (use summarize|compare)"
        ))),
    }
}

/// Parses the arguments after `darksil events`.
fn parse_events(it: &mut std::slice::Iter<'_, String>) -> Result<Command, ParseError> {
    let action = it
        .next()
        .ok_or_else(|| ParseError("events expects an action (summarize|filter)".into()))?;
    match action.as_str() {
        "summarize" => {
            let mut path = None;
            for arg in it {
                if path.is_none() && !arg.starts_with('-') {
                    path = Some(arg.clone());
                } else {
                    return Err(ParseError(format!("unknown argument '{arg}'")));
                }
            }
            Ok(Command::Events(EventsAction::Summarize { path }))
        }
        "filter" => {
            let kind = it
                .next()
                .cloned()
                .ok_or_else(|| ParseError("events filter expects an event kind".into()))?;
            if kind.starts_with('-') {
                return Err(ParseError("events filter expects an event kind".into()));
            }
            let mut path = None;
            let mut limit = DEFAULT_FILTER_LIMIT;
            while let Some(arg) = it.next() {
                match arg.as_str() {
                    "--limit" => {
                        let value = it
                            .next()
                            .ok_or_else(|| ParseError("--limit expects a value".into()))?;
                        limit = parse_usize("--limit", value)?;
                    }
                    p if path.is_none() && !p.starts_with('-') => path = Some(p.to_string()),
                    other => return Err(ParseError(format!("unknown argument '{other}'"))),
                }
            }
            Ok(Command::Events(EventsAction::Filter { path, kind, limit }))
        }
        other => Err(ParseError(format!(
            "unknown events action '{other}' (use summarize|filter)"
        ))),
    }
}

/// Parses the arguments after `darksil report`.
fn parse_report(it: &mut std::slice::Iter<'_, String>) -> Result<Command, ParseError> {
    let mut run = None;
    let mut trace = None;
    let mut out = None;
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--trace" => {
                trace = Some(
                    it.next()
                        .cloned()
                        .ok_or_else(|| ParseError("--trace expects a value".into()))?,
                );
            }
            "--out" => {
                out = Some(
                    it.next()
                        .cloned()
                        .ok_or_else(|| ParseError("--out expects a value".into()))?,
                );
            }
            p if run.is_none() && !p.starts_with('-') => run = Some(p.to_string()),
            other => return Err(ParseError(format!("unknown argument '{other}'"))),
        }
    }
    Ok(Command::Report { run, trace, out })
}

/// Executes a command, writing human-readable output to stdout.
///
/// # Errors
///
/// Propagates estimation/simulation failures as boxed errors.
pub fn run(command: &Command) -> Result<(), Box<dyn std::error::Error>> {
    match command {
        Command::Help => println!("{USAGE}"),
        Command::Run { path, json } => {
            let scenario = crate::scenario::parse_scenario_file(std::path::Path::new(path))?;
            let report = crate::scenario::run_scenario(&scenario)?;
            if *json {
                println!("{}", darksil_json::to_string_pretty(&report));
            } else {
                println!("{}:", report.name);
                println!(
                    "  {} active cores ({:.0}% dark), {:.0} GIPS, {:.0} W, peak {:.1} °C{}",
                    report.active_cores,
                    100.0 * report.dark_fraction,
                    report.total_gips,
                    report.total_power_w,
                    report.peak_temperature_c,
                    if report.thermal_violation {
                        " (EXCEEDS T_DTM)"
                    } else {
                        ""
                    }
                );
                for note in &report.notes {
                    println!("  - {note}");
                }
            }
        }
        Command::Estimate {
            node,
            app,
            threads,
            freq,
            tdp,
        } => {
            let est = DarkSiliconEstimator::for_node(*node)?;
            let f = freq.unwrap_or(node.nominal_max_frequency());
            let e = match tdp {
                Some(budget) => est.under_power_budget(*app, *threads, f, *budget)?,
                None => est.under_temperature_constraint(*app, *threads, f)?,
            };
            println!(
                "{node} / {app} × {threads} threads @ {:.1} GHz ({})",
                f.as_ghz(),
                match tdp {
                    Some(b) => format!("TDP {b}"),
                    None => "thermal constraint 80 °C".into(),
                }
            );
            println!(
                "  {} active / {} dark ({:.0}% dark)",
                e.active_cores,
                e.dark_cores,
                100.0 * e.dark_fraction
            );
            println!(
                "  {:.0} W total, peak {:.1} °C{}, {:.0} GIPS",
                e.total_power.value(),
                e.peak_temperature.value(),
                if e.thermal_violation {
                    " (EXCEEDS T_DTM)"
                } else {
                    ""
                },
                e.total_gips.value()
            );
        }
        Command::Tsp { node, active } => {
            let platform = Platform::for_node(*node)?;
            let tsp =
                TspCalculator::new(platform.floorplan(), platform.thermal(), platform.t_dtm());
            let counts: Vec<usize> = match active {
                Some(m) => vec![*m],
                None => {
                    let n = platform.core_count();
                    (1..=10).map(|i| i * n / 10).collect()
                }
            };
            println!("{node}: TSP (worst-case mappings, T_DTM = 80 °C)");
            println!("  active  per-core[W]  total[W]");
            // Each worst-case TSP solve is independent — fan the curve
            // out over the engine; rows come back in count order.
            let rows = Engine::auto().try_par_map(counts, |m| Ok((m, tsp.worst_case(m)?)))?;
            for (m, per) in rows {
                println!(
                    "  {m:>6}  {:>10.2}  {:>8.0}",
                    per.value(),
                    per.value() * m as f64
                );
            }
        }
        Command::Map {
            node,
            dsrem,
            mix,
            tdp,
        } => {
            let platform = Platform::for_node(*node)?;
            let workload = Workload::parsec_mix(*mix, 8)?;
            let mapping = if *dsrem {
                DsRem::new(*tdp)?.map(&platform, &workload)?
            } else {
                TdpMap::new(*tdp).map(&platform, &workload)?
            };
            let peak = mapping.peak_temperature(&platform)?;
            println!(
                "{node} / {} / mix of {mix} × 8t under {tdp}:",
                if *dsrem { "DsRem" } else { "TDPmap" }
            );
            println!(
                "  {} active cores ({:.0}% dark), {:.0} GIPS, peak {:.1} °C",
                mapping.active_core_count(),
                100.0 * mapping.dark_fraction(),
                mapping.total_gips(&platform).value(),
                peak.value()
            );
        }
        Command::Boost {
            node,
            app,
            instances,
            duration,
        } => {
            let platform = Platform::for_node(*node)?
                .with_boost_levels(node.nominal_max_frequency() * 1.25)?;
            let workload = Workload::uniform(*app, *instances, 8)?;
            let mapping = place_patterned(platform.floorplan(), &workload, platform.max_level())?;
            let config = PolicyConfig {
                period: Seconds::new(0.01),
                ..PolicyConfig::default()
            };
            let horizon = Seconds::new(*duration);
            let boost = run_boosting(&platform, &mapping, horizon, &config)?;
            let constant = run_constant(&platform, &mapping, horizon, &config)?;
            println!("{node} / {app} × {instances} instances × 8t, {duration} s simulated:");
            println!(
                "  boosting: avg {:.0} GIPS, peak {:.1} °C, peak {:.0} W",
                boost.average_gips_tail(0.5).value(),
                boost.peak_temperature().value(),
                boost.peak_power().value()
            );
            println!(
                "  constant: avg {:.0} GIPS, peak {:.1} °C, peak {:.0} W",
                constant.average_gips_tail(0.5).value(),
                constant.peak_temperature().value(),
                constant.peak_power().value()
            );
        }
        Command::Cache { action, dir, evict } => run_cache(*action, dir, *evict)?,
        Command::Trace(action) => run_trace(action)?,
        Command::Events(action) => run_events(action)?,
        Command::Report { run, trace, out } => {
            run_report(run.as_deref(), trace.as_deref(), out.as_deref())?;
        }
    }
    Ok(())
}

/// Resolves a `RUN|PATH` argument to an events file: an existing path
/// is taken as-is, otherwise the run label is looked up as
/// `results/events_<RUN>.jsonl`; with no argument the sole
/// `results/events_*.jsonl` is picked.
fn resolve_events_path(spec: Option<&str>) -> Result<std::path::PathBuf, ParseError> {
    use std::path::{Path, PathBuf};
    if let Some(spec) = spec {
        let direct = PathBuf::from(spec);
        if direct.is_file() {
            return Ok(direct);
        }
        let labelled = Path::new("results").join(format!("events_{spec}.jsonl"));
        if labelled.is_file() {
            return Ok(labelled);
        }
        return Err(ParseError(format!(
            "no events file '{spec}' (looked for the path itself and {})",
            labelled.display()
        )));
    }
    let mut found: Vec<PathBuf> = Vec::new();
    if let Ok(entries) = std::fs::read_dir("results") {
        for entry in entries.flatten() {
            let name = entry.file_name().to_string_lossy().into_owned();
            if name.starts_with("events_") && name.ends_with(".jsonl") {
                found.push(entry.path());
            }
        }
    }
    found.sort();
    match found.len() {
        0 => Err(ParseError(
            "no results/events_*.jsonl found — record one with `repro --events`".into(),
        )),
        1 => Ok(found.remove(0)),
        _ => Err(ParseError(format!(
            "{} event streams in results/ — name one: {}",
            found.len(),
            found
                .iter()
                .map(|p| p.display().to_string())
                .collect::<Vec<_>>()
                .join(", ")
        ))),
    }
}

/// Loads an event stream from a resolved path.
fn load_events(path: &std::path::Path) -> Result<darksil_obs::EventStream, ParseError> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| ParseError(format!("cannot read events '{}': {e}", path.display())))?;
    darksil_obs::EventStream::from_jsonl(&text).map_err(|e| {
        ParseError(format!(
            "'{}' is not a valid event stream: {e}",
            path.display()
        ))
    })
}

/// The run label an events file was recorded under (`events_X.jsonl`
/// → `X`), used to name the report output.
fn run_label(path: &std::path::Path) -> String {
    let stem = path
        .file_stem()
        .map_or_else(|| "run".into(), |s| s.to_string_lossy().into_owned());
    stem.strip_prefix("events_").unwrap_or(&stem).to_string()
}

/// Executes `darksil events summarize|filter`.
fn run_events(action: &EventsAction) -> Result<(), Box<dyn std::error::Error>> {
    match action {
        EventsAction::Summarize { path } => {
            let path = resolve_events_path(path.as_deref())?;
            let stream = load_events(&path)?;
            println!("events {}:", path.display());
            println!("{}", stream.render_summary());
        }
        EventsAction::Filter { path, kind, limit } => {
            let path = resolve_events_path(path.as_deref())?;
            let stream = load_events(&path)?;
            let mut shown = 0_usize;
            let mut total = 0_usize;
            for event in stream.of_kind(kind) {
                total += 1;
                if *limit == 0 || shown < *limit {
                    println!("{}", event.to_jsonl_line());
                    shown += 1;
                }
            }
            if total == 0 {
                println!("no '{kind}' events in {}", path.display());
            } else if shown < total {
                println!("… {} more ({total} total; raise --limit)", total - shown);
            }
        }
    }
    Ok(())
}

/// Executes `darksil report`: renders the event stream (plus the trace
/// when available) into a self-contained HTML file.
fn run_report(
    run: Option<&str>,
    trace: Option<&str>,
    out: Option<&str>,
) -> Result<(), Box<dyn std::error::Error>> {
    let events_path = resolve_events_path(run)?;
    let stream = load_events(&events_path)?;
    let label = run_label(&events_path);
    let trace_loaded: Option<darksil_obs::Trace> = match trace {
        Some(path) => {
            let text = std::fs::read_to_string(path)
                .map_err(|e| ParseError(format!("cannot read trace '{path}': {e}")))?;
            Some(
                darksil_json::from_str(&text)
                    .map_err(|e| ParseError(format!("'{path}' is not a valid trace: {e}")))?,
            )
        }
        // No explicit trace: use the default profile output when it
        // exists, quietly skipping the Gantt/histograms otherwise.
        None => std::fs::read_to_string(DEFAULT_TRACE_PATH)
            .ok()
            .and_then(|text| darksil_json::from_str(&text).ok()),
    };
    let html = darksil_obs::render_report(&label, &stream, trace_loaded.as_ref());
    let out_path = out.map_or_else(
        || std::path::Path::new("results").join(format!("report_{label}.html")),
        std::path::PathBuf::from,
    );
    if let Some(parent) = out_path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    std::fs::write(&out_path, html)?;
    println!(
        "[wrote {} ({} events{})]",
        out_path.display(),
        stream.events.len(),
        if trace_loaded.is_some() {
            ", with trace"
        } else {
            ", no trace"
        }
    );
    Ok(())
}

/// Executes `darksil trace summarize|compare`.
fn run_trace(action: &TraceAction) -> Result<(), Box<dyn std::error::Error>> {
    match action {
        TraceAction::Summarize { path, top } => {
            let text = std::fs::read_to_string(path)
                .map_err(|e| ParseError(format!("cannot read trace '{path}': {e}")))?;
            let trace: darksil_obs::Trace = darksil_json::from_str(&text)
                .map_err(|e| ParseError(format!("'{path}' is not a valid trace: {e}")))?;
            println!("trace {path}:");
            println!("{}", trace.render_summary(*top));
            Ok(())
        }
        TraceAction::Compare { baseline, current } => {
            let load = |path: &str| -> Result<darksil_obs::BenchBaseline, ParseError> {
                let text = std::fs::read_to_string(path)
                    .map_err(|e| ParseError(format!("cannot read baseline '{path}': {e}")))?;
                darksil_json::from_str(&text)
                    .map_err(|e| ParseError(format!("'{path}' is not a valid baseline: {e}")))
            };
            let base = load(baseline)?;
            let cur = load(current)?;
            let regressions = base.regressions_in(&cur);
            println!(
                "baseline {baseline} (selection '{}', jobs {}) vs {current} (selection '{}', jobs {}):",
                base.selection, base.jobs, cur.selection, cur.jobs
            );
            println!(
                "  total: {:.2} s (bound {:.2} s)",
                cur.total_seconds, base.max_total_seconds
            );
            // A phase that vanished from the current run is suspicious
            // (renamed span, dead instrumentation) but not a regression:
            // warn without failing.
            for span in base.missing_phases(&cur) {
                println!("  warning: phase `{span}` missing from current run");
            }
            if regressions.is_empty() {
                println!("  no regressions beyond recorded bounds");
                return Ok(());
            }
            for regression in &regressions {
                println!("  REGRESSION {regression}");
            }
            Err(Box::new(ParseError(format!(
                "{} perf regression(s) beyond baseline bounds",
                regressions.len()
            ))))
        }
    }
}

/// Executes `darksil cache <action>` against `dir`.
fn run_cache(
    action: CacheAction,
    dir: &str,
    evict: bool,
) -> Result<(), Box<dyn std::error::Error>> {
    use darksil_engine::{clear_dir, evict_corrupt, scan_dir, EntryCondition};
    let dir = std::path::Path::new(dir);
    if action == CacheAction::Clear {
        let removed = clear_dir(dir)?;
        println!("cache {}: removed {removed} entries", dir.display());
        return Ok(());
    }
    let reports = scan_dir(dir)?;
    let bytes: u64 = reports.iter().map(|r| r.bytes).sum();
    let corrupt: Vec<_> = reports.iter().filter(|r| !r.is_valid()).collect();
    println!(
        "cache {}: {} entries, {} bytes, {} corrupt",
        dir.display(),
        reports.len(),
        bytes,
        corrupt.len()
    );
    if action == CacheAction::Stats {
        return Ok(());
    }
    for report in &corrupt {
        if let EntryCondition::Corrupt(reason) = &report.condition {
            println!("  corrupt: {} — {reason}", report.file_name);
        }
    }
    if corrupt.is_empty() {
        println!("  all entries verified");
        return Ok(());
    }
    if evict {
        let removed = evict_corrupt(dir, &reports)?;
        println!("  evicted {removed} corrupt entries");
        Ok(())
    } else {
        Err(Box::new(ParseError(format!(
            "{} corrupt cache entries found (re-run with --evict to remove them)",
            corrupt.len()
        ))))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(str::to_string).collect()
    }

    #[test]
    fn parses_estimate() {
        let cmd = parse(&argv(
            "estimate --node 16 --app swaptions --threads 8 --freq 3.6 --tdp 185",
        ))
        .unwrap();
        assert_eq!(
            cmd,
            Command::Estimate {
                node: TechnologyNode::Nm16,
                app: ParsecApp::Swaptions,
                threads: 8,
                freq: Some(Hertz::from_ghz(3.6)),
                tdp: Some(Watts::new(185.0)),
            }
        );
    }

    #[test]
    fn estimate_thermal_mode() {
        let cmd = parse(&argv("estimate --node 11 --app canneal --thermal")).unwrap();
        match cmd {
            Command::Estimate { node, app, tdp, .. } => {
                assert_eq!(node, TechnologyNode::Nm11);
                assert_eq!(app, ParsecApp::Canneal);
                assert_eq!(tdp, None);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn estimate_requires_a_constraint() {
        let err = parse(&argv("estimate --node 16 --app x264")).unwrap_err();
        assert!(err.to_string().contains("--tdp"));
        let err = parse(&argv("estimate --node 16 --app x264 --tdp 185 --thermal")).unwrap_err();
        assert!(err.to_string().contains("mutually exclusive"));
    }

    #[test]
    fn parses_tsp_and_map_and_boost() {
        assert_eq!(
            parse(&argv("tsp --node 8 --active 200")).unwrap(),
            Command::Tsp {
                node: TechnologyNode::Nm8,
                active: Some(200),
            }
        );
        assert_eq!(
            parse(&argv("map --node 16 --policy dsrem --mix 10 --tdp 150")).unwrap(),
            Command::Map {
                node: TechnologyNode::Nm16,
                dsrem: true,
                mix: 10,
                tdp: Watts::new(150.0),
            }
        );
        match parse(&argv("boost --node 16 --instances 6 --duration 20")).unwrap() {
            Command::Boost {
                instances,
                duration,
                app,
                ..
            } => {
                assert_eq!(instances, 6);
                assert_eq!(duration, 20.0);
                assert_eq!(app, ParsecApp::X264);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn bad_inputs_are_reported() {
        assert!(parse(&argv("estimate --node 14 --app x264 --tdp 1")).is_err());
        assert!(parse(&argv("estimate --node 16 --app doom --tdp 1")).is_err());
        assert!(parse(&argv("map --node 16 --policy magic")).is_err());
        assert!(parse(&argv("frobnicate")).is_err());
        assert!(parse(&argv("tsp")).is_err()); // missing --node
        assert!(parse(&argv("tsp --node")).is_err()); // dangling value
        assert!(parse(&argv("boost --node 16 --duration many")).is_err());
    }

    #[test]
    fn parses_run() {
        assert_eq!(
            parse(&argv("run scenario.json --json")).unwrap(),
            Command::Run {
                path: "scenario.json".into(),
                json: true,
            }
        );
        assert!(parse(&argv("run")).is_err());
        assert!(parse(&argv("run a.json --frob")).is_err());
    }

    #[test]
    fn jobs_flag_is_stripped_uniformly() {
        let (rest, jobs) = extract_jobs(&argv("tsp --jobs 4 --node 16")).unwrap();
        assert_eq!(jobs, Some(4));
        assert_eq!(rest, argv("tsp --node 16"));
        assert_eq!(
            parse(&rest).unwrap(),
            Command::Tsp {
                node: TechnologyNode::Nm16,
                active: None,
            }
        );
        // Trailing position and the run subcommand work too.
        let (rest, jobs) = extract_jobs(&argv("run scenario.json --json --jobs 2")).unwrap();
        assert_eq!(jobs, Some(2));
        assert!(parse(&rest).is_ok());
        // Absent flag passes argv through untouched.
        let (rest, jobs) = extract_jobs(&argv("help")).unwrap();
        assert_eq!(jobs, None);
        assert_eq!(rest, argv("help"));
    }

    #[test]
    fn jobs_flag_rejects_bad_values() {
        assert!(extract_jobs(&argv("tsp --node 16 --jobs")).is_err());
        assert!(extract_jobs(&argv("tsp --node 16 --jobs zero")).is_err());
        assert!(extract_jobs(&argv("tsp --node 16 --jobs 0")).is_err());
        // Without the pre-strip, subcommand parsers reject the flag.
        assert!(parse(&argv("tsp --node 16 --jobs 4")).is_err());
    }

    #[test]
    fn parses_cache() {
        assert_eq!(
            parse(&argv("cache stats")).unwrap(),
            Command::Cache {
                action: CacheAction::Stats,
                dir: darksil_engine::DEFAULT_CACHE_DIR.into(),
                evict: false,
            }
        );
        assert_eq!(
            parse(&argv("cache verify --dir /tmp/c --evict")).unwrap(),
            Command::Cache {
                action: CacheAction::Verify,
                dir: "/tmp/c".into(),
                evict: true,
            }
        );
        assert!(parse(&argv("cache")).is_err()); // missing action
        assert!(parse(&argv("cache defrag")).is_err()); // unknown action
        assert!(parse(&argv("cache stats --dir")).is_err()); // dangling value
        assert!(parse(&argv("cache clear --evict")).is_err()); // evict needs verify
    }

    #[test]
    fn cache_command_reports_and_evicts_corruption() {
        let dir = std::env::temp_dir().join(format!("darksil-cli-cache-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("broken.json"), "{ not json").unwrap();
        let dir_s = dir.to_string_lossy().into_owned();

        // Stats never fails, verify without --evict does, verify with
        // --evict removes the bad entry, and clear empties the rest.
        run(&Command::Cache {
            action: CacheAction::Stats,
            dir: dir_s.clone(),
            evict: false,
        })
        .unwrap();
        let err = run(&Command::Cache {
            action: CacheAction::Verify,
            dir: dir_s.clone(),
            evict: false,
        })
        .unwrap_err();
        assert!(err.to_string().contains("--evict"));
        run(&Command::Cache {
            action: CacheAction::Verify,
            dir: dir_s.clone(),
            evict: true,
        })
        .unwrap();
        assert!(!dir.join("broken.json").exists());
        run(&Command::Cache {
            action: CacheAction::Clear,
            dir: dir_s,
            evict: false,
        })
        .unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn parses_trace() {
        assert_eq!(
            parse(&argv("trace summarize")).unwrap(),
            Command::Trace(TraceAction::Summarize {
                path: DEFAULT_TRACE_PATH.into(),
                top: DEFAULT_SUMMARY_TOP,
            })
        );
        assert_eq!(
            parse(&argv("trace summarize my_trace.json --top 5")).unwrap(),
            Command::Trace(TraceAction::Summarize {
                path: "my_trace.json".into(),
                top: 5,
            })
        );
        assert_eq!(
            parse(&argv("trace compare BENCH_base.json BENCH_new.json")).unwrap(),
            Command::Trace(TraceAction::Compare {
                baseline: "BENCH_base.json".into(),
                current: "BENCH_new.json".into(),
            })
        );
        assert!(parse(&argv("trace")).is_err()); // missing action
        assert!(parse(&argv("trace frob")).is_err()); // unknown action
        assert!(parse(&argv("trace summarize --top")).is_err()); // dangling
        assert!(parse(&argv("trace summarize --top 0")).is_err());
        assert!(parse(&argv("trace summarize a.json b.json")).is_err());
        assert!(parse(&argv("trace compare one.json")).is_err());
        assert!(parse(&argv("trace compare a b c")).is_err());
        assert!(parse(&argv("trace compare a --frob")).is_err());
    }

    #[test]
    fn trace_summarize_and_compare_roundtrip() {
        use darksil_obs::{ArtefactTiming, BenchBaseline, SpanRecord, Trace};
        let dir = std::env::temp_dir().join(format!("darksil-cli-trace-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();

        let trace = Trace {
            spans: vec![
                SpanRecord {
                    id: 1,
                    parent: None,
                    thread: 0,
                    name: "repro.run".into(),
                    start_s: 0.0,
                    seconds: 2.0,
                },
                SpanRecord {
                    id: 2,
                    parent: Some(1),
                    thread: 0,
                    name: "artefact.fig5".into(),
                    start_s: 0.1,
                    seconds: 1.5,
                },
            ],
            counters: vec![
                ("engine.cache.hit".into(), 3),
                ("engine.cache.miss".into(), 1),
            ],
            observations: Vec::new(),
            hists: Vec::new(),
        };
        let trace_path = dir.join("trace.json");
        std::fs::write(&trace_path, darksil_json::to_string_pretty(&trace)).unwrap();
        run(&Command::Trace(TraceAction::Summarize {
            path: trace_path.to_string_lossy().into_owned(),
            top: 10,
        }))
        .unwrap();

        // A report compared against itself passes; inflating the total
        // beyond the recorded bound is caught as a regression.
        let base = BenchBaseline::from_trace(
            &trace,
            2,
            "fig5",
            25.0,
            2.0,
            vec![ArtefactTiming {
                artefact: "fig5".into(),
                seconds: 1.5,
                cache: "miss".into(),
            }],
        );
        let base_path = dir.join("base.json");
        std::fs::write(&base_path, darksil_json::to_string_pretty(&base)).unwrap();
        let base_s = base_path.to_string_lossy().into_owned();
        run(&Command::Trace(TraceAction::Compare {
            baseline: base_s.clone(),
            current: base_s.clone(),
        }))
        .unwrap();

        let mut slow = base.clone();
        slow.total_seconds = base.max_total_seconds + 1.0;
        let slow_path = dir.join("slow.json");
        std::fs::write(&slow_path, darksil_json::to_string_pretty(&slow)).unwrap();
        let err = run(&Command::Trace(TraceAction::Compare {
            baseline: base_s,
            current: slow_path.to_string_lossy().into_owned(),
        }))
        .unwrap_err();
        assert!(err.to_string().contains("regression"), "{err}");

        // Missing or malformed inputs surface readable errors.
        let missing = dir.join("nope.json").to_string_lossy().into_owned();
        assert!(run(&Command::Trace(TraceAction::Summarize {
            path: missing.clone(),
            top: 3,
        }))
        .is_err());
        assert!(run(&Command::Trace(TraceAction::Compare {
            baseline: missing.clone(),
            current: missing,
        }))
        .is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn compare_rejects_empty_and_non_numeric_baselines() {
        let dir = std::env::temp_dir().join(format!("darksil-cli-cmp-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();

        // An empty baseline file is a parse error, not a silent pass.
        let empty = dir.join("empty.json");
        std::fs::write(&empty, "").unwrap();
        let empty_s = empty.to_string_lossy().into_owned();
        let err = run(&Command::Trace(TraceAction::Compare {
            baseline: empty_s.clone(),
            current: empty_s,
        }))
        .unwrap_err();
        assert!(err.to_string().contains("not a valid baseline"), "{err}");

        // Non-numeric seconds (null) are rejected on load.
        let nan = dir.join("nan.json");
        std::fs::write(
            &nan,
            r#"{"schema": "darksil-bench-v1", "jobs": 1, "selection": "fig5",
                "total_seconds": null, "max_total_seconds": 1.0,
                "artefacts": [], "phases": []}"#,
        )
        .unwrap();
        let nan_s = nan.to_string_lossy().into_owned();
        let err = run(&Command::Trace(TraceAction::Compare {
            baseline: nan_s.clone(),
            current: nan_s,
        }))
        .unwrap_err();
        assert!(err.to_string().contains("not a valid baseline"), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn compare_warns_but_passes_when_a_baseline_phase_is_missing() {
        use darksil_obs::{ArtefactTiming, BenchBaseline, SpanRecord, Trace};
        let dir = std::env::temp_dir().join(format!("darksil-cli-miss-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();

        let trace = |names: &[&str]| Trace {
            spans: names
                .iter()
                .enumerate()
                .map(|(i, name)| SpanRecord {
                    id: i as u64 + 1,
                    parent: None,
                    thread: 0,
                    name: (*name).to_string(),
                    start_s: 0.0,
                    seconds: 1.0,
                })
                .collect(),
            counters: Vec::new(),
            observations: Vec::new(),
            hists: Vec::new(),
        };
        let report = |t: &Trace| {
            BenchBaseline::from_trace(
                t,
                1,
                "fig5",
                25.0,
                1.0,
                vec![ArtefactTiming {
                    artefact: "fig5".into(),
                    seconds: 1.0,
                    cache: "miss".into(),
                }],
            )
        };
        let base = report(&trace(&["repro.run", "thermal.steady_state"]));
        let cur = report(&trace(&["repro.run"]));
        assert_eq!(base.missing_phases(&cur), vec!["thermal.steady_state"]);
        let base_path = dir.join("base.json");
        let cur_path = dir.join("cur.json");
        std::fs::write(&base_path, darksil_json::to_string_pretty(&base)).unwrap();
        std::fs::write(&cur_path, darksil_json::to_string_pretty(&cur)).unwrap();
        // The vanished phase is a warning, not a regression failure.
        run(&Command::Trace(TraceAction::Compare {
            baseline: base_path.to_string_lossy().into_owned(),
            current: cur_path.to_string_lossy().into_owned(),
        }))
        .unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn parses_events_and_report() {
        assert_eq!(
            parse(&argv("events summarize")).unwrap(),
            Command::Events(EventsAction::Summarize { path: None })
        );
        assert_eq!(
            parse(&argv("events summarize all")).unwrap(),
            Command::Events(EventsAction::Summarize {
                path: Some("all".into()),
            })
        );
        assert_eq!(
            parse(&argv("events filter boost.transition all --limit 5")).unwrap(),
            Command::Events(EventsAction::Filter {
                path: Some("all".into()),
                kind: "boost.transition".into(),
                limit: 5,
            })
        );
        assert_eq!(
            parse(&argv("report table1 --trace t.json --out r.html")).unwrap(),
            Command::Report {
                run: Some("table1".into()),
                trace: Some("t.json".into()),
                out: Some("r.html".into()),
            }
        );
        assert_eq!(
            parse(&argv("report")).unwrap(),
            Command::Report {
                run: None,
                trace: None,
                out: None,
            }
        );
        assert!(parse(&argv("events")).is_err()); // missing action
        assert!(parse(&argv("events frob")).is_err()); // unknown action
        assert!(parse(&argv("events summarize a b")).is_err());
        assert!(parse(&argv("events filter")).is_err()); // missing kind
        assert!(parse(&argv("events filter k --limit")).is_err());
        assert!(parse(&argv("report a b")).is_err());
        assert!(parse(&argv("report --trace")).is_err());
    }

    /// A tiny valid stream: two boost transitions and two core samples.
    fn sample_stream_jsonl() -> String {
        let mut s = darksil_obs::EventStream::default();
        let mut push = |kind: &str, fields: Vec<(String, darksil_obs::EventValue)>| {
            let seq = vec![s.events.len() as u64];
            s.events.push(darksil_obs::EventRecord {
                seq,
                kind: kind.to_string(),
                fields,
            });
        };
        push(
            "boost.transition",
            vec![
                ("t_s".into(), 0.5.into()),
                ("from_ghz".into(), 3.4.into()),
                ("to_ghz".into(), 3.6.into()),
                ("peak_c".into(), 71.0.into()),
                ("reason".into(), "boost".into()),
            ],
        );
        push(
            "thermal.cores",
            vec![
                ("t_s".into(), 0.5.into()),
                ("cores".into(), vec![70.0, 72.0].into()),
                ("threshold_c".into(), 80.0.into()),
            ],
        );
        push(
            "boost.transition",
            vec![
                ("t_s".into(), 1.0.into()),
                ("from_ghz".into(), 3.6.into()),
                ("to_ghz".into(), 3.4.into()),
                ("peak_c".into(), 81.0.into()),
                ("reason".into(), "thermal".into()),
            ],
        );
        push(
            "thermal.cores",
            vec![
                ("t_s".into(), 1.0.into()),
                ("cores".into(), vec![74.0, 81.0].into()),
                ("threshold_c".into(), 80.0.into()),
            ],
        );
        s.to_jsonl()
    }

    #[test]
    fn events_summarize_filter_and_report_roundtrip() {
        let dir = std::env::temp_dir().join(format!("darksil-cli-events-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let events = dir.join("events_smoke.jsonl");
        std::fs::write(&events, sample_stream_jsonl()).unwrap();
        let events_s = events.to_string_lossy().into_owned();

        run(&Command::Events(EventsAction::Summarize {
            path: Some(events_s.clone()),
        }))
        .unwrap();
        run(&Command::Events(EventsAction::Filter {
            path: Some(events_s.clone()),
            kind: "boost.transition".into(),
            limit: 1,
        }))
        .unwrap();

        // The report is written where --out points and is standalone.
        let out = dir.join("report.html");
        run(&Command::Report {
            run: Some(events_s.clone()),
            trace: None,
            out: Some(out.to_string_lossy().into_owned()),
        })
        .unwrap();
        let html = std::fs::read_to_string(&out).unwrap();
        assert!(html.contains("<svg"), "report embeds SVG");
        assert!(html.contains("boost.transition"));
        assert!(!html.contains("<script"), "report is dependency-free");

        // Unknown labels and malformed streams surface readable errors.
        assert!(run(&Command::Events(EventsAction::Summarize {
            path: Some("no-such-run-label".into()),
        }))
        .is_err());
        let bad = dir.join("events_bad.jsonl");
        std::fs::write(&bad, "not jsonl").unwrap();
        assert!(run(&Command::Events(EventsAction::Summarize {
            path: Some(bad.to_string_lossy().into_owned()),
        }))
        .is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn help_paths() {
        assert_eq!(parse(&[]).unwrap(), Command::Help);
        assert_eq!(parse(&argv("help")).unwrap(), Command::Help);
        assert_eq!(parse(&argv("--help")).unwrap(), Command::Help);
        assert!(USAGE.contains("darksil estimate"));
    }

    #[test]
    fn run_help_and_small_commands() {
        run(&Command::Help).unwrap();
        run(&Command::Tsp {
            node: TechnologyNode::Nm16,
            active: Some(40),
        })
        .unwrap();
        run(&Command::Estimate {
            node: TechnologyNode::Nm16,
            app: ParsecApp::Canneal,
            threads: 8,
            freq: None,
            tdp: Some(Watts::new(185.0)),
        })
        .unwrap();
    }
}
