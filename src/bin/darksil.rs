//! The `darksil` command-line tool. All logic lives in
//! `darksil::cli` so it stays unit-testable; this shim only
//! adapts process arguments and exit codes, and points the
//! execution engine at the requested `--jobs` worker count.
//!
//! Exit codes: 0 on success, 1 on a runtime failure, 2 on a usage
//! error (unknown flag, malformed value — e.g. a non-positive
//! `trace summarize --top`), matching the Unix convention that lets
//! scripts tell "you called me wrong" from "the work failed".

use std::env;
use std::process::ExitCode;

/// Exit code for usage errors (bad flags/arguments).
const EXIT_USAGE: u8 = 2;

fn main() -> ExitCode {
    let args: Vec<String> = env::args().skip(1).collect();
    let (args, jobs) = match darksil::cli::extract_jobs(&args) {
        Ok(split) => split,
        Err(e) => {
            eprintln!("error: {e}\n\n{}", darksil::cli::USAGE);
            return ExitCode::from(EXIT_USAGE);
        }
    };
    if let Some(jobs) = jobs {
        darksil_engine::set_default_jobs(jobs);
    }
    match darksil::cli::parse(&args) {
        Ok(command) => match darksil::cli::run(&command) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        },
        Err(e) => {
            eprintln!("error: {e}\n\n{}", darksil::cli::USAGE);
            ExitCode::from(EXIT_USAGE)
        }
    }
}
