//! The `darksil` command-line tool. All logic lives in
//! `darksil::cli` so it stays unit-testable; this shim only
//! adapts process arguments and exit codes.

use std::env;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = env::args().skip(1).collect();
    match darksil::cli::parse(&args) {
        Ok(command) => match darksil::cli::run(&command) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        },
        Err(e) => {
            eprintln!("error: {e}\n\n{}", darksil::cli::USAGE);
            ExitCode::FAILURE
        }
    }
}
