//! `darksil top` — a plain-text live dashboard over a running
//! darksil-d.
//!
//! The command is a pure *consumer* of the service's public surface:
//! it polls `GET /metrics` (Prometheus text exposition) and
//! `GET /v1/stats` (JSON admission counters) over a throwaway
//! `TcpStream` per poll, parses both, and renders one fixed-layout
//! frame. With `--once` the frame is printed once and the process
//! exits 0 — that mode doubles as a cheap end-to-end exposition check
//! in CI. In the looping mode each frame starts with an ANSI
//! clear-screen so the dashboard repaints in place; Ctrl-C exits.
//!
//! Everything here is std-only: the HTTP client is a blocking
//! `TcpStream` with a read deadline, and the exposition parser handles
//! exactly the grammar `darksil_obs::render_prometheus` emits
//! (`name{label="value",…} value` with `\\`, `\"` and `\n` escapes).

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

use darksil_json::Json;
use darksil_robust::DarksilError;

/// Socket connect/read deadline for one poll.
const POLL_TIMEOUT: Duration = Duration::from_secs(5);

/// One parsed exposition sample: metric name, sorted label pairs, and
/// the value.
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    /// Metric name (`darksil_serve_requests_total`).
    pub name: String,
    /// Label pairs in exposition order.
    pub labels: Vec<(String, String)>,
    /// Sample value.
    pub value: f64,
}

impl Sample {
    /// The value of one label, if present.
    #[must_use]
    pub fn label(&self, key: &str) -> Option<&str> {
        self.labels
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }
}

/// Runs the dashboard loop (or a single frame with `once`).
pub fn run_top(addr: &str, interval: Duration, once: bool) -> Result<(), DarksilError> {
    loop {
        let frame = poll_frame(addr)?;
        if once {
            print!("{frame}");
            return Ok(());
        }
        // ANSI: clear screen, home cursor. Plain bytes, no terminfo.
        print!("\x1b[2J\x1b[H{frame}");
        let _ = std::io::stdout().flush();
        std::thread::sleep(interval);
    }
}

/// Polls both endpoints once and renders a frame.
fn poll_frame(addr: &str) -> Result<String, DarksilError> {
    let (status, metrics_body) = http_get(addr, "/metrics")?;
    if status != 200 {
        return Err(DarksilError::io(format!(
            "GET /metrics returned {status} (is darksil-d running at {addr}?)"
        )));
    }
    let (status, stats_body) = http_get(addr, "/v1/stats")?;
    if status != 200 {
        return Err(DarksilError::io(format!(
            "GET /v1/stats returned {status} (is darksil-d running at {addr}?)"
        )));
    }
    let samples = parse_exposition(&metrics_body);
    let stats = darksil_json::parse(&stats_body)
        .map_err(|e| DarksilError::io(format!("/v1/stats returned invalid JSON: {e}")))?;
    Ok(render_frame(addr, &samples, &stats))
}

/// A minimal blocking `GET` returning `(status, body)`.
///
/// The daemon always answers `connection: close` with a
/// `content-length` body on these endpoints, so reading to EOF and
/// splitting on the first blank line is a complete client.
fn http_get(addr: &str, path: &str) -> Result<(u16, String), DarksilError> {
    let stream = TcpStream::connect(addr)
        .map_err(|e| DarksilError::io(format!("cannot connect to {addr}: {e}")))?;
    stream
        .set_read_timeout(Some(POLL_TIMEOUT))
        .map_err(|e| DarksilError::io(format!("cannot set socket timeout: {e}")))?;
    stream
        .set_write_timeout(Some(POLL_TIMEOUT))
        .map_err(|e| DarksilError::io(format!("cannot set socket timeout: {e}")))?;
    let mut stream = stream;
    let request = format!("GET {path} HTTP/1.1\r\nhost: {addr}\r\nconnection: close\r\n\r\n");
    stream
        .write_all(request.as_bytes())
        .map_err(|e| DarksilError::io(format!("cannot send request to {addr}: {e}")))?;
    let mut raw = Vec::new();
    stream
        .read_to_end(&mut raw)
        .map_err(|e| DarksilError::io(format!("cannot read response from {addr}: {e}")))?;
    let text = String::from_utf8_lossy(&raw);
    let Some((head, body)) = text.split_once("\r\n\r\n") else {
        return Err(DarksilError::io(format!(
            "malformed HTTP response from {addr}"
        )));
    };
    let status = head
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse::<u16>().ok())
        .ok_or_else(|| DarksilError::io(format!("malformed HTTP status line from {addr}")))?;
    Ok((status, body.to_string()))
}

/// Parses a Prometheus text exposition into samples, skipping `#`
/// comment lines. Lines that do not fit the grammar are ignored
/// rather than failing the whole frame.
#[must_use]
pub fn parse_exposition(body: &str) -> Vec<Sample> {
    let mut out = Vec::new();
    for line in body.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if let Some(sample) = parse_sample_line(line) {
            out.push(sample);
        }
    }
    out
}

/// Parses one `name{labels} value` or `name value` line.
fn parse_sample_line(line: &str) -> Option<Sample> {
    let (series, value) = line.rsplit_once(' ')?;
    let value: f64 = value.parse().ok()?;
    let (name, labels) = match series.split_once('{') {
        Some((name, rest)) => {
            let rest = rest.strip_suffix('}')?;
            (name, parse_labels(rest)?)
        }
        None => (series, Vec::new()),
    };
    Some(Sample {
        name: name.to_string(),
        labels,
        value,
    })
}

/// Parses `key="value",key="value"` with `\\`, `\"`, `\n` escapes.
fn parse_labels(body: &str) -> Option<Vec<(String, String)>> {
    let mut labels = Vec::new();
    let mut chars = body.chars().peekable();
    while chars.peek().is_some() {
        let mut key = String::new();
        for c in chars.by_ref() {
            if c == '=' {
                break;
            }
            key.push(c);
        }
        if chars.next()? != '"' {
            return None;
        }
        let mut value = String::new();
        loop {
            match chars.next()? {
                '\\' => match chars.next()? {
                    'n' => value.push('\n'),
                    escaped => value.push(escaped),
                },
                '"' => break,
                c => value.push(c),
            }
        }
        labels.push((key, value));
        match chars.next() {
            None => break,
            Some(',') => {}
            Some(_) => return None,
        }
    }
    Some(labels)
}

/// The sum over all samples of `name` passing a label filter.
fn sum_where(samples: &[Sample], name: &str, filter: impl Fn(&Sample) -> bool) -> f64 {
    // + 0.0 normalises the -0.0 that `Sum<f64>` uses as its identity,
    // which would otherwise render as "-0" in the dashboard.
    samples
        .iter()
        .filter(|s| s.name == name && filter(s))
        .map(|s| s.value)
        .sum::<f64>()
        + 0.0
}

/// One quantile of a rolling summary, if the window has data.
fn quantile(samples: &[Sample], name: &str, q: &str) -> Option<f64> {
    samples
        .iter()
        .find(|s| s.name == name && s.label("quantile") == Some(q))
        .map(|s| s.value)
}

/// A gauge value (no labels), defaulting to 0.
fn gauge(samples: &[Sample], name: &str) -> f64 {
    sum_where(samples, name, |s| s.labels.is_empty())
}

/// `hits/total` as a percentage string, or `-` when nothing happened.
fn hit_rate(hits: f64, misses: f64) -> String {
    let total = hits + misses;
    if total <= 0.0 {
        "-".to_string()
    } else {
        format!("{:.1}% ({}/{})", 100.0 * hits / total, hits, total)
    }
}

/// Formats a latency in seconds as an adaptive ms/s string.
fn fmt_latency(seconds: Option<f64>) -> String {
    match seconds {
        None => "-".to_string(),
        Some(s) if s < 1.0 => format!("{:.1}ms", s * 1000.0),
        Some(s) => format!("{s:.2}s"),
    }
}

/// Extracts `stats[key]` as u64 (registry counters are integral).
fn stat_u64(stats: &Json, key: &str) -> u64 {
    stats
        .get(key)
        .and_then(Json::as_f64)
        .map_or(0, |v| v.max(0.0) as u64)
}

/// Renders one dashboard frame from a scrape pair.
#[must_use]
pub fn render_frame(addr: &str, samples: &[Sample], stats: &Json) -> String {
    let mut out = String::new();
    let draining = stats
        .get("draining")
        .and_then(Json::as_bool)
        .unwrap_or(false);
    out.push_str(&format!(
        "darksil top — {addr}{}\n\n",
        if draining { "  [DRAINING]" } else { "" }
    ));

    let jobs = stats.get("jobs");
    let job = |label: &str| -> u64 {
        jobs.and_then(|j| j.get(label))
            .and_then(Json::as_f64)
            .map_or(0, |v| v.max(0.0) as u64)
    };
    out.push_str(&format!(
        "jobs       queued {}   running {}   done {}   degraded {}   failed {}\n",
        job("queued"),
        job("running"),
        job("done"),
        job("degraded"),
        job("failed"),
    ));
    out.push_str(&format!(
        "admission  admitted {}   deduped {}   rejected {} (quota {} / inflight {})   bad {}\n",
        stat_u64(stats, "admitted"),
        stat_u64(stats, "deduped"),
        stat_u64(stats, "rejected_tenant_quota") + stat_u64(stats, "rejected_inflight"),
        stat_u64(stats, "rejected_tenant_quota"),
        stat_u64(stats, "rejected_inflight"),
        stat_u64(stats, "bad_requests"),
    ));

    let breaker_open = sum_where(samples, "darksil_serve_breaker_open", |_| true) > 0.0;
    out.push_str(&format!(
        "service    inflight {}   queue {}   connections {}   breaker {}\n",
        gauge(samples, "darksil_serve_inflight_jobs"),
        gauge(samples, "darksil_serve_queue_depth"),
        gauge(samples, "darksil_serve_connections"),
        if breaker_open { "OPEN" } else { "closed" },
    ));

    let solve_hits = sum_where(samples, "darksil_serve_solve_cache_total", |s| {
        s.label("outcome") == Some("hit")
    });
    let solve_misses = sum_where(samples, "darksil_serve_solve_cache_total", |s| {
        s.label("outcome") != Some("hit")
    });
    let fc = stats.get("factor_cache");
    let fc_val = |key: &str| -> f64 {
        fc.and_then(|f| f.get(key))
            .and_then(Json::as_f64)
            .unwrap_or(0.0)
    };
    out.push_str(&format!(
        "caches     solve {}   factor {}   factor entries {}\n",
        hit_rate(solve_hits, solve_misses),
        hit_rate(fc_val("hits"), fc_val("misses")),
        fc_val("entries"),
    ));

    out.push_str(&format!(
        "latency    request p50 {}  p95 {}  p99 {}   solve p95 {}   (rolling ~5 min)\n",
        fmt_latency(quantile(samples, "darksil_serve_request_seconds", "0.5")),
        fmt_latency(quantile(samples, "darksil_serve_request_seconds", "0.95")),
        fmt_latency(quantile(samples, "darksil_serve_request_seconds", "0.99")),
        fmt_latency(quantile(samples, "darksil_serve_solve_seconds", "0.95")),
    ));

    // Per-tenant table from the exposition's tenant counters.
    let mut tenants: Vec<&str> = samples
        .iter()
        .filter(|s| s.name == "darksil_serve_tenant_requests_total")
        .filter_map(|s| s.label("tenant"))
        .collect();
    tenants.sort_unstable();
    tenants.dedup();
    if !tenants.is_empty() {
        out.push_str(&format!(
            "\n{:<20} {:>9} {:>9} {:>9}\n",
            "tenant", "admitted", "deduped", "rejected"
        ));
        for tenant in tenants {
            let outcome = |o: &str| -> f64 {
                sum_where(samples, "darksil_serve_tenant_requests_total", |s| {
                    s.label("tenant") == Some(tenant) && s.label("outcome") == Some(o)
                })
            };
            let rejected = sum_where(samples, "darksil_serve_tenant_requests_total", |s| {
                s.label("tenant") == Some(tenant)
                    && s.label("outcome")
                        .is_some_and(|o| o.starts_with("rejected"))
            });
            out.push_str(&format!(
                "{:<20} {:>9} {:>9} {:>9}\n",
                tenant,
                outcome("admitted"),
                outcome("deduped"),
                rejected,
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exposition_lines_parse_names_labels_and_values() {
        let body = "\
# HELP darksil_serve_requests_total requests\n\
# TYPE darksil_serve_requests_total counter\n\
darksil_serve_requests_total{endpoint=\"/healthz\",method=\"GET\",status=\"200\"} 3\n\
darksil_serve_inflight_jobs 2\n\
darksil_serve_request_seconds{endpoint=\"/v1/jobs\",quantile=\"0.95\"} 0.25\n\
garbage line without a number trailer\n";
        let samples = parse_exposition(body);
        assert_eq!(samples.len(), 3);
        assert_eq!(samples[0].name, "darksil_serve_requests_total");
        assert_eq!(samples[0].label("endpoint"), Some("/healthz"));
        assert_eq!(samples[0].label("status"), Some("200"));
        assert!((samples[0].value - 3.0).abs() < 1e-12);
        assert!(samples[1].labels.is_empty());
        assert_eq!(
            quantile(&samples, "darksil_serve_request_seconds", "0.95"),
            Some(0.25)
        );
    }

    #[test]
    fn escaped_label_values_round_trip() {
        let line = r#"m{k="a\\b\"c\nd"} 1"#;
        let sample = parse_sample_line(line).unwrap();
        assert_eq!(sample.label("k"), Some("a\\b\"c\nd"));
    }

    #[test]
    fn frames_render_tenants_and_rates() {
        let samples = vec![
            Sample {
                name: "darksil_serve_tenant_requests_total".into(),
                labels: vec![
                    ("outcome".into(), "admitted".into()),
                    ("tenant".into(), "acme".into()),
                ],
                value: 4.0,
            },
            Sample {
                name: "darksil_serve_tenant_requests_total".into(),
                labels: vec![
                    ("outcome".into(), "rejected_quota".into()),
                    ("tenant".into(), "acme".into()),
                ],
                value: 1.0,
            },
            Sample {
                name: "darksil_serve_solve_cache_total".into(),
                labels: vec![("outcome".into(), "hit".into())],
                value: 3.0,
            },
            Sample {
                name: "darksil_serve_solve_cache_total".into(),
                labels: vec![("outcome".into(), "miss".into())],
                value: 1.0,
            },
        ];
        let stats = darksil_json::parse(
            r#"{"jobs": {"queued": 1, "running": 2, "done": 3, "degraded": 0, "failed": 0},
                "admitted": 5, "deduped": 2, "rejected_tenant_quota": 1,
                "rejected_inflight": 0, "bad_requests": 0, "draining": false,
                "factor_cache": {"hits": 8, "misses": 2, "entries": 2}}"#,
        )
        .unwrap();
        let frame = render_frame("127.0.0.1:8787", &samples, &stats);
        assert!(frame.contains("queued 1"), "{frame}");
        assert!(frame.contains("solve 75.0% (3/4)"), "{frame}");
        assert!(frame.contains("factor 80.0% (8/10)"), "{frame}");
        assert!(frame.contains("acme"), "{frame}");
        assert!(frame.contains("tenant"), "{frame}");
        // No tenants → no table.
        let bare = render_frame("x", &[], &stats);
        assert!(!bare.contains("tenant "), "{bare}");
        // Missing series sum to the f64 Sum identity (-0.0); the frame
        // must never show a negative zero.
        assert!(!frame.contains("-0"), "{frame}");
        assert!(!bare.contains("-0"), "{bare}");
    }

    #[test]
    fn draining_is_flagged_in_the_banner() {
        let stats = darksil_json::parse(r#"{"draining": true}"#).unwrap();
        let frame = render_frame("h:1", &[], &stats);
        assert!(frame.contains("[DRAINING]"), "{frame}");
    }
}
