//! Property-based tests of cross-crate invariants.

use darksil_floorplan::Floorplan;
use darksil_mapping::{spread_cores, Platform};
use darksil_numerics::{conjugate_gradient, CgOptions, TripletMatrix};
use darksil_power::{CorePowerModel, TechnologyNode, VfRelation};
use darksil_thermal::{PackageConfig, ThermalModel};
use darksil_tsp::TspCalculator;
use darksil_units::{Celsius, Hertz, SquareMillimeters, Volts, Watts};
use darksil_workload::ParsecApp;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Eq. (2) inversion: voltage_for(frequency_at(v)) == v for any
    /// super-threshold voltage at any node.
    #[test]
    fn vf_relation_inverts(
        v in 0.25_f64..1.5,
        node_idx in 0_usize..4,
    ) {
        let vf = VfRelation::for_node(TechnologyNode::ALL[node_idx]);
        let voltage = Volts::new(v);
        prop_assume!(voltage > vf.threshold_voltage() + Volts::new(0.01));
        let f = vf.frequency_at(voltage);
        let back = vf.voltage_for(f).unwrap();
        prop_assert!((back.value() - v).abs() < 1e-9, "{v} -> {f} -> {back}");
    }

    /// Power is monotone in every argument of Eq. (1): activity,
    /// frequency (with its matched voltage) and temperature.
    #[test]
    fn power_is_monotone(
        alpha in 0.0_f64..1.0,
        ghz in 0.4_f64..3.5,
        t in 30.0_f64..90.0,
    ) {
        let m = CorePowerModel::x264_22nm();
        let f = Hertz::from_ghz(ghz);
        let temp = Celsius::new(t);
        let p = m.power_at_frequency(alpha, f, temp).unwrap();
        let p_more_alpha = m.power_at_frequency((alpha + 0.1).min(1.0), f, temp).unwrap();
        let p_more_freq = m.power_at_frequency(alpha, Hertz::from_ghz(ghz + 0.3), temp).unwrap();
        let p_hotter = m.power_at_frequency(alpha, f, Celsius::new(t + 5.0)).unwrap();
        prop_assert!(p_more_alpha >= p);
        prop_assert!(p_more_freq > p);
        prop_assert!(p_hotter > p);
    }

    /// Thermal model: more power anywhere never cools any core
    /// (monotone positive system), and the peak never sits below
    /// ambient.
    #[test]
    fn thermal_is_monotone_in_power(
        seed_powers in prop::collection::vec(0.0_f64..4.0, 16),
        extra_core in 0_usize..16,
        extra in 0.1_f64..3.0,
    ) {
        let plan = Floorplan::grid(4, 4, SquareMillimeters::new(5.1)).unwrap();
        let model = ThermalModel::new(&plan, PackageConfig::paper_dac15()).unwrap();
        let base: Vec<Watts> = seed_powers.iter().map(|&p| Watts::new(p)).collect();
        let mut bumped = base.clone();
        bumped[extra_core] += Watts::new(extra);

        let t_base = model.steady_state(&base).unwrap();
        let t_bumped = model.steady_state(&bumped).unwrap();
        prop_assert!(t_base.peak() >= model.ambient() - 1e-9);
        for core in plan.cores() {
            prop_assert!(
                t_bumped.core(core) >= t_base.core(core) - 1e-9,
                "{core} cooled when power was added"
            );
        }
    }

    /// Conjugate gradients solves random SPD (diagonally dominant)
    /// systems to the same answer as dense LU.
    #[test]
    fn cg_matches_lu_on_random_spd(
        offdiag in prop::collection::vec(0.01_f64..2.0, 12),
        rhs in prop::collection::vec(-5.0_f64..5.0, 13),
    ) {
        let n = 13;
        let mut t = TripletMatrix::new(n, n);
        for (i, &g) in offdiag.iter().enumerate() {
            t.stamp_conductance(i, i + 1, g);
        }
        t.stamp_to_reference(0, 1.0);
        t.stamp_to_reference(n - 1, 0.5);
        let a = t.to_csr();
        let x_cg = conjugate_gradient(&a, &rhs, &CgOptions::default()).unwrap();
        let x_lu = a.to_dense().solve(&rhs).unwrap();
        for (c, l) in x_cg.iter().zip(&x_lu) {
            prop_assert!((c - l).abs() < 1e-6, "cg {c} vs lu {l}");
        }
    }

    /// Amdahl invariants hold for arbitrary parallel fractions: speed-up
    /// is in [1, t] and efficiency decreases with threads.
    #[test]
    fn speedup_invariants(app_idx in 0_usize..7, threads in 1_usize..8) {
        let profile = ParsecApp::ALL[app_idx].profile();
        let s = profile.speedup(threads);
        prop_assert!(s >= 1.0 - 1e-12);
        prop_assert!(s <= threads as f64 + 1e-12);
        prop_assert!(profile.efficiency(threads + 1) <= profile.efficiency(threads) + 1e-12);
        // The wide curve never exceeds the intra-instance curve.
        prop_assert!(profile.speedup_wide(threads) <= s + 1e-9);
    }

    /// The spread-cores pattern always returns exactly m distinct,
    /// in-range cores for any grid shape.
    #[test]
    fn spread_cores_is_well_formed(
        rows in 2_usize..12,
        cols in 2_usize..12,
        frac in 0.05_f64..1.0,
    ) {
        let plan = Floorplan::grid(rows, cols, SquareMillimeters::new(2.0)).unwrap();
        let m = ((rows * cols) as f64 * frac).ceil() as usize;
        let m = m.min(rows * cols);
        let set = spread_cores(&plan, m);
        prop_assert_eq!(set.len(), m);
        let mut sorted = set.clone();
        sorted.dedup();
        prop_assert_eq!(sorted.len(), m, "duplicates");
        prop_assert!(set.iter().all(|c| c.index() < rows * cols));
    }
}

/// TSP is antitone in the active-core count (non-property shape check
/// over a fixed grid, deterministic).
#[test]
fn tsp_antitone_in_core_count() {
    let plan = Floorplan::grid(6, 6, SquareMillimeters::new(5.1)).unwrap();
    let model = ThermalModel::new(&plan, PackageConfig::paper_dac15()).unwrap();
    let tsp = TspCalculator::new(&plan, &model, Celsius::new(80.0));
    let mut last = Watts::new(f64::INFINITY);
    for m in 1..=36 {
        let p = tsp.worst_case(m).unwrap();
        assert!(p <= last, "TSP({m}) = {p} rose above {last}");
        last = p;
    }
}

/// Mapping evaluation is deterministic: repeated fixed-point solves of
/// the same platform/workload agree bit-for-bit.
#[test]
fn estimates_are_deterministic() {
    let platform = Platform::with_core_count(TechnologyNode::Nm16, 25).unwrap();
    let workload = darksil_workload::Workload::parsec_mix(3, 8).unwrap();
    let m = darksil_mapping::place_patterned(platform.floorplan(), &workload, platform.max_level())
        .unwrap();
    let a = m.peak_temperature(&platform).unwrap();
    let b = m.peak_temperature(&platform).unwrap();
    assert_eq!(a, b);
}
