//! Every shipped scenario file must parse, validate, round-trip
//! through the serializer, and run.

use darksil::scenario::{
    parse_scenario, run_scenario, validate_scenario, ExperimentSpec, Scenario,
};

fn shipped_scenarios() -> Vec<(std::path::PathBuf, Scenario)> {
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/scenarios");
    let mut out = Vec::new();
    for entry in std::fs::read_dir(dir).unwrap() {
        let path = entry.unwrap().path();
        if path.extension().is_some_and(|e| e == "json") {
            let text = std::fs::read_to_string(&path).unwrap();
            let scenario =
                parse_scenario(&text).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
            out.push((path, scenario));
        }
    }
    out.sort_by(|a, b| a.0.cmp(&b.0));
    assert!(
        out.len() >= 4,
        "expected the shipped scenario set, found {}",
        out.len()
    );
    out
}

#[test]
fn shipped_scenarios_parse_and_run() {
    for (path, scenario) in shipped_scenarios() {
        let report = run_scenario(&scenario).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        assert!(report.total_gips > 0.0, "{}", path.display());
    }
}

#[test]
fn shipped_scenarios_round_trip_through_json() {
    for (path, scenario) in shipped_scenarios() {
        // Serialise the parsed scenario and parse it back: the result
        // must be identical, so nothing is lost or reinterpreted on a
        // save/load cycle.
        let json = darksil_json::to_string_pretty(&scenario);
        let back = parse_scenario(&json)
            .unwrap_or_else(|e| panic!("{}: re-parse failed: {e}", path.display()));
        assert_eq!(scenario, back, "{}", path.display());
    }
}

#[test]
fn shipped_scenarios_pass_strict_validation() {
    for (path, scenario) in shipped_scenarios() {
        validate_scenario(&scenario).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
    }
}

#[test]
fn mutated_shipped_scenarios_are_rejected_with_field_paths() {
    for (path, scenario) in shipped_scenarios() {
        // Each strictness rule must fire on every shipped file, and the
        // error must name the offending field.
        let cases: Vec<(Scenario, &str)> = vec![
            (
                Scenario {
                    node: 14,
                    ..scenario.clone()
                },
                "node",
            ),
            (
                Scenario {
                    name: "  ".into(),
                    ..scenario.clone()
                },
                "name",
            ),
            (
                Scenario {
                    workload: Vec::new(),
                    ..scenario.clone()
                },
                "workload",
            ),
            (
                Scenario {
                    t_dtm_celsius: Some(-3.0),
                    ..scenario.clone()
                },
                "t_dtm_celsius",
            ),
            (
                {
                    let mut s = scenario.clone();
                    s.workload[0].threads = 99;
                    s
                },
                "workload[0].threads",
            ),
            (
                {
                    let mut s = scenario.clone();
                    s.workload[0].app = "doom".into();
                    s
                },
                "workload[0].app",
            ),
            (
                Scenario {
                    experiment: ExperimentSpec::Thermal {
                        frequency_ghz: Some(3.33),
                    },
                    ..scenario.clone()
                },
                "experiment.frequency_ghz",
            ),
        ];
        for (bad, field) in cases {
            let err = validate_scenario(&bad)
                .expect_err(&format!("{}: `{field}` accepted", path.display()));
            assert!(
                err.to_string().contains(field),
                "{}: error for `{field}` reads: {err}",
                path.display()
            );
        }
    }
}

#[test]
fn unknown_scenario_fields_are_rejected() {
    for (path, scenario) in shipped_scenarios() {
        // Strict parsing: an extra top-level key must be flagged, not
        // silently dropped.
        let json = darksil_json::to_string_pretty(&scenario);
        let with_extra = json.replacen('{', "{\n  \"surprise\": 1,", 1);
        let err = parse_scenario(&with_extra)
            .expect_err(&format!("{}: extra field accepted", path.display()));
        assert!(
            err.to_string().contains("surprise"),
            "{}: {err}",
            path.display()
        );
    }
}
