//! Every shipped scenario file must parse and run.

use darksil::scenario::{parse_scenario, run_scenario};

#[test]
fn shipped_scenarios_parse_and_run() {
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/scenarios");
    let mut ran = 0;
    for entry in std::fs::read_dir(dir).unwrap() {
        let path = entry.unwrap().path();
        if path.extension().is_some_and(|e| e == "json") {
            let text = std::fs::read_to_string(&path).unwrap();
            let scenario =
                parse_scenario(&text).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
            let report =
                run_scenario(&scenario).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
            assert!(report.total_gips > 0.0, "{}", path.display());
            ran += 1;
        }
    }
    assert!(ran >= 4, "expected the shipped scenario set, found {ran}");
}
