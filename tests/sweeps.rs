//! Every shipped sweep spec must parse, validate strictly, round-trip
//! through the serializer, and run deterministically: byte-identical
//! artefacts at any worker count, uncertainty bands for Monte-Carlo
//! specs, and warm-cache replays after a cold run.

use darksil::sweep::{
    parse_sweep_spec, parse_sweep_spec_file, render_sweep_report, run_sweep, validate_sweep_spec,
    AxisKind, AxisValue, SweepOptions, SweepSpec,
};
use darksil_json::ToJson;

fn shipped_sweeps() -> Vec<(std::path::PathBuf, SweepSpec)> {
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/scenarios/sweeps");
    let mut out = Vec::new();
    for entry in std::fs::read_dir(dir).unwrap() {
        let path = entry.unwrap().path();
        if path.extension().is_some_and(|e| e == "json") {
            let spec =
                parse_sweep_spec_file(&path).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
            out.push((path, spec));
        }
    }
    out.sort_by(|a, b| a.0.cmp(&b.0));
    assert!(
        out.len() >= 2,
        "expected the shipped sweep set, found {}",
        out.len()
    );
    out
}

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("darksil-sweeps-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn shipped_sweeps_parse_validate_and_round_trip() {
    for (path, spec) in shipped_sweeps() {
        validate_sweep_spec(&spec).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        let text = darksil_json::to_string_pretty(&spec);
        let reparsed =
            parse_sweep_spec(&text).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        assert_eq!(
            spec.to_json().compact(),
            reparsed.to_json().compact(),
            "{}",
            path.display()
        );
    }
}

#[test]
fn grid_sweep_is_byte_identical_at_any_job_count() {
    let dir = temp_dir("grid");
    let spec = parse_sweep_spec_file(std::path::Path::new(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/scenarios/sweeps/fig8_node_parallelism.json"
    )))
    .unwrap();
    let run_at = |jobs: usize, sub: &str| {
        let result = run_sweep(
            &spec,
            &SweepOptions {
                jobs,
                cache_dir: Some(dir.join(sub)),
                use_cache: true,
                journal_path: None,
                resume: false,
            },
        )
        .unwrap();
        (
            darksil_json::to_string_pretty(&result),
            render_sweep_report(&result),
        )
    };
    let (json_serial, html_serial) = run_at(1, "a");
    let (json_parallel, html_parallel) = run_at(4, "b");
    assert_eq!(json_serial, json_parallel);
    assert_eq!(html_serial, html_parallel);
    assert!(!json_serial.contains("NaN"));
    assert!(!html_serial.contains("<script"));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn mc_sweep_reports_bands_and_frontier() {
    let dir = temp_dir("mc");
    let spec = parse_sweep_spec_file(std::path::Path::new(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/scenarios/sweeps/mc_tdp_variability.json"
    )))
    .unwrap();
    let result = run_sweep(
        &spec,
        &SweepOptions {
            jobs: 4,
            cache_dir: Some(dir.join("cache")),
            use_cache: true,
            journal_path: None,
            resume: false,
        },
    )
    .unwrap();
    assert_eq!(result.draws, 10);
    assert_eq!(result.evals, result.grid_points * result.draws);
    assert!(!result.frontier.is_empty());
    for point in &result.points {
        // Draws differ, so the Monte-Carlo band must have real width.
        assert!(
            point.total_gips.p95 >= point.total_gips.p50
                && point.total_gips.p50 >= point.total_gips.p5
        );
        assert!(
            point.total_gips.p5.is_finite()
                && point.total_gips.p50.is_finite()
                && point.total_gips.p95.is_finite(),
            "non-finite band"
        );
        assert_eq!(point.draws.len(), result.draws);
    }
    let json = darksil_json::to_string_pretty(&result);
    assert!(json.contains("\"p5\"") && json.contains("\"p95\""));
    assert!(!json.contains("NaN"));
    let html = render_sweep_report(&result);
    assert!(html.contains("series-band"));
    assert!(!html.contains("<script"));
    assert!(!html.contains("NaN"));

    // A warm rerun replays every evaluation from the cache.
    let warm = run_sweep(
        &spec,
        &SweepOptions {
            jobs: 2,
            cache_dir: Some(dir.join("cache")),
            use_cache: true,
            journal_path: None,
            resume: false,
        },
    )
    .unwrap();
    assert_eq!(warm.cache.hit, result.evals);
    assert_eq!(warm.cache.miss, 0);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn editing_one_axis_recomputes_only_the_delta() {
    let dir = temp_dir("delta");
    let spec = parse_sweep_spec_file(std::path::Path::new(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/scenarios/sweeps/fig8_node_parallelism.json"
    )))
    .unwrap();
    let opts = SweepOptions {
        jobs: 2,
        cache_dir: Some(dir.join("cache")),
        use_cache: true,
        journal_path: None,
        resume: false,
    };
    let cold = run_sweep(&spec, &opts).unwrap();
    assert_eq!(cold.cache.miss, cold.evals);

    // Swap one node value: points on the changed axis value recompute,
    // everything else replays from the cache.
    let mut edited = spec.clone();
    for axis in &mut edited.axes {
        if axis.param == "node" {
            if let AxisKind::List(values) = &mut axis.kind {
                assert_eq!(values[0], AxisValue::Num(16.0));
                values[0] = AxisValue::Num(22.0);
            }
        }
    }
    validate_sweep_spec(&edited).unwrap();
    let warm = run_sweep(&edited, &opts).unwrap();
    assert_eq!(warm.evals, cold.evals);
    assert!(warm.cache.hit > 0, "unchanged points must hit");
    assert!(warm.cache.miss > 0, "changed points must recompute");
    assert_eq!(warm.cache.hit + warm.cache.miss, warm.evals);
    let _ = std::fs::remove_dir_all(&dir);
}
