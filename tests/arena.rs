//! Fuzzing-arena integration tests: the shipped scenarios pass the
//! invariant suite clean, generated scenarios round-trip strict
//! validation, case verdicts are independent of the worker count, and
//! the committed corpus replays.
//!
//! Every test that runs cases records on the process-global event
//! recorder, so those tests serialise on [`recorder_lock`].

use std::path::Path;
use std::sync::{Mutex, MutexGuard, PoisonError};

use darksil_arena::{
    generate_cases, load_corpus, replay, run_cases, run_single, shrink, ArenaCase, Oracle, Verdict,
};
use darksil_obs::EventStream;
use darksil_scenario::{parse_scenario_file, validate_scenario, Scenario};
use proptest::prelude::*;

fn recorder_lock() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(PoisonError::into_inner)
}

fn corpus_dir() -> &'static Path {
    Path::new(concat!(env!("CARGO_MANIFEST_DIR"), "/tests/corpus"))
}

fn shipped_scenarios() -> Vec<(std::path::PathBuf, Scenario)> {
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/scenarios");
    let mut out = Vec::new();
    for entry in std::fs::read_dir(dir).unwrap() {
        let path = entry.unwrap().path();
        if path.extension().is_some_and(|e| e == "json") {
            let scenario =
                parse_scenario_file(&path).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
            out.push((path, scenario));
        }
    }
    out.sort_by(|a, b| a.0.cmp(&b.0));
    assert!(out.len() >= 4, "expected the shipped scenario set");
    out
}

/// Every shipped scenario runs through the full pipeline with events on
/// and satisfies every physical invariant.
#[test]
fn shipped_scenarios_pass_the_invariant_suite() {
    let _guard = recorder_lock();
    let oracle = Oracle::default();
    for (path, scenario) in shipped_scenarios() {
        let case = ArenaCase {
            index: 0,
            scenario,
            faults: None,
            inject: None,
        };
        let outcome = run_single(&case, &oracle);
        assert_eq!(
            outcome.verdict(),
            Verdict::Pass,
            "{}: error={:?} violations={:?}",
            path.display(),
            outcome.error,
            outcome.violations
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Generated scenarios always satisfy the strict validator and
    /// survive a JSON round trip unchanged.
    #[test]
    fn generated_scenarios_round_trip_strict_validation(seed in 0_u64..1_000_000) {
        for case in generate_cases(seed, 4, None) {
            validate_scenario(&case.scenario)
                .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            let text = darksil_json::to_string_pretty(&case.scenario);
            let back: Scenario = darksil_json::from_str(&text)
                .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            prop_assert_eq!(&back, &case.scenario);
        }
    }
}

/// The same population produces identical verdicts and a byte-identical
/// event stream at any worker count.
#[test]
fn fuzz_batch_is_deterministic_across_worker_counts() {
    let _guard = recorder_lock();
    let oracle = Oracle::default();
    let cases = generate_cases(99, 12, None);
    let (serial, stream_serial) = run_cases(&cases, 1, &oracle);
    let (parallel, stream_parallel) = run_cases(&cases, 4, &oracle);
    assert_eq!(stream_serial.to_jsonl(), stream_parallel.to_jsonl());
    assert_eq!(serial.len(), parallel.len());
    for (a, b) in serial.iter().zip(&parallel) {
        assert_eq!(a.verdict(), b.verdict(), "{}", a.name);
        assert_eq!(a.violations.len(), b.violations.len(), "{}", a.name);
        assert_eq!(a.throttle_residency, b.throttle_residency, "{}", a.name);
    }
}

/// The committed corpus replays: injected reproducers are still caught
/// by the oracle, regression reproducers (real since-fixed bugs) run
/// clean.
#[test]
fn committed_scenario_corpus_replays() {
    let _guard = recorder_lock();
    let oracle = Oracle::default();
    let entries = load_corpus(corpus_dir()).expect("corpus loads");
    assert!(!entries.is_empty(), "expected committed reproducers");
    for (path, repro) in &entries {
        let outcome = replay(repro, &oracle);
        if repro.inject.is_some() {
            assert!(
                outcome
                    .violations
                    .iter()
                    .any(|v| v.invariant == repro.invariant),
                "{}: oracle no longer catches `{}`",
                path.display(),
                repro.invariant
            );
        } else {
            assert!(
                outcome.violations.is_empty(),
                "{}: regression resurfaced: {:?}",
                path.display(),
                outcome.violations
            );
        }
    }
}

/// The committed stream regressions (event streams that once tripped an
/// invariant) verify clean against the current oracle.
#[test]
fn committed_stream_corpus_verifies_clean() {
    let oracle = Oracle::default();
    let mut streams = 0;
    for entry in std::fs::read_dir(corpus_dir()).expect("corpus dir") {
        let path = entry.expect("entry").path();
        if path.extension().is_some_and(|e| e == "jsonl") {
            let text = std::fs::read_to_string(&path).expect("readable");
            let stream = EventStream::from_jsonl(&text)
                .unwrap_or_else(|e| panic!("{}: {e}", path.display()));
            let violations = oracle.verify(&stream);
            assert!(
                violations.is_empty(),
                "{}: {:?}",
                path.display(),
                violations
            );
            streams += 1;
        }
    }
    assert!(streams >= 1, "expected committed stream regressions");
}

/// The full failure loop: an injected violation is caught, shrinks to a
/// minimal case that still trips the same invariant, and the shrunk
/// case replays.
#[test]
fn injected_violation_is_caught_shrunk_and_replayable() {
    let _guard = recorder_lock();
    let oracle = Oracle::default();
    let mut cases = generate_cases(7, 1, None);
    cases[0].inject = darksil_arena::InjectMode::parse("nan");
    let outcome = run_single(&cases[0], &oracle);
    assert_eq!(outcome.verdict(), Verdict::Violated);
    let invariant = &outcome.violations[0].invariant;
    assert_eq!(invariant, "no-nan");

    let shrunk = shrink(&cases[0], invariant, &oracle);
    assert!(shrunk.scenario.workload.len() <= cases[0].scenario.workload.len());
    let replayed = run_single(&shrunk, &oracle);
    assert!(
        replayed
            .violations
            .iter()
            .any(|v| &v.invariant == invariant),
        "shrunk case no longer trips `{invariant}`"
    );
}
