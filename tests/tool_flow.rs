//! The complete Figure-1 tool flow, executed end to end:
//! gem5/McPAT stand-in → Eq. (1) fit → ITRS scaling → floorplan →
//! mapping → HotSpot stand-in → dark-silicon estimate.

use darksil_archsim::{CoreModel, McPatSampler, SampleSweep};
use darksil_core::DarkSiliconEstimator;
use darksil_floorplan::Floorplan;
use darksil_mapping::Platform;
use darksil_power::{CorePowerModel, LeakageModel, TechnologyNode, VfRelation};
use darksil_thermal::{PackageConfig, ThermalModel};
use darksil_units::{Celsius, Hertz, Watts};
use darksil_workload::ParsecApp;

#[test]
fn full_tool_flow_from_samples_to_estimate() {
    // 1. "Run gem5 + McPAT" at 22 nm: sample power for the x264 kernel.
    let sampler = McPatSampler::new(CorePowerModel::x264_22nm(), 0.03, 7).unwrap();
    let samples = sampler.sample(&SampleSweep::figure3()).unwrap();

    // 2. Fit the Eq. (1) model to the samples.
    let fitted = CorePowerModel::fit(
        &samples,
        &LeakageModel::alpha_core_22nm(),
        VfRelation::paper_22nm(),
    )
    .unwrap();
    let mean_power: f64 =
        samples.iter().map(|s| s.power.value()).sum::<f64>() / samples.len() as f64;
    assert!(fitted.rmse(&samples).value() / mean_power < 0.05);

    // 3. Scale to 16 nm with the Figure 1 factors.
    let scaled = fitted.scaled_to(TechnologyNode::Nm16);
    let p16 = scaled
        .power_at_frequency(1.0, Hertz::from_ghz(3.6), Celsius::new(75.0))
        .unwrap();
    assert!(p16.value() > 2.5 && p16.value() < 5.5, "scaled power {p16}");

    // 4. Generate the floorplan and thermal model.
    let plan = Floorplan::squarish(100, TechnologyNode::Nm16.core_area()).unwrap();
    let thermal = ThermalModel::new(&plan, PackageConfig::paper_dac15()).unwrap();
    assert_eq!(thermal.core_count(), 100);

    // 5. Map applications and estimate dark silicon.
    let est = DarkSiliconEstimator::for_node(TechnologyNode::Nm16).unwrap();
    let estimate = est
        .under_power_budget(ParsecApp::X264, 8, Hertz::from_ghz(3.6), Watts::new(185.0))
        .unwrap();
    assert!(estimate.dark_fraction > 0.2 && estimate.dark_fraction < 0.7);
    assert!(estimate.total_power <= Watts::new(185.0) + Watts::new(10.0));
}

#[test]
fn fitted_model_predicts_unseen_operating_points() {
    // Fit on a coarse sweep, validate on points between the samples.
    let truth = CorePowerModel::x264_22nm();
    let sampler = McPatSampler::new(truth, 0.02, 99).unwrap();
    let sweep = SampleSweep {
        points: 8,
        ..SampleSweep::figure3()
    };
    let samples = sampler.sample(&sweep).unwrap();
    let fitted = CorePowerModel::fit(
        &samples,
        &LeakageModel::alpha_core_22nm(),
        VfRelation::paper_22nm(),
    )
    .unwrap();

    for ghz in [0.9, 1.7, 2.3, 3.1, 3.9] {
        let f = Hertz::from_ghz(ghz);
        let t = Celsius::new(60.0);
        let p_truth = truth.power_at_frequency(1.0, f, t).unwrap();
        let p_fit = fitted.power_at_frequency(1.0, f, t).unwrap();
        let rel = (p_fit.value() - p_truth.value()).abs() / p_truth.value();
        assert!(rel < 0.06, "at {ghz} GHz: {rel}");
    }
}

#[test]
fn performance_flow_matches_figure11_scale() {
    // The performance half of the flow: analytic cores + Amdahl
    // instances must land at Figure 11's ≈250 GIPS for 96 x264 threads
    // around 3.2 GHz.
    let core = CoreModel::alpha_21264();
    let profile = ParsecApp::X264.profile();
    let per_instance = profile.instance_gips(&core, 8, Hertz::from_ghz(3.2));
    let total = per_instance * 12.0;
    assert!(
        total.value() > 200.0 && total.value() < 320.0,
        "total {total}"
    );
}

#[test]
fn platforms_grow_denser_across_nodes() {
    // The scaling story of §2.1: same-area chips host 100 → 198 → 361
    // cores, and at iso-voltage-headroom (the Figure 1 table's premise:
    // frequency scaled by the full factor, 2.67 → 3.6 → 4.67 → 6.13
    // GHz) the power density keeps rising — the root cause of dark
    // silicon. The paper's *nominal* frequencies deliberately scale
    // more slowly (3.6/4.0/4.4 GHz), trading headroom for darkness.
    let f22 = TechnologyNode::Nm22.nominal_max_frequency();
    let mut last_cores = 0;
    let mut last_density = 0.0;
    for node in [
        TechnologyNode::Nm16,
        TechnologyNode::Nm11,
        TechnologyNode::Nm8,
    ] {
        let platform = Platform::for_node(node).unwrap();
        let cores = platform.core_count();
        assert!(cores > last_cores);
        last_cores = cores;

        let model = platform.app_model(ParsecApp::Swaptions);
        let f_iso = f22 * node.scaling().frequency;
        let p = model
            .power_at_frequency(1.0, f_iso, Celsius::new(80.0))
            .unwrap();
        let density = p.value() / node.core_area().value();
        assert!(
            density > last_density,
            "{node}: density {density} did not rise"
        );
        last_density = density;
    }
}
