//! End-to-end assertions of the paper's four Observations and headline
//! numbers, spanning every crate in the workspace.

use darksil_boost::{iso_performance_comparison, run_boosting, run_constant, PolicyConfig};
use darksil_core::{scenarios, tsp_eval, DarkSiliconEstimator};
use darksil_mapping::{
    place_contiguous, place_patterned, place_thermal_aware, DsRem, Platform, TdpMap,
};
use darksil_power::TechnologyNode;
use darksil_units::{Hertz, Seconds, Watts};
use darksil_workload::{ParsecApp, Workload};

/// Observation 1: a TDP constraint either under-estimates dark silicon
/// (optimistic TDP violates the thermal threshold) or over-estimates it
/// (pessimistic TDP leaves headroom); the temperature constraint is the
/// accurate model.
#[test]
fn observation1_tdp_misestimates_dark_silicon() {
    let est = DarkSiliconEstimator::for_node(TechnologyNode::Nm16).unwrap();
    let f = Hertz::from_ghz(3.6);

    // Optimistic 220 W: violates the threshold for the hungriest app.
    let optimistic = est
        .under_power_budget(ParsecApp::Swaptions, 8, f, Watts::new(220.0))
        .unwrap();
    assert!(optimistic.thermal_violation);

    // Pessimistic 185 W: safe, but leaves cores dark that the thermal
    // constraint can light for most applications.
    let mut recovered = 0;
    for app in ParsecApp::ALL {
        let pessimistic = est
            .under_power_budget(app, 8, f, Watts::new(185.0))
            .unwrap();
        assert!(!pessimistic.thermal_violation, "{app} violated at 185 W");
        let thermal = est.under_temperature_constraint(app, 8, f).unwrap();
        assert!(thermal.active_cores >= pessimistic.active_cores);
        if thermal.active_cores > pessimistic.active_cores {
            recovered += 1;
        }
    }
    assert!(recovered >= 4, "only {recovered} apps recovered cores");
}

/// Observation 2: scaling down V/f reduces dark silicon for every
/// application.
#[test]
fn observation2_dvfs_reduces_dark_silicon() {
    let est = DarkSiliconEstimator::for_node(TechnologyNode::Nm16).unwrap();
    for app in ParsecApp::ALL {
        let high = est
            .under_power_budget(app, 8, Hertz::from_ghz(3.6), Watts::new(185.0))
            .unwrap();
        let low = est
            .under_power_budget(app, 8, Hertz::from_ghz(2.8), Watts::new(185.0))
            .unwrap();
        assert!(
            low.dark_fraction <= high.dark_fraction,
            "{app}: {} at 2.8 GHz vs {} at 3.6 GHz",
            low.dark_fraction,
            high.dark_fraction
        );
    }
}

/// Observation 3: boosting yields slightly higher average performance
/// than the best constant frequency, at a much higher peak power.
#[test]
fn observation3_boosting_small_gain_big_power() {
    let platform = Platform::for_node(TechnologyNode::Nm16)
        .unwrap()
        .with_boost_levels(Hertz::from_ghz(4.4))
        .unwrap();
    let workload = Workload::uniform(ParsecApp::X264, 12, 8).unwrap();
    let mapping = place_patterned(platform.floorplan(), &workload, platform.max_level()).unwrap();
    let config = PolicyConfig {
        period: Seconds::new(0.02),
        ..PolicyConfig::default()
    };
    let horizon = Seconds::new(50.0);
    let boost = run_boosting(&platform, &mapping, horizon, &config).unwrap();
    let constant = run_constant(&platform, &mapping, horizon, &config).unwrap();

    let gain = boost.average_gips_tail(0.5) / constant.average_gips_tail(0.5);
    assert!(gain > 1.0, "no boosting gain: {gain}");
    assert!(gain < 1.25, "gain {gain} is not 'small'");
    let power_ratio = boost.peak_power() / constant.peak_power();
    assert!(power_ratio > 1.5, "peak power ratio only {power_ratio}");
}

/// Observation 4: NTC only wins when performance scales with threads;
/// for maximising performance under dark-silicon constraints the chosen
/// operating points stay in STC.
#[test]
fn observation4_ntc_for_energy_not_performance() {
    let platform = Platform::for_node(TechnologyNode::Nm11).unwrap();
    // Scaling apps: NTC more energy-efficient at iso-performance.
    let x264 = iso_performance_comparison(&platform, ParsecApp::X264, 24, 500.0).unwrap();
    assert!(x264.ntc_wins());
    // Non-scaling canneal: NTC wastes energy.
    let canneal = iso_performance_comparison(&platform, ParsecApp::Canneal, 24, 500.0).unwrap();
    assert!(!canneal.ntc_wins());
    // The STC comparison points really are in the STC region.
    assert_eq!(
        x264.stc_two_threads.region,
        darksil_power::OperatingRegion::SuperThreshold
    );
}

/// Figure 5 headline numbers: ≈37 % dark at 220 W and ≈46 % at 185 W
/// for the most power-hungry application at maximum V/f.
#[test]
fn figure5_headline_dark_fractions() {
    let est = DarkSiliconEstimator::for_node(TechnologyNode::Nm16).unwrap();
    let f = Hertz::from_ghz(3.6);
    let e220 = est
        .under_power_budget(ParsecApp::Swaptions, 8, f, Watts::new(220.0))
        .unwrap();
    let e185 = est
        .under_power_budget(ParsecApp::Swaptions, 8, f, Watts::new(185.0))
        .unwrap();
    assert!(
        (0.30..=0.48).contains(&e220.dark_fraction),
        "220 W gives {}",
        e220.dark_fraction
    );
    assert!(
        (0.42..=0.58).contains(&e185.dark_fraction),
        "185 W gives {}",
        e185.dark_fraction
    );
    assert!(e185.dark_fraction > e220.dark_fraction);
}

/// Figure 8: contiguous 52 cores at ≈196 W exceed the threshold; the
/// thermally patterned 60 cores at ≈226 W stay below it.
#[test]
fn figure8_patterning_lights_more_cores() {
    let platform = Platform::for_node(TechnologyNode::Nm16).unwrap();
    let level = platform.max_level();

    let contiguous = place_contiguous(
        platform.floorplan(),
        &Workload::uniform(ParsecApp::Swaptions, 13, 4).unwrap(),
        level,
    )
    .unwrap();
    let patterned = place_thermal_aware(
        &platform,
        &Workload::uniform(ParsecApp::Swaptions, 15, 4).unwrap(),
        level,
    )
    .unwrap();

    let t_contig = contiguous.peak_temperature(&platform).unwrap();
    let t_pattern = patterned.peak_temperature(&platform).unwrap();
    assert!(t_contig > platform.t_dtm(), "contiguous peak {t_contig}");
    assert!(t_pattern <= platform.t_dtm(), "patterned peak {t_pattern}");
    assert!(patterned.active_core_count() > contiguous.active_core_count());
}

/// Figure 9: DsRem clearly outperforms TDPmap on application mixes.
#[test]
fn figure9_dsrem_beats_tdpmap() {
    let platform = Platform::for_node(TechnologyNode::Nm16).unwrap();
    let workload = Workload::parsec_mix(14, 8).unwrap();
    let tdp = Watts::new(185.0);
    let a = TdpMap::new(tdp).map(&platform, &workload).unwrap();
    let b = DsRem::new(tdp).unwrap().map(&platform, &workload).unwrap();
    let speedup = b.total_gips(&platform) / a.total_gips(&platform);
    assert!(speedup > 1.3, "DsRem speed-up only {speedup}");
    assert!(b.peak_temperature(&platform).unwrap() <= platform.t_dtm() + 0.2);
}

/// Figure 10: TSP-budgeted performance keeps rising across nodes even
/// as the dark fraction grows 20 % → 30 % → 40 %.
#[test]
fn figure10_performance_rises_despite_dark_silicon() {
    let cases = [
        (TechnologyNode::Nm16, 0.20),
        (TechnologyNode::Nm11, 0.30),
        (TechnologyNode::Nm8, 0.40),
    ];
    let mut last = 0.0;
    for (node, dark) in cases {
        let est = DarkSiliconEstimator::for_node(node).unwrap();
        let perf = tsp_eval::tsp_performance(&est, dark).unwrap();
        assert!(perf.total_gips.value() > last);
        last = perf.total_gips.value();
    }
}

/// Figure 7: characteristics-aware DVFS beats the nominal-frequency
/// scenario for every application at both 16 nm and 11 nm.
#[test]
fn figure7_dvfs_scenario_wins_everywhere() {
    for node in [TechnologyNode::Nm16, TechnologyNode::Nm11] {
        let est = DarkSiliconEstimator::for_node(node).unwrap();
        for app in ParsecApp::ALL {
            let c = scenarios::compare(&est, app, Watts::new(185.0)).unwrap();
            assert!(c.gain() >= 1.0, "{node}/{app}: gain {}", c.gain());
        }
    }
}
