//! Analytical core performance and power sampling — the workspace's
//! stand-in for gem5 + McPAT (see DESIGN.md §2).
//!
//! The paper's tool flow (Figure 1) runs Parsec applications on
//! out-of-order Alpha 21264 cores in gem5 and extracts power through
//! McPAT, all at 22 nm. Downstream, only three aggregates are consumed:
//!
//! 1. **IPC as a function of frequency** per application — captured here
//!    by an interval-analysis-style model ([`CoreModel`]): a core-bound
//!    CPI floor set by issue width and the application's inherent ILP,
//!    plus a memory-stall term whose *cycle* cost grows linearly with
//!    frequency (DRAM latency is fixed in nanoseconds). This yields the
//!    saturating performance curves that make memory-bound applications
//!    (canneal) benefit little from DVFS — the ILP/TLP distinction §3.3
//!    builds on.
//! 2. **Power samples** for fitting Eq. (1) — produced by
//!    [`McPatSampler`], which evaluates a ground-truth Eq. (1) model and
//!    adds deterministic, bounded pseudo-measurement noise (Figure 3's
//!    "Experimental Values").
//! 3. **Core area** — 9.6 mm² at 22 nm, re-exported from
//!    `darksil-power`'s scaling table.
//!
//! The analytic model is itself validated against a trace-driven
//! out-of-order *window simulator* ([`WindowSimulator`]): synthetic
//! instruction streams with controlled dependency distances and miss
//! ratios are executed cycle by cycle, and [`derive_profile`] extracts
//! the analytic parameters from two simulated clock frequencies — the
//! same two-point fit one would run against gem5.
//!
//! # Examples
//!
//! ```
//! use darksil_archsim::{CoreModel, TraceProfile};
//! use darksil_units::Hertz;
//!
//! let core = CoreModel::alpha_21264();
//! let compute_bound = TraceProfile::new(3.2, 0.0003, 60.0)?;
//! let memory_bound = TraceProfile::new(1.6, 0.02, 60.0)?;
//!
//! let f = Hertz::from_ghz(3.0);
//! assert!(core.ipc(&compute_bound, f) > core.ipc(&memory_bound, f));
//! # Ok::<(), darksil_archsim::ArchSimError>(())
//! ```
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

mod core_model;
mod error;
mod mcpat;
mod trace_sim;

pub use core_model::{CoreModel, TraceProfile};
pub use error::ArchSimError;
pub use mcpat::{McPatSampler, SampleSweep};
pub use trace_sim::{derive_profile, Op, SyntheticTrace, WindowSimulator};
