//! Trace-driven out-of-order window simulation.
//!
//! The analytic [`CoreModel`](crate::CoreModel) consumes a
//! [`TraceProfile`] — two numbers (inherent ILP, long-latency misses
//! per instruction). gem5 derives those from executing real programs;
//! this module closes the loop for the stand-in: a [`SyntheticTrace`]
//! generates an instruction stream with controlled dependency distances
//! and memory behaviour, a [`WindowSimulator`] executes it through an
//! issue-width/instruction-window model cycle by cycle, and
//! [`derive_profile`] fits the analytic `CPI(f) = cpi₀ + m·f` model to
//! two simulated frequencies — exactly how a profile would be extracted
//! from gem5 runs.
//!
//! # Examples
//!
//! ```
//! use darksil_archsim::{derive_profile, SyntheticTrace, WindowSimulator};
//! use darksil_units::Hertz;
//!
//! let trace = SyntheticTrace::generate(20_000, 0.01, 4.0, 42)?;
//! let sim = WindowSimulator::alpha_21264();
//! let profile = derive_profile(&sim, &trace)?;
//!
//! // The fitted profile predicts the simulator at an unseen frequency.
//! let f = Hertz::from_ghz(3.0);
//! let simulated = sim.ipc(&trace, f);
//! let core = darksil_archsim::CoreModel::alpha_21264();
//! let predicted = core.ipc(&profile, f);
//! assert!((simulated - predicted).abs() / simulated < 0.25);
//! # Ok::<(), darksil_archsim::ArchSimError>(())
//! ```

use darksil_units::Hertz;

use crate::{ArchSimError, CoreModel, TraceProfile};

/// One instruction of a synthetic trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Op {
    /// Distance (in instructions) to the producer this op depends on;
    /// 0 means no register dependency.
    pub dep_distance: u32,
    /// Whether the op is a long-latency (off-chip) load.
    pub is_miss: bool,
}

/// A synthetic instruction stream with controlled ILP and memory
/// behaviour.
#[derive(Debug, Clone, PartialEq)]
pub struct SyntheticTrace {
    ops: Vec<Op>,
    miss_ratio: f64,
}

impl SyntheticTrace {
    /// Generates `len` instructions: each depends on a producer at a
    /// geometric-ish distance with mean `dep_distance_mean` (larger =
    /// more ILP), and each is an off-chip miss with probability
    /// `miss_ratio`. Deterministic per seed.
    ///
    /// # Errors
    ///
    /// Returns [`ArchSimError::InvalidParameter`] for an empty length,
    /// a ratio outside `[0, 1]`, or a non-positive mean distance.
    pub fn generate(
        len: usize,
        miss_ratio: f64,
        dep_distance_mean: f64,
        seed: u64,
    ) -> Result<Self, ArchSimError> {
        if len == 0 {
            return Err(ArchSimError::EmptySweep);
        }
        if !(0.0..=1.0).contains(&miss_ratio) {
            return Err(ArchSimError::InvalidParameter {
                name: "miss_ratio",
                value: miss_ratio,
            });
        }
        if dep_distance_mean <= 0.0 || !dep_distance_mean.is_finite() {
            return Err(ArchSimError::InvalidParameter {
                name: "dep_distance_mean",
                value: dep_distance_mean,
            });
        }
        let mut rng = Lcg::new(seed);
        let ops = (0..len)
            .map(|i| {
                // Geometric distance with the requested mean, capped at
                // the instruction's position.
                let u = rng.next_unit().max(1e-12);
                let dist = (-u.ln() * dep_distance_mean).ceil() as u32;
                Op {
                    dep_distance: dist.min(i as u32),
                    is_miss: rng.next_unit() < miss_ratio,
                }
            })
            .collect();
        Ok(Self { ops, miss_ratio })
    }

    /// Number of instructions.
    #[must_use]
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the trace is empty (never true for generated traces).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// The instructions.
    #[must_use]
    pub fn ops(&self) -> &[Op] {
        &self.ops
    }

    /// The requested miss ratio.
    #[must_use]
    pub fn miss_ratio(&self) -> f64 {
        self.miss_ratio
    }
}

/// A cycle-stepped out-of-order window model: up to `issue_width`
/// instructions issue per cycle from a reorder window of
/// `window_size`, each once its producer has completed. ALU latency is
/// one cycle; misses take `mem_latency_ns` converted to cycles at the
/// simulated clock.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WindowSimulator {
    issue_width: usize,
    window_size: usize,
    mem_latency_ns: f64,
}

impl WindowSimulator {
    /// The paper's core: 4-wide, 64-entry window, 60 ns off-chip
    /// latency.
    #[must_use]
    pub fn alpha_21264() -> Self {
        Self {
            issue_width: 4,
            window_size: 64,
            mem_latency_ns: 60.0,
        }
    }

    /// Builds a custom simulator.
    ///
    /// # Errors
    ///
    /// Returns [`ArchSimError::InvalidParameter`] for zero width/window
    /// or negative latency.
    pub fn new(
        issue_width: usize,
        window_size: usize,
        mem_latency_ns: f64,
    ) -> Result<Self, ArchSimError> {
        if issue_width == 0 {
            return Err(ArchSimError::InvalidParameter {
                name: "issue_width",
                value: 0.0,
            });
        }
        if window_size == 0 {
            return Err(ArchSimError::InvalidParameter {
                name: "window_size",
                value: 0.0,
            });
        }
        if mem_latency_ns < 0.0 || !mem_latency_ns.is_finite() {
            return Err(ArchSimError::InvalidParameter {
                name: "mem_latency_ns",
                value: mem_latency_ns,
            });
        }
        Ok(Self {
            issue_width,
            window_size,
            mem_latency_ns,
        })
    }

    /// Simulates the trace at clock `f` and returns total cycles.
    ///
    /// # Panics
    ///
    /// Panics if the trace is empty (generated traces never are).
    #[must_use]
    pub fn cycles(&self, trace: &SyntheticTrace, f: Hertz) -> u64 {
        assert!(!trace.is_empty(), "cannot simulate an empty trace");
        let miss_latency = (self.mem_latency_ns * f.as_ghz()).ceil().max(1.0) as u64;
        let n = trace.len();
        // completion_cycle[i] = cycle at which instruction i's result is
        // available.
        let mut done = vec![0_u64; n];
        let mut cycle: u64 = 0;
        let mut head = 0; // oldest un-issued instruction
        let mut issued = vec![false; n];

        while head < n {
            // Issue up to width instructions from the window whose
            // producers completed.
            let mut slots = self.issue_width;
            let window_end = (head + self.window_size).min(n);
            for i in head..window_end {
                if slots == 0 {
                    break;
                }
                if issued[i] {
                    continue;
                }
                let op = trace.ops()[i];
                let ready = if op.dep_distance == 0 || op.dep_distance as usize > i {
                    true
                } else {
                    let producer = i - op.dep_distance as usize;
                    done[producer] <= cycle
                };
                if ready {
                    issued[i] = true;
                    let latency = if op.is_miss { miss_latency } else { 1 };
                    done[i] = cycle + latency;
                    slots -= 1;
                }
            }
            // Retire in order: move the head past issued instructions
            // whose results are done (simplified commit).
            while head < n && issued[head] && done[head] <= cycle + 1 {
                head += 1;
            }
            cycle += 1;
            // Skip idle gaps: if nothing can issue until some producer
            // finishes, jump the clock (keeps simulation O(n)).
            if head < n && !issued[head] {
                let op = trace.ops()[head];
                if op.dep_distance > 0 && (op.dep_distance as usize) <= head {
                    let producer = head - op.dep_distance as usize;
                    if done[producer] > cycle {
                        cycle = done[producer];
                    }
                }
            } else if head < n && issued[head] && done[head] > cycle {
                cycle = done[head];
            }
        }
        cycle.max(1)
    }

    /// Instructions per cycle at clock `f`.
    ///
    /// # Panics
    ///
    /// Panics if the trace is empty.
    #[must_use]
    pub fn ipc(&self, trace: &SyntheticTrace, f: Hertz) -> f64 {
        trace.len() as f64 / self.cycles(trace, f) as f64
    }
}

/// Fits the analytic two-parameter model `CPI(f) = cpi₀ + m·f` to two
/// simulated frequencies (1 GHz and 4 GHz) and returns the equivalent
/// [`TraceProfile`] for [`CoreModel::alpha_21264`] — the gem5-style
/// profile-extraction step.
///
/// # Errors
///
/// Returns [`ArchSimError::InvalidParameter`] if the fitted parameters
/// are out of range (degenerate traces).
pub fn derive_profile(
    sim: &WindowSimulator,
    trace: &SyntheticTrace,
) -> Result<TraceProfile, ArchSimError> {
    let f_lo = Hertz::from_ghz(1.0);
    let f_hi = Hertz::from_ghz(4.0);
    let cpi_lo = 1.0 / sim.ipc(trace, f_lo);
    let cpi_hi = 1.0 / sim.ipc(trace, f_hi);
    // CPI(f) = cpi0 + m·f_ghz  ⇒  m = ΔCPI/Δf.
    let m = ((cpi_hi - cpi_lo) / 3.0).max(0.0);
    let cpi0 = (cpi_lo - m * 1.0).max(0.05);

    // Invert the CoreModel parameterisation (for the alpha core:
    // overlap 0.4, 60 ns): m = 0.6 · mpi · 60  ⇒  mpi = m / 36.
    let core = CoreModel::alpha_21264();
    let mpi = m / 36.0;
    let ilp = 1.0 / cpi0;
    let profile = TraceProfile::new(ilp.min(16.0), mpi, 60.0)?;
    // Self-check: the analytic model should land near the simulation at
    // the fitting points.
    debug_assert!((core.cpi(&profile, f_lo) - cpi_lo).abs() < 0.5);
    Ok(profile)
}

/// Minimal LCG — deterministic, dependency-free.
#[derive(Debug)]
struct Lcg {
    state: u64,
}

impl Lcg {
    fn new(seed: u64) -> Self {
        Self {
            state: seed.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1),
        }
    }

    fn next_u64(&mut self) -> u64 {
        self.state = self
            .state
            .wrapping_mul(6_364_136_223_846_793_005)
            .wrapping_add(1_442_695_040_888_963_407);
        self.state
    }

    fn next_unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1_u64 << 53) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn compute_trace() -> SyntheticTrace {
        SyntheticTrace::generate(20_000, 0.0, 8.0, 7).expect("test value")
    }

    fn memory_trace() -> SyntheticTrace {
        SyntheticTrace::generate(20_000, 0.02, 8.0, 7).expect("test value")
    }

    #[test]
    fn generation_is_deterministic_and_sized() {
        let a = SyntheticTrace::generate(1000, 0.1, 3.0, 1).expect("test value");
        let b = SyntheticTrace::generate(1000, 0.1, 3.0, 1).expect("test value");
        assert_eq!(a, b);
        assert_eq!(a.len(), 1000);
        assert!(!a.is_empty());
        // Measured miss ratio close to requested.
        let misses = a.ops().iter().filter(|o| o.is_miss).count();
        let ratio = misses as f64 / 1000.0;
        assert!((ratio - 0.1).abs() < 0.04, "ratio {ratio}");
    }

    #[test]
    fn ipc_respects_issue_width() {
        let sim = WindowSimulator::alpha_21264();
        let ipc = sim.ipc(&compute_trace(), Hertz::from_ghz(2.0));
        assert!(ipc > 0.5 && ipc <= 4.0, "IPC {ipc}");
    }

    #[test]
    fn longer_dependencies_raise_ipc() {
        let sim = WindowSimulator::alpha_21264();
        let serial = SyntheticTrace::generate(10_000, 0.0, 1.01, 3).expect("test value");
        let parallel = SyntheticTrace::generate(10_000, 0.0, 12.0, 3).expect("test value");
        let f = Hertz::from_ghz(2.0);
        assert!(
            sim.ipc(&parallel, f) > sim.ipc(&serial, f),
            "parallel {} vs serial {}",
            sim.ipc(&parallel, f),
            sim.ipc(&serial, f)
        );
    }

    #[test]
    fn memory_traffic_hurts_more_at_high_frequency() {
        let sim = WindowSimulator::alpha_21264();
        let t = memory_trace();
        let ipc_slow = sim.ipc(&t, Hertz::from_ghz(1.0));
        let ipc_fast = sim.ipc(&t, Hertz::from_ghz(4.0));
        assert!(ipc_fast < ipc_slow, "{ipc_fast} !< {ipc_slow}");
        // While a pure-compute trace is frequency-invariant in IPC.
        let c = compute_trace();
        let c_slow = sim.ipc(&c, Hertz::from_ghz(1.0));
        let c_fast = sim.ipc(&c, Hertz::from_ghz(4.0));
        assert!((c_slow - c_fast).abs() < 0.05 * c_slow);
    }

    #[test]
    fn derived_profile_predicts_unseen_frequency() {
        let sim = WindowSimulator::alpha_21264();
        let core = CoreModel::alpha_21264();
        for trace in [compute_trace(), memory_trace()] {
            let profile = derive_profile(&sim, &trace).expect("test value");
            for ghz in [1.5, 2.5, 3.5] {
                let f = Hertz::from_ghz(ghz);
                let simulated = sim.ipc(&trace, f);
                let predicted = core.ipc(&profile, f);
                let rel = (simulated - predicted).abs() / simulated;
                assert!(
                    rel < 0.25,
                    "at {ghz} GHz: sim {simulated} vs fit {predicted}"
                );
            }
        }
    }

    #[test]
    fn derived_profile_separates_compute_from_memory() {
        let sim = WindowSimulator::alpha_21264();
        let p_compute = derive_profile(&sim, &compute_trace()).expect("test value");
        let p_memory = derive_profile(&sim, &memory_trace()).expect("test value");
        assert!(p_memory.misses_per_instr > p_compute.misses_per_instr);
    }

    #[test]
    fn invalid_parameters_rejected() {
        assert!(SyntheticTrace::generate(0, 0.1, 3.0, 1).is_err());
        assert!(SyntheticTrace::generate(10, 1.5, 3.0, 1).is_err());
        assert!(SyntheticTrace::generate(10, 0.1, 0.0, 1).is_err());
        assert!(WindowSimulator::new(0, 64, 60.0).is_err());
        assert!(WindowSimulator::new(4, 0, 60.0).is_err());
        assert!(WindowSimulator::new(4, 64, -1.0).is_err());
    }

    #[test]
    fn narrow_machine_is_slower() {
        let trace = compute_trace();
        let f = Hertz::from_ghz(2.0);
        let wide = WindowSimulator::alpha_21264();
        let narrow = WindowSimulator::new(1, 64, 60.0).expect("test value");
        assert!(wide.ipc(&trace, f) > narrow.ipc(&trace, f));
        assert!(narrow.ipc(&trace, f) <= 1.0 + 1e-9);
    }
}
