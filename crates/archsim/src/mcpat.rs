//! McPAT-style power sampling with deterministic measurement noise.
//!
//! Figure 3 of the paper plots "Experimental Values" from McPAT against
//! the fitted Eq. (1) model. [`McPatSampler`] plays McPAT's role: it
//! evaluates a ground-truth [`CorePowerModel`] over a frequency sweep
//! and perturbs each sample with bounded, deterministic pseudo-noise
//! (xorshift-based, seedable) so that repeated runs are reproducible
//! and the downstream fit is exercised on realistic data.

use darksil_power::{CorePowerModel, PowerError, PowerSample};
use darksil_units::{Celsius, Hertz};

use crate::ArchSimError;

/// A frequency sweep specification for sampling.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SampleSweep {
    /// Lowest frequency.
    pub f_min: Hertz,
    /// Highest frequency (inclusive).
    pub f_max: Hertz,
    /// Number of evenly spaced points.
    pub points: usize,
    /// Activity factor applied to every sample.
    pub alpha: f64,
    /// Core temperature during the sweep.
    pub temperature: Celsius,
}

impl SampleSweep {
    /// The Figure 3 sweep: single thread (α = 1) from 0.5 to 4 GHz at a
    /// typical 60 °C die temperature.
    #[must_use]
    pub fn figure3() -> Self {
        Self {
            f_min: Hertz::from_ghz(0.5),
            f_max: Hertz::from_ghz(4.0),
            points: 15,
            alpha: 1.0,
            temperature: Celsius::new(60.0),
        }
    }
}

/// Deterministic power sampler standing in for McPAT.
#[derive(Debug, Clone)]
pub struct McPatSampler {
    truth: CorePowerModel,
    noise_fraction: f64,
    seed: u64,
}

impl McPatSampler {
    /// Creates a sampler around a ground-truth model with relative noise
    /// amplitude `noise_fraction` (e.g. `0.03` for ±3 %).
    ///
    /// # Errors
    ///
    /// Returns [`ArchSimError::InvalidParameter`] if the noise fraction
    /// is negative, non-finite, or ≥ 1.
    pub fn new(
        truth: CorePowerModel,
        noise_fraction: f64,
        seed: u64,
    ) -> Result<Self, ArchSimError> {
        if !(0.0..1.0).contains(&noise_fraction) {
            return Err(ArchSimError::InvalidParameter {
                name: "noise_fraction",
                value: noise_fraction,
            });
        }
        Ok(Self {
            truth,
            noise_fraction,
            seed,
        })
    }

    /// The ground-truth model being sampled.
    #[must_use]
    pub fn truth(&self) -> &CorePowerModel {
        &self.truth
    }

    /// Runs a sweep and returns one [`PowerSample`] per point.
    ///
    /// # Errors
    ///
    /// Returns [`ArchSimError::EmptySweep`] for a zero-point or inverted
    /// sweep; voltage-derivation failures surface as
    /// [`ArchSimError::InvalidParameter`].
    pub fn sample(&self, sweep: &SampleSweep) -> Result<Vec<PowerSample>, ArchSimError> {
        if sweep.points == 0 || sweep.f_min > sweep.f_max {
            return Err(ArchSimError::EmptySweep);
        }
        let mut rng = XorShift64::new(self.seed);
        let mut samples = Vec::with_capacity(sweep.points);
        for i in 0..sweep.points {
            let t = if sweep.points == 1 {
                0.0
            } else {
                i as f64 / (sweep.points - 1) as f64
            };
            let f = sweep.f_min + (sweep.f_max - sweep.f_min) * t;
            let sample = self
                .sample_point(sweep.alpha, f, sweep.temperature, &mut rng)
                .map_err(|e| power_to_archsim(&e))?;
            samples.push(sample);
        }
        Ok(samples)
    }

    /// Samples a single operating point.
    ///
    /// # Errors
    ///
    /// Surfaces voltage-derivation failures as
    /// [`ArchSimError::InvalidParameter`].
    pub fn sample_one(
        &self,
        alpha: f64,
        f: Hertz,
        temperature: Celsius,
    ) -> Result<PowerSample, ArchSimError> {
        let mut rng = XorShift64::new(self.seed ^ f.value().to_bits());
        self.sample_point(alpha, f, temperature, &mut rng)
            .map_err(|e| power_to_archsim(&e))
    }

    fn sample_point(
        &self,
        alpha: f64,
        f: Hertz,
        temperature: Celsius,
        rng: &mut XorShift64,
    ) -> Result<PowerSample, PowerError> {
        let vdd = self.truth.vf().voltage_for(f)?;
        let clean = self.truth.power(alpha, vdd, f, temperature);
        let noise = 1.0 + self.noise_fraction * rng.next_symmetric();
        Ok(PowerSample {
            alpha,
            vdd,
            frequency: f,
            temperature,
            power: clean * noise,
        })
    }
}

fn power_to_archsim(e: &PowerError) -> ArchSimError {
    match e {
        PowerError::FrequencyOutOfRange { ghz } => ArchSimError::InvalidParameter {
            name: "frequency_ghz",
            value: *ghz,
        },
        PowerError::VoltageBelowThreshold { volts, .. } => ArchSimError::InvalidParameter {
            name: "vdd",
            value: *volts,
        },
        PowerError::InvalidParameter { name, value } => ArchSimError::InvalidParameter {
            name,
            value: *value,
        },
        PowerError::FitFailed { .. } => ArchSimError::EmptySweep,
    }
}

/// Minimal xorshift64* generator — deterministic, dependency-free.
#[derive(Debug, Clone)]
struct XorShift64 {
    state: u64,
}

impl XorShift64 {
    fn new(seed: u64) -> Self {
        Self { state: seed.max(1) }
    }

    fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform in `[-1, 1]`.
    fn next_symmetric(&mut self) -> f64 {
        (self.next_u64() >> 12) as f64 / (1_u64 << 52) as f64 * 2.0 - 1.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use darksil_power::{LeakageModel, VfRelation};

    fn sampler() -> McPatSampler {
        McPatSampler::new(CorePowerModel::x264_22nm(), 0.03, 42).expect("test value")
    }

    #[test]
    fn sampling_is_deterministic() {
        let a = sampler()
            .sample(&SampleSweep::figure3())
            .expect("test value");
        let b = sampler()
            .sample(&SampleSweep::figure3())
            .expect("test value");
        assert_eq!(a.len(), 15);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.power, y.power);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = sampler()
            .sample(&SampleSweep::figure3())
            .expect("test value");
        let b = McPatSampler::new(CorePowerModel::x264_22nm(), 0.03, 7)
            .expect("test value")
            .sample(&SampleSweep::figure3())
            .expect("test value");
        assert!(a.iter().zip(&b).any(|(x, y)| x.power != y.power));
    }

    #[test]
    fn noise_is_bounded() {
        let s = sampler();
        let samples = s.sample(&SampleSweep::figure3()).expect("test value");
        for sample in samples {
            let clean = s.truth().power(
                sample.alpha,
                sample.vdd,
                sample.frequency,
                sample.temperature,
            );
            let rel = (sample.power / clean - 1.0).abs();
            assert!(rel <= 0.03 + 1e-12, "noise {rel}");
        }
    }

    #[test]
    fn fit_on_samples_reproduces_figure3() {
        // End-to-end: sample like McPAT, fit Eq. (1), check the fit
        // tracks the samples — the Figure 3 story.
        let s = sampler();
        let samples = s.sample(&SampleSweep::figure3()).expect("test value");
        let fitted = CorePowerModel::fit(
            &samples,
            &LeakageModel::alpha_core_22nm(),
            VfRelation::paper_22nm(),
        )
        .expect("test value");
        let rmse = fitted.rmse(&samples);
        let mean_power: f64 =
            samples.iter().map(|s| s.power.value()).sum::<f64>() / samples.len() as f64;
        assert!(
            rmse.value() / mean_power < 0.05,
            "relative RMSE {}",
            rmse.value() / mean_power
        );
    }

    #[test]
    fn zero_noise_matches_truth_exactly() {
        let s = McPatSampler::new(CorePowerModel::x264_22nm(), 0.0, 1).expect("test value");
        let samples = s.sample(&SampleSweep::figure3()).expect("test value");
        for sample in samples {
            let clean = s.truth().power(
                sample.alpha,
                sample.vdd,
                sample.frequency,
                sample.temperature,
            );
            assert_eq!(sample.power, clean);
        }
    }

    #[test]
    fn invalid_sweeps_rejected() {
        let s = sampler();
        let mut sweep = SampleSweep::figure3();
        sweep.points = 0;
        assert_eq!(s.sample(&sweep), Err(ArchSimError::EmptySweep));
        let mut inverted = SampleSweep::figure3();
        inverted.f_min = Hertz::from_ghz(5.0);
        assert_eq!(s.sample(&inverted), Err(ArchSimError::EmptySweep));
        assert!(McPatSampler::new(CorePowerModel::x264_22nm(), 1.5, 1).is_err());
    }

    #[test]
    fn single_point_sweep() {
        let s = sampler();
        let sweep = SampleSweep {
            points: 1,
            ..SampleSweep::figure3()
        };
        let samples = s.sample(&sweep).expect("test value");
        assert_eq!(samples.len(), 1);
        assert_eq!(samples[0].frequency, Hertz::from_ghz(0.5));
    }
}
