//! Interval-analysis-style out-of-order core performance model.

use darksil_units::Hertz;

use crate::ArchSimError;

/// Microarchitectural parameters of the modelled core.
///
/// Defaults mimic the Alpha 21264 configuration the paper simulates in
/// gem5: a 4-wide out-of-order core with a unified L2 and off-chip DRAM.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CoreModel {
    /// Maximum instructions issued per cycle.
    issue_width: f64,
    /// Fraction of memory-stall latency hidden by out-of-order
    /// execution (0 = blocking core, 1 = perfect overlap).
    mlp_overlap: f64,
}

impl CoreModel {
    /// The paper's core: 4-wide OoO Alpha 21264 with moderate
    /// memory-level parallelism.
    #[must_use]
    pub fn alpha_21264() -> Self {
        Self {
            issue_width: 4.0,
            mlp_overlap: 0.4,
        }
    }

    /// Builds a custom core model.
    ///
    /// # Errors
    ///
    /// Returns [`ArchSimError::InvalidParameter`] for a non-positive
    /// issue width or an overlap outside `[0, 1)`.
    pub fn new(issue_width: f64, mlp_overlap: f64) -> Result<Self, ArchSimError> {
        if issue_width <= 0.0 || !issue_width.is_finite() {
            return Err(ArchSimError::InvalidParameter {
                name: "issue_width",
                value: issue_width,
            });
        }
        if !(0.0..1.0).contains(&mlp_overlap) {
            return Err(ArchSimError::InvalidParameter {
                name: "mlp_overlap",
                value: mlp_overlap,
            });
        }
        Ok(Self {
            issue_width,
            mlp_overlap,
        })
    }

    /// Cycles per instruction for `trace` at clock frequency `f`:
    ///
    /// `CPI(f) = max(1/issue_width, 1/ilp) + (1 − overlap)·mpki·lat_ns·f`
    ///
    /// The first term is the core-bound floor (the narrower of the
    /// machine and the program's inherent ILP); the second converts the
    /// fixed-nanosecond memory latency into cycles, which *grows* with
    /// frequency — the memory wall that caps DVFS benefit for
    /// memory-bound applications.
    #[must_use]
    pub fn cpi(&self, trace: &TraceProfile, f: Hertz) -> f64 {
        let core_cpi = (1.0 / self.issue_width).max(1.0 / trace.ilp_limit);
        let mem_cycles_per_instr =
            (1.0 - self.mlp_overlap) * trace.misses_per_instr * trace.mem_latency_ns * f.as_ghz();
        core_cpi + mem_cycles_per_instr
    }

    /// Instructions per cycle (the reciprocal of [`CoreModel::cpi`]).
    #[must_use]
    pub fn ipc(&self, trace: &TraceProfile, f: Hertz) -> f64 {
        1.0 / self.cpi(trace, f)
    }

    /// Single-core throughput in giga-instructions per second:
    /// `IPC(f) · f`.
    #[must_use]
    pub fn gips(&self, trace: &TraceProfile, f: Hertz) -> f64 {
        self.ipc(trace, f) * f.as_ghz()
    }
}

impl Default for CoreModel {
    fn default() -> Self {
        Self::alpha_21264()
    }
}

/// Application-dependent trace characteristics extracted from a
/// (simulated) execution: inherent ILP and memory behaviour.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceProfile {
    /// Inherent instruction-level parallelism: the IPC the program could
    /// sustain on an infinitely wide machine with a perfect memory
    /// system.
    pub ilp_limit: f64,
    /// Long-latency (off-chip) misses per instruction.
    pub misses_per_instr: f64,
    /// Average miss latency in nanoseconds.
    pub mem_latency_ns: f64,
}

impl TraceProfile {
    /// Builds a trace profile.
    ///
    /// # Errors
    ///
    /// Returns [`ArchSimError::InvalidParameter`] for non-positive ILP,
    /// negative miss rate, or negative latency.
    pub fn new(
        ilp_limit: f64,
        misses_per_instr: f64,
        mem_latency_ns: f64,
    ) -> Result<Self, ArchSimError> {
        if ilp_limit <= 0.0 || !ilp_limit.is_finite() {
            return Err(ArchSimError::InvalidParameter {
                name: "ilp_limit",
                value: ilp_limit,
            });
        }
        if misses_per_instr < 0.0 || !misses_per_instr.is_finite() {
            return Err(ArchSimError::InvalidParameter {
                name: "misses_per_instr",
                value: misses_per_instr,
            });
        }
        if mem_latency_ns < 0.0 || !mem_latency_ns.is_finite() {
            return Err(ArchSimError::InvalidParameter {
                name: "mem_latency_ns",
                value: mem_latency_ns,
            });
        }
        Ok(Self {
            ilp_limit,
            misses_per_instr,
            mem_latency_ns,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn compute_bound() -> TraceProfile {
        TraceProfile::new(3.2, 0.0003, 60.0).expect("test value")
    }

    fn memory_bound() -> TraceProfile {
        TraceProfile::new(1.6, 0.02, 60.0).expect("test value")
    }

    #[test]
    fn ipc_bounded_by_issue_width_and_ilp() {
        let core = CoreModel::alpha_21264();
        let wide_ilp = TraceProfile::new(10.0, 0.0, 60.0).expect("test value");
        // With no misses and ILP above the machine width, IPC = width.
        assert!((core.ipc(&wide_ilp, Hertz::from_ghz(2.0)) - 4.0).abs() < 1e-12);
        let narrow = TraceProfile::new(2.0, 0.0, 60.0).expect("test value");
        assert!((core.ipc(&narrow, Hertz::from_ghz(2.0)) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn ipc_decreases_with_frequency_due_to_memory_wall() {
        let core = CoreModel::alpha_21264();
        let t = memory_bound();
        let slow = core.ipc(&t, Hertz::from_ghz(1.0));
        let fast = core.ipc(&t, Hertz::from_ghz(4.0));
        assert!(fast < slow, "{fast} !< {slow}");
    }

    #[test]
    fn gips_saturates_for_memory_bound_apps() {
        let core = CoreModel::alpha_21264();
        let t = memory_bound();
        let g2 = core.gips(&t, Hertz::from_ghz(2.0));
        let g4 = core.gips(&t, Hertz::from_ghz(4.0));
        // Doubling frequency must yield clearly sub-2× throughput.
        assert!(g4 / g2 < 1.6, "ratio {}", g4 / g2);
        // While the compute-bound app scales nearly linearly.
        let c = compute_bound();
        let r = core.gips(&c, Hertz::from_ghz(4.0)) / core.gips(&c, Hertz::from_ghz(2.0));
        assert!(r > 1.8, "ratio {r}");
    }

    #[test]
    fn gips_is_monotonic_in_frequency() {
        // Even memory-bound programs never get *slower* in absolute terms.
        let core = CoreModel::alpha_21264();
        for trace in [compute_bound(), memory_bound()] {
            let mut last = 0.0;
            for tenths in 2..45 {
                let g = core.gips(&trace, Hertz::from_ghz(tenths as f64 / 10.0));
                assert!(g >= last);
                last = g;
            }
        }
    }

    #[test]
    fn alpha_21264_ipc_in_plausible_range() {
        let core = CoreModel::alpha_21264();
        let ipc = core.ipc(&compute_bound(), Hertz::from_ghz(2.0));
        assert!(ipc > 1.5 && ipc < 4.0, "IPC {ipc}");
    }

    #[test]
    fn invalid_parameters() {
        assert!(CoreModel::new(0.0, 0.4).is_err());
        assert!(CoreModel::new(4.0, 1.0).is_err());
        assert!(CoreModel::new(4.0, -0.1).is_err());
        assert!(TraceProfile::new(0.0, 0.01, 60.0).is_err());
        assert!(TraceProfile::new(2.0, -0.01, 60.0).is_err());
        assert!(TraceProfile::new(2.0, 0.01, f64::NAN).is_err());
    }

    #[test]
    fn default_is_alpha() {
        assert_eq!(CoreModel::default(), CoreModel::alpha_21264());
    }
}
