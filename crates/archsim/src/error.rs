//! Error type for the architectural simulator stand-in.

use std::error::Error;
use std::fmt;

/// Errors from core-model construction and sampling.
#[derive(Debug, Clone, PartialEq)]
pub enum ArchSimError {
    /// A microarchitectural or trace parameter was out of range.
    InvalidParameter {
        /// Parameter name.
        name: &'static str,
        /// Offending value.
        value: f64,
    },
    /// A sweep definition was empty or inverted.
    EmptySweep,
}

impl fmt::Display for ArchSimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::InvalidParameter { name, value } => {
                write!(f, "invalid simulator parameter {name} = {value}")
            }
            Self::EmptySweep => write!(f, "sample sweep contains no operating points"),
        }
    }
}

impl Error for ArchSimError {}

impl From<ArchSimError> for darksil_robust::DarksilError {
    fn from(e: ArchSimError) -> Self {
        Self::config(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages() {
        assert!(ArchSimError::InvalidParameter {
            name: "issue_width",
            value: 0.0
        }
        .to_string()
        .contains("issue_width"));
        assert_eq!(
            ArchSimError::EmptySweep.to_string(),
            "sample sweep contains no operating points"
        );
    }
}
