//! Reproducer corpus: minimal failing cases persisted as
//! `darksil-repro-v1` JSON, replayed by the regression suite forever
//! after.
//!
//! A reproducer is self-contained — the full (shrunk) scenario plus the
//! fault schedule and inject mode — so replay does not depend on the
//! generator staying bit-compatible across releases. The seed and case
//! index are recorded for provenance: `darksil fuzz --seed S --cases N`
//! with the recorded values regenerates the unshrunk ancestor.

use std::io;
use std::path::{Path, PathBuf};

use darksil_scenario::Scenario;

use crate::gen::{ArenaCase, FaultSpec, InjectMode};
use crate::oracle::Oracle;
use crate::runner::{run_single, CaseOutcome};

/// Schema tag on every corpus file.
pub const REPRO_SCHEMA: &str = "darksil-repro-v1";

/// One persisted minimal reproducer.
#[derive(Debug, Clone, PartialEq)]
pub struct Reproducer {
    /// Always [`REPRO_SCHEMA`].
    pub schema: String,
    /// Fuzz seed the ancestor case was generated from.
    pub seed: u64,
    /// Index of the ancestor case within that seed's population.
    pub case_index: usize,
    /// Name of the violated invariant (from the oracle catalogue).
    pub invariant: String,
    /// Human-readable violation detail at capture time.
    pub detail: String,
    /// The shrunk scenario that still trips the invariant.
    pub scenario: Scenario,
    /// Inject mode (`nan` / `time` / `tsp`), for deliberate violations.
    pub inject: Option<String>,
    /// Fault schedule, when the violation needs the fault path.
    pub faults: Option<FaultSpec>,
}

darksil_json::impl_json!(struct Reproducer {
    schema,
    seed,
    case_index,
    invariant,
    detail,
    scenario,
} opt {
    inject,
    faults,
});

impl Reproducer {
    /// Rebuilds the runnable case this reproducer captures.
    #[must_use]
    pub fn to_case(&self) -> ArenaCase {
        ArenaCase {
            index: self.case_index,
            scenario: self.scenario.clone(),
            faults: self.faults.clone(),
            inject: self.inject.as_deref().and_then(InjectMode::parse),
        }
    }

    /// The deterministic corpus filename for this reproducer.
    #[must_use]
    pub fn filename(&self) -> String {
        format!("{}-{}.json", self.invariant, self.scenario.name)
    }
}

fn invalid(msg: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

/// Writes `repro` into `dir` (created if absent) under its
/// deterministic filename and returns the path.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn save_reproducer(dir: &Path, repro: &Reproducer) -> io::Result<PathBuf> {
    std::fs::create_dir_all(dir)?;
    let path = dir.join(repro.filename());
    let mut text = darksil_json::to_string_pretty(repro);
    if !text.ends_with('\n') {
        text.push('\n');
    }
    std::fs::write(&path, text)?;
    Ok(path)
}

/// Loads every `*.json` reproducer in `dir`, sorted by filename so the
/// replay order is stable. A missing directory is an empty corpus.
///
/// # Errors
///
/// Fails on unreadable files, malformed JSON, or a schema mismatch —
/// a corrupt corpus should fail loudly, not shrink silently.
pub fn load_corpus(dir: &Path) -> io::Result<Vec<(PathBuf, Reproducer)>> {
    if !dir.exists() {
        return Ok(Vec::new());
    }
    let mut paths: Vec<PathBuf> = std::fs::read_dir(dir)?
        .filter_map(Result::ok)
        .map(|entry| entry.path())
        .filter(|p| p.extension().is_some_and(|e| e == "json"))
        .collect();
    paths.sort();
    let mut corpus = Vec::with_capacity(paths.len());
    for path in paths {
        let text = std::fs::read_to_string(&path)?;
        let repro: Reproducer = darksil_json::from_str(&text)
            .map_err(|e| invalid(format!("{}: {e}", path.display())))?;
        if repro.schema != REPRO_SCHEMA {
            return Err(invalid(format!(
                "{}: unsupported reproducer schema '{}' (expected '{REPRO_SCHEMA}')",
                path.display(),
                repro.schema
            )));
        }
        corpus.push((path, repro));
    }
    Ok(corpus)
}

/// Replays one reproducer serially and verdicts it — the regression
/// gate asserts the recorded invariant is still caught.
#[must_use]
pub fn replay(repro: &Reproducer, oracle: &Oracle) -> CaseOutcome {
    run_single(&repro.to_case(), oracle)
}

#[cfg(test)]
mod tests {
    use super::*;
    use darksil_scenario::{ExperimentSpec, WorkloadSpec};

    fn sample() -> Reproducer {
        Reproducer {
            schema: REPRO_SCHEMA.to_string(),
            seed: 42,
            case_index: 7,
            invariant: "no-nan".into(),
            detail: "field `poisoned_c` of `arena.inject` is not finite".into(),
            scenario: Scenario {
                name: "fuzz-7".into(),
                node: 22,
                cores: Some(9),
                t_dtm_celsius: None,
                variation_seed: None,
                leakage_sigma: None,
                frequency_sigma: None,
                workload: vec![WorkloadSpec {
                    app: "blackscholes".into(),
                    instances: 1,
                    threads: 1,
                }],
                experiment: ExperimentSpec::Thermal {
                    frequency_ghz: None,
                },
            },
            inject: Some("nan".into()),
            faults: None,
        }
    }

    #[test]
    fn round_trips_through_json() {
        let repro = sample();
        let text = darksil_json::to_string_pretty(&repro);
        let back: Reproducer = darksil_json::from_str(&text).expect("parses");
        assert_eq!(back, repro);
    }

    #[test]
    fn save_then_load_corpus() {
        let dir = std::env::temp_dir().join(format!("darksil-corpus-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let repro = sample();
        let path = save_reproducer(&dir, &repro).expect("saves");
        assert_eq!(
            path.file_name().and_then(|n| n.to_str()),
            Some("no-nan-fuzz-7.json")
        );
        let corpus = load_corpus(&dir).expect("loads");
        assert_eq!(corpus.len(), 1);
        assert_eq!(corpus[0].1, repro);
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }

    #[test]
    fn missing_directory_is_an_empty_corpus() {
        let corpus = load_corpus(Path::new("/nonexistent/darksil-corpus")).expect("empty corpus");
        assert!(corpus.is_empty());
    }

    #[test]
    fn schema_mismatch_fails_loudly() {
        let dir = std::env::temp_dir().join(format!("darksil-corpus-bad-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut repro = sample();
        repro.schema = "darksil-repro-v9".into();
        save_reproducer(&dir, &repro).expect("saves");
        let err = load_corpus(&dir).expect_err("schema mismatch must fail");
        assert!(err.to_string().contains("darksil-repro-v9"), "{err}");
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }

    #[test]
    fn replay_catches_the_recorded_invariant() {
        let _guard = crate::testutil::recorder_lock();
        let repro = sample();
        let outcome = replay(&repro, &Oracle::default());
        assert!(
            outcome
                .violations
                .iter()
                .any(|v| v.invariant == repro.invariant),
            "{:?}",
            outcome.violations
        );
    }
}
