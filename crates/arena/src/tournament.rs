//! Policy tournament: DsRem vs TDP mapping vs the boosting controller,
//! fought over the generated population.
//!
//! Every base case spawns one contender per policy — same platform,
//! same workload, only the experiment differs — and the contenders are
//! ranked per case by total throughput, with a thermal violation (or a
//! run error) disqualifying. Points are Borda-style (2 for a win, 1 for
//! second, 0 otherwise; disqualified contenders score nothing), ties
//! broken by policy name, so the leaderboard is a pure function of the
//! seed and case count: identical bytes at any `--jobs` value.

use crate::gen::{generate_cases, ArenaCase};
use crate::oracle::Oracle;
use crate::runner::{run_cases, CaseOutcome};
use darksil_scenario::ExperimentSpec;

/// Schema tag on the leaderboard JSON artefact.
pub const LEADERBOARD_SCHEMA: &str = "darksil-leaderboard-v1";

/// The contenders, in the fixed order they enter every case.
const POLICIES: &[&str] = &["dsrem", "tdpmap", "boost"];

/// TDP handed to the mapping policies when the base case's experiment
/// does not name one.
const DEFAULT_TDP_W: f64 = 100.0;

/// Aggregate score of one policy over the whole tournament.
#[derive(Debug, Clone, PartialEq)]
pub struct PolicyScore {
    /// Policy name (`dsrem`, `tdpmap`, `boost`).
    pub policy: String,
    /// Borda points over all cases (2 per win, 1 per second place).
    pub points: u64,
    /// Outright case wins.
    pub wins: u64,
    /// Cases where the policy was disqualified (thermal violation or
    /// run error).
    pub disqualified: u64,
    /// Mean throughput over the policy's qualified runs, GIPS.
    pub mean_gips: f64,
    /// Mean peak die temperature over qualified runs, °C.
    pub mean_peak_c: f64,
    /// Mean throttle residency over runs that produced a boost trace.
    pub mean_throttle_residency: Option<f64>,
}

darksil_json::impl_json!(struct PolicyScore {
    policy,
    points,
    wins,
    disqualified,
    mean_gips,
    mean_peak_c,
} opt {
    mean_throttle_residency,
});

/// The tournament result: scores sorted by points (descending), ties
/// broken by policy name.
#[derive(Debug, Clone, PartialEq)]
pub struct Leaderboard {
    /// Always [`LEADERBOARD_SCHEMA`].
    pub schema: String,
    /// Fuzz seed the population was generated from.
    pub seed: u64,
    /// Number of base cases fought.
    pub cases: u64,
    /// Per-policy aggregate scores, ranked.
    pub scores: Vec<PolicyScore>,
}

darksil_json::impl_json!(struct Leaderboard { schema, seed, cases, scores });

/// The TDP shared by a base case's mapping contenders.
fn case_tdp(case: &ArenaCase) -> f64 {
    match &case.scenario.experiment {
        ExperimentSpec::PowerBudget { tdp_watts } | ExperimentSpec::Policy { tdp_watts, .. } => {
            *tdp_watts
        }
        _ => DEFAULT_TDP_W,
    }
}

/// One contender: the base case with its experiment swapped for
/// `policy` (probes and injections stripped — the tournament measures
/// policies, not the fault path).
fn contender(base: &ArenaCase, position: usize, policy: &str) -> ArenaCase {
    let experiment = match policy {
        "boost" => ExperimentSpec::Boost {
            duration_s: 0.4,
            period_s: 0.01,
        },
        _ => ExperimentSpec::Policy {
            policy: policy.to_string(),
            tdp_watts: case_tdp(base),
        },
    };
    let mut scenario = base.scenario.clone();
    scenario.name = format!("{}-{policy}", scenario.name);
    scenario.experiment = experiment;
    ArenaCase {
        index: position,
        scenario,
        faults: None,
        inject: None,
    }
}

/// Per-case ranking: qualified contenders first, by throughput
/// descending, ties by policy name; disqualified contenders last.
/// Returns `(policy, borda_points, disqualified)` per contender.
fn rank_case(entries: &[(&str, &CaseOutcome)]) -> Vec<(String, u64, bool)> {
    let mut order: Vec<usize> = (0..entries.len()).collect();
    let gips = |o: &CaseOutcome| o.report.as_ref().map_or(0.0, |r| r.total_gips);
    let dq = |o: &CaseOutcome| {
        o.error.is_some() || o.report.as_ref().is_none_or(|r| r.thermal_violation)
    };
    order.sort_by(|&a, &b| {
        let (pa, oa) = entries[a];
        let (pb, ob) = entries[b];
        dq(oa)
            .cmp(&dq(ob))
            .then(
                gips(ob)
                    .partial_cmp(&gips(oa))
                    .unwrap_or(std::cmp::Ordering::Equal),
            )
            .then(pa.cmp(pb))
    });
    let mut out = vec![(String::new(), 0, false); entries.len()];
    for (rank, &i) in order.iter().enumerate() {
        let (policy, outcome) = entries[i];
        let disqualified = dq(outcome);
        let points = if disqualified {
            0
        } else {
            (2_usize.saturating_sub(rank)) as u64
        };
        out[i] = (policy.to_string(), points, disqualified);
    }
    out
}

/// Fights the tournament for `seed` over `cases` base cases using
/// `jobs` workers and returns the ranked leaderboard.
#[must_use]
pub fn run_tournament(seed: u64, cases: usize, jobs: usize, oracle: &Oracle) -> Leaderboard {
    let base = generate_cases(seed, cases, None);
    let mut contenders = Vec::with_capacity(base.len() * POLICIES.len());
    for case in &base {
        for policy in POLICIES {
            contenders.push(contender(case, contenders.len(), policy));
        }
    }
    let (outcomes, _stream) = run_cases(&contenders, jobs, oracle);

    struct Tally {
        points: u64,
        wins: u64,
        disqualified: u64,
        qualified: u64,
        gips_sum: f64,
        peak_sum: f64,
        residency_sum: f64,
        residency_n: u64,
    }
    let mut tallies: Vec<(String, Tally)> = POLICIES
        .iter()
        .map(|p| {
            (
                (*p).to_string(),
                Tally {
                    points: 0,
                    wins: 0,
                    disqualified: 0,
                    qualified: 0,
                    gips_sum: 0.0,
                    peak_sum: 0.0,
                    residency_sum: 0.0,
                    residency_n: 0,
                },
            )
        })
        .collect();

    for group in outcomes.chunks(POLICIES.len()) {
        let entries: Vec<(&str, &CaseOutcome)> =
            POLICIES.iter().copied().zip(group.iter()).collect();
        for (policy, points, disqualified) in rank_case(&entries) {
            let Some((_, tally)) = tallies.iter_mut().find(|(p, _)| *p == policy) else {
                continue;
            };
            tally.points += points;
            if points == 2 {
                tally.wins += 1;
            }
            if disqualified {
                tally.disqualified += 1;
            }
        }
        for (policy, outcome) in &entries {
            let Some((_, tally)) = tallies.iter_mut().find(|(p, _)| p == policy) else {
                continue;
            };
            if let Some(report) = &outcome.report {
                if outcome.error.is_none() && !report.thermal_violation {
                    tally.qualified += 1;
                    tally.gips_sum += report.total_gips;
                    tally.peak_sum += report.peak_temperature_c;
                }
            }
            if let Some(residency) = outcome.throttle_residency {
                tally.residency_sum += residency;
                tally.residency_n += 1;
            }
        }
    }

    #[allow(clippy::cast_precision_loss)]
    let mut scores: Vec<PolicyScore> = tallies
        .into_iter()
        .map(|(policy, t)| PolicyScore {
            policy,
            points: t.points,
            wins: t.wins,
            disqualified: t.disqualified,
            mean_gips: if t.qualified > 0 {
                t.gips_sum / t.qualified as f64
            } else {
                0.0
            },
            mean_peak_c: if t.qualified > 0 {
                t.peak_sum / t.qualified as f64
            } else {
                0.0
            },
            mean_throttle_residency: if t.residency_n > 0 {
                Some(t.residency_sum / t.residency_n as f64)
            } else {
                None
            },
        })
        .collect();
    scores.sort_by(|a, b| b.points.cmp(&a.points).then(a.policy.cmp(&b.policy)));

    Leaderboard {
        schema: LEADERBOARD_SCHEMA.to_string(),
        seed,
        cases: cases as u64,
        scores,
    }
}

/// Renders the leaderboard as one self-contained HTML page — inline
/// styles, no scripts, byte-deterministic — for the nightly artefact.
#[must_use]
pub fn leaderboard_html(board: &Leaderboard) -> String {
    let mut rows = String::new();
    for (rank, s) in board.scores.iter().enumerate() {
        let residency = s
            .mean_throttle_residency
            .map_or_else(|| "—".to_string(), |r| format!("{:.1}%", r * 100.0));
        rows.push_str(&format!(
            "<tr><td>{}</td><td>{}</td><td>{}</td><td>{}</td><td>{}</td>\
             <td>{:.2}</td><td>{:.2}</td><td>{}</td></tr>\n",
            rank + 1,
            s.policy,
            s.points,
            s.wins,
            s.disqualified,
            s.mean_gips,
            s.mean_peak_c,
            residency,
        ));
    }
    format!(
        "<!DOCTYPE html>\n<html lang=\"en\">\n<head>\n<meta charset=\"utf-8\">\n\
         <title>darksil tournament — seed {seed}</title>\n\
         <style>\n\
         body{{font-family:system-ui,sans-serif;margin:2rem;color:#1a1a2e}}\n\
         table{{border-collapse:collapse;min-width:40rem}}\n\
         th,td{{border:1px solid #c8c8d8;padding:.4rem .8rem;text-align:right}}\n\
         th{{background:#eef;text-align:right}}\n\
         td:nth-child(2),th:nth-child(2){{text-align:left}}\n\
         tr:first-child td{{font-weight:bold}}\n\
         </style>\n</head>\n<body>\n\
         <h1>darksil policy tournament</h1>\n\
         <p>seed {seed} · {cases} cases · 2/1/0 points per case, \
         thermal violations disqualify</p>\n\
         <table>\n<tr><th>#</th><th>policy</th><th>points</th><th>wins</th>\
         <th>DQ</th><th>mean GIPS</th><th>mean peak °C</th><th>throttle</th></tr>\n\
         {rows}</table>\n</body>\n</html>\n",
        seed = board.seed,
        cases = board.cases,
        rows = rows,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome(gips: f64, violation: bool) -> CaseOutcome {
        CaseOutcome {
            index: 0,
            name: "t".into(),
            report: Some(darksil_scenario::ScenarioReport {
                name: "t".into(),
                active_cores: 4,
                dark_fraction: 0.5,
                total_gips: gips,
                total_power_w: 50.0,
                peak_temperature_c: 70.0,
                thermal_violation: violation,
                notes: vec![],
            }),
            error: None,
            violations: vec![],
            throttle_residency: None,
        }
    }

    #[test]
    fn ranking_rewards_throughput_and_disqualifies_violations() {
        let a = outcome(10.0, false);
        let b = outcome(20.0, false);
        let c = outcome(30.0, true); // fastest but thermally violating
        let ranked = rank_case(&[("dsrem", &a), ("tdpmap", &b), ("boost", &c)]);
        assert_eq!(ranked[0], ("dsrem".to_string(), 1, false));
        assert_eq!(ranked[1], ("tdpmap".to_string(), 2, false));
        assert_eq!(ranked[2], ("boost".to_string(), 0, true));
    }

    #[test]
    fn ties_break_by_policy_name() {
        let a = outcome(10.0, false);
        let b = outcome(10.0, false);
        let ranked = rank_case(&[("tdpmap", &a), ("dsrem", &b)]);
        // Equal throughput: "dsrem" < "tdpmap" lexicographically.
        assert_eq!(ranked[0], ("tdpmap".to_string(), 1, false));
        assert_eq!(ranked[1], ("dsrem".to_string(), 2, false));
    }

    #[test]
    fn tournament_is_deterministic_across_jobs() {
        let _guard = crate::testutil::recorder_lock();
        let oracle = Oracle::default();
        let serial = run_tournament(5, 3, 1, &oracle);
        let parallel = run_tournament(5, 3, 4, &oracle);
        assert_eq!(serial, parallel);
        assert_eq!(
            darksil_json::to_string_pretty(&serial),
            darksil_json::to_string_pretty(&parallel)
        );
        assert_eq!(serial.schema, LEADERBOARD_SCHEMA);
        assert_eq!(serial.scores.len(), 3);
        // Ranked by points.
        assert!(serial.scores.windows(2).all(|w| w[0].points >= w[1].points));
    }

    #[test]
    fn leaderboard_round_trips_and_renders() {
        let board = Leaderboard {
            schema: LEADERBOARD_SCHEMA.into(),
            seed: 9,
            cases: 2,
            scores: vec![PolicyScore {
                policy: "dsrem".into(),
                points: 4,
                wins: 2,
                disqualified: 0,
                mean_gips: 12.5,
                mean_peak_c: 71.0,
                mean_throttle_residency: Some(0.25),
            }],
        };
        let text = darksil_json::to_string_pretty(&board);
        let back: Leaderboard = darksil_json::from_str(&text).expect("parses");
        assert_eq!(back, board);
        let html = leaderboard_html(&board);
        assert!(html.contains("<!DOCTYPE html>"));
        assert!(html.contains("dsrem"));
        assert!(html.contains("25.0%"));
        assert!(!html.contains("<script"));
    }
}
