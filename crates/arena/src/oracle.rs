//! The event-stream verdict oracle: physical invariants over a drained
//! [`EventStream`].
//!
//! The oracle never looks at simulator internals — only at the emitted
//! domain events, which makes it equally applicable to a live fuzz run,
//! a persisted `events_<run>.jsonl` file (`darksil events verify`), and
//! a corpus replay. Invariants (names are stable, they appear in CLI
//! output and corpus files):
//!
//! | invariant              | statement                                                        |
//! |------------------------|------------------------------------------------------------------|
//! | `no-nan`               | no emitted numeric field is NaN or ±Inf                          |
//! | `monotone-time`        | `t_s` strictly increases within a policy segment                 |
//! | `temp-bound`           | `thermal.step` peak ≤ threshold + policy overshoot margin        |
//! | `watermark-alternation`| `thermal.watermark` directions alternate, starting `above`       |
//! | `watermark-windows`    | every threshold crossing is bracketed by a watermark event       |
//! | `tsp-monotone`         | TSP per-core budget never grows with the active-core count       |
//! | `energy-conserved`     | `boost.summary` energy equals the integrated `thermal.step` power|
//! | `dtm-failsafe`         | DTM sustains no more than it admitted; hidden fraction in [0, 1] |
//! | `throttle-residency`   | derived throttle residency is finite and within [0, 1]           |
//!
//! Policy segments are delimited by `boost.run` / `boost.summary`
//! marker events: every policy run restarts its simulated clock, so the
//! time, temperature, watermark and energy checks are scoped between
//! the markers.

use darksil_obs::{EventRecord, EventStream, EventValue};

/// Stable names of every invariant the oracle enforces.
pub const INVARIANTS: &[&str] = &[
    "no-nan",
    "monotone-time",
    "temp-bound",
    "watermark-alternation",
    "watermark-windows",
    "tsp-monotone",
    "energy-conserved",
    "dtm-failsafe",
    "throttle-residency",
];

/// One invariant violation: the stable invariant name, the submission
/// key of the **first** offending event, and a human-readable detail
/// (which includes the total occurrence count for noisy invariants).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Stable invariant name from [`INVARIANTS`].
    pub invariant: String,
    /// Submission key (`seq`) of the first offending event.
    pub seq: Vec<u64>,
    /// What went wrong, with values.
    pub detail: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let seq: Vec<String> = self.seq.iter().map(u64::to_string).collect();
        write!(
            f,
            "{} at seq [{}]: {}",
            self.invariant,
            seq.join(","),
            self.detail
        )
    }
}

/// Oracle configuration. The defaults are calibrated against the
/// shipped policies; loosen them only with a measured justification.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Oracle {
    /// Allowed overshoot above the boosting controller's threshold, in
    /// °C. One 200 MHz step from just below the threshold heats a small
    /// die by ~4 °C at a 20 ms period; 6 °C bounds that with margin
    /// while still catching runaway heating.
    pub boost_overshoot_margin_c: f64,
    /// Allowed overshoot for the constant-frequency policy, whose
    /// steady state sits at or below the threshold by construction.
    pub constant_overshoot_margin_c: f64,
    /// Relative tolerance for the energy cross-check. Both sides sum
    /// the same `power · Δt` terms in the same order, so only
    /// serialisation round-off separates them.
    pub energy_rel_tol: f64,
}

impl Default for Oracle {
    fn default() -> Self {
        Self {
            boost_overshoot_margin_c: 6.0,
            constant_overshoot_margin_c: 0.5,
            energy_rel_tol: 1e-6,
        }
    }
}

/// A `boost.run` … `boost.summary` segment in flight.
struct Segment {
    policy: String,
    threshold_c: Option<f64>,
    last_t: Option<f64>,
    /// Watermark window state: currently above the threshold?
    above: bool,
    /// A threshold crossing seen in `thermal.step` that still awaits
    /// its `thermal.watermark` event: `(expected_above, seq)`.
    pending_crossing: Option<(bool, Vec<u64>)>,
    /// Σ `power_w · Δt` over the segment's `thermal.step` events.
    energy_j: f64,
    last_step_t: f64,
}

impl Segment {
    fn new(policy: String, threshold_c: Option<f64>) -> Self {
        Self {
            policy,
            threshold_c,
            last_t: None,
            above: false,
            pending_crossing: None,
            energy_j: 0.0,
            last_step_t: 0.0,
        }
    }
}

/// Accumulates at most one reported [`Violation`] per invariant (the
/// first), counting the rest — a single broken bound otherwise floods
/// the report with thousands of identical lines.
#[derive(Default)]
struct Findings {
    found: Vec<(Violation, usize)>,
}

impl Findings {
    fn record(&mut self, invariant: &str, seq: &[u64], detail: String) {
        match self
            .found
            .iter_mut()
            .find(|(v, _)| v.invariant == invariant)
        {
            Some((_, count)) => *count += 1,
            None => self.found.push((
                Violation {
                    invariant: invariant.to_string(),
                    seq: seq.to_vec(),
                    detail,
                },
                1,
            )),
        }
    }

    fn into_violations(self) -> Vec<Violation> {
        let mut out: Vec<Violation> = self
            .found
            .into_iter()
            .map(|(mut v, count)| {
                if count > 1 {
                    v.detail.push_str(&format!(" ({count} occurrences)"));
                }
                v
            })
            .collect();
        out.sort_by(|a, b| a.seq.cmp(&b.seq));
        out
    }
}

impl Oracle {
    /// Checks every invariant over `stream` and returns the violations,
    /// ordered by the first offending event's submission key. An empty
    /// result is a clean verdict.
    #[must_use]
    pub fn verify(&self, stream: &EventStream) -> Vec<Violation> {
        let mut f = Findings::default();
        let mut segment: Option<Segment> = None;
        // Time cursor for `thermal.step` events outside any segment
        // (tools that drive `TransientSim` directly).
        let mut free_last_t: Option<f64> = None;
        // TSP probe ladder cursor: `(active, per_core_w)` of the last
        // probe; a non-increasing `active` starts a fresh ladder.
        let mut tsp_last: Option<(f64, f64)> = None;

        for event in &stream.events {
            self.check_fields(event, &mut f);
            match event.kind.as_str() {
                "boost.run" => {
                    let policy = event.str_field("policy").unwrap_or("?").to_string();
                    segment = Some(Segment::new(policy, event.f64_field("threshold_c")));
                }
                "boost.summary" => {
                    if let Some(seg) = segment.take() {
                        self.close_segment(&seg, event, &mut f);
                    }
                }
                "thermal.step" => {
                    let t_s = event.f64_field("t_s");
                    let peak = event.f64_field("peak_c");
                    match segment.as_mut() {
                        Some(seg) => {
                            Self::check_step_in_segment(self, seg, event, t_s, peak, &mut f);
                        }
                        None => {
                            if let (Some(t), Some(last)) = (t_s, free_last_t) {
                                if t <= last {
                                    f.record(
                                        "monotone-time",
                                        &event.seq,
                                        format!("t_s went from {last} to {t}"),
                                    );
                                }
                            }
                            free_last_t = t_s.or(free_last_t);
                        }
                    }
                }
                "thermal.watermark" => {
                    if let Some(seg) = segment.as_mut() {
                        Self::check_watermark(seg, event, &mut f);
                    }
                }
                // `tsp.budget` fires for arbitrary mappings, whose budgets
                // are not comparable; only the arena's own ascending
                // worst-case ladder (`arena.tsp_probe`) is checked.
                "arena.tsp_probe" => {
                    let active = event.f64_field("active");
                    let budget = event.f64_field("per_core_w");
                    if let (Some(active), Some(budget)) = (active, budget) {
                        if let Some((last_active, last_budget)) = tsp_last {
                            if active > last_active && budget > last_budget * (1.0 + 1e-9) {
                                f.record(
                                    "tsp-monotone",
                                    &event.seq,
                                    format!(
                                        "TSP({active}) = {budget:.4} W/core exceeds \
                                         TSP({last_active}) = {last_budget:.4} W/core"
                                    ),
                                );
                            }
                        }
                        tsp_last = Some((active, budget));
                    }
                }
                "arena.dtm_probe" => Self::check_dtm(event, &mut f),
                _ => {}
            }
        }
        if let Some(seg) = segment {
            // Unterminated segment (the policy run errored out): the
            // pending-crossing check still applies to what was emitted.
            if let Some((_, seq)) = &seg.pending_crossing {
                f.record(
                    "watermark-windows",
                    seq,
                    "threshold crossing never got its thermal.watermark event".to_string(),
                );
            }
        }
        self.check_residency(stream, &mut f);
        f.into_violations()
    }

    /// `no-nan` over every numeric field of every event.
    fn check_fields(&self, event: &EventRecord, f: &mut Findings) {
        for (name, value) in &event.fields {
            let bad = match value {
                EventValue::F64(x) => !x.is_finite(),
                EventValue::F64s(xs) => xs.iter().any(|x| !x.is_finite()),
                _ => false,
            };
            if bad {
                f.record(
                    "no-nan",
                    &event.seq,
                    format!("field `{name}` of `{}` is not finite", event.kind),
                );
            }
        }
    }

    fn check_step_in_segment(
        &self,
        seg: &mut Segment,
        event: &EventRecord,
        t_s: Option<f64>,
        peak: Option<f64>,
        f: &mut Findings,
    ) {
        if let Some(t) = t_s {
            if let Some(last) = seg.last_t {
                if t <= last {
                    f.record(
                        "monotone-time",
                        &event.seq,
                        format!("t_s went from {last} to {t} within a {} run", seg.policy),
                    );
                }
            }
            if let Some(power) = event.f64_field("power_w") {
                seg.energy_j += power * (t - seg.last_step_t);
                seg.last_step_t = t;
            }
            seg.last_t = Some(t);
        }
        let Some(threshold) = seg.threshold_c else {
            return;
        };
        let Some(peak) = peak else { return };
        let margin = if seg.policy == "constant" {
            self.constant_overshoot_margin_c
        } else {
            self.boost_overshoot_margin_c
        };
        if peak > threshold + margin {
            f.record(
                "temp-bound",
                &event.seq,
                format!(
                    "peak {peak:.2} °C exceeds threshold {threshold} °C + {margin} °C \
                     margin in a {} run",
                    seg.policy
                ),
            );
        }
        // Watermark window bookkeeping: a crossing observed in the step
        // stream must be announced by the very next watermark event.
        let is_above = peak > threshold;
        if let Some((expected, seq)) = seg.pending_crossing.take() {
            // The previous crossing was never announced; a new step
            // arriving first proves the event is missing.
            f.record(
                "watermark-windows",
                &seq,
                format!(
                    "crossing to {} was never announced by thermal.watermark",
                    if expected { "above" } else { "below" }
                ),
            );
            seg.above = expected; // resynchronise
        }
        if is_above != seg.above {
            seg.pending_crossing = Some((is_above, event.seq.clone()));
        }
    }

    fn check_watermark(seg: &mut Segment, event: &EventRecord, f: &mut Findings) {
        let Some(direction) = event.str_field("direction") else {
            return;
        };
        let is_above = direction == "above";
        if is_above == seg.above {
            f.record(
                "watermark-alternation",
                &event.seq,
                format!(
                    "consecutive `{direction}` watermark events (they must alternate, \
                     starting above)"
                ),
            );
        }
        match seg.pending_crossing.take() {
            Some((expected, seq)) if expected != is_above => {
                f.record(
                    "watermark-windows",
                    &seq,
                    format!(
                        "step stream crossed to {} but the watermark says {direction}",
                        if expected { "above" } else { "below" }
                    ),
                );
            }
            Some(_) => {}
            None => {
                // A watermark with no crossing in the step stream. The
                // very first `above` of a segment is legitimate: the
                // crossing step itself emits `thermal.step` before the
                // watermark, so the pending slot was just consumed —
                // reaching here means the directions track covers it.
                f.record(
                    "watermark-windows",
                    &event.seq,
                    format!("`{direction}` watermark without a matching step-stream crossing"),
                );
            }
        }
        seg.above = is_above;
    }

    fn close_segment(&self, seg: &Segment, summary: &EventRecord, f: &mut Findings) {
        if let Some((expected, seq)) = &seg.pending_crossing {
            f.record(
                "watermark-windows",
                seq,
                format!(
                    "crossing to {} was never announced by thermal.watermark",
                    if *expected { "above" } else { "below" }
                ),
            );
        }
        let Some(declared) = summary.f64_field("energy_j") else {
            return;
        };
        let integrated = seg.energy_j;
        let scale = declared.abs().max(integrated.abs()).max(1e-12);
        if ((declared - integrated) / scale).abs() > self.energy_rel_tol {
            f.record(
                "energy-conserved",
                &summary.seq,
                format!(
                    "boost.summary declares {declared:.6} J but the thermal.step stream \
                     integrates to {integrated:.6} J over a {} run",
                    seg.policy
                ),
            );
        }
    }

    fn check_dtm(event: &EventRecord, f: &mut Findings) {
        let admitted = event.f64_field("admitted_dark");
        let sustained = event.f64_field("sustained_dark");
        let hidden = event.f64_field("hidden_dark");
        if let (Some(a), Some(s)) = (admitted, sustained) {
            if s < a - 1e-9 {
                f.record(
                    "dtm-failsafe",
                    &event.seq,
                    format!("DTM reduced dark silicon ({a:.4} → {s:.4}); it can only add"),
                );
            }
        }
        if let Some(h) = hidden {
            if !(0.0..=1.0).contains(&h) {
                f.record(
                    "dtm-failsafe",
                    &event.seq,
                    format!("hidden dark fraction {h:.4} outside [0, 1]"),
                );
            }
        }
    }

    fn check_residency(&self, stream: &EventStream, f: &mut Findings) {
        let Some(residency) = stream.throttle_residency() else {
            return;
        };
        if !residency.is_finite() || !(0.0..=1.0).contains(&residency) {
            let seq = stream
                .of_kind("boost.transition")
                .next()
                .map(|e| e.seq.clone())
                .unwrap_or_default();
            f.record(
                "throttle-residency",
                &seq,
                format!("derived throttle residency {residency} outside [0, 1]"),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(seq: Vec<u64>, kind: &str, fields: Vec<(&str, EventValue)>) -> EventRecord {
        EventRecord {
            seq,
            kind: kind.to_string(),
            fields: fields
                .into_iter()
                .map(|(n, v)| (n.to_string(), v))
                .collect(),
        }
    }

    fn stream(events: Vec<EventRecord>) -> EventStream {
        EventStream { events }
    }

    #[test]
    fn clean_stream_passes() {
        let s = stream(vec![
            ev(
                vec![0],
                "boost.run",
                vec![
                    ("policy", "boosting".into()),
                    ("threshold_c", 60.0.into()),
                    ("period_s", 0.02.into()),
                ],
            ),
            ev(
                vec![1],
                "thermal.step",
                vec![
                    ("t_s", 0.02.into()),
                    ("peak_c", 45.0.into()),
                    ("power_w", 10.0.into()),
                ],
            ),
            ev(
                vec![2],
                "thermal.step",
                vec![
                    ("t_s", 0.04.into()),
                    ("peak_c", 46.0.into()),
                    ("power_w", 10.0.into()),
                ],
            ),
            ev(
                vec![3],
                "boost.summary",
                vec![
                    ("policy", "boosting".into()),
                    ("energy_j", (10.0 * 0.04).into()),
                ],
            ),
        ]);
        assert!(Oracle::default().verify(&s).is_empty());
    }

    #[test]
    fn nan_fields_are_caught() {
        let s = stream(vec![ev(
            vec![0],
            "thermal.step",
            vec![("t_s", 0.01.into()), ("peak_c", f64::NAN.into())],
        )]);
        let v = Oracle::default().verify(&s);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].invariant, "no-nan");
        assert_eq!(v[0].seq, vec![0]);
    }

    #[test]
    fn backwards_time_in_segment_is_caught_once_with_count() {
        let mut events = vec![ev(
            vec![0],
            "boost.run",
            vec![("policy", "boosting".into()), ("threshold_c", 80.0.into())],
        )];
        for (i, t) in [(1_u64, 0.3), (2, 0.2), (3, 0.1)] {
            events.push(ev(
                vec![i],
                "thermal.step",
                vec![("t_s", t.into()), ("peak_c", 50.0.into())],
            ));
        }
        let v = Oracle::default().verify(&stream(events));
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].invariant, "monotone-time");
        assert_eq!(v[0].seq, vec![2]);
        assert!(v[0].detail.contains("2 occurrences"), "{}", v[0].detail);
    }

    #[test]
    fn segments_reset_the_time_cursor() {
        // Two policy runs both starting at t=0 must NOT be a monotone
        // violation — this is exactly what a Boost scenario emits.
        let s = stream(vec![
            ev(
                vec![0],
                "boost.run",
                vec![("policy", "boosting".into()), ("threshold_c", 80.0.into())],
            ),
            ev(
                vec![1],
                "thermal.step",
                vec![("t_s", 0.5.into()), ("peak_c", 50.0.into())],
            ),
            ev(
                vec![2],
                "boost.summary",
                vec![("policy", "boosting".into())],
            ),
            ev(
                vec![3],
                "boost.run",
                vec![("policy", "constant".into()), ("threshold_c", 80.0.into())],
            ),
            ev(
                vec![4],
                "thermal.step",
                vec![("t_s", 0.01.into()), ("peak_c", 50.0.into())],
            ),
            ev(
                vec![5],
                "boost.summary",
                vec![("policy", "constant".into())],
            ),
        ]);
        assert!(Oracle::default().verify(&s).is_empty());
    }

    #[test]
    fn overshoot_beyond_margin_is_caught() {
        let s = stream(vec![
            ev(
                vec![0],
                "boost.run",
                vec![("policy", "constant".into()), ("threshold_c", 60.0.into())],
            ),
            ev(
                vec![1],
                "thermal.step",
                vec![("t_s", 0.02.into()), ("peak_c", 61.0.into())],
            ),
        ]);
        let v = Oracle::default().verify(&stream(s.events.clone()));
        assert!(v.iter().any(|v| v.invariant == "temp-bound"), "{v:?}");
    }

    #[test]
    fn watermark_crossing_and_alternation() {
        // Crossing above at step 2 announced correctly: clean.
        let announced = stream(vec![
            ev(
                vec![0],
                "boost.run",
                vec![("policy", "boosting".into()), ("threshold_c", 60.0.into())],
            ),
            ev(
                vec![1],
                "thermal.step",
                vec![("t_s", 0.02.into()), ("peak_c", 59.0.into())],
            ),
            ev(
                vec![2],
                "thermal.step",
                vec![("t_s", 0.04.into()), ("peak_c", 61.0.into())],
            ),
            ev(
                vec![3],
                "thermal.watermark",
                vec![
                    ("t_s", 0.04.into()),
                    ("peak_c", 61.0.into()),
                    ("threshold_c", 60.0.into()),
                    ("direction", "above".into()),
                ],
            ),
        ]);
        assert!(Oracle::default().verify(&announced).is_empty());

        // The same crossing never announced: watermark-windows.
        let mut missing = announced.clone();
        missing.events.pop();
        missing.events.push(ev(
            vec![3],
            "thermal.step",
            vec![("t_s", 0.06.into()), ("peak_c", 62.0.into())],
        ));
        let v = Oracle::default().verify(&missing);
        assert!(
            v.iter().any(|v| v.invariant == "watermark-windows"),
            "{v:?}"
        );

        // Two `above` events in a row: watermark-alternation.
        let mut doubled = announced.clone();
        doubled.events.push(ev(
            vec![4],
            "thermal.watermark",
            vec![
                ("t_s", 0.06.into()),
                ("peak_c", 62.0.into()),
                ("threshold_c", 60.0.into()),
                ("direction", "above".into()),
            ],
        ));
        let v = Oracle::default().verify(&doubled);
        assert!(
            v.iter().any(|v| v.invariant == "watermark-alternation"),
            "{v:?}"
        );
    }

    #[test]
    fn tsp_ladder_must_be_antitone() {
        let bad = stream(vec![
            ev(
                vec![0],
                "arena.tsp_probe",
                vec![("active", 4_u64.into()), ("per_core_w", 5.0.into())],
            ),
            ev(
                vec![1],
                "arena.tsp_probe",
                vec![("active", 8_u64.into()), ("per_core_w", 6.0.into())],
            ),
        ]);
        let v = Oracle::default().verify(&bad);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].invariant, "tsp-monotone");

        let good = stream(vec![
            ev(
                vec![0],
                "arena.tsp_probe",
                vec![("active", 4_u64.into()), ("per_core_w", 6.0.into())],
            ),
            ev(
                vec![1],
                "arena.tsp_probe",
                vec![("active", 8_u64.into()), ("per_core_w", 5.0.into())],
            ),
            // A fresh ladder may restart higher.
            ev(
                vec![2],
                "arena.tsp_probe",
                vec![("active", 2_u64.into()), ("per_core_w", 9.0.into())],
            ),
        ]);
        assert!(Oracle::default().verify(&good).is_empty());
    }

    #[test]
    fn energy_mismatch_is_caught() {
        let s = stream(vec![
            ev(
                vec![0],
                "boost.run",
                vec![("policy", "boosting".into()), ("threshold_c", 80.0.into())],
            ),
            ev(
                vec![1],
                "thermal.step",
                vec![
                    ("t_s", 0.1.into()),
                    ("peak_c", 50.0.into()),
                    ("power_w", 10.0.into()),
                ],
            ),
            ev(
                vec![2],
                "boost.summary",
                vec![("policy", "boosting".into()), ("energy_j", 99.0.into())],
            ),
        ]);
        let v = Oracle::default().verify(&s);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].invariant, "energy-conserved");
    }

    #[test]
    fn dtm_failsafe_direction() {
        let s = stream(vec![ev(
            vec![0],
            "arena.dtm_probe",
            vec![
                ("admitted_dark", 0.5.into()),
                ("sustained_dark", 0.2.into()),
                ("hidden_dark", (-0.3).into()),
            ],
        )]);
        let v = Oracle::default().verify(&s);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].invariant, "dtm-failsafe");
    }

    #[test]
    fn display_is_readable() {
        let v = Violation {
            invariant: "no-nan".into(),
            seq: vec![0, 3, 1],
            detail: "field `x` of `k` is not finite".into(),
        };
        assert_eq!(
            v.to_string(),
            "no-nan at seq [0,3,1]: field `x` of `k` is not finite"
        );
    }
}
