//! Batch execution: run fuzz cases through the ordinary engine pipeline
//! with events on, then hand each case's slice of the drained stream to
//! the [`Oracle`].
//!
//! Determinism contract: [`run_cases`] fans out over
//! [`Engine::par_map`], whose event fork keys every case's events by
//! submission index. The drained stream — and therefore every verdict
//! and the serialized stream bytes — is identical at any `--jobs`
//! count.
//!
//! The event recorder is process-global, so two concurrent `run_cases`
//! calls in one process would interleave their streams. The CLI is
//! single-threaded and tests serialize on a lock; library callers must
//! do the same.

use darksil_core::dtm::simulate_dtm_with_faults;
use darksil_core::DarkSiliconEstimator;
use darksil_engine::Engine;
use darksil_obs::{EventRecord, EventStream};
use darksil_robust::FaultPlan;
use darksil_scenario::{build_platform, run_scenario, ExperimentSpec, ScenarioReport};
use darksil_tsp::TspCalculator;
use darksil_units::Watts;
use darksil_workload::ParsecApp;

use crate::gen::{ArenaCase, InjectMode};
use crate::oracle::{Oracle, Violation};

/// TDP handed to the DTM probe when the experiment does not name one.
const DEFAULT_PROBE_TDP_W: f64 = 120.0;

/// The per-case verdict, in increasing order of severity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Verdict {
    /// The case ran and every invariant held.
    Pass,
    /// The case could not run to completion (placement, solver or
    /// validation error). Not an invariant violation, but reported.
    Error,
    /// At least one physical invariant was violated.
    Violated,
}

impl Verdict {
    /// The CLI label for this verdict.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Self::Pass => "pass",
            Self::Error => "error",
            Self::Violated => "VIOLATED",
        }
    }
}

/// Everything the arena knows about one executed case.
#[derive(Debug, Clone)]
pub struct CaseOutcome {
    /// Position in the generated population.
    pub index: usize,
    /// Scenario name (`fuzz-<index>` for generated cases).
    pub name: String,
    /// The scenario report, when the run completed.
    pub report: Option<ScenarioReport>,
    /// The run error, when it did not.
    pub error: Option<String>,
    /// Invariant violations found by the oracle, first-offence order.
    pub violations: Vec<Violation>,
    /// Derived throttle residency over the case's own events, when the
    /// case produced a boost trace (the tournament's tie-break stat).
    pub throttle_residency: Option<f64>,
}

impl CaseOutcome {
    /// Collapses the outcome to a [`Verdict`].
    #[must_use]
    pub fn verdict(&self) -> Verdict {
        if !self.violations.is_empty() {
            Verdict::Violated
        } else if self.error.is_some() {
            Verdict::Error
        } else {
            Verdict::Pass
        }
    }
}

/// What one case's execution produced, before the oracle looks at it.
struct CaseRun {
    report: Option<ScenarioReport>,
    error: Option<String>,
}

/// Emits the deliberate violation for `--inject`. Each mode trips
/// exactly one invariant, proving the catch → shrink → persist pipeline
/// without weakening the simulators themselves.
fn emit_injection(mode: InjectMode) {
    match mode {
        InjectMode::Nan => {
            darksil_obs::event("arena.inject", || vec![("poisoned_c", f64::NAN.into())]);
        }
        InjectMode::Time => {
            darksil_obs::event("boost.run", || {
                vec![("policy", "injected".into()), ("period_s", 0.01.into())]
            });
            darksil_obs::event("thermal.step", || {
                vec![("t_s", 2.0.into()), ("peak_c", 40.0.into())]
            });
            darksil_obs::event("thermal.step", || {
                vec![("t_s", 1.0.into()), ("peak_c", 40.0.into())]
            });
            darksil_obs::event("boost.summary", || vec![("policy", "injected".into())]);
        }
        InjectMode::Tsp => {
            darksil_obs::event("arena.tsp_probe", || {
                vec![("active", 1_u64.into()), ("per_core_w", 5.0.into())]
            });
            darksil_obs::event("arena.tsp_probe", || {
                vec![("active", 2_u64.into()), ("per_core_w", 9.0.into())]
            });
        }
    }
}

/// Probes TSP antitonicity on the case's own platform: the worst-case
/// per-core budget at an ascending ladder of active-core counts, each
/// emitted as `arena.tsp_probe` for the oracle's `tsp-monotone` check.
fn emit_tsp_probes(case: &ArenaCase) {
    let Ok(platform) = build_platform(&case.scenario) else {
        return; // run_scenario reports the build error
    };
    let cores = platform.core_count();
    let calc = TspCalculator::new(platform.floorplan(), platform.thermal(), platform.t_dtm());
    let mut ladder: Vec<usize> = vec![1, cores / 4, cores / 2, 3 * cores / 4, cores];
    ladder.retain(|&m| m >= 1);
    ladder.dedup();
    for m in ladder {
        let Ok(budget) = calc.worst_case(m) else {
            continue;
        };
        let per_core_w = budget.value();
        if !per_core_w.is_finite() {
            continue; // degenerate budget, not comparable
        }
        darksil_obs::event("arena.tsp_probe", move || {
            vec![("active", m.into()), ("per_core_w", per_core_w.into())]
        });
    }
}

/// Probes the DTM failsafe under the case's fault schedule: admit under
/// a TDP, let DTM power instances down, and emit the dark-silicon
/// bookkeeping as `arena.dtm_probe` for the `dtm-failsafe` check.
fn emit_dtm_probe(case: &ArenaCase, faults: &FaultPlan) {
    let Ok(platform) = build_platform(&case.scenario) else {
        return;
    };
    let Some(line) = case.scenario.workload.first() else {
        return;
    };
    let Some(app) = ParsecApp::ALL
        .iter()
        .copied()
        .find(|a| a.name() == line.app)
    else {
        return;
    };
    let tdp = match &case.scenario.experiment {
        ExperimentSpec::PowerBudget { tdp_watts } | ExperimentSpec::Policy { tdp_watts, .. } => {
            *tdp_watts
        }
        _ => DEFAULT_PROBE_TDP_W,
    };
    let frequency = platform.max_level().frequency;
    let est = DarkSiliconEstimator::new(platform);
    let Ok(outcome) =
        simulate_dtm_with_faults(&est, app, line.threads, frequency, Watts::new(tdp), faults)
    else {
        return; // probe errors are not verdicts; run_scenario covers the case
    };
    let admitted_dark = outcome.admitted.dark_fraction;
    let sustained_dark = outcome.sustained.dark_fraction;
    let hidden_dark = outcome.hidden_dark_fraction();
    let powered_down = outcome.instances_powered_down;
    let triggered = outcome.triggered;
    darksil_obs::event("arena.dtm_probe", move || {
        vec![
            ("admitted_dark", admitted_dark.into()),
            ("sustained_dark", sustained_dark.into()),
            ("hidden_dark", hidden_dark.into()),
            ("powered_down", powered_down.into()),
            ("triggered", triggered.into()),
        ]
    });
}

/// Runs one case inside the current event scope: injection first, then
/// the scenario itself, then the platform probes.
fn execute_case(case: &ArenaCase) -> CaseRun {
    if let Some(mode) = case.inject {
        emit_injection(mode);
    }
    let (report, error) = match run_scenario(&case.scenario) {
        Ok(report) => (Some(report), None),
        Err(e) => (None, Some(e.to_string())),
    };
    emit_tsp_probes(case);
    if let Some(spec) = &case.faults {
        emit_dtm_probe(case, &spec.to_plan());
    }
    CaseRun { report, error }
}

/// Runs `cases` over `jobs` workers and verdicts each against `oracle`.
///
/// Returns the outcomes (one per case, in case order) and the complete
/// drained event stream — byte-identical at any `jobs` value, which is
/// what `darksil fuzz` prints a digest of and the determinism tests
/// compare directly.
#[must_use]
pub fn run_cases(
    cases: &[ArenaCase],
    jobs: usize,
    oracle: &Oracle,
) -> (Vec<CaseOutcome>, EventStream) {
    darksil_obs::enable_events();
    let engine = Engine::new(jobs.max(1));
    let runs = engine.par_map(cases.to_vec(), |case| Ok(execute_case(&case)));
    let (_trace, stream) = darksil_obs::drain_all();

    let mut outcomes = Vec::with_capacity(cases.len());
    for (position, (case, run)) in cases.iter().zip(runs).enumerate() {
        let (report, error) = match run {
            Ok(r) => (r.report, r.error),
            // A panicking job is isolated by the engine; surface it as
            // a run error on its own case.
            Err(e) => (None, Some(e.to_string())),
        };
        // The engine fork keys events by *submission position*, which
        // for a replayed sub-population differs from `case.index`.
        let case_stream = case_slice(&stream, position as u64);
        outcomes.push(CaseOutcome {
            index: case.index,
            name: case.scenario.name.clone(),
            report,
            error,
            violations: oracle.verify(&case_stream),
            throttle_residency: case_stream.throttle_residency(),
        });
    }
    (outcomes, stream)
}

/// Runs one case serially (no fan-out) and verdicts it. This is what
/// the shrinker and corpus replay use: the whole drained stream belongs
/// to the case.
#[must_use]
pub fn run_single(case: &ArenaCase, oracle: &Oracle) -> CaseOutcome {
    darksil_obs::enable_events();
    let run = execute_case(case);
    let (_trace, stream) = darksil_obs::drain_all();
    CaseOutcome {
        index: case.index,
        name: case.scenario.name.clone(),
        report: run.report,
        error: run.error,
        violations: oracle.verify(&stream),
        throttle_residency: stream.throttle_residency(),
    }
}

/// The sub-stream of events belonging to fan-out job `index`: the
/// engine fork gives every case's events a `[fork, job_index, …]` seq
/// prefix, so membership is `seq[1] == index`.
fn case_slice(stream: &EventStream, index: u64) -> EventStream {
    let events: Vec<EventRecord> = stream
        .events
        .iter()
        .filter(|e| e.seq.len() >= 2 && e.seq[1] == index)
        .cloned()
        .collect();
    EventStream { events }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::generate_cases;
    use crate::testutil::recorder_lock;
    use darksil_scenario::{Scenario, WorkloadSpec};

    fn boost_case(index: usize) -> ArenaCase {
        ArenaCase {
            index,
            scenario: Scenario {
                name: format!("boost-{index}"),
                node: 22,
                cores: Some(9),
                t_dtm_celsius: None,
                variation_seed: None,
                leakage_sigma: None,
                frequency_sigma: None,
                workload: vec![WorkloadSpec {
                    app: "blackscholes".into(),
                    instances: 1,
                    threads: 4,
                }],
                experiment: darksil_scenario::ExperimentSpec::Boost {
                    duration_s: 0.2,
                    period_s: 0.01,
                },
            },
            faults: None,
            inject: None,
        }
    }

    #[test]
    fn boost_case_passes_clean() {
        let _guard = recorder_lock();
        let outcome = run_single(&boost_case(0), &Oracle::default());
        assert_eq!(outcome.error, None);
        assert!(outcome.violations.is_empty(), "{:?}", outcome.violations);
        assert_eq!(outcome.verdict(), Verdict::Pass);
    }

    #[test]
    fn injected_nan_is_caught() {
        let _guard = recorder_lock();
        let mut case = boost_case(0);
        case.inject = Some(InjectMode::Nan);
        let outcome = run_single(&case, &Oracle::default());
        assert_eq!(outcome.verdict(), Verdict::Violated);
        assert!(outcome.violations.iter().any(|v| v.invariant == "no-nan"));
    }

    #[test]
    fn injected_time_and_tsp_trip_their_invariants() {
        let _guard = recorder_lock();
        for (mode, invariant) in [
            (InjectMode::Time, "monotone-time"),
            (InjectMode::Tsp, "tsp-monotone"),
        ] {
            let mut case = boost_case(0);
            case.inject = Some(mode);
            let outcome = run_single(&case, &Oracle::default());
            assert!(
                outcome.violations.iter().any(|v| v.invariant == invariant),
                "{mode:?} should trip {invariant}: {:?}",
                outcome.violations
            );
        }
    }

    #[test]
    fn verdicts_and_stream_identical_across_jobs() {
        let _guard = recorder_lock();
        let cases = generate_cases(3, 6, None);
        let (serial, stream_1) = run_cases(&cases, 1, &Oracle::default());
        let (parallel, stream_4) = run_cases(&cases, 4, &Oracle::default());
        assert_eq!(stream_1.to_jsonl(), stream_4.to_jsonl());
        assert_eq!(serial.len(), parallel.len());
        for (a, b) in serial.iter().zip(&parallel) {
            assert_eq!(a.verdict(), b.verdict(), "case {}", a.index);
            assert_eq!(a.violations, b.violations, "case {}", a.index);
            assert_eq!(a.error, b.error, "case {}", a.index);
        }
    }

    #[test]
    fn case_slice_partitions_by_job_index() {
        let _guard = recorder_lock();
        let cases = vec![boost_case(0), boost_case(1)];
        let (_outcomes, stream) = run_cases(&cases, 2, &Oracle::default());
        let a = case_slice(&stream, 0);
        let b = case_slice(&stream, 1);
        assert!(!a.events.is_empty());
        assert_eq!(a.events.len() + b.events.len(), stream.events.len());
        assert!(a.events.iter().all(|e| e.seq[1] == 0));
    }
}
