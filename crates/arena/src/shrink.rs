//! Deterministic scenario-aware shrinking.
//!
//! When a case trips an invariant, the shrinker tries a fixed catalogue
//! of structural reductions — drop a workload line, halve instance and
//! thread counts, shrink the die, strip optional knobs, shorten a boost
//! window — keeping a candidate only if a serial rerun still trips the
//! **same named invariant**. The candidate order is fixed and each
//! accepted reduction restarts the pass, so the result is a local
//! minimum that does not depend on wall clock, worker count, or rng
//! state: the same failing case always shrinks to the same reproducer.

use darksil_scenario::{validate_scenario, ExperimentSpec, Scenario};

use crate::gen::ArenaCase;
use crate::oracle::Oracle;
use crate::runner::run_single;

/// Upper bound on accepted reductions; each candidate pass is linear,
/// so this caps shrinking at a few hundred serial reruns.
const MAX_ROUNDS: usize = 64;

/// Every one-step reduction of `scenario`, most aggressive first.
fn candidates(scenario: &Scenario) -> Vec<Scenario> {
    let mut out = Vec::new();

    // Drop whole workload lines (the biggest single cut).
    if scenario.workload.len() > 1 {
        for drop in 0..scenario.workload.len() {
            let mut s = scenario.clone();
            s.workload.remove(drop);
            out.push(s);
        }
    }

    // Halve instance and thread counts line by line.
    for (i, line) in scenario.workload.iter().enumerate() {
        if line.instances > 1 {
            let mut s = scenario.clone();
            s.workload[i].instances = line.instances / 2;
            out.push(s);
        }
        if line.threads > 1 {
            let mut s = scenario.clone();
            s.workload[i].threads = line.threads / 2;
            out.push(s);
        }
    }

    // Shrink the die towards the smallest fuzzed floorplan.
    if let Some(cores) = scenario.cores {
        for smaller in [9, 12, 16, 20] {
            if smaller < cores {
                let mut s = scenario.clone();
                s.cores = Some(smaller);
                out.push(s);
                break;
            }
        }
    }

    // Strip optional knobs.
    if scenario.t_dtm_celsius.is_some() {
        let mut s = scenario.clone();
        s.t_dtm_celsius = None;
        out.push(s);
    }
    if scenario.variation_seed.is_some() {
        let mut s = scenario.clone();
        s.variation_seed = None;
        out.push(s);
    }
    if scenario.leakage_sigma.is_some() {
        let mut s = scenario.clone();
        s.leakage_sigma = None;
        out.push(s);
    }
    if scenario.frequency_sigma.is_some() {
        let mut s = scenario.clone();
        s.frequency_sigma = None;
        out.push(s);
    }

    // Shorten a boost window (period must stay within the duration).
    if let ExperimentSpec::Boost {
        duration_s,
        period_s,
    } = scenario.experiment
    {
        let halved = duration_s / 2.0;
        if halved >= period_s {
            let mut s = scenario.clone();
            s.experiment = ExperimentSpec::Boost {
                duration_s: halved,
                period_s,
            };
            out.push(s);
        }
    }

    out
}

/// Every one-step reduction of the whole case: scenario reductions
/// first, then dropping the fault schedule.
fn case_candidates(case: &ArenaCase) -> Vec<ArenaCase> {
    let mut out: Vec<ArenaCase> = candidates(&case.scenario)
        .into_iter()
        .filter(|s| validate_scenario(s).is_ok())
        .map(|scenario| ArenaCase {
            scenario,
            ..case.clone()
        })
        .collect();
    if case.faults.is_some() {
        out.push(ArenaCase {
            faults: None,
            ..case.clone()
        });
    }
    out
}

/// Shrinks `case` to a smaller case that still trips `invariant`
/// (matched by name), rerunning each candidate serially. Returns the
/// original case unchanged when no reduction reproduces the violation.
///
/// Runs cases on the process-global event recorder — see the
/// concurrency note on [`crate::runner`].
#[must_use]
pub fn shrink(case: &ArenaCase, invariant: &str, oracle: &Oracle) -> ArenaCase {
    let still_fails = |candidate: &ArenaCase| {
        run_single(candidate, oracle)
            .violations
            .iter()
            .any(|v| v.invariant == invariant)
    };

    let mut current = case.clone();
    for _ in 0..MAX_ROUNDS {
        let Some(smaller) = case_candidates(&current)
            .into_iter()
            .find(|c| still_fails(c))
        else {
            break; // local minimum: no single reduction reproduces it
        };
        current = smaller;
    }
    current
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::InjectMode;
    use darksil_scenario::WorkloadSpec;

    fn big_case() -> ArenaCase {
        ArenaCase {
            index: 0,
            scenario: Scenario {
                name: "shrink-me".into(),
                node: 22,
                cores: Some(25),
                t_dtm_celsius: Some(75.0),
                variation_seed: Some(9),
                leakage_sigma: None,
                frequency_sigma: None,
                workload: vec![
                    WorkloadSpec {
                        app: "blackscholes".into(),
                        instances: 2,
                        threads: 4,
                    },
                    WorkloadSpec {
                        app: "ferret".into(),
                        instances: 1,
                        threads: 2,
                    },
                ],
                experiment: ExperimentSpec::Boost {
                    duration_s: 0.4,
                    period_s: 0.01,
                },
            },
            faults: None,
            inject: Some(InjectMode::Nan),
        }
    }

    #[test]
    fn candidates_are_all_valid_and_strictly_smaller_in_some_axis() {
        let case = big_case();
        let cands = case_candidates(&case);
        assert!(!cands.is_empty());
        for c in &cands {
            validate_scenario(&c.scenario).expect("candidate validates");
            assert_ne!(c, &case);
        }
    }

    #[test]
    fn injected_nan_shrinks_to_the_minimal_case() {
        let _guard = crate::testutil::recorder_lock();
        // The injection fires regardless of the scenario, so shrinking
        // must reach the floor of every axis.
        let shrunk = shrink(&big_case(), "no-nan", &Oracle::default());
        assert_eq!(shrunk.scenario.workload.len(), 1);
        assert_eq!(shrunk.scenario.workload[0].instances, 1);
        assert_eq!(shrunk.scenario.workload[0].threads, 1);
        assert_eq!(shrunk.scenario.cores, Some(9));
        assert_eq!(shrunk.scenario.t_dtm_celsius, None);
        assert_eq!(shrunk.scenario.variation_seed, None);
        // And shrinking twice is a fixpoint.
        let again = shrink(&shrunk, "no-nan", &Oracle::default());
        assert_eq!(again, shrunk);
    }

    #[test]
    fn shrink_preserves_the_violation() {
        let _guard = crate::testutil::recorder_lock();
        let shrunk = shrink(&big_case(), "no-nan", &Oracle::default());
        let outcome = run_single(&shrunk, &Oracle::default());
        assert!(outcome.violations.iter().any(|v| v.invariant == "no-nan"));
    }
}
