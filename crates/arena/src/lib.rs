//! Physics-invariant fuzzing arena (the `darksil fuzz` / `darksil
//! tournament` backend).
//!
//! The arena generates randomized-but-valid
//! [`Scenario`](darksil_scenario::Scenario)s under seeded
//! strategies, runs each through the ordinary engine pipeline with the
//! domain event stream on, and checks **physical invariants** over the
//! drained stream instead of example-based expectations: temperatures
//! bounded outside declared boost windows, simulated time monotone,
//! watermark crossings alternating and bracketing every over-threshold
//! step, TSP budgets antitone in the active-core count, energy
//! bookkeeping consistent between the per-step power samples and the
//! policy trace, and no NaN/Inf in any emitted field.
//!
//! On a violation the [`shrink()`] pass reduces the case to a minimal
//! reproducer that still trips the same invariant, and [`corpus`]
//! persists it as a `darksil-repro-v1` JSON file that the regression
//! suite replays forever after. [`tournament`] pits the mapping and
//! boosting policies against each other over the generated population
//! and emits a deterministic leaderboard (JSON + self-contained HTML).
//!
//! Everything is deterministic: the same `--seed` produces the same
//! cases, verdicts and leaderboard bytes at any `--jobs` count, because
//! per-case events ride the engine's forked ordering keys.

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod corpus;
pub mod gen;
pub mod oracle;
pub mod runner;
pub mod shrink;
pub mod tournament;

pub use corpus::{load_corpus, replay, save_reproducer, Reproducer, REPRO_SCHEMA};
pub use gen::{generate_cases, generate_scenario, ArenaCase, FaultSpec, InjectMode};
pub use oracle::{Oracle, Violation};
pub use runner::{run_cases, run_single, CaseOutcome, Verdict};
pub use shrink::shrink;
pub use tournament::{leaderboard_html, run_tournament, Leaderboard, PolicyScore};

#[cfg(test)]
pub(crate) mod testutil {
    use std::sync::{Mutex, MutexGuard, PoisonError};

    /// The event recorder is process-global; every test that touches it
    /// must hold this lock.
    static RECORDER_LOCK: Mutex<()> = Mutex::new(());

    pub(crate) fn recorder_lock() -> MutexGuard<'static, ()> {
        RECORDER_LOCK.lock().unwrap_or_else(PoisonError::into_inner)
    }
}
