//! Seeded generation of valid fuzz cases.
//!
//! Every generated [`Scenario`] passes [`validate_scenario`] by
//! construction — the strategies draw from the same legal domains the
//! strict validator enforces (known nodes and applications, the 200 MHz
//! DVFS ladder, thread counts within `MAX_THREADS_PER_INSTANCE`,
//! periods no longer than durations). Generation is pure in the seed:
//! the same `(seed, index)` always yields the same case, which is what
//! lets a corpus reproducer name a case by those two numbers alone.

use darksil_robust::{Fault, FaultPlan};
use darksil_scenario::{validate_scenario, ExperimentSpec, Scenario, WorkloadSpec};
use darksil_workload::ParsecApp;
use proptest::{Strategy, TestRng};

/// Core-count choices for fuzz platforms. Small dies keep a thermal
/// solve cheap enough for hundreds of cases; the spread still exercises
/// square and non-square floorplans.
const CORE_CHOICES: &[usize] = &[9, 12, 16, 20, 25];

/// DTM-threshold choices (°C); `None` keeps the platform default.
const T_DTM_CHOICES: &[f64] = &[65.0, 70.0, 75.0, 80.0, 85.0];

/// JSON-serialisable description of an injected fault schedule — the
/// subset of [`Fault`] the sensor/power feedback path consumes, so a
/// corpus reproducer can persist it.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultSpec {
    /// Seed for the fault plan's own deterministic choices.
    pub seed: u64,
    /// Additive Gaussian sensor noise, σ in °C.
    pub sensor_noise_sigma_c: Option<f64>,
    /// Steps between dropped (NaN) sensor readings.
    pub sensor_dropout_period: Option<u64>,
    /// Steps between poisoned (NaN) power samples.
    pub power_nan_period: Option<u64>,
}

darksil_json::impl_json!(struct FaultSpec { seed } opt {
    sensor_noise_sigma_c,
    sensor_dropout_period,
    power_nan_period,
});

impl FaultSpec {
    /// Materialises the equivalent [`FaultPlan`].
    #[must_use]
    pub fn to_plan(&self) -> FaultPlan {
        let mut plan = FaultPlan::new(self.seed);
        if let Some(sigma_celsius) = self.sensor_noise_sigma_c {
            plan = plan.with(Fault::SensorNoise { sigma_celsius });
        }
        if let Some(period) = self.sensor_dropout_period {
            plan = plan.with(Fault::SensorDropout { period });
        }
        if let Some(period) = self.power_nan_period {
            plan = plan.with(Fault::PowerNan { period });
        }
        plan
    }
}

/// Deliberate-violation modes for `darksil fuzz --inject` — each emits
/// events that trip exactly one invariant, proving the catch → shrink →
/// persist pipeline end to end without weakening the real simulators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InjectMode {
    /// Emits a NaN field (trips `no-nan`).
    Nan,
    /// Emits a backwards simulated-time pair (trips `monotone-time`).
    Time,
    /// Emits a TSP probe pair whose budget grows with the active count
    /// (trips `tsp-monotone`).
    Tsp,
}

impl InjectMode {
    /// Parses a `--inject` argument.
    #[must_use]
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "nan" => Some(Self::Nan),
            "time" => Some(Self::Time),
            "tsp" => Some(Self::Tsp),
            _ => None,
        }
    }

    /// The CLI name of this mode.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Self::Nan => "nan",
            Self::Time => "time",
            Self::Tsp => "tsp",
        }
    }
}

/// One fuzz case: a generated scenario, an optional fault schedule for
/// the DTM probe, and an optional deliberate-violation mode.
#[derive(Debug, Clone, PartialEq)]
pub struct ArenaCase {
    /// Position in the generated population (stable across `--jobs`).
    pub index: usize,
    /// The scenario to execute.
    pub scenario: Scenario,
    /// Fault schedule for the fault-path probe, if any.
    pub faults: Option<FaultSpec>,
    /// Deliberate-violation mode, if `--inject` was given.
    pub inject: Option<InjectMode>,
}

fn pick<'a, T>(rng: &mut TestRng, choices: &'a [T]) -> &'a T {
    &choices[rng.next_below(choices.len() as u64) as usize]
}

/// Draws one valid scenario. Pure in `(rng state, index)`; the index
/// only names the scenario.
#[must_use]
pub fn generate_scenario(rng: &mut TestRng, index: usize) -> Scenario {
    let node = *pick(rng, &[22_u32, 16, 11, 8]);
    let cores = *pick(rng, CORE_CHOICES);

    let t_dtm_celsius = if rng.next_below(3) == 0 {
        Some(*pick(rng, T_DTM_CHOICES))
    } else {
        None
    };
    let variation_seed = if rng.next_below(3) == 0 {
        Some(rng.next_below(1 << 16))
    } else {
        None
    };
    // Occasionally widen the variation spread beyond the typical model;
    // only meaningful alongside a seed, but legal either way.
    let leakage_sigma = if rng.next_below(4) == 0 {
        Some(0.05 + 0.45 * rng.next_f64())
    } else {
        None
    };
    let frequency_sigma = if rng.next_below(4) == 0 {
        Some(0.01 + 0.09 * rng.next_f64())
    } else {
        None
    };

    let workload = generate_workload(rng, cores);
    let experiment = generate_experiment(rng);

    Scenario {
        name: format!("fuzz-{index}"),
        node,
        cores: Some(cores),
        t_dtm_celsius,
        variation_seed,
        leakage_sigma,
        frequency_sigma,
        workload,
        experiment,
    }
}

/// Draws 1–2 workload lines whose total thread demand fits the chip, so
/// placement failures stay rare and every run exercises the oracle.
fn generate_workload(rng: &mut TestRng, cores: usize) -> Vec<WorkloadSpec> {
    let lines = 1 + rng.next_below(2) as usize;
    let mut specs: Vec<WorkloadSpec> = Vec::with_capacity(lines);
    let mut used = 0_usize;
    for _ in 0..lines {
        let app = pick(rng, &ParsecApp::ALL).name().to_string();
        let threads = (1_usize..5).generate(rng);
        // Keep the total demand within the die.
        let mut instances = (1_usize..4).generate(rng);
        while instances > 1 && used + instances * threads > cores {
            instances -= 1;
        }
        if used + instances * threads > cores {
            continue;
        }
        used += instances * threads;
        specs.push(WorkloadSpec {
            app,
            instances,
            threads,
        });
    }
    if specs.is_empty() {
        // The first line alone was too wide for the die: fall back to a
        // single single-threaded instance, which always fits.
        specs.push(WorkloadSpec {
            app: ParsecApp::ALL[0].name().to_string(),
            instances: 1,
            threads: 1,
        });
    }
    specs
}

fn generate_experiment(rng: &mut TestRng) -> ExperimentSpec {
    let tdp_grid = |rng: &mut TestRng| 20.0 + 5.0 * rng.next_below(37) as f64; // 20–200 W
    match rng.next_below(4) {
        0 => ExperimentSpec::PowerBudget {
            tdp_watts: tdp_grid(rng),
        },
        1 => ExperimentSpec::Thermal {
            // On the 200 MHz ladder: 1.0–2.6 GHz, or the node default.
            frequency_ghz: if rng.next_below(4) == 0 {
                None
            } else {
                Some(0.2 * (5 + rng.next_below(9)) as f64)
            },
        },
        2 => ExperimentSpec::Policy {
            policy: if rng.next_below(2) == 0 {
                "dsrem".into()
            } else {
                "tdpmap".into()
            },
            tdp_watts: tdp_grid(rng),
        },
        _ => ExperimentSpec::Boost {
            duration_s: *pick(rng, &[0.4, 0.6, 0.8]),
            period_s: *pick(rng, &[0.005, 0.01, 0.02]),
        },
    }
}

fn generate_faults(rng: &mut TestRng) -> Option<FaultSpec> {
    // Roughly a quarter of the population probes the fault path.
    if rng.next_below(4) != 0 {
        return None;
    }
    let seed = rng.next_below(1 << 16);
    let mut spec = FaultSpec {
        seed,
        sensor_noise_sigma_c: None,
        sensor_dropout_period: None,
        power_nan_period: None,
    };
    match rng.next_below(3) {
        0 => spec.sensor_noise_sigma_c = Some(0.1 + 0.9 * rng.next_f64()),
        1 => spec.sensor_dropout_period = Some(2 + rng.next_below(8)),
        _ => spec.power_nan_period = Some(2 + rng.next_below(8)),
    }
    Some(spec)
}

/// Generates the fuzz population for `seed`: `count` cases, each valid
/// under the strict scenario validator, with the given inject mode (if
/// any) attached to every case.
///
/// # Panics
///
/// Panics if a generated scenario fails strict validation — that is a
/// generator bug, and the panic names the case.
#[must_use]
pub fn generate_cases(seed: u64, count: usize, inject: Option<InjectMode>) -> Vec<ArenaCase> {
    (0..count)
        .map(|index| {
            // One rng per case keyed by (seed, index): case K is the
            // same whether 10 or 10 000 cases were requested.
            let mut rng = TestRng::new(seed ^ (index as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
            let scenario = generate_scenario(&mut rng, index);
            if let Err(e) = validate_scenario(&scenario) {
                panic!("generator produced an invalid scenario for case {index}: {e}");
            }
            let faults = generate_faults(&mut rng);
            ArenaCase {
                index,
                scenario,
                faults,
                inject,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_and_valid() {
        let a = generate_cases(42, 50, None);
        let b = generate_cases(42, 50, None);
        assert_eq!(a, b);
        for case in &a {
            validate_scenario(&case.scenario).expect("generated scenario validates");
        }
    }

    #[test]
    fn case_k_is_stable_under_population_growth() {
        let small = generate_cases(7, 5, None);
        let large = generate_cases(7, 50, None);
        assert_eq!(small[..], large[..5]);
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate_cases(1, 20, None);
        let b = generate_cases(2, 20, None);
        assert_ne!(a, b);
    }

    #[test]
    fn workload_always_fits_the_die() {
        for case in generate_cases(99, 100, None) {
            let cores = case.scenario.cores.expect("generator sets cores");
            let demand: usize = case
                .scenario
                .workload
                .iter()
                .map(|l| l.instances * l.threads)
                .sum();
            assert!(demand <= cores, "case {}: {demand} > {cores}", case.index);
        }
    }

    #[test]
    fn fault_spec_round_trips_and_builds_a_plan() {
        let spec = FaultSpec {
            seed: 11,
            sensor_noise_sigma_c: None,
            sensor_dropout_period: Some(3),
            power_nan_period: None,
        };
        let json = darksil_json::to_string_pretty(&spec);
        let back: FaultSpec = darksil_json::from_str(&json).expect("round trip");
        assert_eq!(spec, back);
        assert!(!spec.to_plan().is_empty());
    }

    #[test]
    fn inject_modes_parse() {
        assert_eq!(InjectMode::parse("nan"), Some(InjectMode::Nan));
        assert_eq!(InjectMode::parse("time"), Some(InjectMode::Time));
        assert_eq!(InjectMode::parse("tsp"), Some(InjectMode::Tsp));
        assert_eq!(InjectMode::parse("bogus"), None);
        assert_eq!(InjectMode::Tsp.name(), "tsp");
    }
}
