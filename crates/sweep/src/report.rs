//! The sweep HTML report: frontier scatter, axis cuts with uncertainty
//! bands, cache and summary tables.
//!
//! Rendered entirely from the analysed [`SweepResult`] with the shared
//! [`darksil_obs::svg`] building blocks — self-contained, no scripts,
//! no external fetches, and byte-identical for identical results.

use darksil_obs::svg::{esc, fnum, html_page, scale, PLOT_W};

use crate::analysis::{PointSummary, SweepResult};
use crate::spec::AxisValue;

/// Chart height in CSS pixels.
const PLOT_H: f64 = 300.0;
/// Chart margins: left, right, top, bottom.
const MARGIN: (f64, f64, f64, f64) = (64.0, 16.0, 16.0, 40.0);

/// A chart's data area and value ranges; maps values to pixels.
struct Frame {
    x_lo: f64,
    x_hi: f64,
    y_lo: f64,
    y_hi: f64,
}

impl Frame {
    /// A frame spanning the given value ranges, padded by 5 % so points
    /// never sit on the border.
    fn padded(xs: &[f64], ys: &[f64]) -> Self {
        let span = |vals: &[f64]| {
            let lo = vals.iter().copied().fold(f64::INFINITY, f64::min);
            let hi = vals.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            if lo.is_finite() && hi.is_finite() {
                let pad = (hi - lo).abs().max(1e-9) * 0.05;
                (lo - pad, hi + pad)
            } else {
                (0.0, 1.0)
            }
        };
        let (x_lo, x_hi) = span(xs);
        let (y_lo, y_hi) = span(ys);
        Self {
            x_lo,
            x_hi,
            y_lo,
            y_hi,
        }
    }

    fn px(&self, v: f64) -> f64 {
        scale(v, self.x_lo, self.x_hi, MARGIN.0, PLOT_W - MARGIN.1)
    }

    fn py(&self, v: f64) -> f64 {
        // SVG y grows downward.
        scale(v, self.y_lo, self.y_hi, PLOT_H - MARGIN.3, MARGIN.2)
    }

    /// Gridlines plus tick labels for both axes.
    fn grid(&self, out: &mut String, x_label: &str, y_label: &str) {
        for i in 0..=4 {
            let t = f64::from(i) / 4.0;
            let xv = (self.x_hi - self.x_lo).mul_add(t, self.x_lo);
            let yv = (self.y_hi - self.y_lo).mul_add(t, self.y_lo);
            let x = self.px(xv);
            let y = self.py(yv);
            out.push_str(&format!(
                "<line class=\"grid\" x1=\"{x:.1}\" y1=\"{:.1}\" x2=\"{x:.1}\" y2=\"{:.1}\"/>\
                 <line class=\"grid\" x1=\"{:.1}\" y1=\"{y:.1}\" x2=\"{:.1}\" y2=\"{y:.1}\"/>\
                 <text class=\"tick\" x=\"{x:.1}\" y=\"{:.1}\" text-anchor=\"middle\">{}</text>\
                 <text class=\"tick\" x=\"{:.1}\" y=\"{:.1}\" text-anchor=\"end\">{}</text>\n",
                MARGIN.2,
                PLOT_H - MARGIN.3,
                MARGIN.0,
                PLOT_W - MARGIN.1,
                PLOT_H - MARGIN.3 + 14.0,
                fnum(xv),
                MARGIN.0 - 6.0,
                y + 3.0,
                fnum(yv),
            ));
        }
        out.push_str(&format!(
            "<text class=\"axis-label\" x=\"{:.1}\" y=\"{:.1}\" text-anchor=\"middle\">{}</text>\
             <text class=\"axis-label\" x=\"{:.1}\" y=\"{:.1}\" text-anchor=\"middle\" \
              transform=\"rotate(-90 14 {:.1})\">{}</text>\n",
            f64::midpoint(MARGIN.0, PLOT_W - MARGIN.1),
            PLOT_H - 4.0,
            esc(x_label),
            14.0,
            PLOT_H / 2.0,
            PLOT_H / 2.0,
            esc(y_label),
        ));
    }
}

fn open_svg(out: &mut String) {
    out.push_str(&format!(
        "<svg viewBox=\"0 0 {PLOT_W:.0} {PLOT_H:.0}\" role=\"img\">\n"
    ));
}

/// The frontier scatter: dark fraction vs throughput, frontier points
/// highlighted, dominated points dimmed, all three objectives in the
/// hover tooltip.
fn frontier_scatter(result: &SweepResult) -> String {
    let xs: Vec<f64> = result.points.iter().map(|p| p.dark_fraction.p50).collect();
    let ys: Vec<f64> = result.points.iter().map(|p| p.total_gips.p50).collect();
    let frame = Frame::padded(&xs, &ys);

    let mut out = String::new();
    out.push_str(
        "<div class=\"legend\">\
         <span><span class=\"swatch sw-frontier\"></span>Pareto frontier</span>\
         <span><span class=\"swatch sw-dominated\"></span>dominated</span></div>\n",
    );
    open_svg(&mut out);
    frame.grid(
        &mut out,
        "dark fraction (median)",
        "throughput, GIPS (median)",
    );
    // Dominated first so frontier points draw on top.
    let mut ordered: Vec<&PointSummary> = result.points.iter().collect();
    ordered.sort_by_key(|p| (p.pareto, p.point_index));
    for point in ordered {
        let class = if point.pareto {
            "pt-frontier"
        } else {
            "pt-dominated"
        };
        let tooltip = format!(
            "{} — {} GIPS, dark {}, peak {} °C",
            point.label,
            fnum(point.total_gips.p50),
            fnum(point.dark_fraction.p50),
            fnum(point.peak_temperature_c.p50),
        );
        out.push_str(&format!(
            "<circle class=\"{class}\" cx=\"{:.1}\" cy=\"{:.1}\" r=\"5\">\
             <title>{}</title></circle>\n",
            frame.px(point.dark_fraction.p50),
            frame.py(point.total_gips.p50),
            esc(&tooltip),
        ));
    }
    out.push_str("</svg>\n");
    out
}

/// Numeric plotting coordinate for an axis value (string values plot at
/// their index).
fn axis_coord(value: &AxisValue, index: usize) -> f64 {
    match value {
        AxisValue::Num(v) => *v,
        #[allow(clippy::cast_precision_loss)]
        AxisValue::Str(_) => index as f64,
    }
}

/// One axis cut: the sweep sliced along `param` with every other grid
/// axis held at its first value; the median polyline shaded by the
/// p5–p95 band.
fn axis_cut(result: &SweepResult, axis_index: usize) -> Option<String> {
    let (param, values) = &result.grid_axes[axis_index];
    if values.len() < 2 {
        return None;
    }
    // Hold the other axes at their first expanded value.
    let held: Vec<(&String, &AxisValue)> = result
        .grid_axes
        .iter()
        .enumerate()
        .filter(|&(i, _)| i != axis_index)
        .filter_map(|(_, (p, vs))| vs.first().map(|v| (p, v)))
        .collect();
    let cut: Vec<&PointSummary> = result
        .points
        .iter()
        .filter(|point| {
            held.iter()
                .all(|(p, v)| point.params.iter().any(|(pp, pv)| &pp == p && &pv == v))
        })
        .collect();
    if cut.len() < 2 {
        return None;
    }

    let coords: Vec<f64> = cut
        .iter()
        .map(|point| {
            let value = point
                .params
                .iter()
                .find(|(p, _)| p == param)
                .map(|(_, v)| v);
            let index = value
                .and_then(|v| values.iter().position(|x| x == v))
                .unwrap_or(0);
            value.map_or(0.0, |v| axis_coord(v, index))
        })
        .collect();
    let mut ys: Vec<f64> = cut.iter().map(|p| p.total_gips.p50).collect();
    ys.extend(cut.iter().map(|p| p.total_gips.p5));
    ys.extend(cut.iter().map(|p| p.total_gips.p95));
    let frame = Frame::padded(&coords, &ys);

    let mut out = String::new();
    out.push_str(&format!(
        "<h2>Cut along <code>{}</code></h2>\n<p class=\"note\">other axes held at \
         their first value; band is p5–p95 across {} draw(s)</p>\n",
        esc(param),
        result.draws,
    ));
    open_svg(&mut out);
    frame.grid(&mut out, param, "throughput, GIPS");

    let mut band = String::new();
    for (point, &x) in cut.iter().zip(&coords) {
        band.push_str(&format!(
            "{:.1},{:.1} ",
            frame.px(x),
            frame.py(point.total_gips.p95)
        ));
    }
    for (point, &x) in cut.iter().zip(&coords).rev() {
        band.push_str(&format!(
            "{:.1},{:.1} ",
            frame.px(x),
            frame.py(point.total_gips.p5)
        ));
    }
    out.push_str(&format!(
        "<polygon class=\"series-band\" points=\"{}\"/>\n",
        band.trim_end()
    ));

    let line: Vec<String> = cut
        .iter()
        .zip(&coords)
        .map(|(point, &x)| format!("{:.1},{:.1}", frame.px(x), frame.py(point.total_gips.p50)))
        .collect();
    out.push_str(&format!(
        "<polyline class=\"series-line\" points=\"{}\"/>\n",
        line.join(" ")
    ));
    out.push_str("</svg>\n");
    Some(out)
}

/// The frontier table: every non-dominated point with its objectives.
fn frontier_table(result: &SweepResult) -> String {
    let mut out = String::new();
    out.push_str(
        "<h2>Pareto frontier</h2>\n<table>\n<tr><th>point</th>\
         <th class=\"num\">speedup</th><th class=\"num\">GIPS (p50)</th>\
         <th class=\"num\">dark (p50)</th><th class=\"num\">peak °C (p50)</th>\
         <th class=\"num\">violations</th></tr>\n",
    );
    for &index in &result.frontier {
        let point = &result.points[index];
        out.push_str(&format!(
            "<tr><td><code>{}</code></td><td class=\"num\">{}×</td>\
             <td class=\"num\">{}</td><td class=\"num\">{}</td>\
             <td class=\"num\">{}</td><td class=\"num\">{}</td></tr>\n",
            esc(&point.label),
            fnum(point.speedup),
            fnum(point.total_gips.p50),
            fnum(point.dark_fraction.p50),
            fnum(point.peak_temperature_c.p50),
            fnum(point.violation_rate),
        ));
    }
    out.push_str("</table>\n");
    out
}

/// The cache and summary tables.
fn tables(result: &SweepResult) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "<h2>Cache</h2>\n<table>\n<tr><th class=\"num\">hit</th>\
         <th class=\"num\">miss</th><th class=\"num\">recovered</th></tr>\n\
         <tr><td class=\"num\">{}</td><td class=\"num\">{}</td>\
         <td class=\"num\">{}</td></tr>\n</table>\n",
        result.cache.hit, result.cache.miss, result.cache.recovered,
    ));
    out.push_str(
        "<h2>Sweep-wide distributions</h2>\n<table>\n<tr><th>metric</th>\
         <th class=\"num\">mean</th><th class=\"num\">p50</th>\
         <th class=\"num\">p95</th></tr>\n",
    );
    for stat in &result.summary {
        out.push_str(&format!(
            "<tr><td><code>{}</code></td><td class=\"num\">{}</td>\
             <td class=\"num\">{}</td><td class=\"num\">{}</td></tr>\n",
            esc(&stat.metric),
            fnum(stat.mean),
            fnum(stat.p50),
            fnum(stat.p95),
        ));
    }
    out.push_str("</table>\n");
    out
}

/// Renders the self-contained sweep report.
#[must_use]
pub fn render_sweep_report(result: &SweepResult) -> String {
    let mut body = String::new();
    body.push_str(&format!(
        "<h1>darksil sweep — {}</h1>\n<p class=\"subtitle\">{} grid point(s) × {} \
         draw(s) = {} evaluation(s) · seed {} · spec <code>{}</code></p>\n",
        esc(&result.name),
        result.grid_points,
        result.draws,
        result.evals,
        result.seed,
        esc(&result.spec_digest),
    ));
    body.push_str("<h2>Objective space</h2>\n");
    body.push_str(&frontier_scatter(result));
    for axis_index in 0..result.grid_axes.len() {
        if let Some(cut) = axis_cut(result, axis_index) {
            body.push_str(&cut);
        }
    }
    body.push_str(&frontier_table(result));
    body.push_str(&tables(result));
    html_page(&format!("darksil sweep report — {}", result.name), &body)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::{Band, DrawRecord, MetricSummary};
    use crate::run::CacheCounts;

    fn flat_band(v: f64) -> Band {
        Band {
            p5: v * 0.9,
            p50: v,
            p95: v * 1.1,
        }
    }

    fn sample_result() -> SweepResult {
        let mk = |i: usize, node: f64, gips: f64, dark: f64, temp: f64| PointSummary {
            point_index: i,
            label: format!("node={node:.0}"),
            params: vec![("node".to_string(), AxisValue::Num(node))],
            pareto: false,
            speedup: 1.0,
            total_gips: flat_band(gips),
            dark_fraction: flat_band(dark),
            peak_temperature_c: flat_band(temp),
            total_power_w: flat_band(40.0),
            violation_rate: 0.0,
            draws: vec![DrawRecord {
                draw_index: 0,
                sampled: Vec::new(),
                total_gips: gips,
                dark_fraction: dark,
                peak_temperature_c: temp,
                total_power_w: 40.0,
                active_cores: 8,
                thermal_violation: false,
                cache: "miss",
            }],
        };
        let mut points = vec![
            mk(0, 22.0, 10.0, 0.2, 70.0),
            mk(1, 16.0, 14.0, 0.4, 75.0),
            mk(2, 11.0, 12.0, 0.6, 90.0),
        ];
        points[0].pareto = true;
        points[1].pareto = true;
        SweepResult {
            name: "demo & more".to_string(),
            spec_digest: "00ff".to_string(),
            seed: 1,
            draws: 1,
            grid_points: 3,
            evals: 3,
            grid_axes: vec![(
                "node".to_string(),
                vec![
                    AxisValue::Num(22.0),
                    AxisValue::Num(16.0),
                    AxisValue::Num(11.0),
                ],
            )],
            cache: CacheCounts {
                hit: 1,
                miss: 2,
                recovered: 0,
            },
            points,
            frontier: vec![0, 1],
            summary: vec![MetricSummary {
                metric: "total_gips".to_string(),
                mean: 12.0,
                p50: 12.0,
                p95: 14.0,
            }],
        }
    }

    #[test]
    fn report_is_self_contained_and_escaped() {
        let html = render_sweep_report(&sample_result());
        assert!(html.starts_with("<!DOCTYPE html>"));
        assert!(html.contains("demo &amp; more"));
        assert!(!html.contains("<script"));
        assert!(!html.contains("http://"));
        assert!(!html.contains("NaN"));
        assert!(html.contains("pt-frontier"));
        assert!(html.contains("pt-dominated"));
        assert!(html.contains("series-band"));
        assert!(html.contains("Cut along <code>node</code>"));
    }

    #[test]
    fn single_value_axes_render_no_cut() {
        let mut result = sample_result();
        result.grid_axes = vec![("node".to_string(), vec![AxisValue::Num(22.0)])];
        let html = render_sweep_report(&result);
        assert!(!html.contains("Cut along"));
    }
}
