//! The compiler: spec → deterministic job plan.
//!
//! Deterministic axes (`list`, `range`, `logrange`) expand into a
//! row-major cartesian grid (last axis fastest); each grid point is
//! evaluated `draws` times, with every `gauss` axis re-sampled per draw
//! from a [`DrawRng`] keyed by `(seed, point_index, draw_index)` — so
//! any single evaluation regenerates in isolation. Every expanded
//! scenario passes the strict scenario validator before the plan is
//! returned; plan construction touches no clock and no global state,
//! so the same spec always compiles to the same plan.

use darksil_scenario::{validate_scenario, Scenario};

use crate::rng::DrawRng;
use crate::spec::{apply_param, AxisKind, AxisValue, SweepSpec, MAX_GRID_POINTS};
use crate::SweepError;

/// One entry of the job plan: a fully resolved scenario plus the
/// parameter values that produced it.
#[derive(Debug, Clone, PartialEq)]
pub struct Evaluation {
    /// Grid-point index (row-major over the deterministic axes).
    pub point_index: usize,
    /// Monte-Carlo draw index within the point.
    pub draw_index: usize,
    /// The resolved scenario (its name embeds the grid values and, for
    /// multi-draw sweeps, the draw tag — names are unique plan-wide).
    pub scenario: Scenario,
    /// Deterministic axis values for this point, in axis order.
    pub params: Vec<(String, AxisValue)>,
    /// Gauss-sampled values for this draw, in axis order.
    pub sampled: Vec<(String, f64)>,
}

impl Evaluation {
    /// Fixed-width journal/job name: `p00012.d03`.
    #[must_use]
    pub fn job_name(&self) -> String {
        format!("p{:05}.d{:02}", self.point_index, self.draw_index)
    }

    /// The point's human-readable label (`node=16 threads=2`, or
    /// `base` when the sweep has no deterministic axes).
    #[must_use]
    pub fn point_label(&self) -> String {
        point_label(&self.params)
    }
}

/// Renders deterministic axis values as `k=v` pairs.
#[must_use]
pub(crate) fn point_label(params: &[(String, AxisValue)]) -> String {
    if params.is_empty() {
        return "base".to_string();
    }
    params
        .iter()
        .map(|(name, value)| format!("{name}={}", value.label()))
        .collect::<Vec<_>>()
        .join(" ")
}

/// The compiled plan: every evaluation in submission order
/// (point-major, draws within a point).
#[derive(Debug, Clone, PartialEq)]
pub struct SweepPlan {
    /// Number of grid points.
    pub points: usize,
    /// Draws per point.
    pub draws: usize,
    /// The deterministic axes and their expanded value lists, in axis
    /// order (drives the report's axis cuts).
    pub grid_axes: Vec<(String, Vec<AxisValue>)>,
    /// All `points × draws` evaluations.
    pub evals: Vec<Evaluation>,
}

/// Expands one deterministic axis into its concrete values.
fn axis_values(kind: &AxisKind) -> Vec<AxisValue> {
    match kind {
        AxisKind::List(values) => values.clone(),
        AxisKind::Range(range) => {
            let mut out = Vec::new();
            let eps = range.step * 1e-9;
            let mut i = 0_u32;
            loop {
                let v = f64::from(i).mul_add(range.step, range.start);
                if v > range.stop + eps {
                    break;
                }
                out.push(AxisValue::Num(v));
                i += 1;
            }
            out
        }
        AxisKind::LogRange(range) => {
            let n = range.points;
            let mut out = Vec::with_capacity(n);
            #[allow(clippy::cast_precision_loss)]
            let ratio = (range.stop / range.start).powf(1.0 / (n - 1) as f64);
            for i in 0..n {
                #[allow(clippy::cast_possible_truncation)]
                let v = if i == n - 1 {
                    range.stop // exact endpoint, no powf drift
                } else {
                    range.start * ratio.powi(i as i32)
                };
                out.push(AxisValue::Num(v));
            }
            out
        }
        AxisKind::Gauss(_) => Vec::new(), // not part of the grid
    }
}

/// Compiles a validated spec into its job plan.
///
/// # Errors
///
/// Returns [`SweepError::Invalid`] when the grid exceeds
/// `MAX_GRID_POINTS` or an expanded point fails strict scenario
/// validation (the error names the point and draw).
pub fn expand(spec: &SweepSpec) -> Result<SweepPlan, SweepError> {
    let grid_axes: Vec<(String, Vec<AxisValue>)> = spec
        .axes
        .iter()
        .filter(|axis| !matches!(axis.kind, AxisKind::Gauss(_)))
        .map(|axis| (axis.param.clone(), axis_values(&axis.kind)))
        .collect();
    let gauss_axes: Vec<(String, &AxisKind)> = spec
        .axes
        .iter()
        .filter(|axis| matches!(axis.kind, AxisKind::Gauss(_)))
        .map(|axis| (axis.param.clone(), &axis.kind))
        .collect();

    let mut points: usize = 1;
    for (param, values) in &grid_axes {
        points = points.checked_mul(values.len()).ok_or_else(|| {
            SweepError::Invalid(format!(
                "grid overflows while multiplying in axis `{param}`"
            ))
        })?;
    }
    if points > MAX_GRID_POINTS {
        return Err(SweepError::Invalid(format!(
            "grid has {points} points, more than the {MAX_GRID_POINTS} cap"
        )));
    }

    let mut evals = Vec::with_capacity(points * spec.draws);
    for point_index in 0..points {
        // Row-major decomposition, last axis fastest.
        let mut params: Vec<(String, AxisValue)> = Vec::with_capacity(grid_axes.len());
        let mut remainder = point_index;
        for (param, values) in grid_axes.iter().rev() {
            let value = values[remainder % values.len()].clone();
            remainder /= values.len();
            params.push((param.clone(), value));
        }
        params.reverse();

        for draw_index in 0..spec.draws {
            let mut scenario = spec.base.clone();
            for (param, value) in &params {
                apply_param(&mut scenario, param, value)
                    .map_err(|msg| SweepError::Invalid(format!("point {point_index}: {msg}")))?;
            }
            let mut rng = DrawRng::for_cell(spec.seed, point_index, draw_index);
            let mut sampled: Vec<(String, f64)> = Vec::with_capacity(gauss_axes.len());
            for (param, kind) in &gauss_axes {
                let AxisKind::Gauss(gauss) = kind else {
                    continue;
                };
                let value = gauss.clamp(gauss.sigma.mul_add(rng.next_gaussian(), gauss.mean));
                apply_param(&mut scenario, param, &AxisValue::Num(value)).map_err(|msg| {
                    SweepError::Invalid(format!("point {point_index} draw {draw_index}: {msg}"))
                })?;
                sampled.push((param.clone(), value));
            }

            scenario.name = if spec.draws > 1 {
                format!(
                    "{} @ {} [draw {draw_index}]",
                    spec.base.name,
                    point_label(&params)
                )
            } else {
                format!("{} @ {}", spec.base.name, point_label(&params))
            };

            validate_scenario(&scenario).map_err(|e| {
                SweepError::Invalid(format!(
                    "point {point_index} draw {draw_index} ({}): expanded scenario \
                     is invalid: {e}",
                    point_label(&params)
                ))
            })?;

            evals.push(Evaluation {
                point_index,
                draw_index,
                scenario,
                params: params.clone(),
                sampled,
            });
        }
    }

    Ok(SweepPlan {
        points,
        draws: spec.draws,
        grid_axes,
        evals,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{Axis, GaussAxis, LogRangeAxis, RangeAxis, SweepSpec, SWEEPSPEC_SCHEMA};
    use darksil_scenario::{ExperimentSpec, WorkloadSpec};

    fn base() -> Scenario {
        Scenario {
            name: "b".into(),
            node: 16,
            cores: Some(16),
            t_dtm_celsius: None,
            variation_seed: None,
            leakage_sigma: None,
            frequency_sigma: None,
            workload: vec![WorkloadSpec {
                app: "x264".into(),
                instances: 2,
                threads: 2,
            }],
            experiment: ExperimentSpec::PowerBudget { tdp_watts: 45.0 },
        }
    }

    fn spec(axes: Vec<Axis>, draws: usize, seed: u64) -> SweepSpec {
        SweepSpec {
            schema: SWEEPSPEC_SCHEMA.into(),
            name: "t".into(),
            seed,
            draws,
            base: base(),
            axes,
        }
    }

    #[test]
    fn grid_is_row_major_with_last_axis_fastest() {
        let plan = expand(&spec(
            vec![
                Axis {
                    param: "node".into(),
                    kind: AxisKind::List(vec![AxisValue::Num(16.0), AxisValue::Num(8.0)]),
                },
                Axis {
                    param: "threads".into(),
                    kind: AxisKind::Range(RangeAxis {
                        start: 1.0,
                        stop: 3.0,
                        step: 1.0,
                    }),
                },
            ],
            1,
            0,
        ))
        .expect("expands");
        assert_eq!(plan.points, 6);
        assert_eq!(plan.evals.len(), 6);
        let labels: Vec<String> = plan.evals.iter().map(Evaluation::point_label).collect();
        assert_eq!(
            labels,
            vec![
                "node=16 threads=1",
                "node=16 threads=2",
                "node=16 threads=3",
                "node=8 threads=1",
                "node=8 threads=2",
                "node=8 threads=3",
            ]
        );
        assert_eq!(plan.evals[4].scenario.node, 8);
        assert_eq!(plan.evals[4].scenario.workload[0].threads, 2);
        assert_eq!(plan.evals[4].scenario.name, "b @ node=8 threads=2");
    }

    #[test]
    fn logrange_hits_both_endpoints_geometrically() {
        let values = axis_values(&AxisKind::LogRange(LogRangeAxis {
            start: 1.0,
            stop: 8.0,
            points: 4,
        }));
        let nums: Vec<f64> = values
            .iter()
            .map(|v| match v {
                AxisValue::Num(n) => *n,
                AxisValue::Str(_) => f64::NAN,
            })
            .collect();
        assert_eq!(nums.len(), 4);
        assert!((nums[0] - 1.0).abs() < 1e-12);
        assert!((nums[1] - 2.0).abs() < 1e-9);
        assert!((nums[2] - 4.0).abs() < 1e-9);
        assert!((nums[3] - 8.0).abs() < 1e-12);
    }

    #[test]
    fn range_includes_the_stop_despite_float_drift() {
        let values = axis_values(&AxisKind::Range(RangeAxis {
            start: 0.1,
            stop: 0.4,
            step: 0.1,
        }));
        assert_eq!(values.len(), 4, "{values:?}");
    }

    #[test]
    fn draws_sample_gauss_axes_in_isolation() {
        let axes = vec![
            Axis {
                param: "node".into(),
                kind: AxisKind::List(vec![AxisValue::Num(16.0), AxisValue::Num(8.0)]),
            },
            Axis {
                param: "tdp_watts".into(),
                kind: AxisKind::Gauss(GaussAxis {
                    mean: 60.0,
                    sigma: 5.0,
                    clamp_min: Some(40.0),
                    clamp_max: Some(80.0),
                }),
            },
        ];
        let plan = expand(&spec(axes.clone(), 3, 42)).expect("expands");
        assert_eq!(plan.evals.len(), 6);
        // Sampled values vary per (point, draw) and stay clamped.
        let tdps: Vec<f64> = plan.evals.iter().map(|e| e.sampled[0].1).collect();
        for tdp in &tdps {
            assert!((40.0..=80.0).contains(tdp), "{tdp}");
        }
        assert_ne!(tdps[0], tdps[1], "draws differ");
        assert_ne!(tdps[0], tdps[3], "points differ");
        // Re-expansion is bit-identical, and cell (p, d) does not depend
        // on how many draws surround it.
        let again = expand(&spec(axes.clone(), 3, 42)).expect("expands");
        assert_eq!(plan, again);
        let fewer = expand(&spec(axes, 2, 42)).expect("expands");
        assert_eq!(fewer.evals[0], plan.evals[0]);
        assert_eq!(fewer.evals[1], plan.evals[1]);
        // Draw tags keep names unique.
        assert!(plan.evals[0].scenario.name.ends_with("[draw 0]"));
    }

    #[test]
    fn invalid_expanded_points_name_the_point() {
        // threads=9 is off the validator's range.
        let err = expand(&spec(
            vec![Axis {
                param: "threads".into(),
                kind: AxisKind::List(vec![AxisValue::Num(9.0)]),
            }],
            1,
            0,
        ))
        .expect_err("invalid point");
        assert!(err.to_string().contains("point 0"), "{err}");
        assert!(err.to_string().contains("threads"), "{err}");
    }

    #[test]
    fn empty_axes_is_a_single_point() {
        let plan = expand(&spec(Vec::new(), 1, 0)).expect("expands");
        assert_eq!(plan.points, 1);
        assert_eq!(plan.evals[0].point_label(), "base");
    }
}
