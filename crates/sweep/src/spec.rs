//! The sweep-spec format: `darksil-sweepspec-v1`.
//!
//! A spec is a base [`Scenario`] plus per-parameter axes. Deterministic
//! axes (`list`, `range`, `logrange`) span the cartesian grid; `gauss`
//! axes describe Monte-Carlo parameter distributions sampled per draw.
//!
//! ```json
//! {
//!   "schema": "darksil-sweepspec-v1",
//!   "name": "node vs parallelism",
//!   "seed": 7,
//!   "draws": 1,
//!   "base": { "name": "x264", "node": 16, "workload": [...], "experiment": {...} },
//!   "axes": [
//!     { "param": "node", "list": [16, 8] },
//!     { "param": "threads", "range": { "start": 1, "stop": 4, "step": 1 } },
//!     { "param": "tdp_watts", "gauss": { "mean": 90, "sigma": 8, "clamp_min": 60 } }
//!   ]
//! }
//! ```
//!
//! Validation is strict in the same spirit as the scenario validator:
//! unknown fields, unknown parameters, duplicate axes, duplicate values
//! within an axis, and kind/parameter mismatches are all rejected, and
//! every error names the offending field (and file, when parsed from
//! one).

use darksil_json::{FromJson, Json, JsonError, ObjReader, ToJson};
use darksil_scenario::{validate_scenario, ExperimentSpec, Scenario};

use crate::SweepError;

/// Spec schema marker; bump when the layout changes.
pub const SWEEPSPEC_SCHEMA: &str = "darksil-sweepspec-v1";

/// Upper bound on `draws`, to keep runaway Monte-Carlo specs from
/// compiling into absurd plans.
pub(crate) const MAX_DRAWS: usize = 10_000;

/// Upper bound on the deterministic grid (product of axis
/// cardinalities).
pub(crate) const MAX_GRID_POINTS: usize = 65_536;

/// One axis value: a number or (for `policy`) a string.
#[derive(Debug, Clone, PartialEq)]
pub enum AxisValue {
    /// A numeric value (integers included — JSON has one number type).
    Num(f64),
    /// A string value.
    Str(String),
}

impl AxisValue {
    /// Renders the value the way point labels and scenario names do:
    /// integral numbers without a fraction, strings verbatim.
    #[must_use]
    pub fn label(&self) -> String {
        match self {
            Self::Num(v) => fmt_num(*v),
            Self::Str(s) => s.clone(),
        }
    }
}

/// Formats a number for point labels: integral values without the
/// fraction, everything else via the shortest round-trip form.
pub(crate) fn fmt_num(v: f64) -> String {
    if v.is_finite() && v.fract() == 0.0 && v.abs() < 1e15 {
        format!("{v:.0}")
    } else {
        format!("{v}")
    }
}

impl ToJson for AxisValue {
    fn to_json(&self) -> Json {
        match self {
            Self::Num(v) => v.to_json(),
            Self::Str(s) => Json::Str(s.clone()),
        }
    }
}

impl FromJson for AxisValue {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        match v {
            Json::Num(n) if n.is_finite() => Ok(Self::Num(*n)),
            Json::Str(s) => Ok(Self::Str(s.clone())),
            other => Err(JsonError::msg(format!(
                "expected a finite number or string axis value, got {}",
                other.type_name()
            ))),
        }
    }
}

/// An inclusive arithmetic progression: `start`, `start + step`, …,
/// up to `stop`.
#[derive(Debug, Clone, PartialEq)]
pub struct RangeAxis {
    /// First value.
    pub start: f64,
    /// Inclusive upper bound.
    pub stop: f64,
    /// Positive increment.
    pub step: f64,
}

darksil_json::impl_json!(struct RangeAxis { start, stop, step });

/// A geometric progression of `points` values from `start` to `stop`.
#[derive(Debug, Clone, PartialEq)]
pub struct LogRangeAxis {
    /// First value (must be positive).
    pub start: f64,
    /// Last value (must be at least `start`).
    pub stop: f64,
    /// Number of values, at least 2.
    pub points: usize,
}

darksil_json::impl_json!(struct LogRangeAxis { start, stop, points });

/// A Gaussian parameter distribution, sampled once per Monte-Carlo
/// draw and clamped to the optional bounds.
#[derive(Debug, Clone, PartialEq)]
pub struct GaussAxis {
    /// Distribution mean μ.
    pub mean: f64,
    /// Distribution spread σ (non-negative).
    pub sigma: f64,
    /// Lower clamp applied after sampling.
    pub clamp_min: Option<f64>,
    /// Upper clamp applied after sampling.
    pub clamp_max: Option<f64>,
}

darksil_json::impl_json!(struct GaussAxis { mean, sigma } opt { clamp_min, clamp_max });

impl GaussAxis {
    /// Applies the clamp bounds to a raw sample.
    #[must_use]
    pub fn clamp(&self, v: f64) -> f64 {
        let v = self.clamp_min.map_or(v, |lo| v.max(lo));
        self.clamp_max.map_or(v, |hi| v.min(hi))
    }
}

/// How one axis varies its parameter.
#[derive(Debug, Clone, PartialEq)]
pub enum AxisKind {
    /// An explicit value list.
    List(Vec<AxisValue>),
    /// An inclusive arithmetic progression.
    Range(RangeAxis),
    /// A geometric progression.
    LogRange(LogRangeAxis),
    /// A Monte-Carlo Gaussian distribution.
    Gauss(GaussAxis),
}

impl AxisKind {
    /// The JSON key naming this kind.
    #[must_use]
    pub fn key(&self) -> &'static str {
        match self {
            Self::List(_) => "list",
            Self::Range(_) => "range",
            Self::LogRange(_) => "logrange",
            Self::Gauss(_) => "gauss",
        }
    }
}

/// One swept parameter.
#[derive(Debug, Clone, PartialEq)]
pub struct Axis {
    /// The parameter name (see `param_names`).
    pub param: String,
    /// How the parameter varies.
    pub kind: AxisKind,
}

impl ToJson for Axis {
    fn to_json(&self) -> Json {
        let mut fields = vec![("param".to_string(), Json::Str(self.param.clone()))];
        let (key, value) = match &self.kind {
            AxisKind::List(values) => ("list", values.to_json()),
            AxisKind::Range(r) => ("range", r.to_json()),
            AxisKind::LogRange(r) => ("logrange", r.to_json()),
            AxisKind::Gauss(g) => ("gauss", g.to_json()),
        };
        fields.push((key.to_string(), value));
        Json::Obj(fields)
    }
}

impl FromJson for Axis {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        let mut r = ObjReader::new(v, "axis")?;
        let param: String = r.req("param")?;
        let list: Option<Vec<AxisValue>> = r.opt("list")?;
        let range: Option<RangeAxis> = r.opt("range")?;
        let logrange: Option<LogRangeAxis> = r.opt("logrange")?;
        let gauss: Option<GaussAxis> = r.opt("gauss")?;
        r.finish()?;
        let mut kinds: Vec<AxisKind> = Vec::new();
        if let Some(values) = list {
            kinds.push(AxisKind::List(values));
        }
        if let Some(range) = range {
            kinds.push(AxisKind::Range(range));
        }
        if let Some(logrange) = logrange {
            kinds.push(AxisKind::LogRange(logrange));
        }
        if let Some(gauss) = gauss {
            kinds.push(AxisKind::Gauss(gauss));
        }
        if kinds.len() != 1 {
            return Err(JsonError::msg(format!(
                "axis `{param}` must have exactly one of list|range|logrange|gauss, got {}",
                kinds.len()
            )));
        }
        let mut kinds = kinds.into_iter();
        let kind = kinds.next().ok_or_else(|| JsonError::msg("axis kind"))?;
        Ok(Self { param, kind })
    }
}

/// A complete sweep spec.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepSpec {
    /// Schema marker, [`SWEEPSPEC_SCHEMA`].
    pub schema: String,
    /// Human-readable sweep name (labels output files).
    pub name: String,
    /// Monte-Carlo seed (0 if omitted).
    pub seed: u64,
    /// Monte-Carlo draws per grid point (1 if omitted).
    pub draws: usize,
    /// The base scenario every point starts from.
    pub base: Scenario,
    /// The swept axes, in declaration order.
    pub axes: Vec<Axis>,
}

impl ToJson for SweepSpec {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("schema".to_string(), Json::Str(self.schema.clone())),
            ("name".to_string(), Json::Str(self.name.clone())),
            ("seed".to_string(), self.seed.to_json()),
            ("draws".to_string(), self.draws.to_json()),
            ("base".to_string(), self.base.to_json()),
            ("axes".to_string(), self.axes.to_json()),
        ])
    }
}

impl FromJson for SweepSpec {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        let mut r = ObjReader::new(v, "SweepSpec")?;
        let spec = Self {
            schema: r.req("schema")?,
            name: r.req("name")?,
            seed: r.opt_or("seed", 0_u64)?,
            draws: r.opt_or("draws", 1_usize)?,
            base: r.req("base")?,
            axes: r.req("axes")?,
        };
        r.finish()?;
        Ok(spec)
    }
}

/// What values a swept parameter takes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ParamType {
    /// Non-negative integers (node, cores, threads, …).
    UInt,
    /// Finite floats.
    Float,
    /// Strings (`policy`).
    Str,
}

/// One entry of the swept-parameter vocabulary.
struct ParamDef {
    name: &'static str,
    ty: ParamType,
    /// Whether a `gauss` axis makes sense for this parameter
    /// (continuous, not grid-constrained).
    gauss_ok: bool,
}

/// Every parameter a sweep can vary. `threads` and `instances` apply
/// to all workload lines (fraction-parallelism axes); the experiment
/// parameters must match the base experiment's type.
const PARAMS: &[ParamDef] = &[
    ParamDef {
        name: "node",
        ty: ParamType::UInt,
        gauss_ok: false,
    },
    ParamDef {
        name: "cores",
        ty: ParamType::UInt,
        gauss_ok: false,
    },
    ParamDef {
        name: "threads",
        ty: ParamType::UInt,
        gauss_ok: false,
    },
    ParamDef {
        name: "instances",
        ty: ParamType::UInt,
        gauss_ok: false,
    },
    ParamDef {
        name: "variation_seed",
        ty: ParamType::UInt,
        gauss_ok: false,
    },
    ParamDef {
        name: "tdp_watts",
        ty: ParamType::Float,
        gauss_ok: true,
    },
    ParamDef {
        name: "frequency_ghz",
        ty: ParamType::Float,
        gauss_ok: false, // must stay on the 200 MHz DVFS ladder
    },
    ParamDef {
        name: "t_dtm_celsius",
        ty: ParamType::Float,
        gauss_ok: true,
    },
    ParamDef {
        name: "leakage_sigma",
        ty: ParamType::Float,
        gauss_ok: true,
    },
    ParamDef {
        name: "frequency_sigma",
        ty: ParamType::Float,
        gauss_ok: true,
    },
    ParamDef {
        name: "duration_s",
        ty: ParamType::Float,
        gauss_ok: true,
    },
    ParamDef {
        name: "period_s",
        ty: ParamType::Float,
        gauss_ok: true,
    },
    ParamDef {
        name: "policy",
        ty: ParamType::Str,
        gauss_ok: false,
    },
];

fn param_def(name: &str) -> Option<&'static ParamDef> {
    PARAMS.iter().find(|p| p.name == name)
}

/// The names of every sweepable parameter, for diagnostics.
#[must_use]
pub fn param_names() -> Vec<&'static str> {
    PARAMS.iter().map(|p| p.name).collect()
}

fn axis_err(message: String, index: usize) -> SweepError {
    SweepError::Parse(JsonError::msg(message).at_index(index).in_field("axes"))
}

/// Checks one concrete value against the parameter's type.
fn check_value(def: &ParamDef, value: &AxisValue) -> Result<(), String> {
    match (def.ty, value) {
        (ParamType::UInt, AxisValue::Num(v)) => {
            if !v.is_finite() || v.fract() != 0.0 || *v < 0.0 || *v > 2f64.powi(53) {
                return Err(format!(
                    "`{}` needs a non-negative integer, got {v}",
                    def.name
                ));
            }
            Ok(())
        }
        (ParamType::Float, AxisValue::Num(v)) => {
            if !v.is_finite() {
                return Err(format!("`{}` needs a finite number, got {v}", def.name));
            }
            Ok(())
        }
        (ParamType::Str, AxisValue::Str(_)) => Ok(()),
        (ParamType::Str, AxisValue::Num(v)) => {
            Err(format!("`{}` needs a string value, got {v}", def.name))
        }
        (_, AxisValue::Str(s)) => Err(format!("`{}` needs a numeric value, got `{s}`", def.name)),
    }
}

/// Applies one resolved parameter value to a scenario. `threads` and
/// `instances` rewrite every workload line; experiment parameters must
/// match the base experiment's type.
pub(crate) fn apply_param(
    scenario: &mut Scenario,
    param: &str,
    value: &AxisValue,
) -> Result<(), String> {
    let num = |value: &AxisValue| match value {
        AxisValue::Num(v) => Ok(*v),
        AxisValue::Str(s) => Err(format!("`{param}` needs a numeric value, got `{s}`")),
    };
    #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
    match param {
        "node" => scenario.node = num(value)? as u32,
        "cores" => scenario.cores = Some(num(value)? as usize),
        "variation_seed" => scenario.variation_seed = Some(num(value)? as u64),
        "t_dtm_celsius" => scenario.t_dtm_celsius = Some(num(value)?),
        "leakage_sigma" => scenario.leakage_sigma = Some(num(value)?),
        "frequency_sigma" => scenario.frequency_sigma = Some(num(value)?),
        "threads" => {
            let threads = num(value)? as usize;
            for line in &mut scenario.workload {
                line.threads = threads;
            }
        }
        "instances" => {
            let instances = num(value)? as usize;
            for line in &mut scenario.workload {
                line.instances = instances;
            }
        }
        "tdp_watts" => match &mut scenario.experiment {
            ExperimentSpec::PowerBudget { tdp_watts }
            | ExperimentSpec::Policy { tdp_watts, .. } => *tdp_watts = num(value)?,
            other => {
                return Err(format!(
                    "`tdp_watts` needs a power_budget or policy experiment, base has {}",
                    experiment_tag(other)
                ))
            }
        },
        "frequency_ghz" => match &mut scenario.experiment {
            ExperimentSpec::Thermal { frequency_ghz } => *frequency_ghz = Some(num(value)?),
            other => {
                return Err(format!(
                    "`frequency_ghz` needs a thermal experiment, base has {}",
                    experiment_tag(other)
                ))
            }
        },
        "duration_s" => match &mut scenario.experiment {
            ExperimentSpec::Boost { duration_s, .. } => *duration_s = num(value)?,
            other => {
                return Err(format!(
                    "`duration_s` needs a boost experiment, base has {}",
                    experiment_tag(other)
                ))
            }
        },
        "period_s" => match &mut scenario.experiment {
            ExperimentSpec::Boost { period_s, .. } => *period_s = num(value)?,
            other => {
                return Err(format!(
                    "`period_s` needs a boost experiment, base has {}",
                    experiment_tag(other)
                ))
            }
        },
        "policy" => match (value, &mut scenario.experiment) {
            (AxisValue::Str(name), ExperimentSpec::Policy { policy, .. }) => {
                *policy = name.clone();
            }
            (AxisValue::Num(v), _) => {
                return Err(format!("`policy` needs a string value, got {v}"))
            }
            (_, other) => {
                return Err(format!(
                    "`policy` needs a policy experiment, base has {}",
                    experiment_tag(other)
                ))
            }
        },
        unknown => return Err(format!("unknown parameter `{unknown}`")),
    }
    Ok(())
}

fn experiment_tag(e: &ExperimentSpec) -> &'static str {
    match e {
        ExperimentSpec::PowerBudget { .. } => "power_budget",
        ExperimentSpec::Thermal { .. } => "thermal",
        ExperimentSpec::Policy { .. } => "policy",
        ExperimentSpec::Boost { .. } => "boost",
    }
}

/// Strict semantic validation of a parsed spec. Every error names the
/// offending field.
///
/// # Errors
///
/// Returns [`SweepError::Parse`] with the field path on the first
/// violation.
#[allow(clippy::too_many_lines)]
pub fn validate_sweep_spec(spec: &SweepSpec) -> Result<(), SweepError> {
    if spec.schema != SWEEPSPEC_SCHEMA {
        return Err(SweepError::Parse(
            JsonError::msg(format!(
                "unknown schema `{}` (expected {SWEEPSPEC_SCHEMA})",
                spec.schema
            ))
            .in_field("schema"),
        ));
    }
    if spec.name.trim().is_empty() {
        return Err(SweepError::Parse(
            JsonError::msg("sweep name must not be empty".to_string()).in_field("name"),
        ));
    }
    if spec.draws == 0 || spec.draws > MAX_DRAWS {
        return Err(SweepError::Parse(
            JsonError::msg(format!("draws must be 1..={MAX_DRAWS}, got {}", spec.draws))
                .in_field("draws"),
        ));
    }
    if let Err(e) = validate_scenario(&spec.base) {
        return Err(SweepError::Parse(
            JsonError::msg(format!("base scenario is invalid: {e}")).in_field("base"),
        ));
    }
    let mut has_gauss = false;
    for (i, axis) in spec.axes.iter().enumerate() {
        let Some(def) = param_def(&axis.param) else {
            return Err(axis_err(
                format!(
                    "unknown parameter `{}` (expected one of: {})",
                    axis.param,
                    param_names().join(", ")
                ),
                i,
            ));
        };
        if spec.axes[..i].iter().any(|a| a.param == axis.param) {
            return Err(axis_err(
                format!("duplicate axis for parameter `{}`", axis.param),
                i,
            ));
        }
        match &axis.kind {
            AxisKind::List(values) => {
                if values.is_empty() {
                    return Err(axis_err(
                        format!("axis `{}` has an empty list", axis.param),
                        i,
                    ));
                }
                for value in values {
                    check_value(def, value).map_err(|msg| axis_err(msg, i))?;
                }
                for (j, value) in values.iter().enumerate() {
                    if values[..j].contains(value) {
                        return Err(axis_err(
                            format!(
                                "axis `{}` repeats the value {} — duplicate grid points \
                                 would collide in the result cache",
                                axis.param,
                                value.label()
                            ),
                            i,
                        ));
                    }
                }
            }
            AxisKind::Range(range) => {
                if def.ty == ParamType::Str {
                    return Err(axis_err(
                        format!("`{}` is a string parameter; use a list axis", axis.param),
                        i,
                    ));
                }
                if !range.start.is_finite() || !range.stop.is_finite() || !range.step.is_finite() {
                    return Err(axis_err(
                        format!("axis `{}` has a non-finite range bound", axis.param),
                        i,
                    ));
                }
                if range.step <= 0.0 || range.stop < range.start {
                    return Err(axis_err(
                        format!(
                            "axis `{}` needs step > 0 and stop >= start, got start {} stop {} step {}",
                            axis.param, range.start, range.stop, range.step
                        ),
                        i,
                    ));
                }
            }
            AxisKind::LogRange(range) => {
                if def.ty == ParamType::Str {
                    return Err(axis_err(
                        format!("`{}` is a string parameter; use a list axis", axis.param),
                        i,
                    ));
                }
                if !range.start.is_finite() || !range.stop.is_finite() {
                    return Err(axis_err(
                        format!("axis `{}` has a non-finite logrange bound", axis.param),
                        i,
                    ));
                }
                if range.start <= 0.0 || range.stop < range.start || range.points < 2 {
                    return Err(axis_err(
                        format!(
                            "axis `{}` needs start > 0, stop >= start and points >= 2, \
                             got start {} stop {} points {}",
                            axis.param, range.start, range.stop, range.points
                        ),
                        i,
                    ));
                }
            }
            AxisKind::Gauss(gauss) => {
                if !def.gauss_ok {
                    return Err(axis_err(
                        format!(
                            "`{}` cannot take a gauss axis (grid-constrained parameter); \
                             use list/range",
                            axis.param
                        ),
                        i,
                    ));
                }
                if !gauss.mean.is_finite() || !gauss.sigma.is_finite() || gauss.sigma < 0.0 {
                    return Err(axis_err(
                        format!(
                            "axis `{}` needs a finite mean and non-negative finite sigma, \
                             got mean {} sigma {}",
                            axis.param, gauss.mean, gauss.sigma
                        ),
                        i,
                    ));
                }
                for (label, bound) in [
                    ("clamp_min", gauss.clamp_min),
                    ("clamp_max", gauss.clamp_max),
                ] {
                    if let Some(b) = bound {
                        if !b.is_finite() {
                            return Err(axis_err(
                                format!("axis `{}` has a non-finite {label}", axis.param),
                                i,
                            ));
                        }
                    }
                }
                if let (Some(lo), Some(hi)) = (gauss.clamp_min, gauss.clamp_max) {
                    if lo > hi {
                        return Err(axis_err(
                            format!(
                                "axis `{}` has clamp_min {lo} above clamp_max {hi}",
                                axis.param
                            ),
                            i,
                        ));
                    }
                }
                has_gauss = true;
            }
        }
    }
    if spec.draws > 1 && !has_gauss {
        return Err(SweepError::Parse(
            JsonError::msg(
                "draws > 1 needs at least one gauss axis — without one every draw \
                 would repeat the same evaluation"
                    .to_string(),
            )
            .in_field("draws"),
        ));
    }
    Ok(())
}

/// Parses and validates a sweep spec from JSON text.
///
/// # Errors
///
/// Returns [`SweepError::Parse`] for malformed JSON and for values that
/// fail [`validate_sweep_spec`] — the error names the offending field.
pub fn parse_sweep_spec(json: &str) -> Result<SweepSpec, SweepError> {
    let spec: SweepSpec = darksil_json::from_str(json)?;
    validate_sweep_spec(&spec)?;
    Ok(spec)
}

/// Reads, parses and validates a sweep-spec file; errors name both the
/// offending field and the file.
///
/// # Errors
///
/// Returns [`SweepError::Parse`] for unreadable files, malformed JSON,
/// and validation failures.
pub fn parse_sweep_spec_file(path: &std::path::Path) -> Result<SweepSpec, SweepError> {
    let file = path.display().to_string();
    let text = std::fs::read_to_string(path)
        .map_err(|e| JsonError::msg(format!("cannot read file: {e}")).in_file(&file))?;
    match parse_sweep_spec(&text) {
        Ok(spec) => Ok(spec),
        Err(SweepError::Parse(e)) => Err(SweepError::Parse(e.in_file(&file))),
        Err(other) => Err(other),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use darksil_scenario::WorkloadSpec;

    pub(crate) fn base_scenario() -> Scenario {
        Scenario {
            name: "grid base".into(),
            node: 16,
            cores: Some(16),
            t_dtm_celsius: None,
            variation_seed: None,
            leakage_sigma: None,
            frequency_sigma: None,
            workload: vec![WorkloadSpec {
                app: "x264".into(),
                instances: 2,
                threads: 2,
            }],
            experiment: ExperimentSpec::Policy {
                policy: "tdpmap".into(),
                tdp_watts: 45.0,
            },
        }
    }

    fn sample_spec() -> SweepSpec {
        SweepSpec {
            schema: SWEEPSPEC_SCHEMA.into(),
            name: "sample".into(),
            seed: 7,
            draws: 1,
            base: base_scenario(),
            axes: vec![
                Axis {
                    param: "node".into(),
                    kind: AxisKind::List(vec![AxisValue::Num(16.0), AxisValue::Num(8.0)]),
                },
                Axis {
                    param: "threads".into(),
                    kind: AxisKind::Range(RangeAxis {
                        start: 1.0,
                        stop: 4.0,
                        step: 1.0,
                    }),
                },
            ],
        }
    }

    #[test]
    fn spec_round_trips_through_json() {
        let spec = sample_spec();
        let json = darksil_json::to_string_pretty(&spec);
        let back = parse_sweep_spec(&json).expect("round trip");
        assert_eq!(spec, back);
    }

    #[test]
    fn defaults_fill_seed_and_draws() {
        let json = format!(
            r#"{{
                "schema": "{SWEEPSPEC_SCHEMA}",
                "name": "defaults",
                "base": {},
                "axes": [ {{ "param": "node", "list": [16, 8] }} ]
            }}"#,
            darksil_json::to_string_pretty(&base_scenario())
        );
        let spec = parse_sweep_spec(&json).expect("parses");
        assert_eq!(spec.seed, 0);
        assert_eq!(spec.draws, 1);
    }

    #[test]
    fn validation_names_fields() {
        let mut spec = sample_spec();
        spec.schema = "darksil-sweepspec-v0".into();
        let err = validate_sweep_spec(&spec).expect_err("schema");
        assert!(err.to_string().contains("schema"), "{err}");

        let mut spec = sample_spec();
        spec.axes[1].param = "node".into();
        let err = validate_sweep_spec(&spec).expect_err("duplicate axis");
        assert!(err.to_string().contains("axes[1]"), "{err}");

        let mut spec = sample_spec();
        spec.axes[0].kind = AxisKind::List(vec![AxisValue::Num(16.0), AxisValue::Num(16.0)]);
        let err = validate_sweep_spec(&spec).expect_err("duplicate value");
        assert!(err.to_string().contains("axes[0]"), "{err}");
        assert!(err.to_string().contains("16"), "{err}");

        let mut spec = sample_spec();
        spec.axes[0].param = "warp_factor".into();
        let err = validate_sweep_spec(&spec).expect_err("unknown param");
        assert!(err.to_string().contains("warp_factor"), "{err}");

        let mut spec = sample_spec();
        spec.axes[0] = Axis {
            param: "node".into(),
            kind: AxisKind::Gauss(GaussAxis {
                mean: 16.0,
                sigma: 1.0,
                clamp_min: None,
                clamp_max: None,
            }),
        };
        let err = validate_sweep_spec(&spec).expect_err("gauss on uint");
        assert!(err.to_string().contains("gauss"), "{err}");

        let mut spec = sample_spec();
        spec.draws = 4;
        let err = validate_sweep_spec(&spec).expect_err("draws without gauss");
        assert!(err.to_string().contains("draws"), "{err}");

        let mut spec = sample_spec();
        spec.base.node = 14;
        let err = validate_sweep_spec(&spec).expect_err("bad base");
        assert!(err.to_string().contains("base"), "{err}");

        let mut spec = sample_spec();
        spec.axes[1].kind = AxisKind::Range(RangeAxis {
            start: 4.0,
            stop: 1.0,
            step: 1.0,
        });
        let err = validate_sweep_spec(&spec).expect_err("reversed range");
        assert!(err.to_string().contains("axes[1]"), "{err}");
    }

    #[test]
    fn axis_rejects_zero_or_two_kinds() {
        let none: Result<Axis, _> = darksil_json::from_str(r#"{ "param": "node" }"#);
        assert!(none.is_err());
        let two: Result<Axis, _> = darksil_json::from_str(
            r#"{ "param": "node", "list": [16], "range": { "start": 1, "stop": 2, "step": 1 } }"#,
        );
        assert!(two.is_err());
    }

    #[test]
    fn file_errors_name_the_file() {
        let err = parse_sweep_spec_file(std::path::Path::new("/nonexistent/sweep.json"))
            .expect_err("missing file");
        assert!(err.to_string().contains("/nonexistent/sweep.json"), "{err}");
    }

    #[test]
    fn tdp_axis_requires_a_budgeted_experiment() {
        let mut scenario = base_scenario();
        scenario.experiment = ExperimentSpec::Thermal {
            frequency_ghz: None,
        };
        let err =
            apply_param(&mut scenario, "tdp_watts", &AxisValue::Num(60.0)).expect_err("mismatch");
        assert!(err.contains("thermal"), "{err}");

        let mut scenario = base_scenario();
        apply_param(&mut scenario, "tdp_watts", &AxisValue::Num(60.0)).expect("policy has tdp");
        assert!(matches!(
            scenario.experiment,
            ExperimentSpec::Policy { tdp_watts, .. } if tdp_watts == 60.0
        ));
    }
}
