//! Sweep analysis: uncertainty bands, Pareto frontier, summary stats.
//!
//! Per grid point the Monte-Carlo draws are collapsed into exact
//! p5/p50/p95 order statistics (linear interpolation between sorted
//! samples — not the obs log-bucket estimate, since a point rarely has
//! more than a few dozen draws and exactness keeps the result bytes
//! stable). The frontier is then extracted over the three objectives of
//! the paper's trade-off: throughput up, dark fraction down, peak
//! temperature down. Sweep-wide distributions reuse the obs
//! [`HistogramStats`] machinery. Nothing here touches the wall clock,
//! so the serialised result is byte-identical at any worker count.

use darksil_json::{Json, ToJson};
use darksil_obs::HistogramStats;

use crate::expand::{point_label, SweepPlan};
use crate::run::{CacheCounts, EvalOutcome};
use crate::spec::{AxisValue, SweepSpec};

/// Schema tag of the machine-readable sweep result.
pub const SWEEPRESULT_SCHEMA: &str = "darksil-sweepresult-v1";

/// An exact p5/p50/p95 band over a point's Monte-Carlo draws.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Band {
    /// 5th percentile.
    pub p5: f64,
    /// Median.
    pub p50: f64,
    /// 95th percentile.
    pub p95: f64,
}

impl Band {
    /// Exact order statistics of `samples` (need not be sorted).
    #[must_use]
    pub fn from_samples(samples: &[f64]) -> Self {
        let mut sorted = samples.to_vec();
        sorted.sort_by(f64::total_cmp);
        Self {
            p5: order_stat(&sorted, 0.05),
            p50: order_stat(&sorted, 0.50),
            p95: order_stat(&sorted, 0.95),
        }
    }
}

impl ToJson for Band {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("p5".to_string(), self.p5.to_json()),
            ("p50".to_string(), self.p50.to_json()),
            ("p95".to_string(), self.p95.to_json()),
        ])
    }
}

/// Linear-interpolated order statistic of an already-sorted slice.
fn order_stat(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    #[allow(clippy::cast_precision_loss)]
    let h = q.clamp(0.0, 1.0) * (sorted.len() - 1) as f64;
    #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
    let lo = h.floor() as usize;
    #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
    let hi = (h.ceil() as usize).min(sorted.len() - 1);
    let frac = h - h.floor();
    sorted[lo] + (sorted[hi] - sorted[lo]) * frac
}

/// One Monte-Carlo draw of one grid point, flattened for the result.
#[derive(Debug, Clone, PartialEq)]
pub struct DrawRecord {
    /// Draw index within the point.
    pub draw_index: usize,
    /// Gauss-sampled axis values for this draw, in axis order.
    pub sampled: Vec<(String, f64)>,
    /// Throughput in GIPS.
    pub total_gips: f64,
    /// Dark-silicon fraction.
    pub dark_fraction: f64,
    /// Peak die temperature in °C.
    pub peak_temperature_c: f64,
    /// Total power in watts.
    pub total_power_w: f64,
    /// Active cores after mapping.
    pub active_cores: usize,
    /// Whether the DTM threshold was exceeded.
    pub thermal_violation: bool,
    /// Cache outcome label: `hit`, `miss`, `recovered`, or `off`.
    pub cache: &'static str,
}

impl ToJson for DrawRecord {
    fn to_json(&self) -> Json {
        let sampled = Json::Obj(
            self.sampled
                .iter()
                .map(|(k, v)| (k.clone(), v.to_json()))
                .collect(),
        );
        Json::Obj(vec![
            ("draw_index".to_string(), self.draw_index.to_json()),
            ("sampled".to_string(), sampled),
            ("total_gips".to_string(), self.total_gips.to_json()),
            ("dark_fraction".to_string(), self.dark_fraction.to_json()),
            (
                "peak_temperature_c".to_string(),
                self.peak_temperature_c.to_json(),
            ),
            ("total_power_w".to_string(), self.total_power_w.to_json()),
            ("active_cores".to_string(), self.active_cores.to_json()),
            (
                "thermal_violation".to_string(),
                self.thermal_violation.to_json(),
            ),
            ("cache".to_string(), Json::Str(self.cache.to_string())),
        ])
    }
}

/// One grid point: its deterministic coordinates, uncertainty bands
/// across draws, and Pareto status.
#[derive(Debug, Clone, PartialEq)]
pub struct PointSummary {
    /// Grid-point index (row-major over the deterministic axes).
    pub point_index: usize,
    /// Human-readable `param=value` label (`base` for an empty grid).
    pub label: String,
    /// Deterministic axis values, in axis order.
    pub params: Vec<(String, AxisValue)>,
    /// Whether the point sits on the Pareto frontier.
    pub pareto: bool,
    /// Median throughput relative to point 0's median.
    pub speedup: f64,
    /// Throughput band (GIPS).
    pub total_gips: Band,
    /// Dark-fraction band.
    pub dark_fraction: Band,
    /// Peak-temperature band (°C).
    pub peak_temperature_c: Band,
    /// Total-power band (W).
    pub total_power_w: Band,
    /// Fraction of draws that violated the DTM threshold.
    pub violation_rate: f64,
    /// The individual draws.
    pub draws: Vec<DrawRecord>,
}

impl ToJson for PointSummary {
    fn to_json(&self) -> Json {
        let params = Json::Obj(
            self.params
                .iter()
                .map(|(k, v)| (k.clone(), v.to_json()))
                .collect(),
        );
        Json::Obj(vec![
            ("point_index".to_string(), self.point_index.to_json()),
            ("label".to_string(), Json::Str(self.label.clone())),
            ("params".to_string(), params),
            ("pareto".to_string(), self.pareto.to_json()),
            ("speedup".to_string(), self.speedup.to_json()),
            ("total_gips".to_string(), self.total_gips.to_json()),
            ("dark_fraction".to_string(), self.dark_fraction.to_json()),
            (
                "peak_temperature_c".to_string(),
                self.peak_temperature_c.to_json(),
            ),
            ("total_power_w".to_string(), self.total_power_w.to_json()),
            ("violation_rate".to_string(), self.violation_rate.to_json()),
            (
                "draws".to_string(),
                Json::Arr(self.draws.iter().map(ToJson::to_json).collect()),
            ),
        ])
    }
}

impl ToJson for CacheCounts {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("hit".to_string(), self.hit.to_json()),
            ("miss".to_string(), self.miss.to_json()),
            ("recovered".to_string(), self.recovered.to_json()),
        ])
    }
}

/// Sweep-wide distribution of one metric across all evaluations.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricSummary {
    /// Metric name.
    pub metric: String,
    /// Mean across all evaluations.
    pub mean: f64,
    /// Log-bucket p50 estimate.
    pub p50: f64,
    /// Log-bucket p95 estimate.
    pub p95: f64,
}

impl ToJson for MetricSummary {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("metric".to_string(), Json::Str(self.metric.clone())),
            ("mean".to_string(), self.mean.to_json()),
            ("p50".to_string(), self.p50.to_json()),
            ("p95".to_string(), self.p95.to_json()),
        ])
    }
}

/// The complete analysed sweep: schema `darksil-sweepresult-v1`.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepResult {
    /// Sweep name (from the spec).
    pub name: String,
    /// FNV-1a digest of the compact spec JSON, hex.
    pub spec_digest: String,
    /// Monte-Carlo seed.
    pub seed: u64,
    /// Draws per grid point.
    pub draws: usize,
    /// Deterministic grid size.
    pub grid_points: usize,
    /// Total evaluations (`grid_points × draws`).
    pub evals: usize,
    /// The deterministic axes and their expanded values (for axis cuts).
    pub grid_axes: Vec<(String, Vec<AxisValue>)>,
    /// Cache outcome counters.
    pub cache: CacheCounts,
    /// Per-point summaries, in grid order.
    pub points: Vec<PointSummary>,
    /// Indices (into `points`) of the Pareto frontier, in grid order.
    pub frontier: Vec<usize>,
    /// Sweep-wide metric distributions.
    pub summary: Vec<MetricSummary>,
}

impl ToJson for SweepResult {
    fn to_json(&self) -> Json {
        let grid_axes = Json::Arr(
            self.grid_axes
                .iter()
                .map(|(param, values)| {
                    Json::Obj(vec![
                        ("param".to_string(), Json::Str(param.clone())),
                        (
                            "values".to_string(),
                            Json::Arr(values.iter().map(ToJson::to_json).collect()),
                        ),
                    ])
                })
                .collect(),
        );
        Json::Obj(vec![
            (
                "schema".to_string(),
                Json::Str(SWEEPRESULT_SCHEMA.to_string()),
            ),
            ("name".to_string(), Json::Str(self.name.clone())),
            (
                "spec_digest".to_string(),
                Json::Str(self.spec_digest.clone()),
            ),
            ("seed".to_string(), self.seed.to_json()),
            ("draws".to_string(), self.draws.to_json()),
            ("grid_points".to_string(), self.grid_points.to_json()),
            ("evals".to_string(), self.evals.to_json()),
            (
                "objectives".to_string(),
                Json::Str(
                    "maximise total_gips, minimise dark_fraction, \
                     minimise peak_temperature_c (over point medians)"
                        .to_string(),
                ),
            ),
            ("grid_axes".to_string(), grid_axes),
            ("cache".to_string(), self.cache.to_json()),
            (
                "points".to_string(),
                Json::Arr(self.points.iter().map(ToJson::to_json).collect()),
            ),
            (
                "frontier".to_string(),
                Json::Arr(self.frontier.iter().map(ToJson::to_json).collect()),
            ),
            (
                "summary".to_string(),
                Json::Arr(self.summary.iter().map(ToJson::to_json).collect()),
            ),
        ])
    }
}

/// Whether point `a` Pareto-dominates point `b`: at least as good in
/// every objective, strictly better in at least one.
fn dominates(a: &PointSummary, b: &PointSummary) -> bool {
    let ge = a.total_gips.p50 >= b.total_gips.p50
        && a.dark_fraction.p50 <= b.dark_fraction.p50
        && a.peak_temperature_c.p50 <= b.peak_temperature_c.p50;
    let strict = a.total_gips.p50 > b.total_gips.p50
        || a.dark_fraction.p50 < b.dark_fraction.p50
        || a.peak_temperature_c.p50 < b.peak_temperature_c.p50;
    ge && strict
}

/// Collapses finished evaluations into the analysed [`SweepResult`].
///
/// `outcomes` must be the full plan in submission order (the runner
/// guarantees this); draws of a point are grouped by `point_index`.
#[must_use]
pub fn analyze(
    spec: &SweepSpec,
    plan: &SweepPlan,
    outcomes: &[EvalOutcome],
    cache: CacheCounts,
) -> SweepResult {
    let digest = darksil_engine::stable_hash(spec.to_json().compact().as_bytes());

    // Group draws per point, preserving order.
    let mut points: Vec<PointSummary> = Vec::with_capacity(plan.points);
    for outcome in outcomes {
        if points.last().map(|p| p.point_index) != Some(outcome.point_index) {
            points.push(PointSummary {
                point_index: outcome.point_index,
                label: point_label(&outcome.params),
                params: outcome.params.clone(),
                pareto: false,
                speedup: 1.0,
                total_gips: Band::from_samples(&[]),
                dark_fraction: Band::from_samples(&[]),
                peak_temperature_c: Band::from_samples(&[]),
                total_power_w: Band::from_samples(&[]),
                violation_rate: 0.0,
                draws: Vec::new(),
            });
        }
        let point = match points.last_mut() {
            Some(point) => point,
            None => unreachable!("pushed above"),
        };
        point.draws.push(DrawRecord {
            draw_index: outcome.draw_index,
            sampled: outcome.sampled.clone(),
            total_gips: outcome.report.total_gips,
            dark_fraction: outcome.report.dark_fraction,
            peak_temperature_c: outcome.report.peak_temperature_c,
            total_power_w: outcome.report.total_power_w,
            active_cores: outcome.report.active_cores,
            thermal_violation: outcome.report.thermal_violation,
            cache: outcome.cache,
        });
    }

    for point in &mut points {
        fn band(draws: &[DrawRecord], f: fn(&DrawRecord) -> f64) -> Band {
            let samples: Vec<f64> = draws.iter().map(f).collect();
            Band::from_samples(&samples)
        }
        point.total_gips = band(&point.draws, |d| d.total_gips);
        point.dark_fraction = band(&point.draws, |d| d.dark_fraction);
        point.peak_temperature_c = band(&point.draws, |d| d.peak_temperature_c);
        point.total_power_w = band(&point.draws, |d| d.total_power_w);
        let violations = point.draws.iter().filter(|d| d.thermal_violation).count();
        #[allow(clippy::cast_precision_loss)]
        if !point.draws.is_empty() {
            point.violation_rate = violations as f64 / point.draws.len() as f64;
        }
    }

    let baseline = points.first().map_or(0.0, |p| p.total_gips.p50);
    for point in &mut points {
        point.speedup = if baseline > 0.0 {
            point.total_gips.p50 / baseline
        } else {
            1.0
        };
    }

    let mut frontier = Vec::new();
    for i in 0..points.len() {
        let dominated = points
            .iter()
            .enumerate()
            .any(|(j, other)| j != i && dominates(other, &points[i]));
        points[i].pareto = !dominated;
        if !dominated {
            frontier.push(i);
        }
    }

    let summary = [
        "total_gips",
        "dark_fraction",
        "peak_temperature_c",
        "total_power_w",
    ]
    .iter()
    .map(|&metric| {
        let mut hist = HistogramStats::default();
        for outcome in outcomes {
            let value = match metric {
                "total_gips" => outcome.report.total_gips,
                "dark_fraction" => outcome.report.dark_fraction,
                "peak_temperature_c" => outcome.report.peak_temperature_c,
                _ => outcome.report.total_power_w,
            };
            hist.record(value);
        }
        MetricSummary {
            metric: metric.to_string(),
            mean: hist.mean(),
            p50: hist.p50(),
            p95: hist.p95(),
        }
    })
    .collect();

    SweepResult {
        name: spec.name.clone(),
        spec_digest: format!("{digest:016x}"),
        seed: spec.seed,
        draws: spec.draws,
        grid_points: plan.points,
        evals: outcomes.len(),
        grid_axes: plan.grid_axes.clone(),
        cache,
        points,
        frontier,
        summary,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bands_are_exact_order_statistics() {
        let band = Band::from_samples(&[4.0, 1.0, 3.0, 2.0]);
        assert!((band.p50 - 2.5).abs() < 1e-12, "p50 {}", band.p50);
        assert!((band.p5 - 1.15).abs() < 1e-12, "p5 {}", band.p5);
        assert!((band.p95 - 3.85).abs() < 1e-12, "p95 {}", band.p95);

        let single = Band::from_samples(&[7.0]);
        assert_eq!((single.p5, single.p50, single.p95), (7.0, 7.0, 7.0));
    }

    #[test]
    fn dominance_requires_a_strict_edge() {
        let mk = |gips: f64, dark: f64, temp: f64| PointSummary {
            point_index: 0,
            label: String::new(),
            params: Vec::new(),
            pareto: false,
            speedup: 1.0,
            total_gips: Band {
                p5: gips,
                p50: gips,
                p95: gips,
            },
            dark_fraction: Band {
                p5: dark,
                p50: dark,
                p95: dark,
            },
            peak_temperature_c: Band {
                p5: temp,
                p50: temp,
                p95: temp,
            },
            total_power_w: Band {
                p5: 0.0,
                p50: 0.0,
                p95: 0.0,
            },
            violation_rate: 0.0,
            draws: Vec::new(),
        };
        let a = mk(10.0, 0.5, 80.0);
        let b = mk(8.0, 0.5, 80.0);
        assert!(dominates(&a, &b));
        assert!(!dominates(&b, &a));
        // Equal in everything: neither dominates.
        assert!(!dominates(&a, &mk(10.0, 0.5, 80.0)));
        // Trade-off (more gips but hotter): neither dominates.
        let hot = mk(12.0, 0.5, 95.0);
        assert!(!dominates(&a, &hot));
        assert!(!dominates(&hot, &a));
    }
}
