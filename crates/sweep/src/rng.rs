//! The sweep's Monte-Carlo RNG: SplitMix64 with a Box–Muller Gaussian,
//! keyed per `(seed, point_index, draw_index)`.
//!
//! Keying a fresh generator per evaluation — rather than streaming one
//! generator across the plan — is what lets any single point/draw be
//! regenerated in isolation: a resume, a cache-miss recompute, or a
//! reproducer never needs to replay the draws that came before it. The
//! core generator matches the reference SplitMix64 used elsewhere in
//! the workspace (`darksil-power`'s variation sampler, the proptest
//! shim).

/// Golden-ratio increment shared by every SplitMix64 in the workspace;
/// also used to fold the point index into the seed.
const GOLDEN: u64 = 0x9E37_79B9_7F4A_7C15;

/// Second mixing constant folding the draw index into the seed, so
/// `(point, draw)` and `(draw, point)` never collide.
const DRAW_MIX: u64 = 0xC2B2_AE3D_27D4_EB4F;

/// Deterministic Gaussian sampler for one `(seed, point, draw)` cell.
#[derive(Debug)]
pub struct DrawRng {
    state: u64,
    cached: Option<f64>,
}

impl DrawRng {
    /// The generator for Monte-Carlo cell `(point_index, draw_index)`
    /// of a sweep seeded with `seed`.
    #[must_use]
    pub fn for_cell(seed: u64, point_index: usize, draw_index: usize) -> Self {
        let state = seed
            ^ (point_index as u64).wrapping_mul(GOLDEN)
            ^ (draw_index as u64).wrapping_mul(DRAW_MIX);
        Self {
            state,
            cached: None,
        }
    }

    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(GOLDEN);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in (0, 1].
    fn next_unit(&mut self) -> f64 {
        ((self.next_u64() >> 11) as f64 + 1.0) / (1_u64 << 53) as f64
    }

    /// Standard-normal draw (Box–Muller, pair-cached).
    pub fn next_gaussian(&mut self) -> f64 {
        if let Some(z) = self.cached.take() {
            return z;
        }
        let u1 = self.next_unit();
        let u2 = self.next_unit();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f64::consts::PI * u2;
        self.cached = Some(r * theta.sin());
        r * theta.cos()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cells_are_independent_and_reproducible() {
        let mut a = DrawRng::for_cell(7, 3, 2);
        let mut b = DrawRng::for_cell(7, 3, 2);
        assert_eq!(a.next_u64(), b.next_u64());

        // Regenerating cell (3, 2) needs no other cell's history.
        let direct: Vec<u64> = {
            let mut rng = DrawRng::for_cell(7, 3, 2);
            (0..4).map(|_| rng.next_u64()).collect()
        };
        let mut again = DrawRng::for_cell(7, 3, 2);
        let replay: Vec<u64> = (0..4).map(|_| again.next_u64()).collect();
        assert_eq!(direct, replay);
    }

    #[test]
    fn point_and_draw_indices_do_not_commute() {
        let mut a = DrawRng::for_cell(0, 1, 2);
        let mut b = DrawRng::for_cell(0, 2, 1);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn gaussians_are_roughly_standard() {
        let mut rng = DrawRng::for_cell(42, 0, 0);
        let n = 10_000;
        let draws: Vec<f64> = (0..n).map(|_| rng.next_gaussian()).collect();
        let mean = draws.iter().sum::<f64>() / f64::from(n);
        let var = draws.iter().map(|d| (d - mean) * (d - mean)).sum::<f64>() / f64::from(n);
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.08, "var {var}");
    }
}
