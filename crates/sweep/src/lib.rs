//! Declarative design-space exploration over [`darksil_scenario`]
//! scenarios.
//!
//! The paper's figures are one-shot slices through a much larger design
//! space. This crate turns figure reproduction into a general, cached,
//! parallel exploration engine, in four layers:
//!
//! 1. **Spec** (`spec`): a versioned JSON format
//!    (`darksil-sweepspec-v1`) describing a base scenario plus
//!    per-parameter axes — `list`, `range`, `logrange`, and
//!    `gauss(μ, σ, clamp)` Monte-Carlo distributions — over tech node,
//!    fraction parallelism, core perf/power spread, TDP, and policy.
//! 2. **Compiler** (`expand`): deterministic expansion into a job
//!    plan — the cartesian grid of the deterministic axes × `draws`
//!    Monte-Carlo draws, every sampled value regenerated in isolation
//!    from a split-mix RNG keyed by `(seed, point_index, draw_index)`.
//!    Every expanded scenario passes the strict scenario validator.
//! 3. **Runner** (`run`): streams the plan through the
//!    [`darksil_engine`] worker pool (submission-order results, so
//!    output bytes are identical at any `--jobs`), the
//!    content-addressed result cache (editing one axis recomputes only
//!    the delta), supervision (deadline/retries/breaker), and the run
//!    journal for resumability.
//! 4. **Analysis & reporting** (`analysis`, `report`):
//!    Pareto-frontier extraction over (throughput, dark ratio, peak
//!    temperature), per-point p5/p50/p95 uncertainty bands across
//!    draws, summary stats on the obs histogram machinery, a
//!    machine-readable `darksil-sweepresult-v1` JSON, and a
//!    self-contained HTML report.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

mod analysis;
mod expand;
mod report;
mod rng;
mod run;
mod spec;

pub use analysis::{
    analyze, Band, DrawRecord, MetricSummary, PointSummary, SweepResult, SWEEPRESULT_SCHEMA,
};
pub use expand::{expand, Evaluation, SweepPlan};
pub use report::render_sweep_report;
pub use run::{run_sweep, CacheCounts, EvalOutcome, SweepOptions, SWEEP_CACHE_SALT};
pub use spec::{
    parse_sweep_spec, parse_sweep_spec_file, validate_sweep_spec, Axis, AxisKind, AxisValue,
    GaussAxis, LogRangeAxis, RangeAxis, SweepSpec, SWEEPSPEC_SCHEMA,
};

use darksil_json::JsonError;

/// Errors from sweep parsing, expansion, and execution.
#[derive(Debug)]
pub enum SweepError {
    /// The spec JSON was malformed or failed validation; carries the
    /// field path (and file, when parsed from one).
    Parse(JsonError),
    /// Expansion produced an invalid point or an out-of-bounds plan.
    Invalid(String),
    /// An inner engine/scenario failure.
    Run(darksil_robust::DarksilError),
}

impl std::fmt::Display for SweepError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Parse(e) => write!(f, "sweep spec error: {e}"),
            Self::Invalid(msg) => write!(f, "invalid sweep: {msg}"),
            Self::Run(e) => write!(f, "sweep failed: {e}"),
        }
    }
}

impl std::error::Error for SweepError {}

impl From<JsonError> for SweepError {
    fn from(e: JsonError) -> Self {
        Self::Parse(e)
    }
}

impl From<darksil_robust::DarksilError> for SweepError {
    fn from(e: darksil_robust::DarksilError) -> Self {
        Self::Run(e)
    }
}
