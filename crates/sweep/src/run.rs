//! The runner: plan → engine pool → cache → supervised evaluations.
//!
//! Evaluations stream through [`darksil_engine::Engine::par_map`]
//! (submission-order results, so the result artefacts are byte-identical
//! at any `--jobs`), each wrapped in a [`Supervisor`] policy
//! (per-attempt deadline, retries, a shared circuit breaker) and served
//! through the content-addressed [`ResultCache`] keyed by the resolved
//! scenario — names embed the grid values, so editing one axis value
//! changes only the affected points' keys and everything else replays
//! as a hit. Progress is checkpointed in the [`Journal`] so an
//! interrupted sweep resumes without redoing completed work (the cache
//! serves it back).

use std::path::PathBuf;
use std::time::Duration;

use darksil_bench::journal::{ArtefactState, Journal};
use darksil_engine::{
    BackoffPolicy, CacheOutcome, Engine, JobSpec, ResultCache, Supervisor, DEFAULT_CACHE_DIR,
};
use darksil_json::{FromJson, Json, ToJson};
use darksil_robust::DarksilError;
use darksil_scenario::{run_scenario, ScenarioError, ScenarioReport};

use crate::analysis::{analyze, SweepResult};
use crate::expand::{expand, Evaluation};
use crate::spec::SweepSpec;
use crate::SweepError;

/// Cache salt for sweep evaluations; bump to invalidate on
/// behaviour-changing releases.
pub const SWEEP_CACHE_SALT: &str = "darksil-sweep-v1";

/// Artefact name under which evaluations are cached.
const CACHE_ARTEFACT: &str = "sweep-point";

/// Per-attempt wall-clock budget for one evaluation.
const EVAL_DEADLINE: Duration = Duration::from_secs(120);

/// Consecutive failures before the `sweep-point` class stops retrying.
const BREAKER_THRESHOLD: u32 = 4;

/// Execution options for [`run_sweep`].
#[derive(Debug, Clone)]
pub struct SweepOptions {
    /// Worker count; 0 uses the engine default (`--jobs`,
    /// `DARKSIL_JOBS`, available parallelism).
    pub jobs: usize,
    /// Cache directory; [`DEFAULT_CACHE_DIR`] when `None`.
    pub cache_dir: Option<PathBuf>,
    /// Whether to consult the result cache at all.
    pub use_cache: bool,
    /// Where to checkpoint progress; no journal when `None`.
    pub journal_path: Option<PathBuf>,
    /// Whether to resume an existing journal instead of starting fresh.
    pub resume: bool,
}

impl Default for SweepOptions {
    fn default() -> Self {
        Self {
            jobs: 0,
            cache_dir: None,
            use_cache: true,
            journal_path: None,
            resume: false,
        }
    }
}

/// Cache outcome counters across the whole sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheCounts {
    /// Evaluations served from the cache.
    pub hit: usize,
    /// Evaluations computed because no entry existed.
    pub miss: usize,
    /// Evaluations recomputed over a corrupt/stale entry.
    pub recovered: usize,
}

impl CacheCounts {
    fn count(&mut self, label: &str) {
        match label {
            "hit" => self.hit += 1,
            "miss" => self.miss += 1,
            "recovered" => self.recovered += 1,
            _ => {}
        }
    }
}

/// One finished evaluation.
#[derive(Debug, Clone, PartialEq)]
pub struct EvalOutcome {
    /// Grid-point index.
    pub point_index: usize,
    /// Draw index within the point.
    pub draw_index: usize,
    /// Deterministic axis values, in axis order.
    pub params: Vec<(String, crate::spec::AxisValue)>,
    /// Gauss-sampled values for this draw, in axis order.
    pub sampled: Vec<(String, f64)>,
    /// The scenario report.
    pub report: ScenarioReport,
    /// Cache outcome label: `hit`, `miss`, `recovered`, or `off`.
    pub cache: &'static str,
}

/// Folds a scenario failure into the workspace error taxonomy,
/// unwrapping an inner [`DarksilError`] when one caused it.
fn to_darksil(e: ScenarioError) -> DarksilError {
    match e {
        ScenarioError::Run(inner) => match inner.downcast::<DarksilError>() {
            Ok(error) => *error,
            Err(other) => DarksilError::config(format!("scenario failed: {other}")),
        },
        other => DarksilError::config(other.to_string()),
    }
}

/// The journal's run-configuration fingerprint: resuming under an
/// edited spec would silently mix incompatible results, so the digest
/// covers the full compact spec JSON.
fn journal_config(spec: &SweepSpec, points: usize, evals: usize) -> Json {
    let digest = darksil_engine::stable_hash(spec.to_json().compact().as_bytes());
    Json::Obj(vec![
        (
            "spec_digest".to_string(),
            Json::Str(format!("{digest:016x}")),
        ),
        ("seed".to_string(), spec.seed.to_json()),
        ("draws".to_string(), spec.draws.to_json()),
        ("points".to_string(), points.to_json()),
        ("evals".to_string(), evals.to_json()),
    ])
}

fn open_journal(
    spec: &SweepSpec,
    opts: &SweepOptions,
    names: &[String],
    points: usize,
) -> Result<Option<Journal>, SweepError> {
    let Some(path) = &opts.journal_path else {
        return Ok(None);
    };
    let config = journal_config(spec, points, names.len());
    if opts.resume {
        let journal = Journal::load(path)?;
        if journal.config().compact() != config.compact() {
            return Err(SweepError::Run(DarksilError::config(format!(
                "journal {} was written for a different sweep configuration; \
                 re-run without --resume to start over",
                path.display()
            ))));
        }
        journal.requeue_unfinished();
        Ok(Some(journal))
    } else {
        let name_refs: Vec<&str> = names.iter().map(String::as_str).collect();
        let journal = Journal::create(path, config, &name_refs);
        journal.save()?;
        Ok(Some(journal))
    }
}

/// Executes a validated spec end to end: expand, stream through the
/// pool/cache/supervisor, analyze. The returned [`SweepResult`]
/// contains no wall-clock state, so its serialised form is
/// byte-identical at any worker count.
///
/// # Errors
///
/// Returns [`SweepError::Invalid`] for plans that fail expansion and
/// [`SweepError::Run`] for the first failing evaluation (in submission
/// order) or journal/cache IO failures.
pub fn run_sweep(spec: &SweepSpec, opts: &SweepOptions) -> Result<SweepResult, SweepError> {
    let _span = darksil_obs::span("sweep.run");
    let plan = expand(spec)?;
    let names: Vec<String> = plan.evals.iter().map(Evaluation::job_name).collect();
    let journal = open_journal(spec, opts, &names, plan.points)?;

    let cache = opts.use_cache.then(|| {
        ResultCache::open(
            opts.cache_dir
                .clone()
                .unwrap_or_else(|| PathBuf::from(DEFAULT_CACHE_DIR)),
            SWEEP_CACHE_SALT,
        )
    });
    let supervisor = Supervisor::new(BackoffPolicy::default(), BREAKER_THRESHOLD);

    let engine = if opts.jobs == 0 {
        Engine::auto()
    } else {
        Engine::new(opts.jobs)
    };

    let results = engine.par_map(plan.evals.clone(), |eval| {
        let name = eval.job_name();
        if let Some(journal) = &journal {
            journal.transition(&name, ArtefactState::Running)?;
        }
        let job_spec = JobSpec {
            name: name.clone(),
            class: "sweep-point".to_string(),
            deadline: Some(EVAL_DEADLINE),
            max_retries: 2,
            degrade_on_exhaustion: false,
        };
        let supervised = supervisor.run(&job_spec, || {
            let compute = || {
                run_scenario(&eval.scenario)
                    .map(|report| report.to_json())
                    .map_err(to_darksil)
            };
            let (payload, label) = match &cache {
                Some(cache) => {
                    let key = cache.key(CACHE_ARTEFACT, &eval.scenario.to_json());
                    let (payload, outcome) = cache.get_or_compute(&key, compute)?;
                    let label = match outcome {
                        CacheOutcome::Hit => "hit",
                        CacheOutcome::Miss => "miss",
                        CacheOutcome::Recovered(_) => "recovered",
                    };
                    (payload, label)
                }
                None => (compute()?, "off"),
            };
            let report = ScenarioReport::from_json(&payload).map_err(|e| {
                DarksilError::cache(format!("cached sweep payload is malformed: {e}"))
            })?;
            Ok((report, label))
        });

        let seconds: f64 = supervised.attempts.iter().map(|a| a.seconds).sum();
        let attempts: Vec<Json> = supervised.attempts.iter().map(ToJson::to_json).collect();
        match supervised.result {
            Ok((report, label)) => {
                if let Some(journal) = &journal {
                    let state = if supervised.degraded {
                        ArtefactState::Degraded
                    } else {
                        ArtefactState::Done
                    };
                    journal.record_finished(&name, state, None, attempts, seconds)?;
                }
                Ok(EvalOutcome {
                    point_index: eval.point_index,
                    draw_index: eval.draw_index,
                    params: eval.params.clone(),
                    sampled: eval.sampled.clone(),
                    report,
                    cache: label,
                })
            }
            Err(error) => {
                if let Some(journal) = &journal {
                    journal.record_finished(
                        &name,
                        ArtefactState::Failed,
                        Some(error.to_string()),
                        attempts,
                        seconds,
                    )?;
                }
                Err(error)
            }
        }
    });

    let mut outcomes = Vec::with_capacity(results.len());
    let mut counts = CacheCounts::default();
    for result in results {
        let outcome = result.map_err(SweepError::Run)?;
        counts.count(outcome.cache);
        outcomes.push(outcome);
    }

    Ok(analyze(spec, &plan, &outcomes, counts))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{Axis, AxisKind, AxisValue, GaussAxis, SWEEPSPEC_SCHEMA};
    use darksil_scenario::{ExperimentSpec, Scenario, WorkloadSpec};

    fn tiny_spec(draws: usize) -> SweepSpec {
        let mut axes = vec![Axis {
            param: "node".into(),
            kind: AxisKind::List(vec![AxisValue::Num(22.0), AxisValue::Num(16.0)]),
        }];
        if draws > 1 {
            axes.push(Axis {
                param: "tdp_watts".into(),
                kind: AxisKind::Gauss(GaussAxis {
                    mean: 40.0,
                    sigma: 4.0,
                    clamp_min: Some(25.0),
                    clamp_max: Some(60.0),
                }),
            });
        }
        SweepSpec {
            schema: SWEEPSPEC_SCHEMA.into(),
            name: "tiny".into(),
            seed: 3,
            draws,
            base: Scenario {
                name: "tiny base".into(),
                node: 22,
                cores: Some(9),
                t_dtm_celsius: None,
                variation_seed: None,
                leakage_sigma: None,
                frequency_sigma: None,
                workload: vec![WorkloadSpec {
                    app: "blackscholes".into(),
                    instances: 1,
                    threads: 2,
                }],
                experiment: ExperimentSpec::PowerBudget { tdp_watts: 40.0 },
            },
            axes,
        }
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("darksil-sweep-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("temp dir");
        dir
    }

    #[test]
    fn serial_and_parallel_results_are_byte_identical() {
        let spec = tiny_spec(1);
        let dir = temp_dir("det");
        let opts = |jobs: usize, sub: &str| SweepOptions {
            jobs,
            cache_dir: Some(dir.join(sub)),
            use_cache: true,
            journal_path: None,
            resume: false,
        };
        let serial = run_sweep(&spec, &opts(1, "a")).expect("serial");
        let parallel = run_sweep(&spec, &opts(4, "b")).expect("parallel");
        assert_eq!(
            darksil_json::to_string_pretty(&serial),
            darksil_json::to_string_pretty(&parallel)
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn warm_rerun_hits_the_cache() {
        let spec = tiny_spec(1);
        let dir = temp_dir("warm");
        let opts = SweepOptions {
            jobs: 2,
            cache_dir: Some(dir.clone()),
            use_cache: true,
            journal_path: None,
            resume: false,
        };
        let cold = run_sweep(&spec, &opts).expect("cold");
        assert_eq!(cold.cache.miss, 2);
        assert_eq!(cold.cache.hit, 0);
        let warm = run_sweep(&spec, &opts).expect("warm");
        assert_eq!(warm.cache.hit, 2);
        assert_eq!(warm.cache.miss, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn journal_checkpoints_and_resumes() {
        let spec = tiny_spec(2);
        let dir = temp_dir("journal");
        let journal_path = dir.join("sweep.journal.json");
        let opts = SweepOptions {
            jobs: 1,
            cache_dir: Some(dir.join("cache")),
            use_cache: true,
            journal_path: Some(journal_path.clone()),
            resume: false,
        };
        let first = run_sweep(&spec, &opts).expect("first run");
        assert_eq!(first.cache.miss, 4);
        let journal = Journal::load(&journal_path).expect("journal exists");
        assert_eq!(journal.counts().done, 4);

        // Resume replays everything from the cache.
        let resumed = run_sweep(
            &spec,
            &SweepOptions {
                resume: true,
                ..opts.clone()
            },
        )
        .expect("resume");
        assert_eq!(resumed.cache.hit, 4);

        // A different spec refuses to resume the same journal.
        let mut other = spec.clone();
        other.seed = 99;
        let err = run_sweep(
            &other,
            &SweepOptions {
                resume: true,
                ..opts
            },
        )
        .expect_err("config mismatch");
        assert!(err.to_string().contains("different sweep"), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn cache_off_labels_evals_off() {
        let spec = tiny_spec(1);
        let result = run_sweep(
            &spec,
            &SweepOptions {
                jobs: 1,
                cache_dir: None,
                use_cache: false,
                journal_path: None,
                resume: false,
            },
        )
        .expect("runs");
        assert_eq!(result.cache, CacheCounts::default());
    }
}
