//! Property tests for the sweep compiler: expansion cardinality and
//! parse → expand → serialise → re-parse determinism over random
//! bounded specs.

use darksil_json::ToJson;
use darksil_scenario::{ExperimentSpec, Scenario, WorkloadSpec};
use darksil_sweep::{
    expand, parse_sweep_spec, validate_sweep_spec, Axis, AxisKind, AxisValue, GaussAxis, RangeAxis,
    SweepSpec, SWEEPSPEC_SCHEMA,
};
use proptest::prelude::*;

fn base_scenario() -> Scenario {
    Scenario {
        name: "prop base".to_string(),
        node: 16,
        cores: Some(16),
        t_dtm_celsius: None,
        variation_seed: None,
        leakage_sigma: None,
        frequency_sigma: None,
        workload: vec![WorkloadSpec {
            app: "x264".to_string(),
            instances: 2,
            threads: 4,
        }],
        experiment: ExperimentSpec::PowerBudget { tdp_watts: 45.0 },
    }
}

/// A random valid spec: a non-empty node subset, a threads range, an
/// optional TDP gauss axis, and bounded draws. Returns the spec and
/// its expected deterministic grid size.
fn build_spec(
    nodes_mask: usize,
    thread_stop: usize,
    draws: usize,
    seed: u64,
    with_gauss: bool,
) -> (SweepSpec, usize) {
    let all_nodes = [22.0, 16.0, 11.0, 8.0];
    let nodes: Vec<AxisValue> = all_nodes
        .iter()
        .enumerate()
        .filter(|&(i, _)| nodes_mask & (1 << i) != 0)
        .map(|(_, &n)| AxisValue::Num(n))
        .collect();
    // Monte-Carlo draws require a gauss axis; force one when needed.
    let with_gauss = with_gauss || draws > 1;
    #[allow(clippy::cast_precision_loss)]
    let stop = thread_stop as f64;
    let mut axes = vec![
        Axis {
            param: "node".to_string(),
            kind: AxisKind::List(nodes.clone()),
        },
        Axis {
            param: "threads".to_string(),
            kind: AxisKind::Range(RangeAxis {
                start: 1.0,
                stop,
                step: 1.0,
            }),
        },
    ];
    if with_gauss {
        axes.push(Axis {
            param: "tdp_watts".to_string(),
            kind: AxisKind::Gauss(GaussAxis {
                mean: 45.0,
                sigma: 5.0,
                clamp_min: Some(20.0),
                clamp_max: Some(80.0),
            }),
        });
    }
    let spec = SweepSpec {
        schema: SWEEPSPEC_SCHEMA.to_string(),
        name: "prop sweep".to_string(),
        seed,
        draws,
        base: base_scenario(),
        axes,
    };
    (spec, nodes.len() * thread_stop)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn expansion_count_is_grid_product_times_draws(
        nodes_mask in 1_usize..16,
        thread_stop in 1_usize..5,
        draws in 1_usize..4,
        seed in 0_u64..(1_u64 << 53),
        with_gauss in any::<bool>(),
    ) {
        let (spec, grid) = build_spec(nodes_mask, thread_stop, draws, seed, with_gauss);
        validate_sweep_spec(&spec).unwrap_or_else(|e| panic!("spec should validate: {e}"));
        let plan = expand(&spec).unwrap_or_else(|e| panic!("spec should expand: {e}"));
        prop_assert_eq!(plan.points, grid);
        prop_assert_eq!(plan.evals.len(), grid * draws);
        // Every expanded evaluation's name carries its point label.
        for eval in &plan.evals {
            prop_assert!(eval.scenario.name.contains('@'), "{}", eval.scenario.name);
        }
    }

    #[test]
    fn serialise_reparse_expand_is_deterministic(
        nodes_mask in 1_usize..16,
        thread_stop in 1_usize..5,
        draws in 1_usize..4,
        seed in 0_u64..(1_u64 << 53),
        with_gauss in any::<bool>(),
    ) {
        let (spec, _) = build_spec(nodes_mask, thread_stop, draws, seed, with_gauss);
        let text = darksil_json::to_string_pretty(&spec);
        let reparsed =
            parse_sweep_spec(&text).unwrap_or_else(|e| panic!("round trip should parse: {e}"));
        prop_assert_eq!(&spec, &reparsed);

        let a = expand(&spec).unwrap_or_else(|e| panic!("expand: {e}"));
        let b = expand(&reparsed).unwrap_or_else(|e| panic!("expand reparsed: {e}"));
        prop_assert_eq!(a.evals.len(), b.evals.len());
        for (x, y) in a.evals.iter().zip(&b.evals) {
            // Bit-identical scenarios, including Monte-Carlo samples.
            prop_assert_eq!(
                x.scenario.to_json().compact(),
                y.scenario.to_json().compact()
            );
            prop_assert_eq!(&x.sampled, &y.sampled);
        }
    }
}
