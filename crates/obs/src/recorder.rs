//! The global recorder: enable/disable switch, span guards, counters.

use crate::trace::{ObservationStats, SpanRecord, Trace};
use std::cell::{Cell, RefCell};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, PoisonError};
use std::time::Instant;

/// Fast-path switch checked (one relaxed load) by every entry point.
static ENABLED: AtomicBool = AtomicBool::new(false);

/// Monotonic span-id source; ids are unique for the process lifetime so
/// a stale guard from a previous recording session cannot alias a new
/// span.
static NEXT_SPAN_ID: AtomicU64 = AtomicU64::new(1);

/// Monotonic thread-id source for the trace's `thread` field (the OS
/// thread id is not portable and `ThreadId` has no stable integer).
static NEXT_THREAD_ID: AtomicU64 = AtomicU64::new(0);

static RECORDER: Mutex<Option<Recorder>> = Mutex::new(None);

struct Recorder {
    epoch: Instant,
    spans: Vec<SpanRecord>,
    counters: Vec<(String, u64)>,
    observations: Vec<(String, ObservationStats)>,
}

thread_local! {
    /// Stack of open span ids on this thread; the top is the parent of
    /// the next span. May be seeded with a remote parent by
    /// [`parent_scope`].
    static OPEN_SPANS: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
    static THREAD_ID: Cell<Option<u64>> = const { Cell::new(None) };
}

fn lock_recorder() -> MutexGuard<'static, Option<Recorder>> {
    RECORDER.lock().unwrap_or_else(PoisonError::into_inner)
}

fn local_thread_id() -> u64 {
    THREAD_ID.with(|cell| match cell.get() {
        Some(id) => id,
        None => {
            let id = NEXT_THREAD_ID.fetch_add(1, Ordering::Relaxed);
            cell.set(Some(id));
            id
        }
    })
}

/// Starts recording into a fresh buffer. Timestamps in the resulting
/// trace are relative to this call. Any previously buffered (undrained)
/// data is discarded.
pub fn enable() {
    let mut guard = lock_recorder();
    *guard = Some(Recorder {
        epoch: Instant::now(),
        spans: Vec::new(),
        counters: Vec::new(),
        observations: Vec::new(),
    });
    ENABLED.store(true, Ordering::SeqCst);
}

/// Stops recording without draining. Open span guards become no-ops on
/// drop; buffered data stays available to [`drain`].
pub fn disable() {
    ENABLED.store(false, Ordering::SeqCst);
}

/// Whether recording is currently on.
#[must_use]
pub fn is_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Stops recording and returns everything buffered since [`enable`] as
/// a [`Trace`]. Returns an empty trace if recording was never enabled.
/// Spans are ordered by id (creation order); counters and observations
/// are sorted by name so the output is deterministic.
#[must_use]
pub fn drain() -> Trace {
    ENABLED.store(false, Ordering::SeqCst);
    let taken = lock_recorder().take();
    let mut trace = Trace::default();
    if let Some(rec) = taken {
        trace.spans = rec.spans;
        trace.counters = rec.counters;
        trace.observations = rec.observations;
        trace.spans.sort_by_key(|s| s.id);
        trace.counters.sort_by(|a, b| a.0.cmp(&b.0));
        trace.observations.sort_by(|a, b| a.0.cmp(&b.0));
    }
    trace
}

/// The id of the innermost open span on this thread, if recording is on
/// and a span is open. Capture this before handing work to another
/// thread and re-install it there with [`parent_scope`].
#[must_use]
pub fn current_span() -> Option<u64> {
    if !is_enabled() {
        return None;
    }
    OPEN_SPANS.with(|stack| stack.borrow().last().copied())
}

/// An RAII guard for a timed region. Created by [`span`] / [`span_lazy`];
/// records a [`SpanRecord`] when dropped (if recording is still on).
#[must_use = "a span measures the region it is alive for; bind it to a variable"]
pub struct Span {
    data: Option<SpanData>,
}

struct SpanData {
    id: u64,
    parent: Option<u64>,
    thread: u64,
    name: String,
    started: Instant,
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(data) = self.data.take() else {
            return;
        };
        OPEN_SPANS.with(|stack| {
            let mut stack = stack.borrow_mut();
            if let Some(pos) = stack.iter().rposition(|&id| id == data.id) {
                stack.remove(pos);
            }
        });
        if !is_enabled() {
            return;
        }
        let ended = Instant::now();
        let mut guard = lock_recorder();
        if let Some(rec) = guard.as_mut() {
            // A span that straddled a re-enable would have started
            // before the current epoch; clamp instead of panicking.
            let start = data
                .started
                .checked_duration_since(rec.epoch)
                .unwrap_or_default();
            let length = ended
                .checked_duration_since(data.started)
                .unwrap_or_default();
            rec.spans.push(SpanRecord {
                id: data.id,
                parent: data.parent,
                thread: data.thread,
                name: data.name,
                start_s: start.as_secs_f64(),
                seconds: length.as_secs_f64(),
            });
        }
    }
}

fn open_span(name: String) -> Span {
    let id = NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed);
    let thread = local_thread_id();
    let parent = OPEN_SPANS.with(|stack| {
        let mut stack = stack.borrow_mut();
        let parent = stack.last().copied();
        stack.push(id);
        parent
    });
    Span {
        data: Some(SpanData {
            id,
            parent,
            thread,
            name,
            started: Instant::now(),
        }),
    }
}

/// Opens a span named `name`. When recording is off this returns an
/// inert guard without allocating or taking any lock.
pub fn span(name: &str) -> Span {
    if !is_enabled() {
        return Span { data: None };
    }
    open_span(name.to_string())
}

/// Like [`span`] but the name is built lazily, so callers with dynamic
/// names (`format!`-built) pay nothing when recording is off.
pub fn span_lazy(name: impl FnOnce() -> String) -> Span {
    if !is_enabled() {
        return Span { data: None };
    }
    open_span(name())
}

/// An RAII guard that makes `parent` the ambient parent span on the
/// current thread. Created by [`parent_scope`].
#[must_use = "the parent applies only while this guard is alive"]
pub struct ParentScope {
    installed: Option<u64>,
}

impl Drop for ParentScope {
    fn drop(&mut self) {
        let Some(id) = self.installed.take() else {
            return;
        };
        OPEN_SPANS.with(|stack| {
            let mut stack = stack.borrow_mut();
            if let Some(pos) = stack.iter().rposition(|&x| x == id) {
                stack.remove(pos);
            }
        });
    }
}

/// Installs `parent` (a span id from [`current_span`], usually captured
/// on another thread) as the ambient parent for spans opened on this
/// thread while the guard lives. No-op when recording is off or
/// `parent` is `None`.
pub fn parent_scope(parent: Option<u64>) -> ParentScope {
    let Some(id) = parent else {
        return ParentScope { installed: None };
    };
    if !is_enabled() {
        return ParentScope { installed: None };
    }
    OPEN_SPANS.with(|stack| stack.borrow_mut().push(id));
    ParentScope {
        installed: Some(id),
    }
}

/// Adds `delta` to the named counter. No-op when recording is off.
pub fn counter(name: &str, delta: u64) {
    if !is_enabled() {
        return;
    }
    let mut guard = lock_recorder();
    if let Some(rec) = guard.as_mut() {
        match rec.counters.iter_mut().find(|(k, _)| k == name) {
            Some((_, v)) => *v += delta,
            None => rec.counters.push((name.to_string(), delta)),
        }
    }
}

/// Records a scalar sample into the named observation series
/// (count/sum/min/max are kept, not individual samples). No-op when
/// recording is off.
pub fn observe(name: &str, value: f64) {
    if !is_enabled() {
        return;
    }
    let mut guard = lock_recorder();
    if let Some(rec) = guard.as_mut() {
        match rec.observations.iter_mut().find(|(k, _)| k == name) {
            Some((_, stats)) => stats.record(value),
            None => {
                let mut stats = ObservationStats::default();
                stats.record(value);
                rec.observations.push((name.to_string(), stats));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The recorder is process-global; tests that enable it must not
    /// interleave.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    fn serial() -> MutexGuard<'static, ()> {
        TEST_LOCK.lock().unwrap_or_else(PoisonError::into_inner)
    }

    #[test]
    fn disabled_path_records_nothing() {
        let _serial = serial();
        disable();
        let _ = drain();
        {
            let _s = span("never");
            let _l = span_lazy(|| unreachable!("name closure must not run when disabled"));
            counter("never.counter", 1);
            observe("never.obs", 1.0);
        }
        let trace = drain();
        assert!(trace.spans.is_empty());
        assert!(trace.counters.is_empty());
        assert!(trace.observations.is_empty());
        assert_eq!(current_span(), None);
    }

    #[test]
    fn spans_nest_on_one_thread() {
        let _serial = serial();
        enable();
        {
            let _outer = span("outer");
            let outer_id = current_span().expect("outer open");
            {
                let _inner = span("inner");
                assert_ne!(current_span(), Some(outer_id));
            }
            assert_eq!(current_span(), Some(outer_id));
        }
        let trace = drain();
        assert_eq!(trace.spans.len(), 2);
        let outer = trace
            .spans
            .iter()
            .find(|s| s.name == "outer")
            .expect("outer");
        let inner = trace
            .spans
            .iter()
            .find(|s| s.name == "inner")
            .expect("inner");
        assert_eq!(outer.parent, None);
        assert_eq!(inner.parent, Some(outer.id));
        assert_eq!(outer.thread, inner.thread);
        assert!(inner.seconds <= outer.seconds + 1e-3);
    }

    #[test]
    fn parent_scope_bridges_threads() {
        let _serial = serial();
        enable();
        let (parent_id, child_thread) = {
            let _root = span("root");
            let parent = current_span();
            let handle = std::thread::spawn(move || {
                let _scope = parent_scope(parent);
                let _work = span("worker");
                current_span()
            });
            (
                parent.expect("root open"),
                handle.join().expect("worker thread"),
            )
        };
        // Inside the worker the ambient span was the worker's own span,
        // whose parent must be the root from the spawning thread.
        assert!(child_thread.is_some());
        let trace = drain();
        let root = trace.spans.iter().find(|s| s.name == "root").expect("root");
        let worker = trace
            .spans
            .iter()
            .find(|s| s.name == "worker")
            .expect("worker");
        assert_eq!(root.id, parent_id);
        assert_eq!(worker.parent, Some(parent_id));
        assert_ne!(worker.thread, root.thread);
    }

    #[test]
    fn counters_and_observations_aggregate() {
        let _serial = serial();
        enable();
        counter("c.hits", 2);
        counter("c.hits", 3);
        counter("a.misses", 1);
        observe("o.residual", 4.0);
        observe("o.residual", 2.0);
        let trace = drain();
        // Sorted by name on drain.
        assert_eq!(trace.counters[0].0, "a.misses");
        assert_eq!(trace.counter("c.hits"), 5);
        let (_, stats) = &trace.observations[0];
        assert_eq!(stats.count, 2);
        assert!((stats.sum - 6.0).abs() < 1e-12);
        assert!((stats.min - 2.0).abs() < 1e-12);
        assert!((stats.max - 4.0).abs() < 1e-12);
        assert!((stats.mean() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn disable_freezes_buffer_until_drain() {
        let _serial = serial();
        enable();
        counter("kept", 1);
        disable();
        counter("dropped", 1);
        {
            let _s = span("dropped-span");
        }
        let trace = drain();
        assert_eq!(trace.counter("kept"), 1);
        assert_eq!(trace.counter("dropped"), 0);
        assert!(trace.spans.is_empty());
    }
}
