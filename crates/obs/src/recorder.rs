//! The global recorder: enable/disable switch, span guards, counters,
//! histograms, and the domain event stream.

use crate::event::{EventRecord, EventStream, EventValue};
use crate::hist::HistogramStats;
use crate::trace::{ObservationStats, SpanRecord, Trace};
use std::cell::{Cell, RefCell};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, PoisonError};
use std::time::Instant;

/// Fast-path switch checked (one relaxed load) by every entry point.
static ENABLED: AtomicBool = AtomicBool::new(false);

/// Secondary switch for the domain event stream; only consulted after
/// `ENABLED` passes, so a fully disabled probe site still costs exactly
/// one relaxed atomic load.
static EVENTS: AtomicBool = AtomicBool::new(false);

/// Ordering-state generation. [`enable_events`] bumps this so thread
/// locals left over from a previous recording session reset lazily —
/// every session starts from the same `([], 0)` ordering state on every
/// thread and therefore produces the same event keys.
static EVENT_GENERATION: AtomicU64 = AtomicU64::new(1);

/// Monotonic span-id source; ids are unique for the process lifetime so
/// a stale guard from a previous recording session cannot alias a new
/// span.
static NEXT_SPAN_ID: AtomicU64 = AtomicU64::new(1);

/// Monotonic thread-id source for the trace's `thread` field (the OS
/// thread id is not portable and `ThreadId` has no stable integer).
static NEXT_THREAD_ID: AtomicU64 = AtomicU64::new(0);

static RECORDER: Mutex<Option<Recorder>> = Mutex::new(None);

struct Recorder {
    epoch: Instant,
    spans: Vec<SpanRecord>,
    counters: Vec<(String, u64)>,
    observations: Vec<(String, ObservationStats)>,
    hists: Vec<(String, HistogramStats)>,
    events: Vec<EventRecord>,
}

/// Per-thread event-ordering state: the hierarchical key prefix
/// installed by the innermost [`EventScope`] and the next per-scope
/// sequence number. `generation` detects state left over from an
/// earlier recording session.
struct OrderState {
    generation: u64,
    prefix: Vec<u64>,
    next: u64,
}

impl OrderState {
    const fn fresh(generation: u64) -> Self {
        Self {
            generation,
            prefix: Vec::new(),
            next: 0,
        }
    }

    /// Resets to the root state if this thread's state belongs to an
    /// older recording session.
    fn sync(&mut self, generation: u64) {
        if self.generation != generation {
            *self = Self::fresh(generation);
        }
    }
}

thread_local! {
    /// Stack of open span ids on this thread; the top is the parent of
    /// the next span. May be seeded with a remote parent by
    /// [`parent_scope`].
    static OPEN_SPANS: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
    static THREAD_ID: Cell<Option<u64>> = const { Cell::new(None) };
    /// Event ordering state for this thread (see [`OrderState`]).
    static EVENT_ORDER: RefCell<OrderState> = const { RefCell::new(OrderState::fresh(0)) };
    /// Events buffered on this thread while an [`EventScope`] is open;
    /// flushed to the global recorder when the scope closes so the
    /// recorder lock is taken once per job, not once per event.
    static EVENT_BUFFER: RefCell<Vec<EventRecord>> = const { RefCell::new(Vec::new()) };
}

fn lock_recorder() -> MutexGuard<'static, Option<Recorder>> {
    RECORDER.lock().unwrap_or_else(PoisonError::into_inner)
}

fn local_thread_id() -> u64 {
    THREAD_ID.with(|cell| match cell.get() {
        Some(id) => id,
        None => {
            let id = NEXT_THREAD_ID.fetch_add(1, Ordering::Relaxed);
            cell.set(Some(id));
            id
        }
    })
}

/// Starts recording into a fresh buffer. Timestamps in the resulting
/// trace are relative to this call. Any previously buffered (undrained)
/// data is discarded.
pub fn enable() {
    let mut guard = lock_recorder();
    *guard = Some(Recorder {
        epoch: Instant::now(),
        spans: Vec::new(),
        counters: Vec::new(),
        observations: Vec::new(),
        hists: Vec::new(),
        events: Vec::new(),
    });
    EVENTS.store(false, Ordering::SeqCst);
    ENABLED.store(true, Ordering::SeqCst);
}

/// Starts recording (like [`enable`]) and additionally turns on the
/// domain event stream. Bumps the ordering generation so the event keys
/// of this session are independent of any earlier one.
pub fn enable_events() {
    enable();
    EVENT_GENERATION.fetch_add(1, Ordering::SeqCst);
    EVENTS.store(true, Ordering::SeqCst);
}

/// Whether the domain event stream is currently being recorded. Domain
/// crates use this to gate derived-value computation (per-core vectors,
/// previous-peak tracking) that only feeds events.
#[must_use]
pub fn events_enabled() -> bool {
    is_enabled() && EVENTS.load(Ordering::Relaxed)
}

/// Stops recording without draining. Open span guards become no-ops on
/// drop; buffered data stays available to [`drain`].
pub fn disable() {
    ENABLED.store(false, Ordering::SeqCst);
}

/// Whether recording is currently on.
#[must_use]
pub fn is_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Stops recording and returns everything buffered since [`enable`] as
/// a [`Trace`]. Returns an empty trace if recording was never enabled.
/// Spans are ordered by id (creation order); counters and observations
/// are sorted by name so the output is deterministic.
#[must_use]
pub fn drain() -> Trace {
    drain_all().0
}

/// Stops recording and returns both the [`Trace`] and the domain
/// [`EventStream`]. Events are sorted by their hierarchical submission
/// key, which reproduces the serial submission order regardless of the
/// worker count the run actually used.
#[must_use]
pub fn drain_all() -> (Trace, EventStream) {
    flush_event_buffer();
    ENABLED.store(false, Ordering::SeqCst);
    EVENTS.store(false, Ordering::SeqCst);
    let taken = lock_recorder().take();
    let mut trace = Trace::default();
    let mut stream = EventStream::default();
    if let Some(rec) = taken {
        trace.spans = rec.spans;
        trace.counters = rec.counters;
        trace.observations = rec.observations;
        trace.hists = rec.hists;
        trace.spans.sort_by_key(|s| s.id);
        trace.counters.sort_by(|a, b| a.0.cmp(&b.0));
        trace.observations.sort_by(|a, b| a.0.cmp(&b.0));
        trace.hists.sort_by(|a, b| a.0.cmp(&b.0));
        stream.events = rec.events;
        stream.events.sort_by(|a, b| a.seq.cmp(&b.seq));
    }
    (trace, stream)
}

/// The id of the innermost open span on this thread, if recording is on
/// and a span is open. Capture this before handing work to another
/// thread and re-install it there with [`parent_scope`].
#[must_use]
pub fn current_span() -> Option<u64> {
    if !is_enabled() {
        return None;
    }
    OPEN_SPANS.with(|stack| stack.borrow().last().copied())
}

/// An RAII guard for a timed region. Created by [`span`] / [`span_lazy`];
/// records a [`SpanRecord`] when dropped (if recording is still on).
#[must_use = "a span measures the region it is alive for; bind it to a variable"]
pub struct Span {
    data: Option<SpanData>,
}

struct SpanData {
    id: u64,
    parent: Option<u64>,
    thread: u64,
    name: String,
    started: Instant,
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(data) = self.data.take() else {
            return;
        };
        OPEN_SPANS.with(|stack| {
            let mut stack = stack.borrow_mut();
            if let Some(pos) = stack.iter().rposition(|&id| id == data.id) {
                stack.remove(pos);
            }
        });
        if !is_enabled() {
            return;
        }
        let ended = Instant::now();
        let mut guard = lock_recorder();
        if let Some(rec) = guard.as_mut() {
            // A span that straddled a re-enable would have started
            // before the current epoch; clamp instead of panicking.
            let start = data
                .started
                .checked_duration_since(rec.epoch)
                .unwrap_or_default();
            let length = ended
                .checked_duration_since(data.started)
                .unwrap_or_default();
            rec.spans.push(SpanRecord {
                id: data.id,
                parent: data.parent,
                thread: data.thread,
                name: data.name,
                start_s: start.as_secs_f64(),
                seconds: length.as_secs_f64(),
            });
        }
    }
}

fn open_span(name: String) -> Span {
    let id = NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed);
    let thread = local_thread_id();
    let parent = OPEN_SPANS.with(|stack| {
        let mut stack = stack.borrow_mut();
        let parent = stack.last().copied();
        stack.push(id);
        parent
    });
    Span {
        data: Some(SpanData {
            id,
            parent,
            thread,
            name,
            started: Instant::now(),
        }),
    }
}

/// Opens a span named `name`. When recording is off this returns an
/// inert guard without allocating or taking any lock.
pub fn span(name: &str) -> Span {
    if !is_enabled() {
        return Span { data: None };
    }
    open_span(name.to_string())
}

/// Like [`span`] but the name is built lazily, so callers with dynamic
/// names (`format!`-built) pay nothing when recording is off.
pub fn span_lazy(name: impl FnOnce() -> String) -> Span {
    if !is_enabled() {
        return Span { data: None };
    }
    open_span(name())
}

/// An RAII guard that makes `parent` the ambient parent span on the
/// current thread. Created by [`parent_scope`].
#[must_use = "the parent applies only while this guard is alive"]
pub struct ParentScope {
    installed: Option<u64>,
}

impl Drop for ParentScope {
    fn drop(&mut self) {
        let Some(id) = self.installed.take() else {
            return;
        };
        OPEN_SPANS.with(|stack| {
            let mut stack = stack.borrow_mut();
            if let Some(pos) = stack.iter().rposition(|&x| x == id) {
                stack.remove(pos);
            }
        });
    }
}

/// Installs `parent` (a span id from [`current_span`], usually captured
/// on another thread) as the ambient parent for spans opened on this
/// thread while the guard lives. No-op when recording is off or
/// `parent` is `None`.
pub fn parent_scope(parent: Option<u64>) -> ParentScope {
    let Some(id) = parent else {
        return ParentScope { installed: None };
    };
    if !is_enabled() {
        return ParentScope { installed: None };
    }
    OPEN_SPANS.with(|stack| stack.borrow_mut().push(id));
    ParentScope {
        installed: Some(id),
    }
}

/// Adds `delta` to the named counter. No-op when recording is off.
pub fn counter(name: &str, delta: u64) {
    if !is_enabled() {
        return;
    }
    let mut guard = lock_recorder();
    if let Some(rec) = guard.as_mut() {
        match rec.counters.iter_mut().find(|(k, _)| k == name) {
            Some((_, v)) => *v += delta,
            None => rec.counters.push((name.to_string(), delta)),
        }
    }
}

/// Records a scalar sample into the named observation series
/// (count/sum/min/max are kept, not individual samples). No-op when
/// recording is off.
pub fn observe(name: &str, value: f64) {
    if !is_enabled() {
        return;
    }
    let mut guard = lock_recorder();
    if let Some(rec) = guard.as_mut() {
        match rec.observations.iter_mut().find(|(k, _)| k == name) {
            Some((_, stats)) => stats.record(value),
            None => {
                let mut stats = ObservationStats::default();
                stats.record(value);
                rec.observations.push((name.to_string(), stats));
            }
        }
    }
}

/// Records a scalar sample into the named log-bucket histogram, which
/// additionally tracks the distribution so the summary can report
/// p50/p95/p99 (see [`HistogramStats`]). No-op when recording is off.
pub fn observe_hist(name: &str, value: f64) {
    if !is_enabled() {
        return;
    }
    let mut guard = lock_recorder();
    if let Some(rec) = guard.as_mut() {
        match rec.hists.iter_mut().find(|(k, _)| k == name) {
            Some((_, hist)) => hist.record(value),
            None => {
                let mut hist = HistogramStats::default();
                hist.record(value);
                rec.hists.push((name.to_string(), hist));
            }
        }
    }
}

/// Moves this thread's buffered events into the global recorder.
fn flush_event_buffer() {
    let drained = EVENT_BUFFER.with(|buffer| std::mem::take(&mut *buffer.borrow_mut()));
    if drained.is_empty() {
        return;
    }
    let mut guard = lock_recorder();
    if let Some(rec) = guard.as_mut() {
        rec.events.extend(drained);
    }
}

/// Records a domain event of the given dotted `kind`. The field list is
/// built lazily, so a disabled probe site never allocates — when the
/// recorder is fully off this is a single relaxed atomic load, and when
/// only spans are being recorded it is two.
///
/// Events carry **no wall-clock data**; ordering comes from a
/// hierarchical submission key maintained by [`event_fork`] /
/// [`EventFork::child`], so a drained stream is byte-identical at any
/// worker count. Timestamps that belong in an event are *simulated*
/// times passed as ordinary fields.
pub fn event<F>(kind: &str, fields: F)
where
    F: FnOnce() -> Vec<(&'static str, EventValue)>,
{
    if !is_enabled() {
        return;
    }
    if !EVENTS.load(Ordering::Relaxed) {
        return;
    }
    let generation = EVENT_GENERATION.load(Ordering::Relaxed);
    let (seq, scoped) = EVENT_ORDER.with(|cell| {
        let mut state = cell.borrow_mut();
        state.sync(generation);
        let mut seq = state.prefix.clone();
        seq.push(state.next);
        state.next += 1;
        (seq, !state.prefix.is_empty())
    });
    let record = EventRecord {
        seq,
        kind: kind.to_string(),
        fields: fields()
            .into_iter()
            .map(|(name, value)| (name.to_string(), value))
            .collect(),
    };
    if scoped {
        // Inside an engine job: batch on this thread; the closing
        // `EventScope` flushes once per job.
        EVENT_BUFFER.with(|buffer| buffer.borrow_mut().push(record));
    } else {
        let mut guard = lock_recorder();
        if let Some(rec) = guard.as_mut() {
            rec.events.push(record);
        }
    }
}

/// A fork point in the event-ordering hierarchy, captured where work
/// fans out (one per `par_map` call or pool submission). Created by
/// [`event_fork`]; hand [`EventFork::child`] the stable job index to
/// give each job its own ordering branch.
#[derive(Debug)]
pub struct EventFork {
    /// `(generation, key prefix for children)`; `None` when events are
    /// off, making the whole mechanism free.
    base: Option<(u64, Vec<u64>)>,
}

/// Captures a fork point at the current position in this thread's event
/// order. Consumes one sequence number, so events emitted after the
/// fork order after every child's events. Returns an inert fork when
/// events are not being recorded.
#[must_use]
pub fn event_fork() -> EventFork {
    if !is_enabled() || !EVENTS.load(Ordering::Relaxed) {
        return EventFork { base: None };
    }
    let generation = EVENT_GENERATION.load(Ordering::Relaxed);
    let base = EVENT_ORDER.with(|cell| {
        let mut state = cell.borrow_mut();
        state.sync(generation);
        let mut base = state.prefix.clone();
        base.push(state.next);
        state.next += 1;
        base
    });
    EventFork {
        base: Some((generation, base)),
    }
}

impl EventFork {
    /// Enters the ordering branch for child `index` on the current
    /// thread (which may differ from the thread that called
    /// [`event_fork`]). Events emitted while the returned guard lives
    /// are keyed `fork_prefix ++ [index, local_seq…]`, so the drained
    /// stream orders them exactly as a serial run would have.
    #[must_use = "events are only re-keyed while the scope guard is alive"]
    pub fn child(&self, index: u64) -> EventScope {
        let Some((generation, base)) = &self.base else {
            return EventScope { saved: None };
        };
        if !is_enabled()
            || !EVENTS.load(Ordering::Relaxed)
            || EVENT_GENERATION.load(Ordering::Relaxed) != *generation
        {
            return EventScope { saved: None };
        }
        let saved = EVENT_ORDER.with(|cell| {
            let mut state = cell.borrow_mut();
            state.sync(*generation);
            let mut prefix = base.clone();
            prefix.push(index);
            let old_prefix = std::mem::replace(&mut state.prefix, prefix);
            let old_next = std::mem::replace(&mut state.next, 0);
            (old_prefix, old_next)
        });
        EventScope {
            saved: Some((*generation, saved.0, saved.1)),
        }
    }
}

/// RAII guard installed by [`EventFork::child`]. Restores the previous
/// ordering state and flushes this thread's event buffer on drop.
#[must_use = "events are only re-keyed while this guard is alive"]
pub struct EventScope {
    /// `(generation, saved prefix, saved next)` to restore on drop.
    saved: Option<(u64, Vec<u64>, u64)>,
}

impl Drop for EventScope {
    fn drop(&mut self) {
        let Some((generation, prefix, next)) = self.saved.take() else {
            return;
        };
        flush_event_buffer();
        EVENT_ORDER.with(|cell| {
            let mut state = cell.borrow_mut();
            if state.generation == generation {
                state.prefix = prefix;
                state.next = next;
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The recorder is process-global; tests that enable it must not
    /// interleave.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    fn serial() -> MutexGuard<'static, ()> {
        TEST_LOCK.lock().unwrap_or_else(PoisonError::into_inner)
    }

    #[test]
    fn disabled_path_records_nothing() {
        let _serial = serial();
        disable();
        let _ = drain();
        {
            let _s = span("never");
            let _l = span_lazy(|| unreachable!("name closure must not run when disabled"));
            counter("never.counter", 1);
            observe("never.obs", 1.0);
            observe_hist("never.hist", 1.0);
            event("never.event", || {
                unreachable!("field closure must not run when disabled")
            });
        }
        let (trace, events) = drain_all();
        assert!(trace.spans.is_empty());
        assert!(trace.counters.is_empty());
        assert!(trace.observations.is_empty());
        assert!(trace.hists.is_empty());
        assert!(events.is_empty());
        assert_eq!(current_span(), None);
    }

    #[test]
    fn events_off_by_default_even_while_profiling() {
        let _serial = serial();
        enable();
        assert!(!events_enabled());
        // Spans are on, events are not: the field closure must not run
        // and the fork machinery must be inert.
        event("never.event", || {
            unreachable!("field closure must not run with events off")
        });
        let fork = event_fork();
        {
            let _scope = fork.child(0);
            event("never.event", || unreachable!("still off inside a scope"));
        }
        let (_, events) = drain_all();
        assert!(events.is_empty());
    }

    #[test]
    fn events_drain_in_submission_order_across_threads() {
        let _serial = serial();
        enable_events();
        assert!(events_enabled());
        event("root.first", Vec::new);
        let fork = event_fork();
        // Run the children on real threads in reverse order; the drain
        // must still order child 0 before child 1, and both before the
        // post-fork root event.
        std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for index in (0..3_u64).rev() {
                let fork = &fork;
                handles.push(scope.spawn(move || {
                    let _scope = fork.child(index);
                    event("child.a", || vec![("index", index.into())]);
                    event("child.b", || vec![("index", index.into())]);
                }));
            }
            for handle in handles {
                handle.join().expect("child thread");
            }
        });
        event("root.last", Vec::new);
        let (_, stream) = drain_all();
        let kinds: Vec<&str> = stream.events.iter().map(|e| e.kind.as_str()).collect();
        assert_eq!(
            kinds,
            vec![
                "root.first",
                "child.a",
                "child.b",
                "child.a",
                "child.b",
                "child.a",
                "child.b",
                "root.last",
            ]
        );
        let indices: Vec<f64> = stream
            .events
            .iter()
            .filter_map(|e| e.f64_field("index"))
            .collect();
        assert_eq!(indices, vec![0.0, 0.0, 1.0, 1.0, 2.0, 2.0]);
    }

    #[test]
    fn nested_forks_extend_the_key_hierarchy() {
        let _serial = serial();
        enable_events();
        let outer = event_fork();
        {
            let _outer_scope = outer.child(1);
            let inner = event_fork();
            {
                let _inner_scope = inner.child(4);
                event("deep", Vec::new);
            }
        }
        let (_, stream) = drain_all();
        assert_eq!(stream.events.len(), 1);
        // outer fork consumed root seq 0; inner fork consumed child
        // seq 0; the event is the first in the inner scope.
        assert_eq!(stream.events[0].seq, vec![0, 1, 0, 4, 0]);
    }

    #[test]
    fn event_generation_resets_thread_state_between_sessions() {
        let _serial = serial();
        enable_events();
        event("first.session", Vec::new);
        let (_, first) = drain_all();
        enable_events();
        event("second.session", Vec::new);
        let (_, second) = drain_all();
        // Both sessions start from the same root state, so the keys
        // match even though the thread-local state persisted.
        assert_eq!(first.events[0].seq, second.events[0].seq);
    }

    #[test]
    fn histograms_aggregate_and_sort_on_drain() {
        let _serial = serial();
        enable();
        observe_hist("z.latency", 0.2);
        observe_hist("a.latency", 0.1);
        observe_hist("z.latency", 0.4);
        let (trace, _) = drain_all();
        assert_eq!(trace.hists.len(), 2);
        assert_eq!(trace.hists[0].0, "a.latency");
        assert_eq!(trace.hists[1].0, "z.latency");
        assert_eq!(trace.hists[1].1.count, 2);
        assert!((trace.hists[1].1.sum - 0.6).abs() < 1e-12);
    }

    #[test]
    fn spans_nest_on_one_thread() {
        let _serial = serial();
        enable();
        {
            let _outer = span("outer");
            let outer_id = current_span().expect("outer open");
            {
                let _inner = span("inner");
                assert_ne!(current_span(), Some(outer_id));
            }
            assert_eq!(current_span(), Some(outer_id));
        }
        let trace = drain();
        assert_eq!(trace.spans.len(), 2);
        let outer = trace
            .spans
            .iter()
            .find(|s| s.name == "outer")
            .expect("outer");
        let inner = trace
            .spans
            .iter()
            .find(|s| s.name == "inner")
            .expect("inner");
        assert_eq!(outer.parent, None);
        assert_eq!(inner.parent, Some(outer.id));
        assert_eq!(outer.thread, inner.thread);
        assert!(inner.seconds <= outer.seconds + 1e-3);
    }

    #[test]
    fn parent_scope_bridges_threads() {
        let _serial = serial();
        enable();
        let (parent_id, child_thread) = {
            let _root = span("root");
            let parent = current_span();
            let handle = std::thread::spawn(move || {
                let _scope = parent_scope(parent);
                let _work = span("worker");
                current_span()
            });
            (
                parent.expect("root open"),
                handle.join().expect("worker thread"),
            )
        };
        // Inside the worker the ambient span was the worker's own span,
        // whose parent must be the root from the spawning thread.
        assert!(child_thread.is_some());
        let trace = drain();
        let root = trace.spans.iter().find(|s| s.name == "root").expect("root");
        let worker = trace
            .spans
            .iter()
            .find(|s| s.name == "worker")
            .expect("worker");
        assert_eq!(root.id, parent_id);
        assert_eq!(worker.parent, Some(parent_id));
        assert_ne!(worker.thread, root.thread);
    }

    #[test]
    fn counters_and_observations_aggregate() {
        let _serial = serial();
        enable();
        counter("c.hits", 2);
        counter("c.hits", 3);
        counter("a.misses", 1);
        observe("o.residual", 4.0);
        observe("o.residual", 2.0);
        let trace = drain();
        // Sorted by name on drain.
        assert_eq!(trace.counters[0].0, "a.misses");
        assert_eq!(trace.counter("c.hits"), 5);
        let (_, stats) = &trace.observations[0];
        assert_eq!(stats.count, 2);
        assert!((stats.sum - 6.0).abs() < 1e-12);
        assert!((stats.min - 2.0).abs() < 1e-12);
        assert!((stats.max - 4.0).abs() < 1e-12);
        assert!((stats.mean() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn disable_freezes_buffer_until_drain() {
        let _serial = serial();
        enable();
        counter("kept", 1);
        disable();
        counter("dropped", 1);
        {
            let _s = span("dropped-span");
        }
        let trace = drain();
        assert_eq!(trace.counter("kept"), 1);
        assert_eq!(trace.counter("dropped"), 0);
        assert!(trace.spans.is_empty());
    }
}
