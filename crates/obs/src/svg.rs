//! Shared building blocks for self-contained HTML/SVG reports.
//!
//! The run report (`crate::report`) and downstream renderers (the
//! sweep report in `darksil-sweep`) emit the same kind of document:
//! inline SVG charts, plain tables, no scripts, no external fetches.
//! This module holds the pieces they share — escaping, label
//! formatting, coordinate scaling, series downsampling, the common
//! plot width and the stylesheet — so every report looks and behaves
//! identically.

/// Plot width of every SVG chart, in CSS pixels.
pub const PLOT_W: f64 = 820.0;

/// Escapes text for HTML/SVG content and attribute positions.
#[must_use]
pub fn esc(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    for c in text.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            _ => out.push(c),
        }
    }
    out
}

/// Formats a number for labels: enough precision to be useful, no noise.
#[must_use]
pub fn fnum(v: f64) -> String {
    if !v.is_finite() {
        return "–".to_string();
    }
    let a = v.abs();
    if a >= 1000.0 {
        format!("{v:.0}")
    } else if a >= 10.0 {
        format!("{v:.1}")
    } else if a >= 0.01 || a == 0.0 {
        format!("{v:.3}")
    } else {
        format!("{v:.2e}")
    }
}

/// Maps `v` from `[lo, hi]` to `[out_lo, out_hi]` (clamped).
#[must_use]
pub fn scale(v: f64, lo: f64, hi: f64, out_lo: f64, out_hi: f64) -> f64 {
    if hi <= lo {
        return f64::midpoint(out_lo, out_hi);
    }
    let t = ((v - lo) / (hi - lo)).clamp(0.0, 1.0);
    (out_hi - out_lo).mul_add(t, out_lo)
}

/// A point series downsampled to at most `cap` points (every k-th,
/// always keeping the final point so the trace ends where the run did).
#[must_use]
pub fn downsample(points: &[(f64, f64)], cap: usize) -> Vec<(f64, f64)> {
    if points.len() <= cap || cap < 2 {
        return points.to_vec();
    }
    let stride = points.len().div_ceil(cap);
    let mut out: Vec<(f64, f64)> = points.iter().copied().step_by(stride).collect();
    if let (Some(&last_in), Some(&last_out)) = (points.last(), out.last()) {
        if last_out != last_in {
            out.push(last_in);
        }
    }
    out
}

/// Wraps a report body into the full self-contained HTML document:
/// doctype, charset/viewport metas, escaped `title`, the shared
/// stylesheet, and the `viz-root` theming class. No scripts, no
/// external fetches.
#[must_use]
pub fn html_page(title: &str, body: &str) -> String {
    format!(
        "<!DOCTYPE html>\n<html lang=\"en\">\n<head>\n<meta charset=\"utf-8\">\n\
         <meta name=\"viewport\" content=\"width=device-width, initial-scale=1\">\n\
         <title>{}</title>\n<style>\n{CSS}\n</style>\n</head>\n\
         <body class=\"viz-root\">\n<main>\n{body}</main>\n</body>\n</html>\n",
        esc(title)
    )
}

/// The report stylesheet: light/dark values for every color role, with
/// charts written against the roles.
pub const CSS: &str = r"
:root { color-scheme: light dark; }
.viz-root {
  --page:           #f9f9f7;
  --surface-1:      #fcfcfb;
  --text-primary:   #0b0b0b;
  --text-secondary: #52514e;
  --text-muted:     #898781;
  --gridline:       #e1e0d9;
  --baseline:       #c3c2b7;
  --series-1:       #2a78d6;  /* peak temperature, gantt bars */
  --series-2:       #eb6834;  /* boost transitions */
  --status-critical:#d03b3b;  /* threshold crossings, labeled */
  --border:         rgba(11,11,11,0.10);
}
@media (prefers-color-scheme: dark) {
  .viz-root {
    --page:           #0d0d0d;
    --surface-1:      #1a1a19;
    --text-primary:   #ffffff;
    --text-secondary: #c3c2b7;
    --text-muted:     #898781;
    --gridline:       #2c2c2a;
    --baseline:       #383835;
    --series-1:       #3987e5;
    --series-2:       #d95926;
    --status-critical:#e66767;
    --border:         rgba(255,255,255,0.10);
  }
}
body {
  margin: 0; background: var(--page); color: var(--text-primary);
  font: 14px/1.5 system-ui, -apple-system, 'Segoe UI', sans-serif;
}
main { max-width: 900px; margin: 0 auto; padding: 24px 16px 48px; }
h1 { font-size: 20px; margin: 0 0 4px; }
h2 { font-size: 15px; margin: 28px 0 8px; color: var(--text-primary); }
.subtitle { color: var(--text-secondary); margin: 0 0 16px; }
.note { color: var(--text-muted); }
code { font-family: ui-monospace, 'SF Mono', monospace; font-size: 0.92em; }
svg {
  display: block; width: 100%; height: auto; background: var(--surface-1);
  border: 1px solid var(--border); border-radius: 6px;
}
.grid { stroke: var(--gridline); stroke-width: 1; }
.tick { fill: var(--text-muted); font-size: 10px; font-variant-numeric: tabular-nums; }
.axis-label { fill: var(--text-secondary); font-size: 11px; }
.series-line { fill: none; stroke: var(--series-1); stroke-width: 2; stroke-linejoin: round; }
.series-band { fill: var(--series-1); opacity: 0.18; stroke: none; }
.threshold { stroke: var(--status-critical); stroke-width: 1; stroke-dasharray: 5 4; }
.threshold-label { fill: var(--status-critical); font-size: 10px; }
.ov-boost { stroke: var(--series-2); stroke-width: 2; }
.ov-watermark { stroke: var(--status-critical); stroke-width: 2; }
.gantt-bar { fill: var(--series-1); }
.pt-frontier { fill: var(--series-2); }
.pt-dominated { fill: var(--series-1); opacity: 0.35; }
.legend { display: flex; gap: 16px; margin: 0 0 6px; color: var(--text-secondary); font-size: 12px; }
.legend .swatch { display: inline-block; width: 10px; height: 10px; border-radius: 2px; margin-right: 5px; }
.sw-peak { background: var(--series-1); }
.sw-boost { background: var(--series-2); }
.sw-watermark { background: var(--status-critical); }
.sw-frontier { background: var(--series-2); }
.sw-dominated { background: var(--series-1); opacity: 0.45; }
table { border-collapse: collapse; width: 100%; background: var(--surface-1);
        border: 1px solid var(--border); border-radius: 6px; }
th, td { text-align: left; padding: 5px 10px; border-bottom: 1px solid var(--gridline); }
th { color: var(--text-secondary); font-weight: 600; font-size: 12px; }
tr:last-child td { border-bottom: none; }
td.num, th.num { text-align: right; font-variant-numeric: tabular-nums; }
";

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escaping_covers_markup_characters() {
        assert_eq!(esc("a<b>&\"c\""), "a&lt;b&gt;&amp;&quot;c&quot;");
        assert_eq!(esc("plain"), "plain");
    }

    #[test]
    fn label_formatting_adapts_precision() {
        assert_eq!(fnum(f64::NAN), "–");
        assert_eq!(fnum(1234.5), "1234");
        assert_eq!(fnum(56.78), "56.8");
        assert_eq!(fnum(0.5), "0.500");
        assert_eq!(fnum(0.0001), "1.00e-4");
    }

    #[test]
    fn scaling_clamps_and_handles_degenerate_ranges() {
        assert!((scale(5.0, 0.0, 10.0, 0.0, 100.0) - 50.0).abs() < 1e-12);
        assert!((scale(-1.0, 0.0, 10.0, 0.0, 100.0)).abs() < 1e-12);
        assert!((scale(3.0, 2.0, 2.0, 0.0, 100.0) - 50.0).abs() < 1e-12);
    }

    #[test]
    fn downsampling_keeps_the_final_point() {
        let pts: Vec<(f64, f64)> = (0..100).map(|i| (f64::from(i), 0.0)).collect();
        let ds = downsample(&pts, 10);
        assert!(ds.len() <= 11);
        assert_eq!(ds.last(), pts.last());
        assert_eq!(downsample(&pts, 1), pts);
    }

    #[test]
    fn html_page_is_self_contained_and_escaped() {
        let page = html_page("a <title> & more", "<p>body</p>");
        assert!(page.starts_with("<!DOCTYPE html>"));
        assert!(page.contains("a &lt;title&gt; &amp; more"));
        assert!(page.contains("<p>body</p>"));
        assert!(!page.contains("<script"));
        assert!(!page.contains("http://"));
        assert!(!page.contains("https://"));
    }
}
