//! Structured tracing for the darksil workspace: spans, counters,
//! scalar observations, log-bucket histograms, and a domain event
//! stream, recorded into an in-process buffer and drained as a
//! JSON-serialisable [`Trace`] plus an [`EventStream`].
//!
//! The pipeline instruments its hot paths (engine job scheduling, cache
//! lookups, CG solves, thermal transients) with calls into this crate.
//! Recording is off by default and every entry point is guarded by a
//! single relaxed atomic load, so the disabled path performs no
//! allocation, takes no lock, and costs a few nanoseconds — artefact
//! bytes are identical whether profiling is on or off.
//!
//! Spans form a thread-aware hierarchy: each thread keeps a stack of
//! open spans, a new span's parent is the top of that stack, and worker
//! threads inherit the submitting thread's open span through
//! [`parent_scope`] (the engine installs this next to its `RunContext`
//! propagation). Counters and observations are plain named aggregates;
//! [`observe_hist`] additionally keeps a log-bucket distribution for
//! p50/p95/p99 tails.
//!
//! Domain events ([`event`]) record what the *simulation* decided —
//! DVFS transitions, DsRem moves, TSP budgets, temperature watermarks.
//! They are keyed by a hierarchical submission index maintained through
//! [`event_fork`] at engine fan-out points rather than by wall-clock
//! time, so a drained [`EventStream`] is byte-identical at any worker
//! count; [`render_report`] turns a stream into a self-contained HTML
//! run report.
//!
//! ```
//! darksil_obs::enable();
//! {
//!     let _outer = darksil_obs::span("example.outer");
//!     let _inner = darksil_obs::span("example.inner");
//!     darksil_obs::counter("example.events", 2);
//!     darksil_obs::observe("example.residual", 1.5e-9);
//! }
//! let trace = darksil_obs::drain();
//! assert_eq!(trace.spans.len(), 2);
//! assert_eq!(trace.counter("example.events"), 2);
//! // The inner span's parent is the outer span, on the same thread.
//! let outer = trace.spans.iter().find(|s| s.name == "example.outer").ok_or("missing")?;
//! let inner = trace.spans.iter().find(|s| s.name == "example.inner").ok_or("missing")?;
//! assert_eq!(inner.parent, Some(outer.id));
//! // After drain, recording is off again and spans are free no-ops.
//! assert!(!darksil_obs::is_enabled());
//! # Ok::<(), &'static str>(())
//! ```
#![deny(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

mod baseline;
mod event;
mod hist;
pub mod metrics;
mod recorder;
mod report;
pub mod svg;
mod trace;

pub use baseline::{ArtefactTiming, BenchBaseline, PhaseBound, Regression, BASELINE_SCHEMA};
pub use event::{EventRecord, EventStream, EventValue, EVENTS_SCHEMA};
pub use hist::HistogramStats;
pub use metrics::{
    counter_add, gauge_set, metrics_disable, metrics_enable, metrics_enabled, observe_rolling,
    render_prometheus, rolling_snapshot,
};
pub use recorder::{
    counter, current_span, disable, drain, drain_all, enable, enable_events, event, event_fork,
    events_enabled, is_enabled, observe, observe_hist, parent_scope, span, span_lazy, EventFork,
    EventScope, ParentScope, Span,
};
pub use report::render_report;
pub use trace::{ObservationStats, SpanRecord, SpanSummary, Trace, TRACE_SCHEMA};
