//! The drained trace: span records, aggregates, JSON round-trip, and
//! the human-readable summary table.

use crate::hist::HistogramStats;
use darksil_json::{FromJson, Json, JsonError, ObjReader, ToJson};
use std::fmt::Write as _;

/// Schema tag written into every serialised trace. v2 added the
/// `hists` section; v1 traces (no histograms) still parse.
pub const TRACE_SCHEMA: &str = "darksil-trace-v2";

/// The previous schema tag, still accepted on read.
const TRACE_SCHEMA_V1: &str = "darksil-trace-v1";

/// One completed span.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRecord {
    /// Process-unique id (creation order).
    pub id: u64,
    /// Id of the enclosing span, if any (may live on another thread).
    pub parent: Option<u64>,
    /// Trace-local id of the thread the span ran on.
    pub thread: u64,
    /// Span name, e.g. `thermal.steady_state`.
    pub name: String,
    /// Start time in seconds since the recorder was enabled.
    pub start_s: f64,
    /// Wall-clock length in seconds.
    pub seconds: f64,
}

impl ToJson for SpanRecord {
    fn to_json(&self) -> Json {
        let mut fields = vec![
            ("id".to_string(), self.id.to_json()),
            ("thread".to_string(), self.thread.to_json()),
            ("name".to_string(), self.name.to_json()),
            ("start_s".to_string(), self.start_s.to_json()),
            ("seconds".to_string(), self.seconds.to_json()),
        ];
        if let Some(parent) = self.parent {
            fields.push(("parent".to_string(), parent.to_json()));
        }
        Json::Obj(fields)
    }
}

impl FromJson for SpanRecord {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        let mut r = ObjReader::new(v, "SpanRecord")?;
        let out = Self {
            id: r.req("id")?,
            thread: r.req("thread")?,
            name: r.req("name")?,
            start_s: r.req("start_s")?,
            seconds: r.req("seconds")?,
            parent: r.opt("parent")?,
        };
        r.finish()?;
        Ok(out)
    }
}

/// Aggregate statistics for one observation series; individual samples
/// are not retained.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ObservationStats {
    /// Number of samples recorded.
    pub count: u64,
    /// Sum of all samples.
    pub sum: f64,
    /// Smallest sample.
    pub min: f64,
    /// Largest sample.
    pub max: f64,
}

impl ObservationStats {
    /// Folds one sample into the aggregate.
    pub fn record(&mut self, value: f64) {
        if self.count == 0 {
            self.min = value;
            self.max = value;
        } else {
            self.min = self.min.min(value);
            self.max = self.max.max(value);
        }
        self.count += 1;
        self.sum += value;
    }

    /// Arithmetic mean of the samples (0 when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            #[allow(clippy::cast_precision_loss)]
            {
                self.sum / self.count as f64
            }
        }
    }
}

impl ToJson for ObservationStats {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("count".to_string(), self.count.to_json()),
            ("sum".to_string(), self.sum.to_json()),
            ("min".to_string(), self.min.to_json()),
            ("max".to_string(), self.max.to_json()),
        ])
    }
}

impl FromJson for ObservationStats {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        let mut r = ObjReader::new(v, "ObservationStats")?;
        let out = Self {
            count: r.req("count")?,
            sum: r.req("sum")?,
            min: r.req("min")?,
            max: r.req("max")?,
        };
        r.finish()?;
        Ok(out)
    }
}

/// Everything recorded between `enable()` and `drain()`.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Trace {
    /// Completed spans, ordered by id (creation order).
    pub spans: Vec<SpanRecord>,
    /// Named counters, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// Named observation aggregates, sorted by name.
    pub observations: Vec<(String, ObservationStats)>,
    /// Named log-bucket histograms, sorted by name.
    pub hists: Vec<(String, HistogramStats)>,
}

/// Per-name aggregate over a trace's spans.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanSummary {
    /// Span name.
    pub name: String,
    /// Number of spans with this name.
    pub count: u64,
    /// Total wall-clock seconds inside spans with this name.
    pub inclusive_s: f64,
    /// Inclusive time minus time spent in direct child spans — the time
    /// attributable to this name itself.
    pub exclusive_s: f64,
}

impl Trace {
    /// The value of a named counter (0 when absent).
    #[must_use]
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(k, _)| k == name)
            .map_or(0, |(_, v)| *v)
    }

    /// The aggregate for a named observation series, if recorded.
    #[must_use]
    pub fn observation(&self, name: &str) -> Option<&ObservationStats> {
        self.observations
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, s)| s)
    }

    /// The histogram for a named series, if recorded.
    #[must_use]
    pub fn hist(&self, name: &str) -> Option<&HistogramStats> {
        self.hists.iter().find(|(k, _)| k == name).map(|(_, h)| h)
    }

    /// Aggregates spans by name, sorted by inclusive time descending
    /// (ties broken by name for determinism).
    ///
    /// Exclusive time subtracts each span's direct children from its
    /// own length, clamping at zero: a span whose children ran in
    /// parallel on other threads can have more child-seconds than
    /// wall-clock seconds of its own.
    #[must_use]
    pub fn summary(&self) -> Vec<SpanSummary> {
        // Sum of direct-child time per parent id.
        let mut child_time: Vec<(u64, f64)> = Vec::new();
        for span in &self.spans {
            if let Some(parent) = span.parent {
                match child_time.iter_mut().find(|(id, _)| *id == parent) {
                    Some((_, t)) => *t += span.seconds,
                    None => child_time.push((parent, span.seconds)),
                }
            }
        }
        let mut rows: Vec<SpanSummary> = Vec::new();
        for span in &self.spans {
            let children: f64 = child_time
                .iter()
                .find(|(id, _)| *id == span.id)
                .map_or(0.0, |(_, t)| *t);
            let exclusive = (span.seconds - children).max(0.0);
            match rows.iter_mut().find(|r| r.name == span.name) {
                Some(row) => {
                    row.count += 1;
                    row.inclusive_s += span.seconds;
                    row.exclusive_s += exclusive;
                }
                None => rows.push(SpanSummary {
                    name: span.name.clone(),
                    count: 1,
                    inclusive_s: span.seconds,
                    exclusive_s: exclusive,
                }),
            }
        }
        rows.sort_by(|a, b| {
            b.inclusive_s
                .total_cmp(&a.inclusive_s)
                .then_with(|| a.name.cmp(&b.name))
        });
        rows
    }

    /// Renders the hot-path table shown by `darksil trace summarize`:
    /// the top `top` span names by inclusive time, followed by derived
    /// cache/supervisor/solver health lines and all counters and
    /// observations.
    #[must_use]
    pub fn render_summary(&self, top: usize) -> String {
        let mut out = String::new();
        let rows = self.summary();
        let _ = writeln!(
            out,
            "{:<34} {:>7} {:>12} {:>12} {:>12}",
            "span", "count", "incl [s]", "excl [s]", "mean [ms]"
        );
        for row in rows.iter().take(top) {
            #[allow(clippy::cast_precision_loss)]
            let mean_ms = row.inclusive_s / row.count as f64 * 1e3;
            let _ = writeln!(
                out,
                "{:<34} {:>7} {:>12.4} {:>12.4} {:>12.3}",
                row.name, row.count, row.inclusive_s, row.exclusive_s, mean_ms
            );
        }
        if rows.len() > top {
            let _ = writeln!(out, "… {} more span names", rows.len() - top);
        }
        if rows.is_empty() {
            let _ = writeln!(out, "(no spans recorded)");
        }

        let hits = self.counter("engine.cache.hit");
        let misses = self.counter("engine.cache.miss");
        let recovered = self.counter("engine.cache.recovered");
        let lookups = hits + misses + recovered;
        if lookups > 0 {
            #[allow(clippy::cast_precision_loss)]
            let rate = hits as f64 / lookups as f64 * 100.0;
            let _ = writeln!(
                out,
                "\ncache: {hits} hit / {misses} miss / {recovered} recovered ({rate:.1}% hit rate)"
            );
        }
        let retries = self.counter("engine.supervisor.retry");
        let degraded = self.counter("engine.supervisor.degraded");
        let breaker_skips = self.counter("engine.supervisor.breaker_open");
        if retries > 0 || degraded > 0 || breaker_skips > 0 {
            let _ = writeln!(
                out,
                "supervisor: {retries} retries, {degraded} degraded runs, \
                 {breaker_skips} retries skipped (breaker open)"
            );
        }
        let factored = self.counter("numerics.stage.factored");
        let cg = self.counter("numerics.stage.cg");
        let restarted = self.counter("numerics.stage.restarted_cg");
        let dense_lu = self.counter("numerics.stage.dense_lu");
        if factored + cg + restarted + dense_lu > 0 {
            let factor_hits = self.counter("numerics.factor_cache.hit");
            let factor_lookups = factor_hits + self.counter("numerics.factor_cache.miss");
            #[allow(clippy::cast_precision_loss)]
            let factor_rate = if factor_lookups > 0 {
                factor_hits as f64 / factor_lookups as f64 * 100.0
            } else {
                0.0
            };
            let warm_starts = self.counter("numerics.warm_start");
            let _ = writeln!(
                out,
                "solver: {factored} factored / {cg} cg / {restarted} restarted / \
                 {dense_lu} dense-lu; factor cache {factor_hits}/{factor_lookups} \
                 ({factor_rate:.1}% hit rate), {warm_starts} warm-started"
            );
        }

        if !self.counters.is_empty() {
            let _ = writeln!(out, "\ncounters:");
            for (name, value) in &self.counters {
                let _ = writeln!(out, "  {name:<32} {value}");
            }
        }
        if !self.observations.is_empty() {
            let _ = writeln!(out, "\nobservations:");
            for (name, stats) in &self.observations {
                let _ = writeln!(
                    out,
                    "  {name:<32} n={} mean={:.4} min={:.4} max={:.4}",
                    stats.count,
                    stats.mean(),
                    stats.min,
                    stats.max
                );
            }
        }
        if !self.hists.is_empty() {
            let _ = writeln!(out, "\nhistograms:");
            for (name, hist) in &self.hists {
                let _ = writeln!(
                    out,
                    "  {name:<32} n={} p50={:.4} p95={:.4} p99={:.4} max={:.4}",
                    hist.count,
                    hist.p50(),
                    hist.p95(),
                    hist.p99(),
                    hist.max
                );
            }
        }
        out
    }
}

impl ToJson for Trace {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("schema".to_string(), TRACE_SCHEMA.to_json()),
            ("spans".to_string(), self.spans.to_json()),
            (
                "counters".to_string(),
                Json::Obj(
                    self.counters
                        .iter()
                        .map(|(k, v)| (k.clone(), v.to_json()))
                        .collect(),
                ),
            ),
            (
                "observations".to_string(),
                Json::Obj(
                    self.observations
                        .iter()
                        .map(|(k, v)| (k.clone(), v.to_json()))
                        .collect(),
                ),
            ),
            (
                "hists".to_string(),
                Json::Obj(
                    self.hists
                        .iter()
                        .map(|(k, v)| (k.clone(), v.to_json()))
                        .collect(),
                ),
            ),
        ])
    }
}

impl FromJson for Trace {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        let mut r = ObjReader::new(v, "Trace")?;
        let schema: String = r.req("schema")?;
        if schema != TRACE_SCHEMA && schema != TRACE_SCHEMA_V1 {
            return Err(JsonError::msg(format!(
                "unsupported trace schema `{schema}` (expected `{TRACE_SCHEMA}`)"
            )));
        }
        let spans: Vec<SpanRecord> = r.req("spans")?;
        let counters = match r.req::<Json>("counters")? {
            Json::Obj(fields) => fields
                .iter()
                .map(|(k, v)| Ok((k.clone(), u64::from_json(v).map_err(|e| e.in_field(k))?)))
                .collect::<Result<Vec<_>, JsonError>>()?,
            other => {
                return Err(JsonError::msg(format!(
                    "expected counters object, found {}",
                    other.type_name()
                )))
            }
        };
        let observations = match r.req::<Json>("observations")? {
            Json::Obj(fields) => fields
                .iter()
                .map(|(k, v)| {
                    Ok((
                        k.clone(),
                        ObservationStats::from_json(v).map_err(|e| e.in_field(k))?,
                    ))
                })
                .collect::<Result<Vec<_>, JsonError>>()?,
            other => {
                return Err(JsonError::msg(format!(
                    "expected observations object, found {}",
                    other.type_name()
                )))
            }
        };
        // `hists` arrived with schema v2; absent in v1 traces.
        let hists = match r.opt::<Json>("hists")? {
            None => Vec::new(),
            Some(Json::Obj(fields)) => fields
                .iter()
                .map(|(k, v)| {
                    Ok((
                        k.clone(),
                        HistogramStats::from_json(v).map_err(|e| e.in_field(k))?,
                    ))
                })
                .collect::<Result<Vec<_>, JsonError>>()?,
            Some(other) => {
                return Err(JsonError::msg(format!(
                    "expected hists object, found {}",
                    other.type_name()
                )))
            }
        };
        r.finish()?;
        Ok(Self {
            spans,
            counters,
            observations,
            hists,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fixture() -> Trace {
        Trace {
            spans: vec![
                SpanRecord {
                    id: 1,
                    parent: None,
                    thread: 0,
                    name: "repro.run".to_string(),
                    start_s: 0.0,
                    seconds: 2.0,
                },
                SpanRecord {
                    id: 2,
                    parent: Some(1),
                    thread: 1,
                    name: "artefact.fig5".to_string(),
                    start_s: 0.1,
                    seconds: 1.5,
                },
                SpanRecord {
                    id: 3,
                    parent: Some(2),
                    thread: 1,
                    name: "thermal.steady_state".to_string(),
                    start_s: 0.2,
                    seconds: 1.0,
                },
            ],
            counters: vec![
                ("engine.cache.hit".to_string(), 3),
                ("engine.cache.miss".to_string(), 1),
            ],
            observations: vec![(
                "numerics.cg.iterations".to_string(),
                ObservationStats {
                    count: 4,
                    sum: 100.0,
                    min: 10.0,
                    max: 40.0,
                },
            )],
            hists: vec![("engine.queue_wait_s".to_string(), {
                let mut h = HistogramStats::default();
                for i in 1..=20 {
                    h.record(f64::from(i) * 1e-3);
                }
                h
            })],
        }
    }

    #[test]
    fn json_round_trip() {
        let trace = fixture();
        let text = darksil_json::to_string_pretty(&trace);
        let back: Trace = darksil_json::from_str(&text).expect("round trip");
        assert_eq!(back, trace);
    }

    #[test]
    fn wrong_schema_is_rejected() {
        let trace = fixture();
        let text = darksil_json::to_string_pretty(&trace).replace(TRACE_SCHEMA, "bogus-v0");
        assert!(darksil_json::from_str::<Trace>(&text).is_err());
    }

    #[test]
    fn summary_computes_exclusive_time() {
        let rows = fixture().summary();
        assert_eq!(rows[0].name, "repro.run");
        assert!((rows[0].inclusive_s - 2.0).abs() < 1e-12);
        assert!((rows[0].exclusive_s - 0.5).abs() < 1e-12);
        let fig5 = rows
            .iter()
            .find(|r| r.name == "artefact.fig5")
            .expect("fig5");
        assert!((fig5.exclusive_s - 0.5).abs() < 1e-12);
        let thermal = rows
            .iter()
            .find(|r| r.name == "thermal.steady_state")
            .expect("thermal");
        assert!((thermal.exclusive_s - 1.0).abs() < 1e-12);
    }

    #[test]
    fn render_summary_shows_hot_paths_and_health() {
        let text = fixture().render_summary(10);
        assert!(text.contains("repro.run"), "{text}");
        assert!(text.contains("artefact.fig5"), "{text}");
        assert!(text.contains("75.0% hit rate"), "{text}");
        assert!(text.contains("numerics.cg.iterations"), "{text}");
        assert!(text.contains("engine.queue_wait_s"), "{text}");
        assert!(text.contains("p95="), "{text}");
        assert!(text.contains("p99="), "{text}");
    }

    #[test]
    fn v1_traces_without_histograms_still_parse() {
        let trace = fixture();
        let text = darksil_json::to_string_pretty(&trace);
        // Rewrite as a v1 document: old schema tag, no hists section.
        let v1 = {
            let json: Json = darksil_json::from_str(&text).expect("self parse");
            let Json::Obj(fields) = json else {
                panic!("trace is an object")
            };
            let fields = fields
                .into_iter()
                .filter(|(k, _)| k != "hists")
                .map(|(k, v)| {
                    if k == "schema" {
                        (k, Json::Str(TRACE_SCHEMA_V1.to_string()))
                    } else {
                        (k, v)
                    }
                })
                .collect();
            darksil_json::to_string_pretty(&Json::Obj(fields))
        };
        let back: Trace = darksil_json::from_str(&v1).expect("v1 parses");
        assert_eq!(back.spans, trace.spans);
        assert!(back.hists.is_empty());
    }

    #[test]
    fn render_summary_truncates_to_top_n() {
        let text = fixture().render_summary(1);
        assert!(text.contains("2 more span names"), "{text}");
    }

    #[test]
    fn render_summary_derives_supervisor_stats() {
        // The fixture records no supervisor activity: the line is
        // suppressed entirely.
        assert!(!fixture().render_summary(10).contains("supervisor:"));

        let mut trace = fixture();
        trace.counters.extend([
            ("engine.supervisor.retry".to_string(), 5),
            ("engine.supervisor.degraded".to_string(), 2),
            ("engine.supervisor.breaker_open".to_string(), 3),
        ]);
        let text = trace.render_summary(10);
        assert!(
            text.contains(
                "supervisor: 5 retries, 2 degraded runs, 3 retries skipped (breaker open)"
            ),
            "{text}"
        );

        // Breaker skips alone still surface the line — a fully open
        // breaker produces no retries at all.
        let mut skips_only = fixture();
        skips_only
            .counters
            .push(("engine.supervisor.breaker_open".to_string(), 7));
        let text = skips_only.render_summary(10);
        assert!(
            text.contains(
                "supervisor: 0 retries, 0 degraded runs, 7 retries skipped (breaker open)"
            ),
            "{text}"
        );
    }

    #[test]
    fn render_summary_derives_solver_stats() {
        // No solves recorded: the line is suppressed entirely.
        assert!(!fixture().render_summary(10).contains("solver:"));

        let mut trace = fixture();
        trace.counters.extend([
            ("numerics.stage.factored".to_string(), 100),
            ("numerics.stage.cg".to_string(), 7),
            ("numerics.stage.dense_lu".to_string(), 1),
            ("numerics.factor_cache.hit".to_string(), 99),
            ("numerics.factor_cache.miss".to_string(), 1),
            ("numerics.warm_start".to_string(), 42),
        ]);
        let text = trace.render_summary(10);
        assert!(
            text.contains(
                "solver: 100 factored / 7 cg / 0 restarted / 1 dense-lu; \
                 factor cache 99/100 (99.0% hit rate), 42 warm-started"
            ),
            "{text}"
        );

        // A chain-only profile (no factor-cache lookups at all) still
        // renders, with a zero hit rate rather than a division by zero.
        let mut chain_only = fixture();
        chain_only
            .counters
            .push(("numerics.stage.cg".to_string(), 12));
        let text = chain_only.render_summary(10);
        assert!(text.contains("solver: 0 factored / 12 cg"), "{text}");
        assert!(text.contains("factor cache 0/0 (0.0% hit rate)"), "{text}");
    }
}
