//! Self-contained HTML run reports.
//!
//! [`render_report`] turns a drained [`EventStream`] (plus, optionally,
//! the run's [`Trace`]) into a single dependency-free HTML document:
//! inline SVG for the temperature timeline with event overlays, a
//! per-core heatmap strip, and a span Gantt, plus plain tables for
//! histograms, counters, and event-kind counts. No scripts, no external
//! fonts or stylesheets — the file can be archived with the run and
//! opened anywhere.
//!
//! Charts follow the repo's visualization conventions: one axis per
//! chart, thin marks, categorical hues in fixed order (blue, then
//! orange), a single-hue light→dark ramp for the heatmap magnitude,
//! status red reserved for threshold crossings (always paired with a
//! label), text in ink tokens rather than series colors, and a table
//! view alongside every chart.

use crate::event::EventStream;
use crate::svg::{downsample, esc, fnum, html_page, scale, PLOT_W};
use crate::trace::Trace;
use std::fmt::Write as _;

/// Sequential blue ramp (steps 100→700) for heatmap magnitude.
const HEAT_RAMP: [&str; 13] = [
    "#cde2fb", "#b7d3f6", "#9ec5f4", "#86b6ef", "#6da7ec", "#5598e7", "#3987e5", "#2a78d6",
    "#256abf", "#1c5cab", "#184f95", "#104281", "#0d366b",
];

/// One overlay tick on the timeline.
struct Overlay {
    x: f64,
    /// CSS class carrying the series color.
    class: &'static str,
    /// Tooltip text.
    title: String,
}

/// Stride-samples each overlay class down to at most `cap` ticks.
///
/// Dense transient runs emit a `boost.transition` on nearly every step;
/// thousands of 2px ticks overplot into a solid band, so each class is
/// decimated independently (watermark crossings are rarer and must not
/// be starved by boost ticks).
fn cap_overlays(overlays: Vec<Overlay>, cap: usize) -> Vec<Overlay> {
    let mut by_class: Vec<(&'static str, Vec<Overlay>)> = Vec::new();
    for overlay in overlays {
        match by_class.iter_mut().find(|(c, _)| *c == overlay.class) {
            Some((_, group)) => group.push(overlay),
            None => by_class.push((overlay.class, vec![overlay])),
        }
    }
    let mut out = Vec::new();
    for (_, group) in by_class {
        if group.len() <= cap {
            out.extend(group);
        } else {
            let stride = group.len().div_ceil(cap);
            out.extend(group.into_iter().step_by(stride));
        }
    }
    out
}

/// Gathers the peak-temperature series and its x-axis meaning.
///
/// Transient runs stream `thermal.step` events and get a true time
/// axis. Steady-state-only runs (e.g. `table1 fig6 fig8`) have no
/// simulated clock, so the timeline falls back to *stream position*:
/// each `thermal.steady` solve is plotted at its index in the drained
/// stream, which is the deterministic submission order.
fn timeline_series(stream: &EventStream) -> (Vec<(f64, f64)>, bool) {
    let stepped: Vec<(f64, f64)> = stream
        .of_kind("thermal.step")
        .filter_map(|e| Some((e.f64_field("t_s")?, e.f64_field("peak_c")?)))
        .collect();
    if stepped.len() >= 2 {
        return (stepped, true);
    }
    let by_position: Vec<(f64, f64)> = stream
        .events
        .iter()
        .enumerate()
        .filter(|(_, e)| e.kind == "thermal.steady")
        .filter_map(|(i, e)| {
            #[allow(clippy::cast_precision_loss)]
            let position = i as f64;
            Some((position, e.f64_field("peak_c")?))
        })
        .collect();
    (by_position, false)
}

/// The temperature timeline with event overlays.
fn render_timeline(stream: &EventStream) -> String {
    let (raw, time_axis) = timeline_series(stream);
    if raw.len() < 2 {
        return "<p class=\"note\">No temperature samples in this stream — run a transient or \
                steady-state artefact with <code>--events</code>.</p>\n"
            .to_string();
    }
    let points = downsample(&raw, 600);
    let threshold = stream
        .events
        .iter()
        .filter(|e| e.kind == "thermal.watermark" || e.kind == "thermal.cores")
        .filter_map(|e| e.f64_field("threshold_c"))
        .fold(f64::NAN, f64::max);

    let mut overlays: Vec<Overlay> = Vec::new();
    for (index, event) in stream.events.iter().enumerate() {
        #[allow(clippy::cast_precision_loss)]
        let x_of = |e: &crate::event::EventRecord| {
            if time_axis {
                e.f64_field("t_s")
            } else {
                Some(index as f64)
            }
        };
        match event.kind.as_str() {
            "boost.transition" => {
                if let Some(x) = x_of(event) {
                    let title = format!(
                        "boost.transition {} → {} GHz ({}) at peak {} °C",
                        fnum(event.f64_field("from_ghz").unwrap_or(f64::NAN)),
                        fnum(event.f64_field("to_ghz").unwrap_or(f64::NAN)),
                        event.str_field("reason").unwrap_or("?"),
                        fnum(event.f64_field("peak_c").unwrap_or(f64::NAN)),
                    );
                    overlays.push(Overlay {
                        x,
                        class: "ov-boost",
                        title,
                    });
                }
            }
            "thermal.watermark" => {
                if let Some(x) = x_of(event) {
                    let title = format!(
                        "thermal.watermark {} threshold at {} °C",
                        event.str_field("direction").unwrap_or("?"),
                        fnum(event.f64_field("peak_c").unwrap_or(f64::NAN)),
                    );
                    overlays.push(Overlay {
                        x,
                        class: "ov-watermark",
                        title,
                    });
                }
            }
            _ => {}
        }
    }
    let overlays = cap_overlays(overlays, 240);

    let (h, ml, mr, mt, mb) = (230.0, 54.0, 14.0, 14.0, 40.0);
    let (x0, x1) = (ml, PLOT_W - mr);
    let (y0, y1) = (h - mb, mt);
    let xs_lo = points.iter().map(|p| p.0).fold(f64::INFINITY, f64::min);
    let xs_hi = points.iter().map(|p| p.0).fold(f64::NEG_INFINITY, f64::max);
    let mut t_lo = points.iter().map(|p| p.1).fold(f64::INFINITY, f64::min);
    let mut t_hi = points.iter().map(|p| p.1).fold(f64::NEG_INFINITY, f64::max);
    if threshold.is_finite() {
        t_lo = t_lo.min(threshold);
        t_hi = t_hi.max(threshold);
    }
    let pad = ((t_hi - t_lo) * 0.08).max(0.5);
    t_lo -= pad;
    t_hi += pad;

    let mut svg = String::new();
    let _ = writeln!(
        svg,
        "<svg viewBox=\"0 0 {PLOT_W} {h}\" role=\"img\" aria-label=\"Peak temperature timeline\">"
    );
    // Gridlines + y tick labels.
    for i in 0..=4 {
        let value = scale(f64::from(i), 0.0, 4.0, t_lo, t_hi);
        let y = scale(value, t_lo, t_hi, y0, y1);
        let _ = writeln!(
            svg,
            "<line class=\"grid\" x1=\"{x0:.1}\" y1=\"{y:.1}\" x2=\"{x1:.1}\" y2=\"{y:.1}\"/>\
             <text class=\"tick\" x=\"{:.1}\" y=\"{:.1}\" text-anchor=\"end\">{}</text>",
            x0 - 6.0,
            y + 3.5,
            fnum(value)
        );
    }
    // X tick labels.
    for i in 0..=4 {
        let value = scale(f64::from(i), 0.0, 4.0, xs_lo, xs_hi);
        let x = scale(value, xs_lo, xs_hi, x0, x1);
        let _ = writeln!(
            svg,
            "<text class=\"tick\" x=\"{x:.1}\" y=\"{:.1}\" text-anchor=\"middle\">{}</text>",
            y0 + 16.0,
            fnum(value)
        );
    }
    let _ = writeln!(
        svg,
        "<text class=\"axis-label\" x=\"{:.1}\" y=\"{:.1}\" text-anchor=\"middle\">{}</text>",
        f64::midpoint(x0, x1),
        h - 6.0,
        if time_axis {
            "simulated time [s]"
        } else {
            "stream position (submission order)"
        }
    );
    // Threshold line (status color, always labeled).
    if threshold.is_finite() {
        let y = scale(threshold, t_lo, t_hi, y0, y1);
        let _ = writeln!(
            svg,
            "<line class=\"threshold\" x1=\"{x0:.1}\" y1=\"{y:.1}\" x2=\"{x1:.1}\" y2=\"{y:.1}\"/>\
             <text class=\"threshold-label\" x=\"{:.1}\" y=\"{:.1}\" text-anchor=\"end\">threshold {} °C</text>",
            x1 - 4.0,
            y - 4.0,
            fnum(threshold)
        );
    }
    // Event overlay ticks under the baseline.
    for overlay in &overlays {
        let x = scale(overlay.x, xs_lo, xs_hi, x0, x1);
        let _ = writeln!(
            svg,
            "<line class=\"{}\" x1=\"{x:.1}\" y1=\"{:.1}\" x2=\"{x:.1}\" y2=\"{:.1}\"><title>{}</title></line>",
            overlay.class,
            y0 + 2.0,
            y0 + 12.0,
            esc(&overlay.title)
        );
    }
    // The peak-temperature line itself.
    let mut path = String::new();
    for (i, (x, t)) in points.iter().enumerate() {
        let px = scale(*x, xs_lo, xs_hi, x0, x1);
        let py = scale(*t, t_lo, t_hi, y0, y1);
        let _ = write!(path, "{}{px:.1},{py:.1} ", if i == 0 { "M" } else { "L" });
    }
    let _ = writeln!(
        svg,
        "<path class=\"series-line\" d=\"{}\"/>",
        path.trim_end()
    );
    let _ = writeln!(svg, "</svg>");

    let mut legend = String::from(
        "<div class=\"legend\"><span><i class=\"swatch sw-peak\"></i>peak temperature [°C]</span>",
    );
    if overlays.iter().any(|o| o.class == "ov-boost") {
        legend.push_str("<span><i class=\"swatch sw-boost\"></i>boost.transition</span>");
    }
    if overlays.iter().any(|o| o.class == "ov-watermark") {
        legend.push_str("<span><i class=\"swatch sw-watermark\"></i>⚠ thermal.watermark</span>");
    }
    legend.push_str("</div>\n");
    format!("{legend}{svg}")
}

/// The per-core heatmap strip: one column per (decimated) sample, one
/// row per core, magnitude on the sequential blue ramp.
fn render_heatmap(stream: &EventStream) -> String {
    let mut samples: Vec<Vec<f64>> = stream
        .of_kind("thermal.cores")
        .filter_map(|e| e.f64s_field("cores").map(<[f64]>::to_vec))
        .collect();
    if samples.is_empty() {
        samples = stream
            .of_kind("thermal.steady")
            .filter_map(|e| e.f64s_field("cores").map(<[f64]>::to_vec))
            .collect();
    }
    let cores = samples.iter().map(Vec::len).min().unwrap_or(0);
    if samples.is_empty() || cores == 0 {
        return "<p class=\"note\">No per-core samples in this stream.</p>\n".to_string();
    }
    // Decimate columns.
    let cap = 160_usize;
    let columns: Vec<&Vec<f64>> = if samples.len() > cap {
        let stride = samples.len().div_ceil(cap);
        samples.iter().step_by(stride).collect()
    } else {
        samples.iter().collect()
    };
    let lo = columns
        .iter()
        .flat_map(|c| c[..cores].iter())
        .fold(f64::INFINITY, |a, &b| a.min(b));
    let hi = columns
        .iter()
        .flat_map(|c| c[..cores].iter())
        .fold(f64::NEG_INFINITY, |a, &b| a.max(b));

    let (ml, mt) = (54.0, 6.0);
    #[allow(clippy::cast_precision_loss)]
    let cell_w = (PLOT_W - ml - 14.0) / columns.len() as f64;
    let cell_h = (4.0 * cell_w).clamp(3.0, 14.0);
    #[allow(clippy::cast_precision_loss)]
    let h = cell_h.mul_add(cores as f64, mt + 26.0);

    let mut svg = String::new();
    let _ = writeln!(
        svg,
        "<svg viewBox=\"0 0 {PLOT_W} {h:.1}\" role=\"img\" aria-label=\"Per-core temperature heatmap\">"
    );
    for (col, sample) in columns.iter().enumerate() {
        for (row, &temp) in sample[..cores].iter().enumerate() {
            let t = scale(temp, lo, hi, 0.0, 1.0);
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
            let shade = HEAT_RAMP
                [((t * (HEAT_RAMP.len() - 1) as f64).round() as usize).min(HEAT_RAMP.len() - 1)];
            #[allow(clippy::cast_precision_loss)]
            let (x, y) = (
                (col as f64).mul_add(cell_w, ml),
                (row as f64).mul_add(cell_h, mt),
            );
            let _ = writeln!(
                svg,
                "<rect x=\"{x:.1}\" y=\"{y:.1}\" width=\"{:.2}\" height=\"{cell_h:.2}\" fill=\"{shade}\">\
                 <title>core {row}, sample {col}: {} °C</title></rect>",
                cell_w + 0.05,
                fnum(temp)
            );
        }
    }
    #[allow(clippy::cast_precision_loss)]
    let strip_bottom = cell_h.mul_add(cores as f64, mt);
    let _ = writeln!(
        svg,
        "<text class=\"tick\" x=\"{:.1}\" y=\"{:.1}\" text-anchor=\"end\">core 0</text>\
         <text class=\"tick\" x=\"{:.1}\" y=\"{:.1}\" text-anchor=\"end\">core {}</text>",
        ml - 6.0,
        mt + 9.0,
        ml - 6.0,
        strip_bottom - 1.0,
        cores - 1
    );
    let _ = writeln!(
        svg,
        "<text class=\"axis-label\" x=\"{ml}\" y=\"{:.1}\">{} samples · {} → {} °C (light → dark)</text>",
        strip_bottom + 16.0,
        columns.len(),
        fnum(lo),
        fnum(hi)
    );
    let _ = writeln!(svg, "</svg>");
    svg
}

/// The span Gantt from the trace: the longest spans laid out on the
/// run's wall-clock axis, one row each.
fn render_gantt(trace: &Trace) -> String {
    if trace.spans.is_empty() {
        return "<p class=\"note\">No trace recorded for this run.</p>\n".to_string();
    }
    let mut spans: Vec<&crate::trace::SpanRecord> = trace.spans.iter().collect();
    spans.sort_by(|a, b| {
        b.seconds
            .total_cmp(&a.seconds)
            .then_with(|| a.id.cmp(&b.id))
    });
    spans.truncate(24);
    spans.sort_by(|a, b| {
        a.start_s
            .total_cmp(&b.start_s)
            .then_with(|| a.id.cmp(&b.id))
    });
    let end = spans
        .iter()
        .map(|s| s.start_s + s.seconds)
        .fold(0.0_f64, f64::max)
        .max(1e-9);

    let row_h = 16.0_f64;
    let (ml, mt) = (230.0, 6.0);
    #[allow(clippy::cast_precision_loss)]
    let h = row_h.mul_add(spans.len() as f64, mt + 26.0);
    let mut svg = String::new();
    let _ = writeln!(
        svg,
        "<svg viewBox=\"0 0 {PLOT_W} {h:.1}\" role=\"img\" aria-label=\"Span Gantt\">"
    );
    for (row, span) in spans.iter().enumerate() {
        #[allow(clippy::cast_precision_loss)]
        let y = (row as f64).mul_add(row_h, mt);
        let x = scale(span.start_s, 0.0, end, ml, PLOT_W - 14.0);
        let x_end = scale(span.start_s + span.seconds, 0.0, end, ml, PLOT_W - 14.0);
        let w = (x_end - x).max(1.5);
        let _ = writeln!(
            svg,
            "<text class=\"tick\" x=\"{:.1}\" y=\"{:.1}\" text-anchor=\"end\">{}</text>\
             <rect class=\"gantt-bar\" x=\"{x:.1}\" y=\"{:.1}\" width=\"{w:.1}\" height=\"{:.1}\" rx=\"2\">\
             <title>{} — {} s (thread {})</title></rect>",
            ml - 8.0,
            y + row_h - 5.0,
            esc(&span.name),
            y + 2.0,
            row_h - 4.0,
            esc(&span.name),
            fnum(span.seconds),
            span.thread
        );
    }
    #[allow(clippy::cast_precision_loss)]
    let base = row_h.mul_add(spans.len() as f64, mt);
    let _ = writeln!(
        svg,
        "<text class=\"axis-label\" x=\"{ml}\" y=\"{:.1}\">0 → {} s wall clock · top {} spans by length</text>",
        base + 16.0,
        fnum(end),
        spans.len()
    );
    let _ = writeln!(svg, "</svg>");
    svg
}

/// Renders tables: event-kind counts, derived stats, histograms.
fn render_tables(stream: &EventStream, trace: Option<&Trace>) -> String {
    let mut out = String::new();
    let counts = stream.kind_counts();
    if !counts.is_empty() {
        out.push_str(
            "<h2>Event kinds</h2>\n<table><thead><tr><th>kind</th>\
                      <th class=\"num\">count</th></tr></thead><tbody>\n",
        );
        for (kind, count) in &counts {
            let _ = writeln!(
                out,
                "<tr><td><code>{}</code></td><td class=\"num\">{count}</td></tr>",
                esc(kind)
            );
        }
        out.push_str("</tbody></table>\n");
    }
    let mut derived = String::new();
    if let Some(residency) = stream.throttle_residency() {
        let _ = writeln!(
            derived,
            "<tr><td>throttle residency (below peak frequency)</td>\
             <td class=\"num\">{:.1}%</td></tr>",
            residency * 100.0
        );
    }
    for (core, seconds) in stream.time_above_threshold().iter().take(12) {
        let _ = writeln!(
            derived,
            "<tr><td>core {core} time above threshold</td><td class=\"num\">{} s</td></tr>",
            fnum(*seconds)
        );
    }
    if !derived.is_empty() {
        out.push_str(
            "<h2>Derived statistics</h2>\n<table><thead><tr><th>statistic</th>\
                      <th class=\"num\">value</th></tr></thead><tbody>\n",
        );
        out.push_str(&derived);
        out.push_str("</tbody></table>\n");
    }
    if let Some(trace) = trace {
        if !trace.hists.is_empty() {
            out.push_str(
                "<h2>Histograms</h2>\n<table><thead><tr><th>metric</th><th class=\"num\">n</th>\
                 <th class=\"num\">mean</th><th class=\"num\">p50</th><th class=\"num\">p95</th>\
                 <th class=\"num\">p99</th><th class=\"num\">max</th></tr></thead><tbody>\n",
            );
            for (name, hist) in &trace.hists {
                let _ = writeln!(
                    out,
                    "<tr><td><code>{}</code></td><td class=\"num\">{}</td><td class=\"num\">{}</td>\
                     <td class=\"num\">{}</td><td class=\"num\">{}</td><td class=\"num\">{}</td>\
                     <td class=\"num\">{}</td></tr>",
                    esc(name),
                    hist.count,
                    fnum(hist.mean()),
                    fnum(hist.p50()),
                    fnum(hist.p95()),
                    fnum(hist.p99()),
                    fnum(hist.max)
                );
            }
            out.push_str("</tbody></table>\n");
        }
    }
    out
}

/// Renders the full self-contained HTML report for one run.
///
/// `run` is the run label (usually the artefact selection), `stream`
/// the drained event stream, and `trace` the matching trace when one
/// was written (it feeds the Gantt and histogram tables).
#[must_use]
pub fn render_report(run: &str, stream: &EventStream, trace: Option<&Trace>) -> String {
    let mut body = String::new();
    let _ = writeln!(
        body,
        "<h1>darksil run report — <code>{}</code></h1>",
        esc(run)
    );
    let _ = writeln!(
        body,
        "<p class=\"subtitle\">{} events · schema <code>{}</code> · deterministic submission order</p>",
        stream.events.len(),
        crate::event::EVENTS_SCHEMA
    );
    body.push_str("<h2>Peak temperature timeline</h2>\n");
    body.push_str(&render_timeline(stream));
    body.push_str("<h2>Per-core heatmap</h2>\n");
    body.push_str(&render_heatmap(stream));
    if let Some(trace) = trace {
        body.push_str("<h2>Phase Gantt</h2>\n");
        body.push_str(&render_gantt(trace));
    }
    body.push_str(&render_tables(stream, trace));

    html_page(&format!("darksil run report — {run}"), &body)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{EventRecord, EventValue};

    fn transient_stream() -> EventStream {
        let mut events = Vec::new();
        for i in 0..40_u64 {
            #[allow(clippy::cast_precision_loss)]
            let t = i as f64 * 0.1;
            events.push(EventRecord {
                seq: vec![i, 0],
                kind: "thermal.step".to_string(),
                fields: vec![
                    ("t_s".to_string(), EventValue::F64(t)),
                    (
                        "peak_c".to_string(),
                        EventValue::F64(60.0 + 25.0 * (t * 1.3).sin()),
                    ),
                ],
            });
            if i % 8 == 0 {
                events.push(EventRecord {
                    seq: vec![i, 1],
                    kind: "thermal.cores".to_string(),
                    fields: vec![
                        ("t_s".to_string(), EventValue::F64(t)),
                        (
                            "cores".to_string(),
                            EventValue::F64s(vec![55.0 + t, 60.0 + t, 58.0, 71.0]),
                        ),
                        ("threshold_c".to_string(), EventValue::F64(80.0)),
                    ],
                });
            }
        }
        events.push(EventRecord {
            seq: vec![40],
            kind: "boost.transition".to_string(),
            fields: vec![
                ("t_s".to_string(), EventValue::F64(2.0)),
                ("from_ghz".to_string(), EventValue::F64(3.0)),
                ("to_ghz".to_string(), EventValue::F64(2.6)),
                ("peak_c".to_string(), EventValue::F64(81.0)),
                ("reason".to_string(), EventValue::Str("thermal".to_string())),
            ],
        });
        EventStream { events }
    }

    #[test]
    fn report_is_self_contained_html() {
        let html = render_report("table1+fig8", &transient_stream(), None);
        assert!(html.starts_with("<!DOCTYPE html>"));
        assert!(html.contains("<svg"), "timeline SVG present");
        assert!(html.contains("boost.transition"));
        assert!(html.contains("threshold 80"), "{html}");
        // Self-contained: no external fetches of any kind.
        assert!(!html.contains("http://"));
        assert!(!html.contains("https://"));
        assert!(!html.contains("<script"));
    }

    #[test]
    fn steady_only_streams_fall_back_to_stream_position() {
        let events = (0..6_u64)
            .map(|i| {
                #[allow(clippy::cast_precision_loss)]
                let peak = 70.0 + i as f64;
                EventRecord {
                    seq: vec![i],
                    kind: "thermal.steady".to_string(),
                    fields: vec![
                        ("peak_c".to_string(), EventValue::F64(peak)),
                        (
                            "cores".to_string(),
                            EventValue::F64s(vec![65.0, 66.0, 67.0]),
                        ),
                    ],
                }
            })
            .collect();
        let html = render_report("fig6", &EventStream { events }, None);
        assert!(html.contains("stream position"), "{html}");
        assert!(html.contains("Per-core heatmap"));
    }

    #[test]
    fn gantt_and_histograms_render_from_the_trace() {
        use crate::hist::HistogramStats;
        use crate::trace::SpanRecord;
        let mut hist = HistogramStats::default();
        for i in 1..=16 {
            hist.record(f64::from(i) * 1e-3);
        }
        let trace = Trace {
            spans: vec![SpanRecord {
                id: 1,
                parent: None,
                thread: 0,
                name: "repro.run".to_string(),
                start_s: 0.0,
                seconds: 1.25,
            }],
            counters: Vec::new(),
            observations: Vec::new(),
            hists: vec![("engine.queue_wait_s".to_string(), hist)],
        };
        let html = render_report("all", &transient_stream(), Some(&trace));
        assert!(html.contains("Phase Gantt"));
        assert!(html.contains("repro.run"));
        assert!(html.contains("engine.queue_wait_s"));
        assert!(html.contains("p99"));
    }

    #[test]
    fn overlay_ticks_are_decimated_per_class() {
        let mut events = Vec::new();
        for i in 0..2000_u64 {
            #[allow(clippy::cast_precision_loss)]
            let t = i as f64 * 0.01;
            events.push(EventRecord {
                seq: vec![i, 0],
                kind: "thermal.step".to_string(),
                fields: vec![
                    ("t_s".to_string(), EventValue::F64(t)),
                    ("peak_c".to_string(), EventValue::F64(60.0)),
                ],
            });
            events.push(EventRecord {
                seq: vec![i, 1],
                kind: "boost.transition".to_string(),
                fields: vec![
                    ("t_s".to_string(), EventValue::F64(t)),
                    ("from_ghz".to_string(), EventValue::F64(3.0)),
                    ("to_ghz".to_string(), EventValue::F64(2.6)),
                    ("peak_c".to_string(), EventValue::F64(60.0)),
                    ("reason".to_string(), EventValue::Str("boost".to_string())),
                ],
            });
            if i < 3 {
                events.push(EventRecord {
                    seq: vec![i, 2],
                    kind: "thermal.watermark".to_string(),
                    fields: vec![
                        ("t_s".to_string(), EventValue::F64(t)),
                        ("peak_c".to_string(), EventValue::F64(81.0)),
                        ("threshold_c".to_string(), EventValue::F64(80.0)),
                        (
                            "direction".to_string(),
                            EventValue::Str("above".to_string()),
                        ),
                    ],
                });
            }
        }
        let html = render_report("dtm", &EventStream { events }, None);
        let boost_ticks = html.matches("class=\"ov-boost\"").count();
        let watermark_ticks = html.matches("class=\"ov-watermark\"").count();
        assert!(
            boost_ticks <= 240,
            "boost ticks decimated, got {boost_ticks}"
        );
        assert_eq!(watermark_ticks, 3, "sparse classes are kept whole");
    }

    #[test]
    fn labels_are_escaped() {
        let stream = EventStream {
            events: vec![EventRecord {
                seq: vec![0],
                kind: "thermal.steady".to_string(),
                fields: vec![("peak_c".to_string(), EventValue::F64(70.0))],
            }],
        };
        let html = render_report("<run> & \"q\"", &stream, None);
        assert!(html.contains("&lt;run&gt; &amp; &quot;q&quot;"));
        assert!(!html.contains("<run>"));
    }
}
