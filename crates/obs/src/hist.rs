//! Log-bucket histograms for latency-style metrics.
//!
//! [`ObservationStats`](crate::ObservationStats) keeps count/sum/min/max,
//! which is enough for a mean but says nothing about the tail. A
//! [`HistogramStats`] adds a sparse log-bucketed distribution so the
//! summary can report p50/p95/p99 with bounded memory: each power of two
//! is split into [`BUCKETS_PER_DOUBLING`] buckets (~9% relative error per
//! bucket), and only occupied buckets are stored. Merging and quantile
//! extraction are independent of insertion order, so a histogram built
//! from a parallel run is deterministic up to the sample multiset.

use darksil_json::{FromJson, Json, JsonError, ObjReader, ToJson};

/// Buckets per doubling of the value; 8 gives ~9% relative resolution.
const BUCKETS_PER_DOUBLING: f64 = 8.0;

/// Bucket index reserved for non-positive and non-finite samples.
const UNDERFLOW_BUCKET: i32 = i32::MIN;

/// Returns the log-bucket index for `value`.
fn bucket_of(value: f64) -> i32 {
    if value <= 0.0 || !value.is_finite() {
        return UNDERFLOW_BUCKET;
    }
    let raw = (value.log2() * BUCKETS_PER_DOUBLING).floor();
    if raw < f64::from(i32::MIN + 1) {
        UNDERFLOW_BUCKET
    } else if raw > f64::from(i32::MAX) {
        i32::MAX
    } else {
        #[allow(clippy::cast_possible_truncation)]
        {
            raw as i32
        }
    }
}

/// Upper bound of a bucket (quantiles report this, clamped to the
/// observed min/max so estimates never leave the sampled range).
fn bucket_upper(bucket: i32) -> f64 {
    if bucket == UNDERFLOW_BUCKET {
        return 0.0;
    }
    2.0_f64.powf((f64::from(bucket) + 1.0) / BUCKETS_PER_DOUBLING)
}

/// A sparse log-bucket histogram with summary statistics.
///
/// Built by [`observe_hist`](crate::observe_hist); serialized inside the
/// trace as `{"count", "sum", "min", "max", "buckets": [[index, n], …]}`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct HistogramStats {
    /// Number of recorded samples.
    pub count: u64,
    /// Sum of all samples.
    pub sum: f64,
    /// Smallest sample (`0.0` when empty).
    pub min: f64,
    /// Largest sample (`0.0` when empty).
    pub max: f64,
    /// Occupied buckets as `(index, samples)`, sorted by index.
    buckets: Vec<(i32, u64)>,
}

impl HistogramStats {
    /// Records one sample.
    pub fn record(&mut self, value: f64) {
        if self.count == 0 {
            self.min = value;
            self.max = value;
        } else {
            self.min = self.min.min(value);
            self.max = self.max.max(value);
        }
        self.count += 1;
        self.sum += value;
        let bucket = bucket_of(value);
        match self.buckets.binary_search_by_key(&bucket, |&(b, _)| b) {
            Ok(pos) => self.buckets[pos].1 += 1,
            Err(pos) => self.buckets.insert(pos, (bucket, 1)),
        }
    }

    /// Merges another histogram into this one. The result is identical
    /// to recording both sample multisets into a single histogram, so
    /// merging is associative, commutative, and order-independent —
    /// the property the rolling-window ring in [`crate::metrics`] relies
    /// on when it folds live windows into one distribution.
    pub fn merge(&mut self, other: &HistogramStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            self.min = other.min;
            self.max = other.max;
        } else {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
        self.count += other.count;
        self.sum += other.sum;
        for &(bucket, n) in &other.buckets {
            match self.buckets.binary_search_by_key(&bucket, |&(b, _)| b) {
                Ok(pos) => self.buckets[pos].1 += n,
                Err(pos) => self.buckets.insert(pos, (bucket, n)),
            }
        }
    }

    /// Mean of all samples; `0.0` when empty.
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            #[allow(clippy::cast_precision_loss)]
            {
                self.sum / self.count as f64
            }
        }
    }

    /// Estimates the `q`-quantile (`q` in `[0, 1]`). The estimate is a
    /// bucket upper bound clamped to the observed `[min, max]`, so it is
    /// within one bucket width (~9%) of the true quantile. `0.0` when
    /// empty.
    #[must_use]
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        #[allow(
            clippy::cast_precision_loss,
            clippy::cast_possible_truncation,
            clippy::cast_sign_loss
        )]
        let target = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut cumulative = 0_u64;
        for &(bucket, n) in &self.buckets {
            cumulative += n;
            if cumulative >= target {
                return bucket_upper(bucket).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Median estimate.
    #[must_use]
    pub fn p50(&self) -> f64 {
        self.quantile(0.50)
    }

    /// 95th-percentile estimate.
    #[must_use]
    pub fn p95(&self) -> f64 {
        self.quantile(0.95)
    }

    /// 99th-percentile estimate.
    #[must_use]
    pub fn p99(&self) -> f64 {
        self.quantile(0.99)
    }
}

impl ToJson for HistogramStats {
    fn to_json(&self) -> Json {
        let buckets = self
            .buckets
            .iter()
            .map(|&(bucket, n)| {
                #[allow(clippy::cast_precision_loss)]
                let count = n as f64;
                Json::Arr(vec![Json::Num(f64::from(bucket)), Json::Num(count)])
            })
            .collect();
        Json::Obj(vec![
            ("count".to_string(), self.count.to_json()),
            ("sum".to_string(), Json::Num(self.sum)),
            ("min".to_string(), Json::Num(self.min)),
            ("max".to_string(), Json::Num(self.max)),
            ("buckets".to_string(), Json::Arr(buckets)),
        ])
    }
}

impl FromJson for HistogramStats {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        let mut r = ObjReader::new(json, "HistogramStats")?;
        let count: u64 = r.req("count")?;
        let sum: f64 = r.req("sum")?;
        let min: f64 = r.req("min")?;
        let max: f64 = r.req("max")?;
        let raw: Vec<Json> = r.req("buckets")?;
        r.finish()?;
        let mut buckets = Vec::with_capacity(raw.len());
        for pair in &raw {
            let Json::Arr(items) = pair else {
                return Err(JsonError::msg(
                    "histogram bucket must be a [index, count] pair",
                ));
            };
            if items.len() != 2 {
                return Err(JsonError::msg(
                    "histogram bucket must be a [index, count] pair",
                ));
            }
            let index = items[0]
                .as_f64()
                .ok_or_else(|| JsonError::msg("bucket index must be a number"))?;
            let n = items[1]
                .as_f64()
                .ok_or_else(|| JsonError::msg("bucket count must be a number"))?;
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
            let entry = (index as i32, n as u64);
            buckets.push(entry);
        }
        buckets.sort_by_key(|&(b, _)| b);
        Ok(Self {
            count,
            sum,
            min,
            max,
            buckets,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_reports_zeroes() {
        let h = HistogramStats::default();
        assert_eq!(h.count, 0);
        assert_eq!(h.p50(), 0.0);
        assert_eq!(h.p99(), 0.0);
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn quantiles_bracket_the_samples() {
        let mut h = HistogramStats::default();
        for i in 1..=100 {
            h.record(f64::from(i));
        }
        assert_eq!(h.count, 100);
        assert!((h.mean() - 50.5).abs() < 1e-9);
        // Log buckets give ~9% relative error; accept a generous band.
        assert!(h.p50() >= 45.0 && h.p50() <= 60.0, "p50 = {}", h.p50());
        assert!(h.p95() >= 90.0 && h.p95() <= 100.0, "p95 = {}", h.p95());
        assert!(h.p99() >= 95.0 && h.p99() <= 100.0, "p99 = {}", h.p99());
        assert_eq!(h.quantile(1.0), 100.0);
        // The 0-quantile reports the first bucket's upper bound, which
        // sits within one bucket width (~9%) of the true minimum.
        let q0 = h.quantile(0.0);
        assert!((1.0..=1.1).contains(&q0), "q0 = {q0}");
    }

    #[test]
    fn single_sample_is_every_quantile() {
        let mut h = HistogramStats::default();
        h.record(0.125);
        assert_eq!(h.p50(), 0.125);
        assert_eq!(h.p99(), 0.125);
        assert_eq!(h.min, 0.125);
        assert_eq!(h.max, 0.125);
    }

    #[test]
    fn non_positive_samples_land_in_the_underflow_bucket() {
        let mut h = HistogramStats::default();
        h.record(0.0);
        h.record(-3.0);
        h.record(2.0);
        assert_eq!(h.count, 3);
        assert_eq!(h.min, -3.0);
        // The p50 walk hits the underflow bucket whose upper bound (0)
        // clamps into the observed range.
        assert!(h.p50() <= 2.0);
    }

    #[test]
    fn insertion_order_does_not_change_the_histogram() {
        let samples = [0.004, 1.5, 0.8, 12.0, 0.004, 3.3];
        let mut forward = HistogramStats::default();
        let mut backward = HistogramStats::default();
        for &s in &samples {
            forward.record(s);
        }
        for &s in samples.iter().rev() {
            backward.record(s);
        }
        assert_eq!(forward.buckets, backward.buckets);
        assert_eq!(forward.p95(), backward.p95());
    }

    #[test]
    fn merge_matches_recording_into_one_histogram() {
        let left_samples = [0.004, 1.5, 0.8, 12.0];
        let right_samples = [0.004, 3.3, 250.0];
        let mut left = HistogramStats::default();
        let mut right = HistogramStats::default();
        let mut combined = HistogramStats::default();
        for &s in &left_samples {
            left.record(s);
            combined.record(s);
        }
        for &s in &right_samples {
            right.record(s);
            combined.record(s);
        }
        left.merge(&right);
        assert_eq!(left, combined);
        // Merging an empty histogram is a no-op in both directions.
        let mut empty = HistogramStats::default();
        empty.merge(&combined);
        assert_eq!(empty, combined);
        combined.merge(&HistogramStats::default());
        assert_eq!(combined, empty);
    }

    #[test]
    fn json_round_trip_preserves_quantiles() {
        let mut h = HistogramStats::default();
        for i in 1..=50 {
            h.record(f64::from(i) * 0.01);
        }
        let text = darksil_json::to_string_pretty(&h);
        let back: HistogramStats = darksil_json::from_str(&text).expect("histogram parses");
        assert_eq!(back, h);
        assert_eq!(back.p99(), h.p99());
    }
}
