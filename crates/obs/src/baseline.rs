//! The recorded perf baseline: an aggregated view of a profiled repro
//! run (`BENCH_repro.json`) and the regression check CI runs against it.

use crate::trace::Trace;
use darksil_json::{FromJson, Json, JsonError, ObjReader, ToJson};

/// Schema tag written into every serialised baseline report.
pub const BASELINE_SCHEMA: &str = "darksil-bench-baseline-v1";

/// Regression bounds never drop below this, so sub-millisecond phases
/// do not fail CI on scheduler noise.
const MIN_BOUND_SECONDS: f64 = 0.25;

/// Wall-clock timing for one artefact of a profiled run.
#[derive(Debug, Clone, PartialEq)]
pub struct ArtefactTiming {
    /// Artefact name, e.g. `fig5`.
    pub artefact: String,
    /// Wall-clock seconds spent producing it.
    pub seconds: f64,
    /// Cache outcome label (`hit` / `miss` / `recovered` / `off`).
    pub cache: String,
}

darksil_json::impl_json!(struct ArtefactTiming { artefact, seconds, cache });

/// Aggregate time for one span name, with the regression bound CI
/// enforces.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseBound {
    /// Span name, e.g. `thermal.steady_state`.
    pub span: String,
    /// Number of spans with this name in the run.
    pub count: u64,
    /// Total inclusive wall-clock seconds.
    pub seconds: f64,
    /// Maximum inclusive seconds a later run may spend here before the
    /// comparison fails.
    pub max_seconds: f64,
}

darksil_json::impl_json!(struct PhaseBound { span, count, seconds, max_seconds });

/// The aggregated perf report a profiled repro run writes to
/// `BENCH_repro.json`; the committed copy at the repo root is the
/// reference baseline.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchBaseline {
    /// Worker count the run used (`--jobs`).
    pub jobs: usize,
    /// Artefact selection the run covered (names joined with `+`, or
    /// `all`).
    pub selection: String,
    /// Multiplier applied to measured phase times to derive
    /// `max_seconds` bounds (generous, to absorb machine variance).
    pub tolerance_factor: f64,
    /// End-to-end wall-clock seconds for the run.
    pub total_seconds: f64,
    /// Bound on `total_seconds` for later runs.
    pub max_total_seconds: f64,
    /// Per-artefact timings.
    pub artefacts: Vec<ArtefactTiming>,
    /// Per-span aggregates with regression bounds.
    pub phases: Vec<PhaseBound>,
    /// Counters carried over from the trace (cache hits, retries, …).
    pub counters: Vec<(String, u64)>,
}

impl BenchBaseline {
    /// Builds a report from a drained trace plus run-level metadata.
    /// Phase bounds are `seconds · tolerance_factor`, floored at a
    /// quarter second so tiny phases tolerate scheduler noise.
    #[must_use]
    pub fn from_trace(
        trace: &Trace,
        jobs: usize,
        selection: &str,
        tolerance_factor: f64,
        total_seconds: f64,
        artefacts: Vec<ArtefactTiming>,
    ) -> Self {
        let phases = trace
            .summary()
            .into_iter()
            .map(|row| PhaseBound {
                span: row.name,
                count: row.count,
                seconds: row.inclusive_s,
                max_seconds: (row.inclusive_s * tolerance_factor).max(MIN_BOUND_SECONDS),
            })
            .collect();
        Self {
            jobs,
            selection: selection.to_string(),
            tolerance_factor,
            total_seconds,
            max_total_seconds: (total_seconds * tolerance_factor).max(MIN_BOUND_SECONDS),
            artefacts,
            phases,
            counters: trace.counters.clone(),
        }
    }

    /// Checks `current` against this baseline's bounds. A phase is
    /// compared only when both reports contain it, so a baseline
    /// recorded over the full artefact set still bounds a CI run over a
    /// subset. Returns one [`Regression`] per exceeded bound; empty
    /// means the run is within budget.
    #[must_use]
    pub fn regressions_in(&self, current: &Self) -> Vec<Regression> {
        let mut out = Vec::new();
        if current.total_seconds > self.max_total_seconds {
            out.push(Regression {
                what: "total".to_string(),
                seconds: current.total_seconds,
                max_seconds: self.max_total_seconds,
            });
        }
        for phase in &current.phases {
            if let Some(bound) = self.phases.iter().find(|p| p.span == phase.span) {
                if phase.seconds > bound.max_seconds {
                    out.push(Regression {
                        what: phase.span.clone(),
                        seconds: phase.seconds,
                        max_seconds: bound.max_seconds,
                    });
                }
            }
        }
        out
    }

    /// Names of phases this baseline bounds that `current` did not run.
    /// [`Self::regressions_in`] intersects the two phase sets, so a
    /// phase that silently disappears from the run (renamed span,
    /// dropped artefact) would otherwise escape comparison entirely;
    /// callers surface these as warnings.
    #[must_use]
    pub fn missing_phases(&self, current: &Self) -> Vec<String> {
        self.phases
            .iter()
            .filter(|p| !current.phases.iter().any(|c| c.span == p.span))
            .map(|p| p.span.clone())
            .collect()
    }
}

/// One exceeded bound from [`BenchBaseline::regressions_in`].
#[derive(Debug, Clone, PartialEq)]
pub struct Regression {
    /// What regressed: a span name, or `total`.
    pub what: String,
    /// Seconds the current run spent there.
    pub seconds: f64,
    /// The baseline's bound.
    pub max_seconds: f64,
}

impl std::fmt::Display for Regression {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}: {:.3}s exceeds baseline bound {:.3}s",
            self.what, self.seconds, self.max_seconds
        )
    }
}

impl ToJson for BenchBaseline {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("schema".to_string(), BASELINE_SCHEMA.to_json()),
            ("jobs".to_string(), self.jobs.to_json()),
            ("selection".to_string(), self.selection.to_json()),
            (
                "tolerance_factor".to_string(),
                self.tolerance_factor.to_json(),
            ),
            ("total_seconds".to_string(), self.total_seconds.to_json()),
            (
                "max_total_seconds".to_string(),
                self.max_total_seconds.to_json(),
            ),
            ("artefacts".to_string(), self.artefacts.to_json()),
            ("phases".to_string(), self.phases.to_json()),
            (
                "counters".to_string(),
                Json::Obj(
                    self.counters
                        .iter()
                        .map(|(k, v)| (k.clone(), v.to_json()))
                        .collect(),
                ),
            ),
        ])
    }
}

impl FromJson for BenchBaseline {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        let mut r = ObjReader::new(v, "BenchBaseline")?;
        let schema: String = r.req("schema")?;
        if schema != BASELINE_SCHEMA {
            return Err(JsonError::msg(format!(
                "unsupported baseline schema `{schema}` (expected `{BASELINE_SCHEMA}`)"
            )));
        }
        let jobs = r.req("jobs")?;
        let selection = r.req("selection")?;
        let tolerance_factor = r.req("tolerance_factor")?;
        let total_seconds = r.req("total_seconds")?;
        let max_total_seconds = r.req("max_total_seconds")?;
        let artefacts = r.req("artefacts")?;
        let phases = r.req("phases")?;
        let counters = match r.req::<Json>("counters")? {
            Json::Obj(fields) => fields
                .iter()
                .map(|(k, v)| Ok((k.clone(), u64::from_json(v).map_err(|e| e.in_field(k))?)))
                .collect::<Result<Vec<_>, JsonError>>()?,
            other => {
                return Err(JsonError::msg(format!(
                    "expected counters object, found {}",
                    other.type_name()
                )))
            }
        };
        r.finish()?;
        Ok(Self {
            jobs,
            selection,
            tolerance_factor,
            total_seconds,
            max_total_seconds,
            artefacts,
            phases,
            counters,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::SpanRecord;

    fn trace() -> Trace {
        Trace {
            spans: vec![
                SpanRecord {
                    id: 1,
                    parent: None,
                    thread: 0,
                    name: "artefact.fig5".to_string(),
                    start_s: 0.0,
                    seconds: 1.0,
                },
                SpanRecord {
                    id: 2,
                    parent: Some(1),
                    thread: 0,
                    name: "thermal.steady_state".to_string(),
                    start_s: 0.1,
                    seconds: 0.6,
                },
            ],
            counters: vec![("engine.cache.miss".to_string(), 1)],
            observations: Vec::new(),
            hists: Vec::new(),
        }
    }

    fn baseline() -> BenchBaseline {
        BenchBaseline::from_trace(
            &trace(),
            2,
            "fig5",
            10.0,
            1.2,
            vec![ArtefactTiming {
                artefact: "fig5".to_string(),
                seconds: 1.0,
                cache: "miss".to_string(),
            }],
        )
    }

    #[test]
    fn bounds_scale_with_tolerance_and_floor() {
        let b = baseline();
        let fig5 = b
            .phases
            .iter()
            .find(|p| p.span == "artefact.fig5")
            .expect("fig5");
        assert!((fig5.max_seconds - 10.0).abs() < 1e-9);
        assert!((b.max_total_seconds - 12.0).abs() < 1e-9);
        // A microscopic phase still gets the floor bound.
        let tiny = Trace {
            spans: vec![SpanRecord {
                id: 1,
                parent: None,
                thread: 0,
                name: "blink".to_string(),
                start_s: 0.0,
                seconds: 1e-4,
            }],
            counters: Vec::new(),
            observations: Vec::new(),
            hists: Vec::new(),
        };
        let tb = BenchBaseline::from_trace(&tiny, 1, "x", 10.0, 1e-4, Vec::new());
        assert!((tb.phases[0].max_seconds - 0.25).abs() < 1e-9);
    }

    #[test]
    fn within_bounds_passes() {
        let b = baseline();
        assert!(b.regressions_in(&b).is_empty());
    }

    #[test]
    fn exceeded_phase_and_total_are_reported() {
        let b = baseline();
        let mut slow = b.clone();
        slow.total_seconds = 100.0;
        for phase in &mut slow.phases {
            phase.seconds = 50.0;
        }
        let regressions = b.regressions_in(&slow);
        assert_eq!(regressions.len(), 3, "{regressions:?}");
        assert_eq!(regressions[0].what, "total");
        assert!(
            regressions[0].to_string().contains("exceeds"),
            "{}",
            regressions[0]
        );
    }

    #[test]
    fn unknown_phases_in_current_are_ignored() {
        let b = baseline();
        let mut current = b.clone();
        current.phases.push(PhaseBound {
            span: "brand.new".to_string(),
            count: 1,
            seconds: 1e6,
            max_seconds: 1e7,
        });
        assert!(b.regressions_in(&current).is_empty());
        // The extra phase is only missing in the other direction.
        assert!(b.missing_phases(&current).is_empty());
        assert_eq!(current.missing_phases(&b), vec!["brand.new".to_string()]);
    }

    #[test]
    fn baseline_phases_absent_from_current_are_reported_missing() {
        let b = baseline();
        let mut current = b.clone();
        current.phases.retain(|p| p.span != "thermal.steady_state");
        // The intersection comparison stays green …
        assert!(b.regressions_in(&current).is_empty());
        // … but the dropped phase is named so callers can warn.
        assert_eq!(
            b.missing_phases(&current),
            vec!["thermal.steady_state".to_string()]
        );
    }

    #[test]
    fn json_round_trip() {
        let b = baseline();
        let text = darksil_json::to_string_pretty(&b);
        let back: BenchBaseline = darksil_json::from_str(&text).expect("round trip");
        assert_eq!(back, b);
    }

    #[test]
    fn wrong_schema_is_rejected() {
        let text = darksil_json::to_string_pretty(&baseline()).replace(BASELINE_SCHEMA, "bogus-v0");
        assert!(darksil_json::from_str::<BenchBaseline>(&text).is_err());
    }
}
