//! Process-global metrics registry: monotonic counters, gauges, and
//! fixed-window rolling histograms with a deterministic Prometheus
//! text exposition.
//!
//! Where the span/event recorder ([`crate::recorder`]) captures a
//! *bounded run* and drains it destructively, this registry serves a
//! *long-running process*: a daemon calls [`metrics_enable`] once at
//! startup and scrapes [`render_prometheus`] for as long as it lives.
//! The two subsystems share the design that made the recorder cheap —
//! every entry point is guarded by a single relaxed atomic load, so an
//! un-enabled process pays a few nanoseconds and takes no lock.
//!
//! Three metric kinds are supported, each keyed by `(name, label set)`:
//!
//! - **counters** ([`counter_add`]): monotonically increasing `u64`
//!   totals (requests, dedup hits, resume counts);
//! - **gauges** ([`gauge_set`]): last-write-wins `f64` levels (queue
//!   depth, in-flight connections, cache sizes);
//! - **rolling histograms** ([`observe_rolling`]): a ring of
//!   [`HistogramStats`] log-bucket windows, [`WINDOW_SECONDS`] seconds
//!   each, [`ROLLING_WINDOWS`] deep — quantiles answer "p95 over the
//!   last ~5 minutes", not "since boot", so a latency regression shows
//!   up within a scrape interval instead of being averaged away.
//!
//! The exposition is deterministic: metric names render in sorted
//! order within each type section, label sets render in sorted order
//! within a metric, label keys are sorted within a set, and the body
//! carries no timestamps — two scrapes of the same logical state are
//! byte-identical. Label cardinality is capped per metric at
//! [`MAX_LABEL_SETS`]; past the cap, new label sets collapse onto an
//! overflow series whose values are [`OVERFLOW_LABEL_VALUE`], so a
//! misbehaving client cannot grow the registry without bound.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, MutexGuard, PoisonError};
use std::time::Instant;

use crate::HistogramStats;

/// Length of one rolling-histogram window, in seconds.
pub const WINDOW_SECONDS: u64 = 10;

/// Number of windows a rolling histogram keeps (~5 minutes of tail).
pub const ROLLING_WINDOWS: usize = 30;

/// Maximum distinct label sets per metric before overflow collapsing.
pub const MAX_LABEL_SETS: usize = 64;

/// Label value used for series collapsed by the cardinality cap.
pub const OVERFLOW_LABEL_VALUE: &str = "_other";

/// Fast-path gate: when false, every entry point returns immediately.
static METRICS_ENABLED: AtomicBool = AtomicBool::new(false);

/// The process-global registry; `None` until first enabled.
static REGISTRY: Mutex<Option<MetricsRegistry>> = Mutex::new(None);

/// A sorted `(key, value)` label list; the `BTreeMap` series key.
type LabelSet = Vec<(String, String)>;

/// One metric's series map, shared across kinds.
type Series<T> = BTreeMap<LabelSet, T>;

/// A ring of log-bucket histogram windows indexed by wall-window
/// number. Recording into window `w` claims slot `w % ROLLING_WINDOWS`,
/// evicting whatever older window lived there; reading merges every
/// slot still within the last [`ROLLING_WINDOWS`] windows of "now".
#[derive(Debug, Clone)]
struct RollingHist {
    slots: Vec<Option<(u64, HistogramStats)>>,
}

impl RollingHist {
    fn new() -> Self {
        Self {
            slots: vec![None; ROLLING_WINDOWS],
        }
    }

    /// Records one sample into window `window`.
    fn record(&mut self, window: u64, value: f64) {
        #[allow(clippy::cast_possible_truncation)]
        let idx = (window % ROLLING_WINDOWS as u64) as usize;
        match &mut self.slots[idx] {
            Some((w, hist)) if *w == window => hist.record(value),
            slot => {
                let mut hist = HistogramStats::default();
                hist.record(value);
                *slot = Some((window, hist));
            }
        }
    }

    /// Merges every window still live at `now_window` into one
    /// histogram. Slots older than the ring depth are skipped, so a
    /// long-idle metric decays to an empty distribution.
    fn merged(&self, now_window: u64) -> HistogramStats {
        let oldest = now_window.saturating_sub(ROLLING_WINDOWS as u64 - 1);
        let mut out = HistogramStats::default();
        for (w, hist) in self.slots.iter().flatten() {
            if *w >= oldest && *w <= now_window {
                out.merge(hist);
            }
        }
        out
    }
}

/// Registry state behind the mutex.
struct MetricsRegistry {
    /// Process epoch; window indices count from here.
    epoch: Instant,
    counters: BTreeMap<String, Series<u64>>,
    gauges: BTreeMap<String, Series<f64>>,
    summaries: BTreeMap<String, Series<RollingHist>>,
}

impl MetricsRegistry {
    fn new() -> Self {
        Self {
            epoch: Instant::now(),
            counters: BTreeMap::new(),
            gauges: BTreeMap::new(),
            summaries: BTreeMap::new(),
        }
    }

    /// Current rolling-window index.
    fn window_now(&self) -> u64 {
        self.epoch.elapsed().as_secs() / WINDOW_SECONDS
    }
}

/// Locks the registry, tolerating poisoning (a panicking instrumented
/// thread must not take telemetry down with it).
fn lock_registry() -> MutexGuard<'static, Option<MetricsRegistry>> {
    REGISTRY.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Enables metrics recording. Idempotent: re-enabling keeps existing
/// series (a daemon may call this from multiple entry points).
pub fn metrics_enable() {
    let mut guard = lock_registry();
    if guard.is_none() {
        *guard = Some(MetricsRegistry::new());
    }
    METRICS_ENABLED.store(true, Ordering::Relaxed);
}

/// Disables recording and discards all series. Primarily for tests;
/// a daemon normally keeps metrics on for its whole life.
pub fn metrics_disable() {
    METRICS_ENABLED.store(false, Ordering::Relaxed);
    *lock_registry() = None;
}

/// Whether metrics recording is currently enabled.
#[must_use]
pub fn metrics_enabled() -> bool {
    METRICS_ENABLED.load(Ordering::Relaxed)
}

/// Builds the canonical sorted label set from caller-order pairs.
fn label_set(labels: &[(&str, &str)]) -> LabelSet {
    let mut set: LabelSet = labels
        .iter()
        .map(|&(k, v)| (k.to_string(), v.to_string()))
        .collect();
    set.sort();
    set
}

/// Admission under the cardinality cap: an existing series key passes
/// through; a new key past [`MAX_LABEL_SETS`] collapses every label
/// value to [`OVERFLOW_LABEL_VALUE`] (keys are preserved so the
/// overflow series stays queryable per label dimension).
fn admit_key<T>(series: &Series<T>, key: LabelSet) -> LabelSet {
    if series.contains_key(&key) || series.len() < MAX_LABEL_SETS {
        return key;
    }
    key.into_iter()
        .map(|(k, _)| (k, OVERFLOW_LABEL_VALUE.to_string()))
        .collect()
}

/// Adds `delta` to the counter `name` for the given labels.
pub fn counter_add(name: &str, labels: &[(&str, &str)], delta: u64) {
    if !METRICS_ENABLED.load(Ordering::Relaxed) {
        return;
    }
    let mut guard = lock_registry();
    let Some(registry) = guard.as_mut() else {
        return;
    };
    let series = registry.counters.entry(name.to_string()).or_default();
    let key = admit_key(series, label_set(labels));
    *series.entry(key).or_insert(0) += delta;
}

/// Sets the gauge `name` for the given labels to `value`.
pub fn gauge_set(name: &str, labels: &[(&str, &str)], value: f64) {
    if !METRICS_ENABLED.load(Ordering::Relaxed) {
        return;
    }
    let mut guard = lock_registry();
    let Some(registry) = guard.as_mut() else {
        return;
    };
    let series = registry.gauges.entry(name.to_string()).or_default();
    let key = admit_key(series, label_set(labels));
    series.insert(key, value);
}

/// Records `value` into the rolling histogram `name` for the given
/// labels, in the current 10-second window.
pub fn observe_rolling(name: &str, labels: &[(&str, &str)], value: f64) {
    if !METRICS_ENABLED.load(Ordering::Relaxed) {
        return;
    }
    let mut guard = lock_registry();
    let Some(registry) = guard.as_mut() else {
        return;
    };
    let window = registry.window_now();
    let series = registry.summaries.entry(name.to_string()).or_default();
    let key = admit_key(series, label_set(labels));
    series
        .entry(key)
        .or_insert_with(RollingHist::new)
        .record(window, value);
}

/// Returns the merged rolling histogram for `(name, labels)` over the
/// live windows, or `None` when the series does not exist (or metrics
/// are disabled). Lets in-process callers (the service dashboard, the
/// stats endpoint) read quantiles without parsing the exposition.
#[must_use]
pub fn rolling_snapshot(name: &str, labels: &[(&str, &str)]) -> Option<HistogramStats> {
    if !METRICS_ENABLED.load(Ordering::Relaxed) {
        return None;
    }
    let guard = lock_registry();
    let registry = guard.as_ref()?;
    let now = registry.window_now();
    let series = registry.summaries.get(name)?;
    series.get(&label_set(labels)).map(|h| h.merged(now))
}

/// Escapes a label value for the exposition (`\`, `"`, newline).
fn escape_label(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            other => out.push(other),
        }
    }
    out
}

/// Renders a label set (optionally with an extra trailing pair) as
/// `{k="v",…}`, or an empty string for the empty set.
fn render_labels(labels: &LabelSet, extra: Option<(&str, &str)>) -> String {
    if labels.is_empty() && extra.is_none() {
        return String::new();
    }
    let mut out = String::from("{");
    let mut first = true;
    for (k, v) in labels {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(k);
        out.push_str("=\"");
        out.push_str(&escape_label(v));
        out.push('"');
    }
    if let Some((k, v)) = extra {
        if !first {
            out.push(',');
        }
        out.push_str(k);
        out.push_str("=\"");
        out.push_str(&escape_label(v));
        out.push('"');
    }
    out.push('}');
    out
}

/// Formats a sample value: integral values print without a fractional
/// part so counter-like lines stay stable across platforms.
fn fmt_value(value: f64) -> String {
    #[allow(clippy::cast_possible_truncation)]
    if value.is_finite() && value == value.trunc() && value.abs() < 9.0e15 {
        format!("{}", value as i64)
    } else {
        format!("{value}")
    }
}

/// Renders the whole registry in Prometheus text-exposition format.
///
/// Sections appear in a fixed order (counters, gauges, summaries);
/// names sort within a section and label sets within a metric, and no
/// timestamp appears anywhere — the body is byte-deterministic for a
/// given logical state. Rolling histograms render as `summary`
/// metrics with `quantile="0.5" | "0.95" | "0.99"` lines plus
/// `_sum`/`_count` over the live windows. Returns an empty string
/// when metrics were never enabled.
#[must_use]
pub fn render_prometheus() -> String {
    let guard = lock_registry();
    let Some(registry) = guard.as_ref() else {
        return String::new();
    };
    let now = registry.window_now();
    let mut out = String::new();
    for (name, series) in &registry.counters {
        out.push_str(&format!("# TYPE {name} counter\n"));
        for (labels, value) in series {
            let rendered = render_labels(labels, None);
            out.push_str(&format!("{name}{rendered} {value}\n"));
        }
    }
    for (name, series) in &registry.gauges {
        out.push_str(&format!("# TYPE {name} gauge\n"));
        for (labels, value) in series {
            let rendered = render_labels(labels, None);
            out.push_str(&format!("{name}{rendered} {}\n", fmt_value(*value)));
        }
    }
    for (name, series) in &registry.summaries {
        out.push_str(&format!("# TYPE {name} summary\n"));
        for (labels, hist) in series {
            let merged = hist.merged(now);
            for (q_label, q) in [("0.5", 0.50), ("0.95", 0.95), ("0.99", 0.99)] {
                let rendered = render_labels(labels, Some(("quantile", q_label)));
                out.push_str(&format!(
                    "{name}{rendered} {}\n",
                    fmt_value(merged.quantile(q))
                ));
            }
            let rendered = render_labels(labels, None);
            out.push_str(&format!("{name}_sum{rendered} {}\n", fmt_value(merged.sum)));
            out.push_str(&format!("{name}_count{rendered} {}\n", merged.count));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Serialises tests that touch the process-global registry.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    fn serial() -> MutexGuard<'static, ()> {
        let guard = TEST_LOCK.lock().unwrap_or_else(PoisonError::into_inner);
        metrics_disable();
        metrics_enable();
        guard
    }

    #[test]
    fn disabled_registry_records_nothing() {
        let _serial = serial();
        metrics_disable();
        counter_add("m.requests", &[], 3);
        gauge_set("m.depth", &[], 1.0);
        observe_rolling("m.latency", &[], 0.5);
        assert!(!metrics_enabled());
        assert_eq!(render_prometheus(), "");
    }

    #[test]
    fn counters_accumulate_per_label_set() {
        let _serial = serial();
        counter_add("m.requests", &[("tenant", "a")], 1);
        counter_add("m.requests", &[("tenant", "a")], 2);
        counter_add("m.requests", &[("tenant", "b")], 5);
        let body = render_prometheus();
        assert!(body.contains("# TYPE m.requests counter\n"));
        assert!(body.contains("m.requests{tenant=\"a\"} 3\n"));
        assert!(body.contains("m.requests{tenant=\"b\"} 5\n"));
    }

    #[test]
    fn label_keys_sort_regardless_of_caller_order() {
        let _serial = serial();
        counter_add("m.split", &[("status", "200"), ("endpoint", "/x")], 1);
        counter_add("m.split", &[("endpoint", "/x"), ("status", "200")], 1);
        let body = render_prometheus();
        assert!(
            body.contains("m.split{endpoint=\"/x\",status=\"200\"} 2\n"),
            "body:\n{body}"
        );
    }

    #[test]
    fn label_values_are_escaped() {
        let _serial = serial();
        gauge_set("m.weird", &[("path", "a\"b\\c\nd")], 1.0);
        let body = render_prometheus();
        assert!(
            body.contains("m.weird{path=\"a\\\"b\\\\c\\nd\"} 1\n"),
            "body:\n{body}"
        );
    }

    #[test]
    fn gauges_are_last_write_wins() {
        let _serial = serial();
        gauge_set("m.depth", &[], 4.0);
        gauge_set("m.depth", &[], 2.5);
        let body = render_prometheus();
        assert!(body.contains("# TYPE m.depth gauge\n"));
        assert!(body.contains("m.depth 2.5\n"));
    }

    #[test]
    fn rolling_histogram_renders_summary_lines() {
        let _serial = serial();
        for i in 1..=100 {
            observe_rolling("m.latency", &[("tenant", "a")], f64::from(i));
        }
        let body = render_prometheus();
        assert!(body.contains("# TYPE m.latency summary\n"));
        assert!(body.contains("m.latency{tenant=\"a\",quantile=\"0.5\"} "));
        assert!(body.contains("m.latency{tenant=\"a\",quantile=\"0.95\"} "));
        assert!(body.contains("m.latency{tenant=\"a\",quantile=\"0.99\"} "));
        assert!(body.contains("m.latency_count{tenant=\"a\"} 100\n"));
        let snap = rolling_snapshot("m.latency", &[("tenant", "a")]).unwrap();
        assert_eq!(snap.count, 100);
        assert!(snap.p95() >= 90.0 && snap.p95() <= 100.0);
    }

    #[test]
    fn render_is_byte_deterministic() {
        let _serial = serial();
        counter_add("m.requests", &[("tenant", "b")], 1);
        counter_add("m.requests", &[("tenant", "a")], 1);
        gauge_set("m.depth", &[], 3.0);
        observe_rolling("m.latency", &[], 0.25);
        let first = render_prometheus();
        let second = render_prometheus();
        assert_eq!(first, second);
        // Counters render before gauges before summaries.
        let counters_at = first.find("# TYPE m.requests counter").unwrap();
        let gauges_at = first.find("# TYPE m.depth gauge").unwrap();
        let summaries_at = first.find("# TYPE m.latency summary").unwrap();
        assert!(counters_at < gauges_at && gauges_at < summaries_at);
        // Label sets render sorted.
        let a_at = first.find("m.requests{tenant=\"a\"}").unwrap();
        let b_at = first.find("m.requests{tenant=\"b\"}").unwrap();
        assert!(a_at < b_at);
    }

    #[test]
    fn cardinality_cap_collapses_new_series() {
        let _serial = serial();
        for i in 0..(MAX_LABEL_SETS + 10) {
            counter_add("m.flood", &[("tenant", &format!("t{i:04}"))], 1);
        }
        let body = render_prometheus();
        let distinct = body.lines().filter(|l| l.starts_with("m.flood{")).count();
        assert_eq!(distinct, MAX_LABEL_SETS + 1);
        assert!(body.contains(&format!(
            "m.flood{{tenant=\"{OVERFLOW_LABEL_VALUE}\"}} 10\n"
        )));
        // Existing series keep counting after the cap is hit.
        counter_add("m.flood", &[("tenant", "t0000")], 1);
        assert!(render_prometheus().contains("m.flood{tenant=\"t0000\"} 2\n"));
    }

    #[test]
    fn rolling_windows_expire() {
        // Exercise the ring directly with synthetic window indices so
        // the test does not sleep through real 10-second windows.
        let mut ring = RollingHist::new();
        ring.record(0, 1.0);
        ring.record(1, 2.0);
        assert_eq!(ring.merged(1).count, 2);
        // Window 0 falls out of scope once "now" passes the ring depth.
        let later = ROLLING_WINDOWS as u64;
        assert_eq!(ring.merged(later).count, 1);
        // A wrapped slot evicts the stale window it replaces.
        ring.record(later, 3.0);
        let merged = ring.merged(later);
        assert_eq!(merged.count, 2);
        assert_eq!(merged.max, 3.0);
        // Far future: everything expired.
        assert_eq!(ring.merged(later + ROLLING_WINDOWS as u64 + 1).count, 0);
    }
}
