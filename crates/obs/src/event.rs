//! The domain event stream: typed simulation events with a
//! deterministic total order.
//!
//! Spans answer "where did the time go"; events answer "what did the
//! simulation *decide*" — DTM throttles, DVFS transitions, DsRem moves,
//! TSP budget recomputes, temperature watermarks. Events are recorded by
//! [`event`](crate::event) behind the same fast path as spans, keyed by
//! a hierarchical submission index (see [`EventRecord::seq`]) rather
//! than wall-clock time, so the drained stream is **byte-identical at
//! any `--jobs` value**.
//!
//! The on-disk form is JSON Lines under schema [`EVENTS_SCHEMA`]: a
//! header object followed by one compact object per event, in key order.

use darksil_json::{Json, JsonError, ObjReader, ToJson};

/// Schema tag on the first line of an events file.
pub const EVENTS_SCHEMA: &str = "darksil-events-v1";

/// One field value on an event.
///
/// Events carry a small closed set of value shapes so domain crates can
/// emit without depending on the JSON crate; `From` conversions keep
/// call sites terse (`("peak_c", peak.into())`).
#[derive(Debug, Clone, PartialEq)]
pub enum EventValue {
    /// A scalar measurement (temperature, frequency, seconds, watts).
    F64(f64),
    /// An index or count (instance id, step number, core count).
    U64(u64),
    /// A flag.
    Bool(bool),
    /// A label (transition reason, decision kind).
    Str(String),
    /// A per-core vector (temperatures in floorplan order).
    F64s(Vec<f64>),
}

impl From<f64> for EventValue {
    fn from(v: f64) -> Self {
        Self::F64(v)
    }
}

impl From<u64> for EventValue {
    fn from(v: u64) -> Self {
        Self::U64(v)
    }
}

impl From<usize> for EventValue {
    fn from(v: usize) -> Self {
        Self::U64(v as u64)
    }
}

impl From<bool> for EventValue {
    fn from(v: bool) -> Self {
        Self::Bool(v)
    }
}

impl From<&str> for EventValue {
    fn from(v: &str) -> Self {
        Self::Str(v.to_string())
    }
}

impl From<String> for EventValue {
    fn from(v: String) -> Self {
        Self::Str(v)
    }
}

impl From<Vec<f64>> for EventValue {
    fn from(v: Vec<f64>) -> Self {
        Self::F64s(v)
    }
}

impl EventValue {
    fn to_json(&self) -> Json {
        match self {
            Self::F64(v) => Json::Num(*v),
            #[allow(clippy::cast_precision_loss)]
            Self::U64(v) => Json::Num(*v as f64),
            Self::Bool(v) => Json::Bool(*v),
            Self::Str(v) => Json::Str(v.clone()),
            Self::F64s(v) => Json::Arr(v.iter().map(|&x| Json::Num(x)).collect()),
        }
    }

    fn from_json(json: &Json) -> Result<Self, JsonError> {
        match json {
            Json::Num(v) => Ok(Self::F64(*v)),
            Json::Bool(v) => Ok(Self::Bool(*v)),
            Json::Str(v) => Ok(Self::Str(v.clone())),
            Json::Arr(items) => {
                let mut values = Vec::with_capacity(items.len());
                for item in items {
                    values
                        .push(item.as_f64().ok_or_else(|| {
                            JsonError::msg("event array field must hold numbers")
                        })?);
                }
                Ok(Self::F64s(values))
            }
            other => Err(JsonError::msg(format!(
                "unsupported event field type: {}",
                other.type_name()
            ))),
        }
    }

    /// The value as a scalar, if it is one (`U64` widens to `f64`).
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Self::F64(v) => Some(*v),
            #[allow(clippy::cast_precision_loss)]
            Self::U64(v) => Some(*v as f64),
            _ => None,
        }
    }

    /// The value as a string, if it is one.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Self::Str(v) => Some(v.as_str()),
            _ => None,
        }
    }

    /// The value as a float vector, if it is one.
    #[must_use]
    pub fn as_f64s(&self) -> Option<&[f64]> {
        match self {
            Self::F64s(v) => Some(v.as_slice()),
            _ => None,
        }
    }
}

/// One recorded domain event.
#[derive(Debug, Clone, PartialEq)]
pub struct EventRecord {
    /// Hierarchical submission key. The root scope is `[]`; each engine
    /// fan-out appends `[fork, job_index]` and every emission appends a
    /// per-scope sequence number, so lexicographic order over `seq`
    /// reproduces the serial submission order regardless of which
    /// thread actually ran the job.
    pub seq: Vec<u64>,
    /// Dotted event kind, e.g. `boost.transition` or `dsrem.throttle`.
    pub kind: String,
    /// Named field values, in emission order.
    pub fields: Vec<(String, EventValue)>,
}

impl EventRecord {
    /// Looks up a scalar field by name.
    #[must_use]
    pub fn f64_field(&self, name: &str) -> Option<f64> {
        self.fields
            .iter()
            .find(|(k, _)| k == name)
            .and_then(|(_, v)| v.as_f64())
    }

    /// Looks up a string field by name.
    #[must_use]
    pub fn str_field(&self, name: &str) -> Option<&str> {
        self.fields
            .iter()
            .find(|(k, _)| k == name)
            .and_then(|(_, v)| v.as_str())
    }

    /// Looks up a float-vector field by name.
    #[must_use]
    pub fn f64s_field(&self, name: &str) -> Option<&[f64]> {
        self.fields
            .iter()
            .find(|(k, _)| k == name)
            .and_then(|(_, v)| v.as_f64s())
    }

    /// Serializes to one compact JSONL line (no trailing newline).
    #[must_use]
    pub fn to_jsonl_line(&self) -> String {
        #[allow(clippy::cast_precision_loss)]
        let seq = Json::Arr(self.seq.iter().map(|&s| Json::Num(s as f64)).collect());
        let fields = Json::Obj(
            self.fields
                .iter()
                .map(|(k, v)| (k.clone(), v.to_json()))
                .collect(),
        );
        Json::Obj(vec![
            ("seq".to_string(), seq),
            ("kind".to_string(), Json::Str(self.kind.clone())),
            ("fields".to_string(), fields),
        ])
        .compact()
    }

    fn from_json(json: &Json) -> Result<Self, JsonError> {
        let mut r = ObjReader::new(json, "EventRecord")?;
        let raw_seq: Vec<f64> = r.req("seq")?;
        let kind: String = r.req("kind")?;
        let raw_fields: Json = r.req("fields")?;
        r.finish()?;
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        let seq = raw_seq.iter().map(|&s| s as u64).collect();
        let Json::Obj(entries) = &raw_fields else {
            return Err(JsonError::msg("event fields must be an object"));
        };
        let mut fields = Vec::with_capacity(entries.len());
        for (name, value) in entries {
            fields.push((
                name.clone(),
                EventValue::from_json(value).map_err(|e| e.in_field(name))?,
            ));
        }
        Ok(Self { seq, kind, fields })
    }
}

/// A drained, ordered stream of [`EventRecord`]s.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct EventStream {
    /// Events in deterministic submission order.
    pub events: Vec<EventRecord>,
}

impl EventStream {
    /// Whether the stream holds no events.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Serializes the stream as JSON Lines: a schema header followed by
    /// one compact object per event. The output contains nothing that
    /// varies with worker count or wall-clock time, so two runs of the
    /// same workload produce identical bytes.
    #[must_use]
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        #[allow(clippy::cast_precision_loss)]
        let header = Json::Obj(vec![
            ("schema".to_string(), Json::Str(EVENTS_SCHEMA.to_string())),
            ("events".to_string(), Json::Num(self.events.len() as f64)),
        ]);
        out.push_str(&header.compact());
        out.push('\n');
        for event in &self.events {
            out.push_str(&event.to_jsonl_line());
            out.push('\n');
        }
        out
    }

    /// Parses a JSONL events file produced by [`Self::to_jsonl`].
    ///
    /// # Errors
    /// Fails on an empty input, a missing or mismatched schema header,
    /// a malformed line, or an event-count mismatch.
    pub fn from_jsonl(text: &str) -> Result<Self, JsonError> {
        let mut lines = text.lines().filter(|l| !l.trim().is_empty());
        let header_line = lines
            .next()
            .ok_or_else(|| JsonError::msg("events file is empty (missing schema header)"))?;
        let header: Json = darksil_json::from_str(header_line)?;
        let mut r = ObjReader::new(&header, "events header")?;
        let schema: String = r.req("schema")?;
        let declared: f64 = r.req("events")?;
        r.finish()?;
        if schema != EVENTS_SCHEMA {
            return Err(JsonError::msg(format!(
                "unsupported events schema '{schema}' (expected '{EVENTS_SCHEMA}')"
            )));
        }
        let mut events = Vec::new();
        for line in lines {
            let json: Json = darksil_json::from_str(line)?;
            events.push(EventRecord::from_json(&json)?);
        }
        #[allow(clippy::cast_precision_loss, clippy::float_cmp)]
        let count_matches = declared == events.len() as f64;
        if !count_matches {
            return Err(JsonError::msg(format!(
                "events header declares {declared} events but the file holds {}",
                events.len()
            )));
        }
        Ok(Self { events })
    }

    /// Counts events per kind, sorted by kind name.
    #[must_use]
    pub fn kind_counts(&self) -> Vec<(String, usize)> {
        let mut counts: Vec<(String, usize)> = Vec::new();
        for event in &self.events {
            match counts.iter_mut().find(|(k, _)| *k == event.kind) {
                Some((_, n)) => *n += 1,
                None => counts.push((event.kind.clone(), 1)),
            }
        }
        counts.sort_by(|a, b| a.0.cmp(&b.0));
        counts
    }

    /// Events of one kind, in stream order.
    pub fn of_kind<'a>(&'a self, kind: &'a str) -> impl Iterator<Item = &'a EventRecord> {
        self.events.iter().filter(move |e| e.kind == kind)
    }

    /// Fraction of the boost-trace time spent below the top DVFS level
    /// reached, derived from `boost.transition` events. `None` when the
    /// stream has fewer than two transitions.
    ///
    /// Each policy run restarts its clock at zero, so a stream holding
    /// several runs (a pipeline recording, a multi-case fuzz batch) has
    /// `t_s` drop at every run boundary. Transitions are therefore split
    /// into monotone-time segments first; the result is the
    /// duration-weighted residency across segments, each judged against
    /// its own top level. On a single-run stream this matches the naive
    /// first-to-last derivation.
    #[must_use]
    pub fn throttle_residency(&self) -> Option<f64> {
        let transitions: Vec<&EventRecord> = self.of_kind("boost.transition").collect();
        if transitions.len() < 2 {
            return None;
        }
        // Split on clock resets: a drop in t_s starts a new segment.
        let mut segments: Vec<Vec<&EventRecord>> = Vec::new();
        let mut last_t = f64::NEG_INFINITY;
        for event in transitions {
            let Some(t) = event.f64_field("t_s") else {
                continue; // malformed transition: ignore, as before
            };
            if !t.is_finite() {
                return None;
            }
            if t < last_t || segments.is_empty() {
                segments.push(Vec::new());
            }
            if let Some(segment) = segments.last_mut() {
                segment.push(event);
            }
            last_t = t;
        }
        let mut total_span = 0.0;
        let mut throttled = 0.0;
        for segment in &segments {
            let top_ghz = segment
                .iter()
                .filter_map(|e| e.f64_field("to_ghz"))
                .fold(f64::NEG_INFINITY, f64::max);
            for pair in segment.windows(2) {
                let (Some(t0), Some(t1)) = (pair[0].f64_field("t_s"), pair[1].f64_field("t_s"))
                else {
                    continue;
                };
                total_span += t1 - t0;
                if pair[0].f64_field("to_ghz").is_some_and(|g| g < top_ghz) {
                    throttled += t1 - t0;
                }
            }
        }
        if total_span <= 0.0 {
            return None;
        }
        Some(throttled / total_span)
    }

    /// Seconds each core spent above the watermark threshold, derived
    /// from decimated `thermal.cores` samples (a core is charged for the
    /// interval following a sample where it was above). Cores with zero
    /// residency are omitted; the result is sorted by core index.
    #[must_use]
    pub fn time_above_threshold(&self) -> Vec<(usize, f64)> {
        let samples: Vec<&EventRecord> = self
            .of_kind("thermal.cores")
            .filter(|e| e.f64_field("threshold_c").is_some())
            .collect();
        let mut above: Vec<(usize, f64)> = Vec::new();
        for pair in samples.windows(2) {
            let (Some(t0), Some(t1)) = (pair[0].f64_field("t_s"), pair[1].f64_field("t_s")) else {
                continue;
            };
            let dt = t1 - t0;
            let (Some(threshold), Some(cores)) = (
                pair[0].f64_field("threshold_c"),
                pair[0].f64s_field("cores"),
            ) else {
                continue;
            };
            if !dt.is_finite() || dt <= 0.0 {
                continue;
            }
            for (core, &temp) in cores.iter().enumerate() {
                if temp > threshold {
                    match above.iter_mut().find(|(c, _)| *c == core) {
                        Some((_, total)) => *total += dt,
                        None => above.push((core, dt)),
                    }
                }
            }
        }
        above.sort_by_key(|&(core, _)| core);
        above
    }

    /// Renders the `darksil events summarize` table.
    #[must_use]
    pub fn render_summary(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("events: {} total\n", self.events.len()));
        out.push_str(&format!("{:<24} {:>8}\n", "kind", "count"));
        for (kind, count) in self.kind_counts() {
            out.push_str(&format!("{kind:<24} {count:>8}\n"));
        }
        if let Some(residency) = self.throttle_residency() {
            out.push_str(&format!(
                "throttle residency: {:.1}% of the boost trace below peak frequency\n",
                residency * 100.0
            ));
        }
        let above = self.time_above_threshold();
        if !above.is_empty() {
            out.push_str("time above threshold (per core, from decimated samples):\n");
            for (core, seconds) in above.iter().take(16) {
                out.push_str(&format!("  core {core:<4} {seconds:>10.3} s\n"));
            }
            if above.len() > 16 {
                out.push_str(&format!("  … and {} more cores\n", above.len() - 16));
            }
        }
        out
    }
}

/// `ToJson` renders the whole stream as one array (used in tests and by
/// callers that want the stream inside a larger JSON document; the
/// on-disk format is [`EventStream::to_jsonl`]).
impl ToJson for EventStream {
    fn to_json(&self) -> Json {
        Json::Arr(
            self.events
                .iter()
                .map(|e| {
                    #[allow(clippy::cast_precision_loss)]
                    let seq = Json::Arr(e.seq.iter().map(|&s| Json::Num(s as f64)).collect());
                    Json::Obj(vec![
                        ("seq".to_string(), seq),
                        ("kind".to_string(), Json::Str(e.kind.clone())),
                        (
                            "fields".to_string(),
                            Json::Obj(
                                e.fields
                                    .iter()
                                    .map(|(k, v)| (k.clone(), v.to_json()))
                                    .collect(),
                            ),
                        ),
                    ])
                })
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_stream() -> EventStream {
        EventStream {
            events: vec![
                EventRecord {
                    seq: vec![0],
                    kind: "tsp.budget".to_string(),
                    fields: vec![
                        ("active".to_string(), EventValue::U64(64)),
                        ("per_core_w".to_string(), EventValue::F64(1.75)),
                    ],
                },
                EventRecord {
                    seq: vec![1, 0, 0],
                    kind: "boost.transition".to_string(),
                    fields: vec![
                        ("t_s".to_string(), EventValue::F64(0.5)),
                        ("reason".to_string(), EventValue::Str("thermal".to_string())),
                        ("cooling".to_string(), EventValue::Bool(true)),
                    ],
                },
                EventRecord {
                    seq: vec![1, 1, 0],
                    kind: "thermal.cores".to_string(),
                    fields: vec![
                        ("t_s".to_string(), EventValue::F64(1.0)),
                        ("cores".to_string(), EventValue::F64s(vec![71.5, 82.25])),
                    ],
                },
            ],
        }
    }

    #[test]
    fn jsonl_round_trip_is_byte_stable() {
        let stream = sample_stream();
        let text = stream.to_jsonl();
        assert!(text.starts_with("{\"schema\":\"darksil-events-v1\""));
        let back = EventStream::from_jsonl(&text).expect("stream parses");
        assert_eq!(back.events.len(), 3);
        assert_eq!(back.events[1].str_field("reason"), Some("thermal"));
        assert_eq!(back.events[2].f64s_field("cores"), Some(&[71.5, 82.25][..]));
        // Re-serialization of the parsed stream reproduces the bytes.
        assert_eq!(back.to_jsonl(), text);
    }

    #[test]
    fn empty_input_is_rejected_with_a_clear_error() {
        let err = EventStream::from_jsonl("").expect_err("empty file must fail");
        assert!(err.to_string().contains("empty"), "{err}");
    }

    #[test]
    fn wrong_schema_is_rejected() {
        let err = EventStream::from_jsonl("{\"schema\":\"darksil-events-v9\",\"events\":0}\n")
            .expect_err("unknown schema must fail");
        assert!(err.to_string().contains("darksil-events-v9"), "{err}");
    }

    #[test]
    fn count_mismatch_is_rejected() {
        let text = "{\"schema\":\"darksil-events-v1\",\"events\":2}\n\
                    {\"seq\":[0],\"kind\":\"x\",\"fields\":{}}\n";
        let err = EventStream::from_jsonl(text).expect_err("count mismatch must fail");
        assert!(err.to_string().contains("declares"), "{err}");
    }

    #[test]
    fn kind_counts_are_sorted_by_name() {
        let stream = sample_stream();
        let counts = stream.kind_counts();
        assert_eq!(
            counts,
            vec![
                ("boost.transition".to_string(), 1),
                ("thermal.cores".to_string(), 1),
                ("tsp.budget".to_string(), 1),
            ]
        );
    }

    #[test]
    fn throttle_residency_charges_below_peak_intervals() {
        let transition = |t: f64, to: f64| EventRecord {
            seq: vec![t.to_bits() & 0xff],
            kind: "boost.transition".to_string(),
            fields: vec![
                ("t_s".to_string(), EventValue::F64(t)),
                ("to_ghz".to_string(), EventValue::F64(to)),
            ],
        };
        let stream = EventStream {
            // Peak is 3.0 GHz: throttled from t=1 (down to 2.4) until
            // t=3 (back at 3.0), over a 4-second trace = 50%.
            events: vec![
                transition(0.0, 3.0),
                transition(1.0, 2.4),
                transition(3.0, 3.0),
                transition(4.0, 3.0),
            ],
        };
        let residency = stream.throttle_residency().expect("residency");
        assert!((residency - 0.5).abs() < 1e-9, "residency = {residency}");
    }

    #[test]
    fn throttle_residency_survives_multi_run_streams() {
        let transition = |t: f64, to: f64| EventRecord {
            seq: vec![t.to_bits() & 0xff],
            kind: "boost.transition".to_string(),
            fields: vec![
                ("t_s".to_string(), EventValue::F64(t)),
                ("to_ghz".to_string(), EventValue::F64(to)),
            ],
        };
        // Two policy runs back to back: each restarts its clock at zero.
        // The naive first-to-last derivation paired the last transition
        // of run one with the first of run two, charged a *negative*
        // interval for it, and reported a residency outside [0, 1]
        // (found by `darksil events verify` on a pipeline recording).
        let stream = EventStream {
            events: vec![
                // Run one: throttled from t=1 to the end of the run.
                transition(0.0, 3.6),
                transition(1.0, 3.4),
                // Run two: clock reset, never throttled.
                transition(0.0, 3.6),
                transition(1.0, 3.6),
            ],
        };
        let residency = stream.throttle_residency().expect("residency");
        assert!(
            (0.0..=1.0).contains(&residency),
            "residency = {residency} outside [0, 1]"
        );
        // Segment one spends its whole measured window at the top level
        // (the 3.4 GHz dip has no following transition to close it),
        // segment two likewise: weighted residency is exactly zero.
        assert!(residency.abs() < 1e-9, "residency = {residency}");
    }

    #[test]
    fn throttle_residency_weights_segments_by_duration() {
        let transition = |t: f64, to: f64| EventRecord {
            seq: vec![(t * 10.0) as u64],
            kind: "boost.transition".to_string(),
            fields: vec![
                ("t_s".to_string(), EventValue::F64(t)),
                ("to_ghz".to_string(), EventValue::F64(to)),
            ],
        };
        let stream = EventStream {
            events: vec![
                // Run one (2 s): throttled for 1 s.
                transition(0.0, 3.0),
                transition(1.0, 2.4),
                transition(2.0, 3.0),
                // Run two (4 s): never throttled.
                transition(0.0, 3.0),
                transition(4.0, 3.0),
            ],
        };
        let residency = stream.throttle_residency().expect("residency");
        assert!(
            (residency - 1.0 / 6.0).abs() < 1e-9,
            "residency = {residency}"
        );
    }

    #[test]
    fn time_above_threshold_integrates_sample_intervals() {
        let sample = |t: f64, cores: Vec<f64>| EventRecord {
            seq: vec![(t * 10.0) as u64],
            kind: "thermal.cores".to_string(),
            fields: vec![
                ("t_s".to_string(), EventValue::F64(t)),
                ("cores".to_string(), EventValue::F64s(cores)),
                ("threshold_c".to_string(), EventValue::F64(80.0)),
            ],
        };
        let stream = EventStream {
            events: vec![
                sample(0.0, vec![85.0, 70.0]),
                sample(1.0, vec![85.0, 81.0]),
                sample(2.5, vec![60.0, 60.0]),
            ],
        };
        let above = stream.time_above_threshold();
        // Core 0: above at t=0 and t=1 → charged 1.0 + 1.5 s. Core 1:
        // above only at t=1 → charged 1.5 s.
        assert_eq!(above.len(), 2);
        assert!((above[0].1 - 2.5).abs() < 1e-9);
        assert!((above[1].1 - 1.5).abs() < 1e-9);
    }

    #[test]
    fn summary_mentions_counts_and_residency() {
        let stream = sample_stream();
        let text = stream.render_summary();
        assert!(text.contains("events: 3 total"));
        assert!(text.contains("boost.transition"));
    }
}
