//! Strict recursive-descent JSON parser with line/column diagnostics.

use crate::{Json, JsonError, MAX_DEPTH};

/// Parses a complete JSON document.
///
/// Strictness beyond RFC 8259's minimum: duplicate object keys,
/// content after the top-level value, and nesting deeper than
/// [`MAX_DEPTH`] are all rejected.
///
/// # Errors
///
/// Returns a [`JsonError`] whose message carries the 1-based line and
/// column of the first problem.
pub fn parse(text: &str) -> Result<Json, JsonError> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value(0)?;
    p.skip_ws();
    if p.pos < p.bytes.len() {
        return Err(p.err("unexpected content after the top-level value"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: impl Into<String>) -> JsonError {
        let mut line = 1_usize;
        let mut col = 1_usize;
        for &b in &self.bytes[..self.pos.min(self.bytes.len())] {
            if b == b'\n' {
                line += 1;
                col = 1;
            } else {
                col += 1;
            }
        }
        JsonError::msg(format!("line {line}, column {col}: {}", message.into()))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected `{}`", b as char)))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth >= MAX_DEPTH {
            return Err(self.err(format!("nesting deeper than {MAX_DEPTH} levels")));
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(self.err(format!("unexpected character `{}`", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn literal(&mut self, word: &'static str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected `{word}`")))
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut fields: Vec<(String, Json)> = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            if self.peek() != Some(b'"') {
                return Err(self.err("expected a string key"));
            }
            let key = self.string()?;
            if fields.iter().any(|(k, _)| *k == key) {
                return Err(self.err(format!("duplicate key `{key}`")));
            }
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        // Integer part: a single 0, or a nonzero digit followed by more.
        match self.peek() {
            Some(b'0') => self.pos += 1,
            Some(b'1'..=b'9') => {
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.pos += 1;
                }
            }
            _ => return Err(self.err("malformed number")),
        }
        if matches!(self.peek(), Some(b'0'..=b'9')) {
            return Err(self.err("numbers may not have leading zeros"));
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("expected digits after the decimal point"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("expected digits in the exponent"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let slice = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid UTF-8 in number"))?;
        let n: f64 = slice
            .parse()
            .map_err(|_| self.err(format!("unparseable number `{slice}`")))?;
        if !n.is_finite() {
            return Err(self.err(format!("number `{slice}` overflows an f64")));
        }
        Ok(Json::Num(n))
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000C}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let c = self.unicode_escape()?;
                            out.push(c);
                            continue;
                        }
                        _ => return Err(self.err("invalid escape sequence")),
                    }
                    self.pos += 1;
                }
                Some(b) if b < 0x20 => {
                    return Err(self.err("unescaped control character in string"));
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (already validated: input
                    // came from &str).
                    let rest = &self.bytes[self.pos..];
                    let len = utf8_len(rest[0]);
                    let chunk = std::str::from_utf8(&rest[..len.min(rest.len())])
                        .map_err(|_| self.err("invalid UTF-8 in string"))?;
                    out.push_str(chunk);
                    self.pos += chunk.len();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut n = 0_u32;
        for _ in 0..4 {
            let d = match self.peek() {
                Some(c @ b'0'..=b'9') => u32::from(c - b'0'),
                Some(c @ b'a'..=b'f') => u32::from(c - b'a') + 10,
                Some(c @ b'A'..=b'F') => u32::from(c - b'A') + 10,
                _ => return Err(self.err("expected 4 hex digits after \\u")),
            };
            n = n * 16 + d;
            self.pos += 1;
        }
        Ok(n)
    }

    fn unicode_escape(&mut self) -> Result<char, JsonError> {
        let first = self.hex4()?;
        if (0xD800..0xDC00).contains(&first) {
            // High surrogate: require a low surrogate right behind it.
            if self.peek() != Some(b'\\') {
                return Err(self.err("unpaired high surrogate"));
            }
            self.pos += 1;
            if self.peek() != Some(b'u') {
                return Err(self.err("unpaired high surrogate"));
            }
            self.pos += 1;
            let second = self.hex4()?;
            if !(0xDC00..0xE000).contains(&second) {
                return Err(self.err("invalid low surrogate"));
            }
            let code = 0x10000 + ((first - 0xD800) << 10) + (second - 0xDC00);
            char::from_u32(code).ok_or_else(|| self.err("invalid surrogate pair"))
        } else if (0xDC00..0xE000).contains(&first) {
            Err(self.err("unpaired low surrogate"))
        } else {
            char::from_u32(first).ok_or_else(|| self.err("invalid \\u escape"))
        }
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}
