//! Strict, dependency-free JSON for the darksil workspace.
//!
//! The simulation pipeline reads scenario files and writes figure
//! artefacts; both paths must survive hostile input (the robustness
//! requirement of the fault-tolerant tool flow). This crate provides:
//!
//! - [`Json`], a plain value tree;
//! - a **strict** recursive-descent parser ([`parse`]) that rejects
//!   duplicate keys, trailing content, over-deep nesting, and malformed
//!   escapes, reporting line/column positions;
//! - a pretty printer ([`Json::pretty`]) matching the 2-space style of
//!   the former `serde_json::to_string_pretty` output;
//! - [`ToJson`] / [`FromJson`] conversion traits with path-carrying
//!   [`JsonError`]s ("at `workload[2].threads`: …"), plus the
//!   [`ObjReader`] helper and [`impl_json!`] macro that make deriving
//!   them for structs a one-liner;
//! - [`to_string_pretty`] and [`from_str`] drop-in entry points.
//!
//! Numbers are IEEE-754 doubles. Non-finite values cannot be produced
//! by the parser and serialise as `null`; [`FromJson`] for `f64`
//! rejects `null`, so a NaN smuggled through serialisation is caught on
//! the way back in rather than silently propagated into a solver.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

mod parse;
mod write;

pub use parse::parse;

use std::fmt;

/// Maximum nesting depth the parser accepts before bailing out.
pub const MAX_DEPTH: usize = 128;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number; always finite when produced by the parser.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion-ordered, keys unique when parsed.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// A short name for the value's type, used in error messages.
    #[must_use]
    pub fn type_name(&self) -> &'static str {
        match self {
            Self::Null => "null",
            Self::Bool(_) => "bool",
            Self::Num(_) => "number",
            Self::Str(_) => "string",
            Self::Arr(_) => "array",
            Self::Obj(_) => "object",
        }
    }

    /// Looks up a key if this value is an object.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Self::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string value, when this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Self::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric value, when this is a number.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Self::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The boolean value, when this is a boolean.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Self::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Serialises with 2-space indentation and a trailing newline-free
    /// body, matching the style of the previous serialiser.
    #[must_use]
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        write::pretty_to(self, 0, &mut out);
        out
    }

    /// Serialises compactly (no whitespace).
    #[must_use]
    pub fn compact(&self) -> String {
        let mut out = String::new();
        write::compact_to(self, &mut out);
        out
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.compact())
    }
}

/// An error produced while parsing or converting JSON.
///
/// `path` names the offending location in field-access notation
/// (`workload[2].threads`); `file` is attached by loaders that know
/// which file they are reading so the message can name it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Field path to the offending value; empty at the root.
    pub path: String,
    /// Source file, when known.
    pub file: Option<String>,
    /// Human-readable description of the problem.
    pub message: String,
}

impl JsonError {
    /// A fresh error with no path context.
    #[must_use]
    pub fn msg(message: impl Into<String>) -> Self {
        Self {
            path: String::new(),
            file: None,
            message: message.into(),
        }
    }

    /// Prefixes a field name onto the path (outermost last applied).
    #[must_use]
    pub fn in_field(mut self, name: &str) -> Self {
        if self.path.is_empty() {
            self.path = name.to_string();
        } else if self.path.starts_with('[') {
            self.path = format!("{name}{}", self.path);
        } else {
            self.path = format!("{name}.{}", self.path);
        }
        self
    }

    /// Prefixes an array index onto the path.
    #[must_use]
    pub fn at_index(mut self, index: usize) -> Self {
        if self.path.is_empty() {
            self.path = format!("[{index}]");
        } else if self.path.starts_with('[') {
            self.path = format!("[{index}]{}", self.path);
        } else {
            self.path = format!("[{index}].{}", self.path);
        }
        self
    }

    /// Attaches the source file name.
    #[must_use]
    pub fn in_file(mut self, file: impl Into<String>) -> Self {
        self.file = Some(file.into());
        self
    }
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let Some(file) = &self.file {
            write!(f, "{file}: ")?;
        }
        if self.path.is_empty() {
            write!(f, "{}", self.message)
        } else {
            write!(f, "at `{}`: {}", self.path, self.message)
        }
    }
}

impl std::error::Error for JsonError {}

/// Conversion into a [`Json`] value.
pub trait ToJson {
    /// Builds the JSON representation.
    fn to_json(&self) -> Json;
}

/// Conversion out of a [`Json`] value.
pub trait FromJson: Sized {
    /// Reads the value, reporting a path-annotated error on mismatch.
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] when the value has the wrong shape.
    fn from_json(v: &Json) -> Result<Self, JsonError>;
}

/// Serialises any [`ToJson`] value with 2-space indentation.
pub fn to_string_pretty<T: ToJson + ?Sized>(value: &T) -> String {
    value.to_json().pretty()
}

/// Parses `text` and converts it to `T`.
///
/// # Errors
///
/// Returns a [`JsonError`] for syntax errors or shape mismatches.
pub fn from_str<T: FromJson>(text: &str) -> Result<T, JsonError> {
    T::from_json(&parse(text)?)
}

fn expected(want: &'static str, got: &Json) -> JsonError {
    JsonError::msg(format!("expected {want}, found {}", got.type_name()))
}

impl ToJson for Json {
    fn to_json(&self) -> Json {
        self.clone()
    }
}

impl FromJson for Json {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(v.clone())
    }
}

impl ToJson for bool {
    fn to_json(&self) -> Json {
        Json::Bool(*self)
    }
}

impl FromJson for bool {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        match v {
            Json::Bool(b) => Ok(*b),
            other => Err(expected("bool", other)),
        }
    }
}

impl ToJson for f64 {
    fn to_json(&self) -> Json {
        if self.is_finite() {
            Json::Num(*self)
        } else {
            Json::Null
        }
    }
}

impl FromJson for f64 {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        match v {
            Json::Num(n) if n.is_finite() => Ok(*n),
            Json::Num(_) | Json::Null => Err(JsonError::msg(
                "expected a finite number, found null/non-finite",
            )),
            other => Err(expected("number", other)),
        }
    }
}

macro_rules! int_json {
    ($($ty:ty),+) => {$(
        impl ToJson for $ty {
            #[allow(clippy::cast_precision_loss)]
            fn to_json(&self) -> Json {
                Json::Num(*self as f64)
            }
        }

        impl FromJson for $ty {
            #[allow(clippy::cast_precision_loss, clippy::cast_possible_truncation, clippy::cast_sign_loss)]
            fn from_json(v: &Json) -> Result<Self, JsonError> {
                let n = f64::from_json(v)?;
                if n.fract() != 0.0 || n.abs() > 9_007_199_254_740_992.0 {
                    return Err(JsonError::msg(format!(
                        "expected an integer, found {n}"
                    )));
                }
                let cast = n as $ty;
                if cast as f64 != n {
                    return Err(JsonError::msg(format!(
                        "integer {n} out of range for {}",
                        stringify!($ty)
                    )));
                }
                Ok(cast)
            }
        }
    )+};
}

int_json!(usize, u8, u16, u32, u64, i32, i64);

impl ToJson for String {
    fn to_json(&self) -> Json {
        Json::Str(self.clone())
    }
}

impl ToJson for str {
    fn to_json(&self) -> Json {
        Json::Str(self.to_string())
    }
}

impl FromJson for String {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        match v {
            Json::Str(s) => Ok(s.clone()),
            other => Err(expected("string", other)),
        }
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Json {
        match self {
            Some(v) => v.to_json(),
            None => Json::Null,
        }
    }
}

impl<T: FromJson> FromJson for Option<T> {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        match v {
            Json::Null => Ok(None),
            other => Ok(Some(T::from_json(other)?)),
        }
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson> ToJson for [T] {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: FromJson> FromJson for Vec<T> {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        match v {
            Json::Arr(items) => items
                .iter()
                .enumerate()
                .map(|(i, item)| T::from_json(item).map_err(|e| e.at_index(i)))
                .collect(),
            other => Err(expected("array", other)),
        }
    }
}

impl<T: ToJson + ?Sized> ToJson for &T {
    fn to_json(&self) -> Json {
        (*self).to_json()
    }
}

impl<A: ToJson, B: ToJson> ToJson for (A, B) {
    fn to_json(&self) -> Json {
        Json::Arr(vec![self.0.to_json(), self.1.to_json()])
    }
}

impl<A: FromJson, B: FromJson> FromJson for (A, B) {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        match v {
            Json::Arr(items) if items.len() == 2 => Ok((
                A::from_json(&items[0]).map_err(|e| e.at_index(0))?,
                B::from_json(&items[1]).map_err(|e| e.at_index(1))?,
            )),
            Json::Arr(items) => Err(JsonError::msg(format!(
                "expected a 2-element array, found {} elements",
                items.len()
            ))),
            other => Err(expected("array", other)),
        }
    }
}

impl<A: ToJson, B: ToJson, C: ToJson> ToJson for (A, B, C) {
    fn to_json(&self) -> Json {
        Json::Arr(vec![self.0.to_json(), self.1.to_json(), self.2.to_json()])
    }
}

impl<A: FromJson, B: FromJson, C: FromJson> FromJson for (A, B, C) {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        match v {
            Json::Arr(items) if items.len() == 3 => Ok((
                A::from_json(&items[0]).map_err(|e| e.at_index(0))?,
                B::from_json(&items[1]).map_err(|e| e.at_index(1))?,
                C::from_json(&items[2]).map_err(|e| e.at_index(2))?,
            )),
            Json::Arr(items) => Err(JsonError::msg(format!(
                "expected a 3-element array, found {} elements",
                items.len()
            ))),
            other => Err(expected("array", other)),
        }
    }
}

/// Strict field-by-field reader for JSON objects.
///
/// Tracks which keys were consumed so [`ObjReader::finish`] can reject
/// unknown fields — a typoed `"thread"` in a scenario file fails loudly
/// instead of silently falling back to a default.
pub struct ObjReader<'a> {
    what: &'static str,
    fields: &'a [(String, Json)],
    seen: Vec<bool>,
}

impl<'a> ObjReader<'a> {
    /// Starts reading `v`, which must be an object.
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] if `v` is not an object.
    pub fn new(v: &'a Json, what: &'static str) -> Result<Self, JsonError> {
        match v {
            Json::Obj(fields) => Ok(Self {
                what,
                fields,
                seen: vec![false; fields.len()],
            }),
            other => Err(JsonError::msg(format!(
                "expected {what} (an object), found {}",
                other.type_name()
            ))),
        }
    }

    fn take(&mut self, name: &str) -> Option<&'a Json> {
        let idx = self.fields.iter().position(|(k, _)| k == name)?;
        self.seen[idx] = true;
        Some(&self.fields[idx].1)
    }

    /// Reads a required field.
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] if the field is missing or malformed.
    pub fn req<T: FromJson>(&mut self, name: &str) -> Result<T, JsonError> {
        match self.take(name) {
            Some(v) => T::from_json(v).map_err(|e| e.in_field(name)),
            None => Err(JsonError::msg(format!(
                "missing required field `{name}` in {}",
                self.what
            ))),
        }
    }

    /// Reads an optional field; missing or `null` becomes `None`.
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] if the field is present but malformed.
    pub fn opt<T: FromJson>(&mut self, name: &str) -> Result<Option<T>, JsonError> {
        match self.take(name) {
            Some(Json::Null) | None => Ok(None),
            Some(v) => T::from_json(v).map(Some).map_err(|e| e.in_field(name)),
        }
    }

    /// Reads an optional field with a default.
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] if the field is present but malformed.
    pub fn opt_or<T: FromJson>(&mut self, name: &str, default: T) -> Result<T, JsonError> {
        Ok(self.opt(name)?.unwrap_or(default))
    }

    /// Rejects any field that was not consumed.
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] naming the first unknown field.
    pub fn finish(self) -> Result<(), JsonError> {
        for (idx, (key, _)) in self.fields.iter().enumerate() {
            if !self.seen[idx] {
                return Err(JsonError::msg(format!(
                    "unknown field `{key}` in {}",
                    self.what
                )));
            }
        }
        Ok(())
    }
}

/// Implements [`ToJson`] and [`FromJson`] for a named-field struct.
///
/// Required fields are listed first; fields after `opt` must be
/// `Option`-typed, default to `None` when missing, and are skipped on
/// output when `None`. Invoke inside the struct's own module so private
/// fields resolve.
///
/// ```
/// use darksil_json::{impl_json, from_str, to_string_pretty};
///
/// #[derive(Debug, PartialEq)]
/// struct Point {
///     x: f64,
///     y: f64,
///     label: Option<String>,
/// }
/// impl_json!(struct Point { x, y } opt { label });
///
/// # fn main() -> Result<(), darksil_json::JsonError> {
/// let p: Point = from_str(r#"{ "x": 1, "y": 2.5 }"#)?;
/// assert_eq!(p, Point { x: 1.0, y: 2.5, label: None });
/// let round: Point = from_str(&to_string_pretty(&p))?;
/// assert_eq!(round, p);
/// # Ok(())
/// # }
/// ```
#[macro_export]
macro_rules! impl_json {
    (struct $ty:ident { $($field:ident),+ $(,)? }) => {
        $crate::impl_json!(struct $ty { $($field),+ } opt {});
    };
    (struct $ty:ident { $($field:ident),+ $(,)? } opt { $($ofield:ident),* $(,)? }) => {
        impl $crate::ToJson for $ty {
            fn to_json(&self) -> $crate::Json {
                let mut fields: Vec<(String, $crate::Json)> = vec![
                    $( (stringify!($field).to_string(), $crate::ToJson::to_json(&self.$field)) ),+
                ];
                $(
                    if let Some(v) = &self.$ofield {
                        fields.push((stringify!($ofield).to_string(), $crate::ToJson::to_json(v)));
                    }
                )*
                $crate::Json::Obj(fields)
            }
        }

        impl $crate::FromJson for $ty {
            fn from_json(v: &$crate::Json) -> Result<Self, $crate::JsonError> {
                let mut r = $crate::ObjReader::new(v, stringify!($ty))?;
                let out = $ty {
                    $( $field: r.req(stringify!($field))?, )+
                    $( $ofield: r.opt(stringify!($ofield))?, )*
                };
                r.finish()?;
                Ok(out)
            }
        }
    };
}

/// Implements [`ToJson`] and [`FromJson`] for a fieldless enum encoded
/// as a string.
///
/// ```
/// use darksil_json::{impl_json_enum, from_str};
///
/// #[derive(Debug, PartialEq)]
/// enum Mode { Fast, Slow }
/// impl_json_enum!(Mode { Fast => "fast", Slow => "slow" });
///
/// # fn main() -> Result<(), darksil_json::JsonError> {
/// assert_eq!(from_str::<Mode>("\"fast\"")?, Mode::Fast);
/// assert!(from_str::<Mode>("\"warp\"").is_err());
/// # Ok(())
/// # }
/// ```
#[macro_export]
macro_rules! impl_json_enum {
    ($ty:ident { $($variant:ident => $name:literal),+ $(,)? }) => {
        impl $crate::ToJson for $ty {
            fn to_json(&self) -> $crate::Json {
                let name = match self {
                    $( Self::$variant => $name ),+
                };
                $crate::Json::Str(name.to_string())
            }
        }

        impl $crate::FromJson for $ty {
            fn from_json(v: &$crate::Json) -> Result<Self, $crate::JsonError> {
                let s = String::from_json(v)?;
                match s.as_str() {
                    $( $name => Ok(Self::$variant), )+
                    other => Err($crate::JsonError::msg(format!(
                        concat!(
                            "unknown ", stringify!($ty), " `{}` (expected one of: ",
                            $( $name, " " ),+, ")"
                        ),
                        other
                    ))),
                }
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_rejects_garbage() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "nul",
            "{\"a\":1,\"a\":2}",
            "1 2",
            "\"\\q\"",
            "01",
            "- 1",
            "[1] x",
            "NaN",
            "Infinity",
        ] {
            assert!(parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn parse_accepts_valid_documents() {
        let v = parse(r#"{ "a": [1, -2.5e3, "x\n\u00e9"], "b": null, "c": true }"#)
            .expect("valid document");
        assert_eq!(
            v.get("a").and_then(|a| match a {
                Json::Arr(items) => Some(items.len()),
                _ => None,
            }),
            Some(3)
        );
        assert_eq!(v.get("b"), Some(&Json::Null));
    }

    #[test]
    fn parse_reports_position() {
        let err = parse("{\n  \"a\": tru\n}").expect_err("bad literal");
        assert!(err.message.contains("line 2"), "{err}");
    }

    #[test]
    fn deep_nesting_is_rejected() {
        let deep = "[".repeat(MAX_DEPTH + 1) + &"]".repeat(MAX_DEPTH + 1);
        assert!(parse(&deep).is_err());
    }

    #[test]
    fn round_trip_pretty() {
        let text = r#"{ "name": "x", "values": [1, 2.5], "flag": false }"#;
        let v = parse(text).expect("valid");
        let again = parse(&v.pretty()).expect("round trip");
        assert_eq!(v, again);
    }

    #[test]
    fn integers_print_without_decimal_point() {
        assert_eq!(Json::Num(150.0).compact(), "150");
        assert_eq!(Json::Num(2.5).compact(), "2.5");
        assert_eq!(Json::Num(-0.125).compact(), "-0.125");
    }

    #[test]
    fn non_finite_serialises_as_null_and_fails_to_load() {
        assert_eq!(f64::NAN.to_json(), Json::Null);
        assert_eq!(f64::INFINITY.to_json(), Json::Null);
        assert!(f64::from_json(&Json::Null).is_err());
    }

    #[test]
    fn integer_conversion_is_strict() {
        assert!(usize::from_json(&Json::Num(2.5)).is_err());
        assert!(usize::from_json(&Json::Num(-1.0)).is_err());
        assert!(u8::from_json(&Json::Num(300.0)).is_err());
        assert_eq!(usize::from_json(&Json::Num(42.0)), Ok(42));
    }

    #[test]
    fn error_paths_compose() {
        let err = JsonError::msg("boom")
            .in_field("threads")
            .at_index(2)
            .in_field("workload");
        assert_eq!(err.path, "workload[2].threads");
        let shown = err.in_file("scenarios/x.json").to_string();
        assert!(shown.contains("scenarios/x.json"), "{shown}");
        assert!(shown.contains("workload[2].threads"), "{shown}");
    }

    #[test]
    fn obj_reader_rejects_unknown_fields() {
        let v = parse(r#"{ "x": 1, "typo": 2 }"#).expect("valid");
        let mut r = ObjReader::new(&v, "Point").expect("object");
        let _: f64 = r.req("x").expect("x present");
        let err = r.finish().expect_err("typo must be rejected");
        assert!(err.message.contains("typo"), "{err}");
    }

    #[derive(Debug, PartialEq)]
    struct Demo {
        a: usize,
        b: Option<String>,
    }
    impl_json!(struct Demo { a } opt { b });

    #[test]
    fn macro_round_trips_and_validates() {
        let d: Demo = from_str(r#"{ "a": 3 }"#).expect("valid");
        assert_eq!(d, Demo { a: 3, b: None });
        let d2: Demo = from_str(&to_string_pretty(&Demo {
            a: 9,
            b: Some("hi".into()),
        }))
        .expect("round trip");
        assert_eq!(d2.b.as_deref(), Some("hi"));
        assert!(from_str::<Demo>(r#"{ "a": 3, "zz": 0 }"#).is_err());
        assert!(from_str::<Demo>(r#"{ }"#).is_err());
    }

    #[test]
    fn tuples_and_vecs_round_trip() {
        let v: Vec<(usize, f64)> = vec![(1, 0.5), (2, 1.5)];
        let back: Vec<(usize, f64)> = from_str(&to_string_pretty(&v)).expect("round trip");
        assert_eq!(back, v);
        let t = (1.0_f64, 2.0_f64, 3.0_f64);
        let back: (f64, f64, f64) = from_str(&t.to_json().pretty()).expect("round trip");
        assert_eq!(back, t);
    }

    #[test]
    fn unicode_escapes_round_trip() {
        let v = parse(r#""\ud83d\ude00 caf\u00e9""#).expect("surrogate pair");
        assert_eq!(v, Json::Str("\u{1F600} café".to_string()));
        let again = parse(&v.pretty()).expect("round trip");
        assert_eq!(v, again);
    }
}
