//! Pretty and compact serialisation.

use crate::Json;

pub(crate) fn pretty_to(v: &Json, indent: usize, out: &mut String) {
    match v {
        Json::Arr(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                push_indent(indent + 1, out);
                pretty_to(item, indent + 1, out);
                if i + 1 < items.len() {
                    out.push(',');
                }
                out.push('\n');
            }
            push_indent(indent, out);
            out.push(']');
        }
        Json::Obj(fields) if !fields.is_empty() => {
            out.push_str("{\n");
            for (i, (key, value)) in fields.iter().enumerate() {
                push_indent(indent + 1, out);
                push_string(key, out);
                out.push_str(": ");
                pretty_to(value, indent + 1, out);
                if i + 1 < fields.len() {
                    out.push(',');
                }
                out.push('\n');
            }
            push_indent(indent, out);
            out.push('}');
        }
        other => compact_to(other, out),
    }
}

pub(crate) fn compact_to(v: &Json, out: &mut String) {
    match v {
        Json::Null => out.push_str("null"),
        Json::Bool(true) => out.push_str("true"),
        Json::Bool(false) => out.push_str("false"),
        Json::Num(n) => push_number(*n, out),
        Json::Str(s) => push_string(s, out),
        Json::Arr(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                compact_to(item, out);
            }
            out.push(']');
        }
        Json::Obj(fields) => {
            out.push('{');
            for (i, (key, value)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                push_string(key, out);
                out.push(':');
                compact_to(value, out);
            }
            out.push('}');
        }
    }
}

fn push_indent(indent: usize, out: &mut String) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

#[allow(clippy::cast_possible_truncation)]
fn push_number(n: f64, out: &mut String) {
    use std::fmt::Write as _;
    if !n.is_finite() {
        out.push_str("null");
    } else if n.fract() == 0.0 && n.abs() < 9_007_199_254_740_992.0 {
        let _ = write!(out, "{}", n as i64);
    } else {
        // `{:?}` is the shortest representation that round-trips.
        let _ = write!(out, "{n:?}");
    }
}

fn push_string(s: &str, out: &mut String) {
    use std::fmt::Write as _;
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{0008}' => out.push_str("\\b"),
            '\u{000C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}
