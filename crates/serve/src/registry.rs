//! In-memory job table with admission control.
//!
//! The registry is the single synchronisation point between connection
//! handlers (submitting and polling) and executor workers (running and
//! finishing). All admission decisions — per-tenant quotas, the global
//! in-flight cap, and cross-tenant dedup by content digest — happen
//! under one lock so a burst of concurrent submissions can never
//! over-admit. Durable state lives elsewhere (the journal and the
//! artefact spool); the registry is rebuilt from those on restart.

use std::collections::BTreeMap;
use std::sync::{Condvar, Mutex, MutexGuard};
use std::time::Duration;

use darksil_json::{Json, ToJson};
use darksil_robust::DarksilError;

/// Lifecycle of a submitted job as reported to clients.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobState {
    /// Admitted, waiting for a pool worker.
    Queued,
    /// A pool worker is executing it.
    Running,
    /// Finished with full-fidelity results.
    Done,
    /// Finished, but the final attempt ran in declared degraded mode.
    Degraded,
    /// Exhausted retries without a result.
    Failed,
}

impl JobState {
    /// Stable lower-case label used in JSON bodies.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Self::Queued => "queued",
            Self::Running => "running",
            Self::Done => "done",
            Self::Degraded => "degraded",
            Self::Failed => "failed",
        }
    }

    /// Whether the job still occupies an in-flight slot.
    #[must_use]
    pub fn is_inflight(self) -> bool {
        matches!(self, Self::Queued | Self::Running)
    }

    /// Whether an artefact exists for this job.
    #[must_use]
    pub fn has_artefact(self) -> bool {
        matches!(self, Self::Done | Self::Degraded)
    }
}

/// Everything the registry knows about one job.
#[derive(Debug, Clone)]
pub struct JobRecord {
    /// Content digest identifying the job (and its artefact).
    pub digest: String,
    /// Tenants that submitted this digest, in first-seen order.
    pub tenants: Vec<String>,
    /// Current lifecycle state.
    pub state: JobState,
    /// Terminal error message for failed jobs.
    pub error: Option<String>,
    /// Supervisor attempt timeline (one JSON record per attempt).
    pub attempts: Vec<Json>,
    /// Wall-clock seconds spent executing (0 until finished).
    pub seconds: f64,
    /// Cache outcome of the solve (`hit`, `miss`, `recovered`), once
    /// known.
    pub cache: Option<String>,
    /// Append-only lifecycle log consumed by `/v1/jobs/{digest}/watch`:
    /// one JSON object per transition — `{"state": …}` lines for
    /// queued/running/terminal, `{"kind": …}` lines relayed from the
    /// supervisor's attempt hook.
    pub transitions: Vec<Json>,
}

/// A `{"state": label}` watch-stream line.
fn state_line(label: &str) -> Json {
    Json::Obj(vec![("state".to_string(), Json::Str(label.to_string()))])
}

impl JobRecord {
    /// Client-facing JSON status document.
    #[must_use]
    pub fn status_json(&self) -> Json {
        let mut fields = vec![
            ("job".to_string(), Json::Str(self.digest.clone())),
            (
                "state".to_string(),
                Json::Str(self.state.label().to_string()),
            ),
            (
                "tenants".to_string(),
                Json::Arr(self.tenants.iter().cloned().map(Json::Str).collect()),
            ),
            ("attempts".to_string(), Json::Arr(self.attempts.clone())),
            ("seconds".to_string(), Json::Num(self.seconds)),
        ];
        if let Some(error) = &self.error {
            fields.push(("error".to_string(), Json::Str(error.clone())));
        }
        if let Some(cache) = &self.cache {
            fields.push(("cache".to_string(), Json::Str(cache.clone())));
        }
        if self.state.has_artefact() {
            fields.push((
                "artefact".to_string(),
                Json::Str(format!("/v1/artefacts/{}", self.digest)),
            ));
        }
        Json::Obj(fields)
    }
}

/// Why a submission was turned away.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Rejection {
    /// The tenant already has `quota` jobs in flight.
    TenantQuota {
        /// Tenant whose quota is exhausted.
        tenant: String,
        /// The configured per-tenant cap.
        quota: usize,
    },
    /// The daemon already has `max` jobs in flight across all tenants.
    GlobalInflight {
        /// The configured global cap.
        max: usize,
    },
}

impl Rejection {
    /// The typed error clients receive with the 429.
    #[must_use]
    pub fn to_error(&self) -> DarksilError {
        match self {
            Self::TenantQuota { tenant, quota } => DarksilError::capacity(format!(
                "tenant '{tenant}' already has {quota} jobs in flight (per-tenant quota)"
            )),
            Self::GlobalInflight { max } => DarksilError::capacity(format!(
                "daemon already has {max} jobs in flight (global --max-inflight cap)"
            )),
        }
    }
}

/// Outcome of an admission attempt.
#[derive(Debug)]
pub enum Admission {
    /// The digest is new; the caller must spool, journal, and enqueue
    /// it.
    New,
    /// The digest is already tracked; the submission was deduped onto
    /// the existing record (returned here).
    Duplicate(JobRecord),
}

/// Monotonic service counters surfaced via `/v1/stats`.
#[derive(Debug, Default, Clone)]
pub struct ServiceStats {
    /// Submissions admitted as new jobs.
    pub admitted: u64,
    /// Submissions deduped onto an existing digest.
    pub deduped: u64,
    /// Submissions rejected by a per-tenant quota.
    pub rejected_tenant: u64,
    /// Submissions rejected by the global in-flight cap.
    pub rejected_global: u64,
    /// Requests rejected before routing (malformed HTTP or JSON).
    pub bad_requests: u64,
}

/// One step of a watch long-poll (see [`Registry::watch`]).
#[derive(Debug)]
pub enum WatchStep {
    /// New transition lines since the caller's cursor. When `terminal`
    /// is set the job reached a final state and the stream should end
    /// after these lines.
    Advanced {
        /// The new lines, oldest first (may be empty on a terminal
        /// re-poll).
        lines: Vec<Json>,
        /// The caller's next cursor.
        cursor: usize,
        /// Whether the job is done/degraded/failed.
        terminal: bool,
    },
    /// No new transitions within the timeout — send a heartbeat.
    Idle,
    /// The digest is not tracked.
    Unknown,
}

struct Inner {
    jobs: BTreeMap<String, JobRecord>,
    stats: ServiceStats,
}

/// The shared job table. See the module docs for the locking story.
pub struct Registry {
    inner: Mutex<Inner>,
    changed: Condvar,
    max_inflight: usize,
    tenant_quota: usize,
}

impl Registry {
    /// An empty registry with the given admission limits (both clamped
    /// to at least 1).
    #[must_use]
    pub fn new(max_inflight: usize, tenant_quota: usize) -> Self {
        Self {
            inner: Mutex::new(Inner {
                jobs: BTreeMap::new(),
                stats: ServiceStats::default(),
            }),
            changed: Condvar::new(),
            max_inflight: max_inflight.max(1),
            tenant_quota: tenant_quota.max(1),
        }
    }

    fn lock(&self) -> MutexGuard<'_, Inner> {
        // A poisoned registry lock means a handler panicked while
        // holding it; the table is a cache over durable state, so
        // continuing with whatever it holds is safe.
        match self.inner.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Admits `digest` for `tenant`, enforcing dedup, the tenant
    /// quota, and the global in-flight cap atomically.
    ///
    /// # Errors
    ///
    /// A [`Rejection`] when a quota or the global cap is hit.
    pub fn admit(&self, digest: &str, tenant: &str) -> Result<Admission, Rejection> {
        let mut inner = self.lock();
        if let Some(record) = inner.jobs.get_mut(digest) {
            if !record.tenants.iter().any(|t| t == tenant) {
                record.tenants.push(tenant.to_string());
            }
            let snapshot = record.clone();
            inner.stats.deduped += 1;
            darksil_obs::counter("serve.admission.deduped", 1);
            return Ok(Admission::Duplicate(snapshot));
        }
        let inflight = inner
            .jobs
            .values()
            .filter(|j| j.state.is_inflight())
            .count();
        if inflight >= self.max_inflight {
            inner.stats.rejected_global += 1;
            darksil_obs::counter("serve.admission.rejected", 1);
            return Err(Rejection::GlobalInflight {
                max: self.max_inflight,
            });
        }
        let tenant_load = inner
            .jobs
            .values()
            .filter(|j| j.state.is_inflight() && j.tenants.iter().any(|t| t == tenant))
            .count();
        if tenant_load >= self.tenant_quota {
            inner.stats.rejected_tenant += 1;
            darksil_obs::counter("serve.admission.rejected", 1);
            return Err(Rejection::TenantQuota {
                tenant: tenant.to_string(),
                quota: self.tenant_quota,
            });
        }
        inner.jobs.insert(
            digest.to_string(),
            JobRecord {
                digest: digest.to_string(),
                tenants: vec![tenant.to_string()],
                state: JobState::Queued,
                error: None,
                attempts: Vec::new(),
                seconds: 0.0,
                cache: None,
                transitions: vec![state_line(JobState::Queued.label())],
            },
        );
        inner.stats.admitted += 1;
        darksil_obs::counter("serve.admission.admitted", 1);
        Ok(Admission::New)
    }

    /// Inserts a record directly, bypassing admission — used when
    /// rebuilding the table from the journal on restart.
    pub fn restore(&self, mut record: JobRecord) {
        if record.transitions.is_empty() {
            record.transitions.push(state_line(record.state.label()));
        }
        let mut inner = self.lock();
        inner.jobs.insert(record.digest.clone(), record);
    }

    /// Removes a job admitted moments ago whose spool/journal write
    /// failed, releasing its in-flight slot.
    pub fn evict(&self, digest: &str) {
        let mut inner = self.lock();
        inner.jobs.remove(digest);
        drop(inner);
        self.changed.notify_all();
    }

    /// Marks a job running.
    pub fn set_running(&self, digest: &str) {
        let mut inner = self.lock();
        if let Some(record) = inner.jobs.get_mut(digest) {
            record.state = JobState::Running;
            record
                .transitions
                .push(state_line(JobState::Running.label()));
        }
        drop(inner);
        self.changed.notify_all();
    }

    /// Appends one supervisor-side transition line (attempt started,
    /// backoff scheduled, …) to a job's watch log and wakes watchers.
    pub fn note_transition(&self, digest: &str, line: Json) {
        let mut inner = self.lock();
        if let Some(record) = inner.jobs.get_mut(digest) {
            record.transitions.push(line);
        }
        drop(inner);
        self.changed.notify_all();
    }

    /// Records a terminal state.
    pub fn finish(
        &self,
        digest: &str,
        state: JobState,
        error: Option<String>,
        attempts: Vec<Json>,
        seconds: f64,
        cache: Option<String>,
    ) {
        let mut inner = self.lock();
        if let Some(record) = inner.jobs.get_mut(digest) {
            record.state = state;
            let mut line = vec![("state".to_string(), Json::Str(state.label().to_string()))];
            if let Some(message) = &error {
                line.push(("error".to_string(), Json::Str(message.clone())));
            }
            record.transitions.push(Json::Obj(line));
            record.error = error;
            record.attempts = attempts;
            record.seconds = seconds;
            record.cache = cache;
        }
        drop(inner);
        self.changed.notify_all();
    }

    /// A snapshot of one job.
    #[must_use]
    pub fn get(&self, digest: &str) -> Option<JobRecord> {
        self.lock().jobs.get(digest).cloned()
    }

    /// Number of jobs currently queued or running.
    #[must_use]
    pub fn inflight(&self) -> usize {
        self.lock()
            .jobs
            .values()
            .filter(|j| j.state.is_inflight())
            .count()
    }

    /// Number of jobs admitted but not yet picked up by a worker.
    #[must_use]
    pub fn queued(&self) -> usize {
        self.lock()
            .jobs
            .values()
            .filter(|j| matches!(j.state, JobState::Queued))
            .count()
    }

    /// Counts a request rejected before routing.
    pub fn note_bad_request(&self) {
        self.lock().stats.bad_requests += 1;
        darksil_obs::counter("serve.http.bad_request", 1);
        darksil_obs::counter_add("darksil_serve_bad_requests_total", &[], 1);
    }

    /// Blocks until no job is queued or running, or until `grace`
    /// elapses. Returns whether the table drained.
    #[must_use]
    pub fn wait_idle(&self, grace: Duration) -> bool {
        let deadline = std::time::Instant::now() + grace;
        let mut inner = self.lock();
        loop {
            let inflight = inner
                .jobs
                .values()
                .filter(|j| j.state.is_inflight())
                .count();
            if inflight == 0 {
                return true;
            }
            let now = std::time::Instant::now();
            if now >= deadline {
                return false;
            }
            let (guard, _) = match self.changed.wait_timeout(inner, deadline - now) {
                Ok(pair) => pair,
                Err(poisoned) => poisoned.into_inner(),
            };
            inner = guard;
        }
    }

    /// Returns transition lines past `cursor`, blocking up to
    /// `timeout` for new ones. The caller streams the returned lines,
    /// advances its cursor, and stops once `terminal` is set; an
    /// [`WatchStep::Idle`] step is the heartbeat signal.
    #[must_use]
    pub fn watch(&self, digest: &str, cursor: usize, timeout: Duration) -> WatchStep {
        let deadline = std::time::Instant::now() + timeout;
        let mut inner = self.lock();
        loop {
            let Some(record) = inner.jobs.get(digest) else {
                return WatchStep::Unknown;
            };
            let terminal = !record.state.is_inflight();
            if record.transitions.len() > cursor || terminal {
                let lines = record
                    .transitions
                    .get(cursor..)
                    .unwrap_or_default()
                    .to_vec();
                return WatchStep::Advanced {
                    cursor: cursor + lines.len(),
                    lines,
                    terminal,
                };
            }
            let now = std::time::Instant::now();
            if now >= deadline {
                return WatchStep::Idle;
            }
            let (guard, _) = match self.changed.wait_timeout(inner, deadline - now) {
                Ok(pair) => pair,
                Err(poisoned) => poisoned.into_inner(),
            };
            inner = guard;
        }
    }

    /// The `/v1/stats` document: per-state job counts plus admission
    /// counters.
    #[must_use]
    pub fn stats_json(&self, draining: bool) -> Json {
        let inner = self.lock();
        let mut by_state: BTreeMap<&'static str, u64> = BTreeMap::new();
        for state in [
            JobState::Queued,
            JobState::Running,
            JobState::Done,
            JobState::Degraded,
            JobState::Failed,
        ] {
            by_state.insert(state.label(), 0);
        }
        for job in inner.jobs.values() {
            *by_state.entry(job.state.label()).or_insert(0) += 1;
        }
        let jobs = Json::Obj(
            by_state
                .into_iter()
                .map(|(label, count)| (label.to_string(), count.to_json()))
                .collect(),
        );
        let stats = &inner.stats;
        Json::Obj(vec![
            ("jobs".to_string(), jobs),
            ("admitted".to_string(), stats.admitted.to_json()),
            ("deduped".to_string(), stats.deduped.to_json()),
            (
                "rejected_tenant_quota".to_string(),
                stats.rejected_tenant.to_json(),
            ),
            (
                "rejected_inflight".to_string(),
                stats.rejected_global.to_json(),
            ),
            ("bad_requests".to_string(), stats.bad_requests.to_json()),
            ("draining".to_string(), Json::Bool(draining)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn admits_then_dedups_the_same_digest_across_tenants() {
        let registry = Registry::new(8, 4);
        assert!(matches!(registry.admit("d1", "alice"), Ok(Admission::New)));
        match registry.admit("d1", "bob") {
            Ok(Admission::Duplicate(record)) => {
                assert_eq!(record.tenants, vec!["alice", "bob"]);
                assert_eq!(record.state, JobState::Queued);
            }
            other => panic!("expected dedup, got {other:?}"),
        }
        assert_eq!(registry.inflight(), 1);
    }

    #[test]
    fn tenant_quota_and_global_cap_reject_with_429_material() {
        let registry = Registry::new(3, 2);
        assert!(registry.admit("a", "alice").is_ok());
        assert!(registry.admit("b", "alice").is_ok());
        match registry.admit("c", "alice") {
            Err(Rejection::TenantQuota { tenant, quota }) => {
                assert_eq!(tenant, "alice");
                assert_eq!(quota, 2);
            }
            other => panic!("expected tenant quota rejection, got {other:?}"),
        }
        assert!(registry.admit("c", "bob").is_ok());
        match registry.admit("d", "carol") {
            Err(Rejection::GlobalInflight { max }) => assert_eq!(max, 3),
            other => panic!("expected global rejection, got {other:?}"),
        }
        // Finishing a job frees both the tenant and global slots.
        registry.finish("a", JobState::Done, None, Vec::new(), 0.1, None);
        assert!(registry.admit("d", "carol").is_ok());
    }

    #[test]
    fn wait_idle_observes_finishes_from_another_thread() {
        let registry = std::sync::Arc::new(Registry::new(4, 4));
        assert!(registry.admit("slow", "alice").is_ok());
        let worker = {
            let registry = std::sync::Arc::clone(&registry);
            std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(30));
                registry.finish("slow", JobState::Done, None, Vec::new(), 0.0, None);
            })
        };
        assert!(registry.wait_idle(Duration::from_secs(5)));
        worker.join().expect("finisher thread");
        assert!(!registry.get("slow").expect("record").state.is_inflight());
    }

    #[test]
    fn watch_streams_transitions_and_ends_on_terminal() {
        let registry = std::sync::Arc::new(Registry::new(4, 4));
        assert!(registry.admit("w1", "alice").is_ok());
        // The queued line is visible immediately.
        let step = registry.watch("w1", 0, Duration::from_millis(10));
        let cursor = match step {
            WatchStep::Advanced {
                lines,
                cursor,
                terminal,
            } => {
                assert_eq!(lines.len(), 1);
                assert_eq!(
                    lines[0].get("state"),
                    Some(&Json::Str("queued".to_string()))
                );
                assert!(!terminal);
                cursor
            }
            other => panic!("expected queued line, got {other:?}"),
        };
        // Nothing new: the poll times out into a heartbeat.
        assert!(matches!(
            registry.watch("w1", cursor, Duration::from_millis(5)),
            WatchStep::Idle
        ));
        // A finisher on another thread wakes the blocked watcher.
        let worker = {
            let registry = std::sync::Arc::clone(&registry);
            std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(20));
                registry.set_running("w1");
                registry.note_transition(
                    "w1",
                    Json::Obj(vec![("kind".to_string(), Json::Str("attempt".to_string()))]),
                );
                registry.finish("w1", JobState::Done, None, Vec::new(), 0.1, None);
            })
        };
        let step = registry.watch("w1", cursor, Duration::from_secs(5));
        worker.join().expect("finisher thread");
        match step {
            WatchStep::Advanced {
                lines, terminal, ..
            } => {
                assert!(!lines.is_empty());
                assert_eq!(
                    lines[0].get("state"),
                    Some(&Json::Str("running".to_string()))
                );
                // Depending on timing we may see all three lines at
                // once; the final observed poll must be terminal once
                // the done line is included.
                if lines.len() == 3 {
                    assert!(terminal);
                    assert_eq!(lines[2].get("state"), Some(&Json::Str("done".to_string())));
                }
            }
            other => panic!("expected transitions, got {other:?}"),
        }
        // A caught-up watcher on a finished job sees an empty terminal
        // step, and unknown digests report as such.
        let total = registry.get("w1").expect("record").transitions.len();
        assert!(matches!(
            registry.watch("w1", total, Duration::from_millis(5)),
            WatchStep::Advanced { terminal: true, .. }
        ));
        assert!(matches!(
            registry.watch("nope", 0, Duration::from_millis(5)),
            WatchStep::Unknown
        ));
    }

    #[test]
    fn stats_document_counts_states_and_rejections() {
        let registry = Registry::new(1, 1);
        assert!(registry.admit("a", "alice").is_ok());
        assert!(registry.admit("b", "bob").is_err());
        registry.note_bad_request();
        let stats = registry.stats_json(true);
        let text = stats.pretty();
        assert!(text.contains("\"queued\": 1"), "{text}");
        assert!(text.contains("\"rejected_inflight\": 1"), "{text}");
        assert!(text.contains("\"bad_requests\": 1"), "{text}");
        assert!(text.contains("\"draining\": true"), "{text}");
    }
}
