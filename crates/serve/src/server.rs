//! The daemon: listener, connection handling, routing, job execution,
//! drain, and crash resume.
//!
//! # Request lifecycle
//!
//! ```text
//! POST /v1/jobs ── admission (dedup → quota → cap) ──► queued
//!                                                        │ pool worker
//!                                                        ▼
//!                                    running ──► done | degraded | failed
//! ```
//!
//! Every admitted job is journalled (`state/journal.json`, the
//! darksil-bench [`Journal`]) and its request spooled to
//! `state/jobs/<digest>.json` *before* the submission is acknowledged,
//! and its artefact is written to `state/artefacts/<digest>.json`
//! *before* the `done` transition — so a SIGKILL at any instant leaves
//! either a resumable journal entry or a completed artefact, never a
//! half-acknowledged job. On restart, [`Server::bind`] reloads the
//! journal, re-queues `pending`/`running` entries from their spool
//! files, and serves completed digests from disk; the content-addressed
//! [`ResultCache`] makes the re-run cost one cache hit when the solve
//! finished before the kill.
//!
//! # Backpressure
//!
//! Admission is a single atomic decision in the [`Registry`]: dedup by
//! content digest first (a duplicate never consumes a slot), then the
//! per-tenant quota, then the global in-flight cap. Rejections are
//! `429` with `Retry-After` and a typed `capacity` error — the daemon
//! never queues unboundedly. Connections themselves are capped, and
//! request reads are bounded both per-`read(2)` (socket timeout) and
//! end-to-end (a [`CancellationToken`] anchored at accept time), so a
//! slowloris peer costs one connection slot for one deadline, nothing
//! more.

use std::io::{ErrorKind, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use darksil_bench::{ArtefactState, Journal};
use darksil_engine::{BackoffPolicy, JobSpec, ResultCache, Supervisor, ThreadPool};
use darksil_json::{FromJson, Json, ObjReader, ToJson};
use darksil_robust::{CancellationToken, DarksilError, Fault, FaultPlan};
use darksil_scenario::{run_scenario, Scenario, ScenarioError};

use crate::http::{self, Parsed, Request, Response};
use crate::registry::{Admission, JobRecord, JobState, Registry};
use crate::{report, signal};

/// Salt for the job-identity digest and the result cache, so served
/// artefacts never collide with batch-mode cache entries.
pub const SERVE_CACHE_SALT: &str = "darksil-serve-v1";

/// Spool-file schema marker.
pub const SPOOL_SCHEMA: &str = "darksil-serve-job-v1";

/// Hard cap on concurrently open connections.
const MAX_CONNECTIONS: usize = 64;

/// Everything `darksil serve` configures.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Listen address, e.g. `127.0.0.1:8787`. Port 0 picks a free one.
    pub addr: String,
    /// Worker threads for the solve pool; 0 resolves via
    /// [`darksil_engine::default_jobs`].
    pub jobs: usize,
    /// Global cap on jobs queued or running.
    pub max_inflight: usize,
    /// Per-tenant cap on jobs queued or running.
    pub tenant_quota: usize,
    /// Durable state directory (journal, spool, artefacts, cache).
    pub state_dir: PathBuf,
    /// Per-`read(2)`/`write(2)` socket timeout.
    pub io_timeout: Duration,
    /// End-to-end budget for reading one request.
    pub request_deadline: Duration,
    /// Per-attempt wall-clock budget for a solve.
    pub job_deadline: Duration,
    /// How long a drain waits for in-flight jobs before checkpointing.
    pub drain_grace: Duration,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:8787".to_string(),
            jobs: 0,
            max_inflight: 64,
            tenant_quota: 8,
            state_dir: PathBuf::from("state"),
            io_timeout: Duration::from_millis(2000),
            request_deadline: Duration::from_secs(10),
            job_deadline: Duration::from_secs(30),
            drain_grace: Duration::from_secs(30),
        }
    }
}

/// What a completed drain reports.
#[derive(Debug, Clone, Copy)]
pub struct DrainSummary {
    /// Whether every in-flight job finished within the grace period.
    pub drained: bool,
    /// Journal entries still pending/running at exit (0 when drained).
    pub unfinished: usize,
}

/// Fault-injection spec accepted on submissions; maps onto the
/// darksil-robust [`FaultPlan`]. All fields optional; defaults inject
/// nothing.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultSpec {
    /// Seed for deterministic fault placement.
    pub seed: u64,
    /// Hang every non-degraded attempt until its deadline.
    pub hang: bool,
    /// Sleep this long at the start of every attempt.
    pub slow_ms: u64,
    /// Fail this many initial attempts with a transient error.
    pub transient: u32,
    /// Poison power telemetry with a NaN (a non-retryable failure).
    pub nan: bool,
}

impl Default for FaultSpec {
    fn default() -> Self {
        Self {
            seed: 1,
            hang: false,
            slow_ms: 0,
            transient: 0,
            nan: false,
        }
    }
}

impl FaultSpec {
    fn from_json(v: &Json) -> Result<Self, darksil_json::JsonError> {
        let mut reader = ObjReader::new(v, "faults")?;
        let spec = Self {
            seed: reader.opt_or("seed", 1)?,
            hang: reader.opt_or("hang", false)?,
            slow_ms: reader.opt_or("slow_ms", 0)?,
            transient: reader.opt_or("transient", 0)?,
            nan: reader.opt_or("nan", false)?,
        };
        reader.finish()?;
        Ok(spec)
    }

    /// Canonical JSON with every field explicit, so submissions that
    /// spell defaults differently produce the same job digest.
    fn canonical_json(&self) -> Json {
        Json::Obj(vec![
            ("seed".to_string(), self.seed.to_json()),
            ("hang".to_string(), Json::Bool(self.hang)),
            ("slow_ms".to_string(), self.slow_ms.to_json()),
            ("transient".to_string(), self.transient.to_json()),
            ("nan".to_string(), Json::Bool(self.nan)),
        ])
    }

    fn plan(&self) -> FaultPlan {
        let mut plan = FaultPlan::new(self.seed);
        if self.slow_ms > 0 {
            plan = plan.with(Fault::SlowJob {
                millis: self.slow_ms,
            });
        }
        if self.transient > 0 {
            plan = plan.with(Fault::TransientThenSucceed {
                failures: self.transient,
            });
        }
        if self.hang {
            plan = plan.with(Fault::Hang);
        }
        if self.nan {
            plan = plan.with(Fault::PowerNan { period: 1 });
        }
        plan
    }
}

/// The durable request record under `state/jobs/<digest>.json`.
#[derive(Debug, Clone)]
struct SpoolJob {
    digest: String,
    tenants: Vec<String>,
    scenario: Scenario,
    faults: FaultSpec,
}

impl SpoolJob {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("schema".to_string(), Json::Str(SPOOL_SCHEMA.to_string())),
            ("digest".to_string(), Json::Str(self.digest.clone())),
            (
                "tenants".to_string(),
                Json::Arr(self.tenants.iter().cloned().map(Json::Str).collect()),
            ),
            ("scenario".to_string(), self.scenario.to_json()),
            ("faults".to_string(), self.faults.canonical_json()),
        ])
    }

    fn from_json(v: &Json) -> Result<Self, DarksilError> {
        let bad = |msg: String| DarksilError::config(msg).context("spool file");
        let schema = v.get("schema").and_then(Json::as_str);
        if schema != Some(SPOOL_SCHEMA) {
            return Err(bad(format!(
                "unexpected spool schema {:?}",
                schema.unwrap_or("<missing>")
            )));
        }
        let digest = v
            .get("digest")
            .and_then(Json::as_str)
            .ok_or_else(|| bad("missing digest".to_string()))?
            .to_string();
        let tenants = match v.get("tenants") {
            Some(Json::Arr(items)) => items
                .iter()
                .filter_map(Json::as_str)
                .map(ToString::to_string)
                .collect(),
            _ => Vec::new(),
        };
        let scenario_json = v
            .get("scenario")
            .ok_or_else(|| bad("missing scenario".to_string()))?;
        let scenario = Scenario::from_json(scenario_json).map_err(|e| bad(format!("{e}")))?;
        let faults = match v.get("faults") {
            Some(value) => FaultSpec::from_json(value).map_err(|e| bad(format!("{e}")))?,
            None => FaultSpec::default(),
        };
        Ok(Self {
            digest,
            tenants,
            scenario,
            faults,
        })
    }
}

struct ServerState {
    config: ServeConfig,
    registry: Registry,
    journal: Journal,
    cache: ResultCache,
    supervisor: Supervisor,
    /// `None` after drain has claimed the pool (to drop or abandon it).
    pool: Mutex<Option<ThreadPool>>,
    draining: AtomicBool,
    connections: AtomicUsize,
}

impl ServerState {
    fn spool_path(&self, digest: &str) -> PathBuf {
        self.config
            .state_dir
            .join("jobs")
            .join(format!("{digest}.json"))
    }

    fn artefact_path(&self, digest: &str) -> PathBuf {
        self.config
            .state_dir
            .join("artefacts")
            .join(format!("{digest}.json"))
    }

    fn is_draining(&self) -> bool {
        self.draining.load(Ordering::SeqCst) || signal::termination_requested()
    }
}

/// A bound, resumed, but not yet accepting daemon. [`Server::run`]
/// drives the accept loop until drain.
pub struct Server {
    state: Arc<ServerState>,
    listener: TcpListener,
}

fn io_error(what: &str, error: &std::io::Error) -> DarksilError {
    DarksilError::io(format!("{what}: {error}"))
}

fn atomic_write(path: &std::path::Path, bytes: &[u8]) -> Result<(), DarksilError> {
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)
            .map_err(|e| io_error(&format!("cannot create {}", parent.display()), &e))?;
    }
    let tmp = path.with_extension("json.tmp");
    std::fs::write(&tmp, bytes)
        .map_err(|e| io_error(&format!("cannot write {}", tmp.display()), &e))?;
    std::fs::rename(&tmp, path)
        .map_err(|e| io_error(&format!("cannot commit {}", path.display()), &e))?;
    Ok(())
}

fn journal_fingerprint() -> Json {
    Json::Obj(vec![
        (
            "service".to_string(),
            Json::Str("darksil-serve".to_string()),
        ),
        ("schema".to_string(), Json::Num(1.0)),
    ])
}

impl Server {
    /// Binds the listener, opens (or resumes) the durable state, and
    /// re-queues unfinished jobs from a previous incarnation.
    ///
    /// # Errors
    ///
    /// A [`DarksilError`] when the address cannot be bound, the state
    /// directory is unusable, or an existing journal belongs to a
    /// different service.
    pub fn bind(config: ServeConfig) -> Result<Self, DarksilError> {
        signal::install();
        let state_dir = &config.state_dir;
        for sub in ["jobs", "artefacts"] {
            let dir = state_dir.join(sub);
            std::fs::create_dir_all(&dir)
                .map_err(|e| io_error(&format!("cannot create {}", dir.display()), &e))?;
        }
        let journal_path = state_dir.join("journal.json");
        let journal = if journal_path.exists() {
            let journal = Journal::load(&journal_path)?;
            if journal.config() != &journal_fingerprint() {
                return Err(DarksilError::config(format!(
                    "journal {} belongs to a different service configuration",
                    journal_path.display()
                )));
            }
            journal
        } else {
            let journal = Journal::create(&journal_path, journal_fingerprint(), &[]);
            journal.save()?;
            journal
        };
        let cache = ResultCache::open(state_dir.join(".cache"), SERVE_CACHE_SALT);
        let workers = if config.jobs == 0 {
            darksil_engine::default_jobs()
        } else {
            config.jobs
        };
        let pool = ThreadPool::new(workers)?;
        let listener = TcpListener::bind(&config.addr)
            .map_err(|e| io_error(&format!("cannot bind {}", config.addr), &e))?;
        let registry = Registry::new(config.max_inflight, config.tenant_quota);
        let state = Arc::new(ServerState {
            config,
            registry,
            journal,
            cache,
            supervisor: Supervisor::new(BackoffPolicy::default(), 4),
            pool: Mutex::new(Some(pool)),
            draining: AtomicBool::new(false),
            connections: AtomicUsize::new(0),
        });
        let resumed = resume(&state)?;
        if resumed > 0 {
            darksil_obs::counter("serve.resume.requeued", resumed as u64);
        }
        Ok(Self { state, listener })
    }

    /// The bound address (useful with port 0).
    ///
    /// # Errors
    ///
    /// A [`DarksilError`] of class `io` when the socket is gone.
    pub fn local_addr(&self) -> Result<SocketAddr, DarksilError> {
        self.listener
            .local_addr()
            .map_err(|e| io_error("cannot read local address", &e))
    }

    /// Accepts connections until SIGTERM/SIGINT or `POST /v1/drain`,
    /// then drains: stop accepting, wait up to the grace period for
    /// in-flight jobs, checkpoint the rest in the journal.
    ///
    /// # Errors
    ///
    /// A [`DarksilError`] of class `io` when the final journal
    /// snapshot cannot be written.
    pub fn run(self) -> Result<DrainSummary, DarksilError> {
        let Self { state, listener } = self;
        listener
            .set_nonblocking(true)
            .map_err(|e| io_error("cannot configure listener", &e))?;
        while !state.is_draining() {
            match listener.accept() {
                Ok((stream, _peer)) => dispatch(&state, stream),
                Err(e) if e.kind() == ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(20));
                }
                Err(_) => std::thread::sleep(Duration::from_millis(20)),
            }
        }
        drop(listener);

        let drained = state.registry.wait_idle(state.config.drain_grace);
        // Give in-flight connection handlers a moment to write their
        // final bytes before we tear down.
        let connection_deadline = Instant::now() + Duration::from_secs(2);
        while state.connections.load(Ordering::SeqCst) > 0 && Instant::now() < connection_deadline {
            std::thread::sleep(Duration::from_millis(10));
        }
        let pool = match state.pool.lock() {
            Ok(mut slot) => slot.take(),
            Err(poisoned) => poisoned.into_inner().take(),
        };
        if drained {
            // Idle pool: dropping it joins the workers cleanly.
            drop(pool);
        } else if let Some(pool) = pool {
            // Jobs are still queued or running. Dropping the pool
            // would block until they all finish, defeating the grace
            // period — abandon it instead; the journal has the
            // survivors as pending/running, and the next incarnation
            // re-queues them.
            std::mem::forget(pool);
        }
        state.journal.save()?;
        let unfinished = state.journal.counts().unfinished;
        Ok(DrainSummary {
            drained,
            unfinished,
        })
    }
}

/// Rebuilds the registry from the journal and re-queues unfinished
/// jobs. Completed and failed entries are restored as terminal
/// records; `running` entries (interrupted by a crash) are reset to
/// `pending` and re-executed from their spool files.
fn resume(state: &Arc<ServerState>) -> Result<usize, DarksilError> {
    let mut requeued = 0;
    for entry in state.journal.entries() {
        let digest = entry.name.clone();
        let tenants = read_spool(state, &digest)
            .map(|job| job.tenants)
            .unwrap_or_default();
        match entry.state {
            ArtefactState::Done | ArtefactState::Degraded => {
                state.registry.restore(JobRecord {
                    digest,
                    tenants,
                    state: if entry.state == ArtefactState::Degraded {
                        JobState::Degraded
                    } else {
                        JobState::Done
                    },
                    error: None,
                    attempts: entry.attempts.clone(),
                    seconds: entry.seconds,
                    cache: None,
                });
            }
            ArtefactState::Failed => {
                state.registry.restore(JobRecord {
                    digest,
                    tenants,
                    state: JobState::Failed,
                    error: entry.error.clone(),
                    attempts: entry.attempts.clone(),
                    seconds: entry.seconds,
                    cache: None,
                });
            }
            ArtefactState::Pending | ArtefactState::Running => {
                state.journal.transition(&digest, ArtefactState::Pending)?;
                state.registry.restore(JobRecord {
                    digest: digest.clone(),
                    tenants,
                    state: JobState::Queued,
                    error: None,
                    attempts: Vec::new(),
                    seconds: 0.0,
                    cache: None,
                });
                enqueue(state, &digest);
                requeued += 1;
            }
        }
    }
    Ok(requeued)
}

fn read_spool(state: &ServerState, digest: &str) -> Result<SpoolJob, DarksilError> {
    let path = state.spool_path(digest);
    let text = std::fs::read_to_string(&path)
        .map_err(|e| io_error(&format!("cannot read spool {}", path.display()), &e))?;
    let doc = darksil_json::parse(&text)
        .map_err(|e| DarksilError::config(format!("spool {}: {e}", path.display())))?;
    SpoolJob::from_json(&doc)
}

/// Hands a job to the solve pool (fire-and-forget; results land in
/// the registry and journal).
fn enqueue(state: &Arc<ServerState>, digest: &str) {
    let worker_state = Arc::clone(state);
    let worker_digest = digest.to_string();
    let pool = match state.pool.lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    };
    if let Some(pool) = pool.as_ref() {
        drop(pool.submit(move || {
            run_job(&worker_state, &worker_digest);
            Ok(())
        }));
    }
}

/// Executes one journalled job end-to-end on a pool worker.
fn run_job(state: &Arc<ServerState>, digest: &str) {
    let _span = darksil_obs::span("serve.job");
    state.registry.set_running(digest);
    if state
        .journal
        .transition(digest, ArtefactState::Running)
        .is_err()
    {
        // The journal directory is gone; still run the job so the
        // client gets an answer — resume safety is already lost.
        darksil_obs::counter("serve.journal.write_failed", 1);
    }
    let started = Instant::now();
    let job = match read_spool(state, digest) {
        Ok(job) => job,
        Err(error) => {
            finish_job(state, digest, Err(error), Vec::new(), started, false, None);
            return;
        }
    };
    let plan = job.faults.plan();
    let spec = JobSpec {
        name: format!("serve:{digest}"),
        class: "serve.scenario".to_string(),
        deadline: Some(state.config.job_deadline),
        max_retries: 2,
        degrade_on_exhaustion: true,
    };
    let scenario = job.scenario;
    let scenario_json = scenario.to_json();
    let nan = job.faults.nan;
    let cache_label: Mutex<Option<&'static str>> = Mutex::new(None);
    let supervised = state.supervisor.run(&spec, || {
        plan.inject_job_faults("serve scenario job")?;
        if nan {
            let mut probe = [1.0_f64; 4];
            plan.corrupt_power(1, &mut probe);
            if probe.iter().any(|p| !p.is_finite()) {
                return Err(DarksilError::non_finite("injected NaN in power telemetry"));
            }
        }
        // Degraded attempts may relax solver behaviour, so they must
        // not share cache entries with full-fidelity solves.
        let artefact_kind = if darksil_robust::is_degraded() {
            "scenario.degraded"
        } else {
            "scenario"
        };
        let key = state.cache.key(artefact_kind, &scenario_json);
        let (payload, outcome) = state.cache.get_or_compute(&key, || {
            run_scenario(&scenario)
                .map(|report| report.to_json())
                .map_err(|e| scenario_error(&e))
        })?;
        if let Ok(mut slot) = cache_label.lock() {
            *slot = Some(outcome.label());
        }
        Ok(payload)
    });
    let attempts: Vec<Json> = supervised.attempts.iter().map(ToJson::to_json).collect();
    let label = cache_label
        .lock()
        .ok()
        .and_then(|slot| *slot)
        .map(ToString::to_string);
    finish_job(
        state,
        digest,
        supervised.result,
        attempts,
        started,
        supervised.degraded,
        label,
    );
}

fn finish_job(
    state: &ServerState,
    digest: &str,
    result: Result<Json, DarksilError>,
    attempts: Vec<Json>,
    started: Instant,
    degraded: bool,
    cache: Option<String>,
) {
    let seconds = started.elapsed().as_secs_f64();
    let outcome = result.and_then(|payload| {
        let mut bytes = payload.pretty().into_bytes();
        bytes.push(b'\n');
        // The artefact reaches disk before the journal marks the job
        // complete: a crash between the two re-runs the job, which is
        // idempotent; the reverse order could acknowledge an artefact
        // that does not exist.
        atomic_write(&state.artefact_path(digest), &bytes)?;
        Ok(())
    });
    match outcome {
        Ok(()) => {
            let (job_state, artefact_state) = if degraded {
                darksil_obs::counter("serve.job.degraded", 1);
                (JobState::Degraded, ArtefactState::Degraded)
            } else {
                darksil_obs::counter("serve.job.done", 1);
                (JobState::Done, ArtefactState::Done)
            };
            if state
                .journal
                .record_finished(digest, artefact_state, None, attempts.clone(), seconds)
                .is_err()
            {
                darksil_obs::counter("serve.journal.write_failed", 1);
            }
            state
                .registry
                .finish(digest, job_state, None, attempts, seconds, cache);
        }
        Err(error) => {
            darksil_obs::counter("serve.job.failed", 1);
            let message = error.to_string();
            if state
                .journal
                .record_finished(
                    digest,
                    ArtefactState::Failed,
                    Some(message.clone()),
                    attempts.clone(),
                    seconds,
                )
                .is_err()
            {
                darksil_obs::counter("serve.journal.write_failed", 1);
            }
            state.registry.finish(
                digest,
                JobState::Failed,
                Some(message),
                attempts,
                seconds,
                cache,
            );
        }
    }
}

fn scenario_error(error: &ScenarioError) -> DarksilError {
    match error {
        ScenarioError::Parse(e) => DarksilError::config(format!("scenario: {e}")),
        ScenarioError::Invalid(msg) => DarksilError::config(format!("scenario: {msg}")),
        ScenarioError::Run(e) => DarksilError::solver(format!("scenario run failed: {e}")),
    }
}

/// Decrements the connection counter even if a handler panics.
struct ConnectionGuard<'a>(&'a AtomicUsize);

impl Drop for ConnectionGuard<'_> {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::SeqCst);
    }
}

fn dispatch(state: &Arc<ServerState>, stream: TcpStream) {
    let active = state.connections.fetch_add(1, Ordering::SeqCst);
    if active >= MAX_CONNECTIONS {
        state.connections.fetch_sub(1, Ordering::SeqCst);
        let error = DarksilError::capacity("connection limit reached");
        respond(
            &stream,
            &Response::error(503, &error).with_header("retry-after", "1"),
        );
        return;
    }
    let handler_state = Arc::clone(state);
    std::thread::spawn(move || {
        let _guard = ConnectionGuard(&handler_state.connections);
        handle_connection(&handler_state, &stream);
    });
}

fn respond(mut stream: &TcpStream, response: &Response) {
    let bytes = response.to_bytes();
    let _ = stream.write_all(&bytes);
    let _ = stream.flush();
    let _ = stream.shutdown(Shutdown::Both);
}

fn handle_connection(state: &Arc<ServerState>, stream: &TcpStream) {
    let _ = stream.set_read_timeout(Some(state.config.io_timeout));
    let _ = stream.set_write_timeout(Some(state.config.io_timeout));
    // One wall-clock budget for the whole request read, no matter how
    // many partial reads it takes — a drip-feeding client cannot renew
    // its welcome.
    let token = CancellationToken::with_deadline_at(Instant::now() + state.config.request_deadline);
    let mut buf: Vec<u8> = Vec::new();
    let mut chunk = [0_u8; 8192];
    let mut reader = stream;
    let request = loop {
        match http::parse_request(&buf) {
            Ok(Parsed::Complete(request, _consumed)) => break request,
            Ok(Parsed::Incomplete) => {}
            Err(error) => {
                state.registry.note_bad_request();
                respond(stream, &Response::from_http_error(&error));
                return;
            }
        }
        if token.is_cancelled() {
            state.registry.note_bad_request();
            let error = DarksilError::deadline("request read deadline exceeded");
            respond(stream, &Response::error(408, &error));
            return;
        }
        match reader.read(&mut chunk) {
            Ok(0) => {
                if !buf.is_empty() {
                    state.registry.note_bad_request();
                    let error = DarksilError::config("connection closed mid-request");
                    respond(stream, &Response::error(400, &error));
                }
                let _ = stream.shutdown(Shutdown::Both);
                return;
            }
            Ok(n) => buf.extend_from_slice(chunk.get(..n).unwrap_or_default()),
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                // Per-read timeout; the loop re-checks the end-to-end
                // deadline above.
            }
            Err(_) => return,
        }
    };
    let response = route(state, &request);
    respond(stream, &response);
}

fn route(state: &Arc<ServerState>, request: &Request) -> Response {
    let _span = darksil_obs::span("serve.http.request");
    darksil_obs::counter("serve.http.requests", 1);
    let path = request.path().to_string();
    match (request.method.as_str(), path.as_str()) {
        ("GET", "/healthz") => Response::json(
            200,
            &Json::Obj(vec![
                ("status".to_string(), Json::Str("ok".to_string())),
                ("inflight".to_string(), state.registry.inflight().to_json()),
            ]),
        ),
        ("GET", "/v1/stats") => {
            let mut stats = state.registry.stats_json(state.is_draining());
            // Engine jobs share the process-global factorisation cache;
            // surface its health next to the admission counters.
            if let Json::Obj(pairs) = &mut stats {
                let fc = darksil_numerics::factor_cache_stats();
                pairs.push((
                    "factor_cache".to_string(),
                    Json::Obj(vec![
                        ("hits".to_string(), fc.hits.to_json()),
                        ("misses".to_string(), fc.misses.to_json()),
                        ("entries".to_string(), (fc.entries as u64).to_json()),
                    ]),
                ));
            }
            Response::json(200, &stats)
        }
        ("POST", "/v1/jobs") => handle_submit(state, request),
        ("POST", "/v1/drain") => {
            state.draining.store(true, Ordering::SeqCst);
            Response::json(
                202,
                &Json::Obj(vec![(
                    "status".to_string(),
                    Json::Str("draining".to_string()),
                )]),
            )
        }
        // Before the GET catch-all: a known fixed path with the wrong
        // method is 405, not 404 (correct methods matched above).
        (_, "/healthz" | "/v1/stats" | "/v1/jobs" | "/v1/drain") => {
            let error = DarksilError::unsupported(format!(
                "method {} not allowed on {path}",
                request.method
            ));
            Response::error(405, &error)
        }
        ("GET", p) => {
            if let Some(rest) = p.strip_prefix("/v1/jobs/") {
                if let Some(digest) = rest.strip_suffix("/report") {
                    handle_report(state, digest)
                } else {
                    handle_status(state, rest)
                }
            } else if let Some(digest) = p.strip_prefix("/v1/artefacts/") {
                handle_artefact(state, digest)
            } else {
                not_found(p)
            }
        }
        (_, p) => not_found(p),
    }
}

fn not_found(path: &str) -> Response {
    let error = DarksilError::unsupported(format!("no such resource: {path}"));
    Response::error(404, &error)
}

fn valid_digest(digest: &str) -> bool {
    digest.len() == 16 && digest.bytes().all(|b| b.is_ascii_hexdigit())
}

fn valid_tenant(tenant: &str) -> bool {
    !tenant.is_empty()
        && tenant.len() <= 64
        && tenant
            .bytes()
            .all(|b| b.is_ascii_alphanumeric() || b"-_.@".contains(&b))
}

fn handle_submit(state: &Arc<ServerState>, request: &Request) -> Response {
    if state.is_draining() {
        let error = DarksilError::capacity("daemon is draining; not accepting submissions");
        return Response::error(503, &error).with_header("retry-after", "5");
    }
    let bad = |message: String| {
        state.registry.note_bad_request();
        Response::error(400, &DarksilError::config(message).context("submission"))
    };
    let text = match std::str::from_utf8(&request.body) {
        Ok(text) => text,
        Err(_) => return bad("request body is not valid UTF-8".to_string()),
    };
    let doc = match darksil_json::parse(text) {
        Ok(doc) => doc,
        Err(e) => return bad(format!("request body is not valid JSON: {e}")),
    };
    let parsed = (|| -> Result<(String, Json, FaultSpec), darksil_json::JsonError> {
        let mut reader = ObjReader::new(&doc, "submission")?;
        let tenant: String = reader.req("tenant")?;
        let scenario: Json = reader.req("scenario")?;
        let faults = match reader.opt::<Json>("faults")? {
            Some(value) => FaultSpec::from_json(&value)?,
            None => FaultSpec::default(),
        };
        reader.finish()?;
        Ok((tenant, scenario, faults))
    })();
    let (tenant, scenario_raw, faults) = match parsed {
        Ok(parts) => parts,
        Err(e) => return bad(format!("{e}")),
    };
    if !valid_tenant(&tenant) {
        return bad(format!(
            "tenant {tenant:?} is invalid (1-64 chars from [A-Za-z0-9-_.@])"
        ));
    }
    let scenario = match Scenario::from_json(&scenario_raw) {
        Ok(scenario) => scenario,
        Err(e) => return bad(format!("scenario: {e}")),
    };
    if let Err(e) = darksil_scenario::validate_scenario(&scenario) {
        return bad(format!("{}", scenario_error(&e)));
    }
    // Identity is the canonical scenario plus the canonical fault
    // spec: re-ordered fields or explicit defaults hash identically.
    let identity = Json::Obj(vec![
        ("scenario".to_string(), scenario.to_json()),
        ("faults".to_string(), faults.canonical_json()),
    ]);
    let digest = darksil_engine::CacheKey::new("serve", &identity, SERVE_CACHE_SALT).digest_hex();

    match state.registry.admit(&digest, &tenant) {
        Ok(Admission::New) => {
            let spool = SpoolJob {
                digest: digest.clone(),
                tenants: vec![tenant],
                scenario,
                faults,
            };
            let persisted = atomic_write(
                &state.spool_path(&digest),
                spool.to_json().pretty().as_bytes(),
            )
            .and_then(|()| state.journal.ensure(&digest).map(|_| ()));
            if let Err(error) = persisted {
                // Roll the admission back: an unjournalled job would
                // vanish on restart while the client polls forever.
                state.registry.evict(&digest);
                return Response::error(500, &error);
            }
            enqueue(state, &digest);
            Response::json(
                202,
                &Json::Obj(vec![
                    ("job".to_string(), Json::Str(digest.clone())),
                    ("state".to_string(), Json::Str("queued".to_string())),
                    ("deduped".to_string(), Json::Bool(false)),
                    (
                        "status".to_string(),
                        Json::Str(format!("/v1/jobs/{digest}")),
                    ),
                ]),
            )
        }
        Ok(Admission::Duplicate(record)) => {
            let mut body = match record.status_json() {
                Json::Obj(fields) => fields,
                other => vec![("status".to_string(), other)],
            };
            body.push(("deduped".to_string(), Json::Bool(true)));
            Response::json(200, &Json::Obj(body))
        }
        Err(rejection) => {
            Response::error(429, &rejection.to_error()).with_header("retry-after", "1")
        }
    }
}

fn handle_status(state: &Arc<ServerState>, digest: &str) -> Response {
    if !valid_digest(digest) {
        return not_found(&format!("/v1/jobs/{digest}"));
    }
    match state.registry.get(digest) {
        Some(record) => Response::json(200, &record.status_json()),
        None => {
            let error = DarksilError::unsupported(format!("no such job: {digest}"));
            Response::error(404, &error)
        }
    }
}

fn handle_artefact(state: &Arc<ServerState>, digest: &str) -> Response {
    if !valid_digest(digest) {
        return not_found(&format!("/v1/artefacts/{digest}"));
    }
    let Some(record) = state.registry.get(digest) else {
        let error = DarksilError::unsupported(format!("no such job: {digest}"));
        return Response::error(404, &error);
    };
    if !record.state.has_artefact() {
        let error = DarksilError::config(format!(
            "job {digest} is {}; no artefact yet",
            record.state.label()
        ));
        return Response::error(409, &error);
    }
    match std::fs::read(state.artefact_path(digest)) {
        Ok(bytes) => Response::json_bytes(200, bytes),
        Err(e) => {
            let error = io_error(&format!("cannot read artefact {digest}"), &e);
            Response::error(500, &error)
        }
    }
}

fn handle_report(state: &Arc<ServerState>, digest: &str) -> Response {
    if !valid_digest(digest) {
        return not_found(&format!("/v1/jobs/{digest}/report"));
    }
    let Some(record) = state.registry.get(digest) else {
        let error = DarksilError::unsupported(format!("no such job: {digest}"));
        return Response::error(404, &error);
    };
    let artefact = if record.state.has_artefact() {
        std::fs::read_to_string(state.artefact_path(digest))
            .ok()
            .and_then(|text| darksil_json::parse(&text).ok())
    } else {
        None
    };
    Response::html(200, report::render(&record, artefact.as_ref()))
}
