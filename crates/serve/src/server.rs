//! The daemon: listener, connection handling, routing, job execution,
//! drain, and crash resume.
//!
//! # Request lifecycle
//!
//! ```text
//! POST /v1/jobs ── admission (dedup → quota → cap) ──► queued
//!                                                        │ pool worker
//!                                                        ▼
//!                                    running ──► done | degraded | failed
//! ```
//!
//! Every admitted job is journalled (`state/journal.json`, the
//! darksil-bench [`Journal`]) and its request spooled to
//! `state/jobs/<digest>.json` *before* the submission is acknowledged,
//! and its artefact is written to `state/artefacts/<digest>.json`
//! *before* the `done` transition — so a SIGKILL at any instant leaves
//! either a resumable journal entry or a completed artefact, never a
//! half-acknowledged job. On restart, [`Server::bind`] reloads the
//! journal, re-queues `pending`/`running` entries from their spool
//! files, and serves completed digests from disk; the content-addressed
//! [`ResultCache`] makes the re-run cost one cache hit when the solve
//! finished before the kill.
//!
//! # Backpressure
//!
//! Admission is a single atomic decision in the [`Registry`]: dedup by
//! content digest first (a duplicate never consumes a slot), then the
//! per-tenant quota, then the global in-flight cap. Rejections are
//! `429` with `Retry-After` and a typed `capacity` error — the daemon
//! never queues unboundedly. Connections themselves are capped, and
//! request reads are bounded both per-`read(2)` (socket timeout) and
//! end-to-end (a [`CancellationToken`] anchored at accept time), so a
//! slowloris peer costs one connection slot for one deadline, nothing
//! more.

use std::io::{ErrorKind, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use darksil_bench::{ArtefactState, Journal};
use darksil_engine::{BackoffPolicy, JobSpec, ResultCache, Supervisor, ThreadPool};
use darksil_json::{FromJson, Json, ObjReader, ToJson};
use darksil_obs::{EventRecord, EventStream};
use darksil_robust::{CancellationToken, DarksilError, Fault, FaultPlan};
use darksil_scenario::{run_scenario, Scenario, ScenarioError};

use crate::http::{self, Parsed, Request, Response};
use crate::registry::{Admission, JobRecord, JobState, Registry, WatchStep};
use crate::{report, signal};

/// Salt for the job-identity digest and the result cache, so served
/// artefacts never collide with batch-mode cache entries.
pub const SERVE_CACHE_SALT: &str = "darksil-serve-v1";

/// Spool-file schema marker.
pub const SPOOL_SCHEMA: &str = "darksil-serve-job-v1";

/// Hard cap on concurrently open connections.
const MAX_CONNECTIONS: usize = 64;

/// Heartbeat interval for the `/v1/jobs/{digest}/watch` stream: an
/// idle long-poll emits a `{"heartbeat": true}` line this often, which
/// doubles as the disconnect probe (a gone client fails the write).
const WATCH_HEARTBEAT: Duration = Duration::from_millis(1000);

/// Upper bound on one watch stream's lifetime, so an abandoned-but-
/// connected watcher cannot pin a handler thread forever.
const WATCH_MAX_LIFETIME: Duration = Duration::from_secs(600);

/// Child index reserved for the events-replay scope. No engine fan-out
/// ever submits a job with this index, so replay events are
/// distinguishable from any event a concurrently running pool job
/// might record while the recorder is on.
const REPLAY_CHILD: u64 = u64::MAX;

/// Serialises deterministic event replays: the obs recorder is
/// process-global and drained destructively, so one replay at a time.
static REPLAY_LOCK: Mutex<()> = Mutex::new(());

/// Everything `darksil serve` configures.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Listen address, e.g. `127.0.0.1:8787`. Port 0 picks a free one.
    pub addr: String,
    /// Worker threads for the solve pool; 0 resolves via
    /// [`darksil_engine::default_jobs`].
    pub jobs: usize,
    /// Global cap on jobs queued or running.
    pub max_inflight: usize,
    /// Per-tenant cap on jobs queued or running.
    pub tenant_quota: usize,
    /// Durable state directory (journal, spool, artefacts, cache).
    pub state_dir: PathBuf,
    /// Per-`read(2)`/`write(2)` socket timeout.
    pub io_timeout: Duration,
    /// End-to-end budget for reading one request.
    pub request_deadline: Duration,
    /// Per-attempt wall-clock budget for a solve.
    pub job_deadline: Duration,
    /// How long a drain waits for in-flight jobs before checkpointing.
    pub drain_grace: Duration,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:8787".to_string(),
            jobs: 0,
            max_inflight: 64,
            tenant_quota: 8,
            state_dir: PathBuf::from("state"),
            io_timeout: Duration::from_millis(2000),
            request_deadline: Duration::from_secs(10),
            job_deadline: Duration::from_secs(30),
            drain_grace: Duration::from_secs(30),
        }
    }
}

/// What a completed drain reports.
#[derive(Debug, Clone, Copy)]
pub struct DrainSummary {
    /// Whether every in-flight job finished within the grace period.
    pub drained: bool,
    /// Journal entries still pending/running at exit (0 when drained).
    pub unfinished: usize,
}

/// Fault-injection spec accepted on submissions; maps onto the
/// darksil-robust [`FaultPlan`]. All fields optional; defaults inject
/// nothing.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultSpec {
    /// Seed for deterministic fault placement.
    pub seed: u64,
    /// Hang every non-degraded attempt until its deadline.
    pub hang: bool,
    /// Sleep this long at the start of every attempt.
    pub slow_ms: u64,
    /// Fail this many initial attempts with a transient error.
    pub transient: u32,
    /// Poison power telemetry with a NaN (a non-retryable failure).
    pub nan: bool,
}

impl Default for FaultSpec {
    fn default() -> Self {
        Self {
            seed: 1,
            hang: false,
            slow_ms: 0,
            transient: 0,
            nan: false,
        }
    }
}

impl FaultSpec {
    fn from_json(v: &Json) -> Result<Self, darksil_json::JsonError> {
        let mut reader = ObjReader::new(v, "faults")?;
        let spec = Self {
            seed: reader.opt_or("seed", 1)?,
            hang: reader.opt_or("hang", false)?,
            slow_ms: reader.opt_or("slow_ms", 0)?,
            transient: reader.opt_or("transient", 0)?,
            nan: reader.opt_or("nan", false)?,
        };
        reader.finish()?;
        Ok(spec)
    }

    /// Canonical JSON with every field explicit, so submissions that
    /// spell defaults differently produce the same job digest.
    fn canonical_json(&self) -> Json {
        Json::Obj(vec![
            ("seed".to_string(), self.seed.to_json()),
            ("hang".to_string(), Json::Bool(self.hang)),
            ("slow_ms".to_string(), self.slow_ms.to_json()),
            ("transient".to_string(), self.transient.to_json()),
            ("nan".to_string(), Json::Bool(self.nan)),
        ])
    }

    fn plan(&self) -> FaultPlan {
        let mut plan = FaultPlan::new(self.seed);
        if self.slow_ms > 0 {
            plan = plan.with(Fault::SlowJob {
                millis: self.slow_ms,
            });
        }
        if self.transient > 0 {
            plan = plan.with(Fault::TransientThenSucceed {
                failures: self.transient,
            });
        }
        if self.hang {
            plan = plan.with(Fault::Hang);
        }
        if self.nan {
            plan = plan.with(Fault::PowerNan { period: 1 });
        }
        plan
    }
}

/// The durable request record under `state/jobs/<digest>.json`.
#[derive(Debug, Clone)]
struct SpoolJob {
    digest: String,
    tenants: Vec<String>,
    scenario: Scenario,
    faults: FaultSpec,
}

impl SpoolJob {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("schema".to_string(), Json::Str(SPOOL_SCHEMA.to_string())),
            ("digest".to_string(), Json::Str(self.digest.clone())),
            (
                "tenants".to_string(),
                Json::Arr(self.tenants.iter().cloned().map(Json::Str).collect()),
            ),
            ("scenario".to_string(), self.scenario.to_json()),
            ("faults".to_string(), self.faults.canonical_json()),
        ])
    }

    fn from_json(v: &Json) -> Result<Self, DarksilError> {
        let bad = |msg: String| DarksilError::config(msg).context("spool file");
        let schema = v.get("schema").and_then(Json::as_str);
        if schema != Some(SPOOL_SCHEMA) {
            return Err(bad(format!(
                "unexpected spool schema {:?}",
                schema.unwrap_or("<missing>")
            )));
        }
        let digest = v
            .get("digest")
            .and_then(Json::as_str)
            .ok_or_else(|| bad("missing digest".to_string()))?
            .to_string();
        let tenants = match v.get("tenants") {
            Some(Json::Arr(items)) => items
                .iter()
                .filter_map(Json::as_str)
                .map(ToString::to_string)
                .collect(),
            _ => Vec::new(),
        };
        let scenario_json = v
            .get("scenario")
            .ok_or_else(|| bad("missing scenario".to_string()))?;
        let scenario = Scenario::from_json(scenario_json).map_err(|e| bad(format!("{e}")))?;
        let faults = match v.get("faults") {
            Some(value) => FaultSpec::from_json(value).map_err(|e| bad(format!("{e}")))?,
            None => FaultSpec::default(),
        };
        Ok(Self {
            digest,
            tenants,
            scenario,
            faults,
        })
    }
}

struct ServerState {
    config: ServeConfig,
    registry: Arc<Registry>,
    journal: Journal,
    cache: ResultCache,
    supervisor: Supervisor,
    /// `None` after drain has claimed the pool (to drop or abandon it).
    pool: Mutex<Option<ThreadPool>>,
    draining: AtomicBool,
    connections: AtomicUsize,
}

impl ServerState {
    fn spool_path(&self, digest: &str) -> PathBuf {
        self.config
            .state_dir
            .join("jobs")
            .join(format!("{digest}.json"))
    }

    fn artefact_path(&self, digest: &str) -> PathBuf {
        self.config
            .state_dir
            .join("artefacts")
            .join(format!("{digest}.json"))
    }

    fn events_path(&self, digest: &str) -> PathBuf {
        self.config
            .state_dir
            .join("events")
            .join(format!("{digest}.jsonl"))
    }

    fn is_draining(&self) -> bool {
        self.draining.load(Ordering::SeqCst) || signal::termination_requested()
    }
}

/// A bound, resumed, but not yet accepting daemon. [`Server::run`]
/// drives the accept loop until drain.
pub struct Server {
    state: Arc<ServerState>,
    listener: TcpListener,
}

fn io_error(what: &str, error: &std::io::Error) -> DarksilError {
    DarksilError::io(format!("{what}: {error}"))
}

fn atomic_write(path: &std::path::Path, bytes: &[u8]) -> Result<(), DarksilError> {
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)
            .map_err(|e| io_error(&format!("cannot create {}", parent.display()), &e))?;
    }
    let tmp = path.with_extension("json.tmp");
    std::fs::write(&tmp, bytes)
        .map_err(|e| io_error(&format!("cannot write {}", tmp.display()), &e))?;
    std::fs::rename(&tmp, path)
        .map_err(|e| io_error(&format!("cannot commit {}", path.display()), &e))?;
    Ok(())
}

fn journal_fingerprint() -> Json {
    Json::Obj(vec![
        (
            "service".to_string(),
            Json::Str("darksil-serve".to_string()),
        ),
        ("schema".to_string(), Json::Num(1.0)),
    ])
}

impl Server {
    /// Binds the listener, opens (or resumes) the durable state, and
    /// re-queues unfinished jobs from a previous incarnation.
    ///
    /// # Errors
    ///
    /// A [`DarksilError`] when the address cannot be bound, the state
    /// directory is unusable, or an existing journal belongs to a
    /// different service.
    pub fn bind(config: ServeConfig) -> Result<Self, DarksilError> {
        signal::install();
        let state_dir = &config.state_dir;
        for sub in ["jobs", "artefacts"] {
            let dir = state_dir.join(sub);
            std::fs::create_dir_all(&dir)
                .map_err(|e| io_error(&format!("cannot create {}", dir.display()), &e))?;
        }
        let journal_path = state_dir.join("journal.json");
        let journal = if journal_path.exists() {
            let journal = Journal::load(&journal_path)?;
            if journal.config() != &journal_fingerprint() {
                return Err(DarksilError::config(format!(
                    "journal {} belongs to a different service configuration",
                    journal_path.display()
                )));
            }
            journal
        } else {
            let journal = Journal::create(&journal_path, journal_fingerprint(), &[]);
            journal.save()?;
            journal
        };
        let cache = ResultCache::open(state_dir.join(".cache"), SERVE_CACHE_SALT);
        let workers = if config.jobs == 0 {
            darksil_engine::default_jobs()
        } else {
            config.jobs
        };
        let pool = ThreadPool::new(workers)?;
        let listener = TcpListener::bind(&config.addr)
            .map_err(|e| io_error(&format!("cannot bind {}", config.addr), &e))?;
        // The daemon keeps live telemetry on for its whole life; the
        // registry survives drains and is scraped via `GET /metrics`.
        darksil_obs::metrics_enable();
        let registry = Arc::new(Registry::new(config.max_inflight, config.tenant_quota));
        let mut supervisor = Supervisor::new(BackoffPolicy::default(), 4);
        // Relay attempt/backoff transitions into the job's watch log
        // while the job is still running — `/v1/jobs/{digest}/watch`
        // streams them as they happen.
        let hook_registry = Arc::clone(&registry);
        supervisor.set_attempt_hook(Arc::new(move |name, transition| {
            if let Some(digest) = name.strip_prefix("serve:") {
                hook_registry.note_transition(digest, transition.to_json());
            }
        }));
        let state = Arc::new(ServerState {
            config,
            registry,
            journal,
            cache,
            supervisor,
            pool: Mutex::new(Some(pool)),
            draining: AtomicBool::new(false),
            connections: AtomicUsize::new(0),
        });
        let resumed = resume(&state)?;
        if resumed > 0 {
            darksil_obs::counter("serve.resume.requeued", resumed as u64);
            darksil_obs::counter_add("darksil_serve_resume_requeued_total", &[], resumed as u64);
        }
        Ok(Self { state, listener })
    }

    /// The bound address (useful with port 0).
    ///
    /// # Errors
    ///
    /// A [`DarksilError`] of class `io` when the socket is gone.
    pub fn local_addr(&self) -> Result<SocketAddr, DarksilError> {
        self.listener
            .local_addr()
            .map_err(|e| io_error("cannot read local address", &e))
    }

    /// Accepts connections until SIGTERM/SIGINT or `POST /v1/drain`,
    /// then drains: stop accepting, wait up to the grace period for
    /// in-flight jobs, checkpoint the rest in the journal.
    ///
    /// # Errors
    ///
    /// A [`DarksilError`] of class `io` when the final journal
    /// snapshot cannot be written.
    pub fn run(self) -> Result<DrainSummary, DarksilError> {
        let Self { state, listener } = self;
        listener
            .set_nonblocking(true)
            .map_err(|e| io_error("cannot configure listener", &e))?;
        while !state.is_draining() {
            match listener.accept() {
                Ok((stream, _peer)) => dispatch(&state, stream),
                Err(e) if e.kind() == ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(20));
                }
                Err(_) => std::thread::sleep(Duration::from_millis(20)),
            }
        }

        // Draining: keep the listener open through the grace period so
        // observability stays live — `/healthz` answers 503
        // `{"draining": true}` for load balancers, while `/v1/stats`
        // and `/metrics` serve a final scrape. Submissions are already
        // rejected with 503 by the router, so accepting here cannot
        // extend the drain.
        let grace_deadline = Instant::now() + state.config.drain_grace;
        let mut drained = state.registry.inflight() == 0;
        while !drained && Instant::now() < grace_deadline {
            match listener.accept() {
                Ok((stream, _peer)) => dispatch(&state, stream),
                Err(e) if e.kind() == ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(20));
                }
                Err(_) => std::thread::sleep(Duration::from_millis(20)),
            }
            drained = state.registry.inflight() == 0;
        }
        drop(listener);
        // Give in-flight connection handlers a moment to write their
        // final bytes before we tear down.
        let connection_deadline = Instant::now() + Duration::from_secs(2);
        while state.connections.load(Ordering::SeqCst) > 0 && Instant::now() < connection_deadline {
            std::thread::sleep(Duration::from_millis(10));
        }
        let pool = match state.pool.lock() {
            Ok(mut slot) => slot.take(),
            Err(poisoned) => poisoned.into_inner().take(),
        };
        if drained {
            // Idle pool: dropping it joins the workers cleanly.
            drop(pool);
        } else if let Some(pool) = pool {
            // Jobs are still queued or running. Dropping the pool
            // would block until they all finish, defeating the grace
            // period — abandon it instead; the journal has the
            // survivors as pending/running, and the next incarnation
            // re-queues them.
            std::mem::forget(pool);
        }
        state.journal.save()?;
        let unfinished = state.journal.counts().unfinished;
        Ok(DrainSummary {
            drained,
            unfinished,
        })
    }
}

/// Rebuilds the registry from the journal and re-queues unfinished
/// jobs. Completed and failed entries are restored as terminal
/// records; `running` entries (interrupted by a crash) are reset to
/// `pending` and re-executed from their spool files.
fn resume(state: &Arc<ServerState>) -> Result<usize, DarksilError> {
    let mut requeued = 0;
    for entry in state.journal.entries() {
        let digest = entry.name.clone();
        let tenants = read_spool(state, &digest)
            .map(|job| job.tenants)
            .unwrap_or_default();
        match entry.state {
            ArtefactState::Done | ArtefactState::Degraded => {
                state.registry.restore(JobRecord {
                    digest,
                    tenants,
                    state: if entry.state == ArtefactState::Degraded {
                        JobState::Degraded
                    } else {
                        JobState::Done
                    },
                    error: None,
                    attempts: entry.attempts.clone(),
                    seconds: entry.seconds,
                    cache: None,
                    transitions: Vec::new(),
                });
            }
            ArtefactState::Failed => {
                state.registry.restore(JobRecord {
                    digest,
                    tenants,
                    state: JobState::Failed,
                    error: entry.error.clone(),
                    attempts: entry.attempts.clone(),
                    seconds: entry.seconds,
                    cache: None,
                    transitions: Vec::new(),
                });
            }
            ArtefactState::Pending | ArtefactState::Running => {
                state.journal.transition(&digest, ArtefactState::Pending)?;
                state.registry.restore(JobRecord {
                    digest: digest.clone(),
                    tenants,
                    state: JobState::Queued,
                    error: None,
                    attempts: Vec::new(),
                    seconds: 0.0,
                    cache: None,
                    transitions: Vec::new(),
                });
                enqueue(state, &digest);
                requeued += 1;
            }
        }
    }
    Ok(requeued)
}

fn read_spool(state: &ServerState, digest: &str) -> Result<SpoolJob, DarksilError> {
    let path = state.spool_path(digest);
    let text = std::fs::read_to_string(&path)
        .map_err(|e| io_error(&format!("cannot read spool {}", path.display()), &e))?;
    let doc = darksil_json::parse(&text)
        .map_err(|e| DarksilError::config(format!("spool {}: {e}", path.display())))?;
    SpoolJob::from_json(&doc)
}

/// Hands a job to the solve pool (fire-and-forget; results land in
/// the registry and journal).
fn enqueue(state: &Arc<ServerState>, digest: &str) {
    let worker_state = Arc::clone(state);
    let worker_digest = digest.to_string();
    let pool = match state.pool.lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    };
    if let Some(pool) = pool.as_ref() {
        drop(pool.submit(move || {
            run_job(&worker_state, &worker_digest);
            Ok(())
        }));
    }
}

/// Executes one journalled job end-to-end on a pool worker.
fn run_job(state: &Arc<ServerState>, digest: &str) {
    let _span = darksil_obs::span("serve.job");
    state.registry.set_running(digest);
    if state
        .journal
        .transition(digest, ArtefactState::Running)
        .is_err()
    {
        // The journal directory is gone; still run the job so the
        // client gets an answer — resume safety is already lost.
        darksil_obs::counter("serve.journal.write_failed", 1);
        darksil_obs::counter_add("darksil_serve_journal_write_failures_total", &[], 1);
    }
    let started = Instant::now();
    let job = match read_spool(state, digest) {
        Ok(job) => job,
        Err(error) => {
            finish_job(state, digest, Err(error), Vec::new(), started, false, None);
            return;
        }
    };
    let plan = job.faults.plan();
    let spec = JobSpec {
        name: format!("serve:{digest}"),
        class: "serve.scenario".to_string(),
        deadline: Some(state.config.job_deadline),
        max_retries: 2,
        degrade_on_exhaustion: true,
    };
    let scenario = job.scenario;
    let scenario_json = scenario.to_json();
    let nan = job.faults.nan;
    let cache_label: Mutex<Option<&'static str>> = Mutex::new(None);
    let supervised = state.supervisor.run(&spec, || {
        plan.inject_job_faults("serve scenario job")?;
        if nan {
            let mut probe = [1.0_f64; 4];
            plan.corrupt_power(1, &mut probe);
            if probe.iter().any(|p| !p.is_finite()) {
                return Err(DarksilError::non_finite("injected NaN in power telemetry"));
            }
        }
        // Degraded attempts may relax solver behaviour, so they must
        // not share cache entries with full-fidelity solves.
        let artefact_kind = if darksil_robust::is_degraded() {
            "scenario.degraded"
        } else {
            "scenario"
        };
        let key = state.cache.key(artefact_kind, &scenario_json);
        let (payload, outcome) = state.cache.get_or_compute(&key, || {
            run_scenario(&scenario)
                .map(|report| report.to_json())
                .map_err(|e| scenario_error(&e))
        })?;
        if let Ok(mut slot) = cache_label.lock() {
            *slot = Some(outcome.label());
        }
        Ok(payload)
    });
    let attempts: Vec<Json> = supervised.attempts.iter().map(ToJson::to_json).collect();
    let label = cache_label
        .lock()
        .ok()
        .and_then(|slot| *slot)
        .map(ToString::to_string);
    if let Some(outcome) = &label {
        darksil_obs::counter_add(
            "darksil_serve_solve_cache_total",
            &[("outcome", outcome)],
            1,
        );
    }
    finish_job(
        state,
        digest,
        supervised.result,
        attempts,
        started,
        supervised.degraded,
        label,
    );
}

fn finish_job(
    state: &ServerState,
    digest: &str,
    result: Result<Json, DarksilError>,
    attempts: Vec<Json>,
    started: Instant,
    degraded: bool,
    cache: Option<String>,
) {
    let seconds = started.elapsed().as_secs_f64();
    let tenant = state
        .registry
        .get(digest)
        .and_then(|record| record.tenants.first().cloned())
        .unwrap_or_else(|| "unknown".to_string());
    darksil_obs::observe_rolling(
        "darksil_serve_solve_seconds",
        &[("tenant", &tenant)],
        seconds,
    );
    let outcome = result.and_then(|payload| {
        let mut bytes = payload.pretty().into_bytes();
        bytes.push(b'\n');
        // The artefact reaches disk before the journal marks the job
        // complete: a crash between the two re-runs the job, which is
        // idempotent; the reverse order could acknowledge an artefact
        // that does not exist.
        atomic_write(&state.artefact_path(digest), &bytes)?;
        Ok(())
    });
    match outcome {
        Ok(()) => {
            let (job_state, artefact_state) = if degraded {
                darksil_obs::counter("serve.job.degraded", 1);
                (JobState::Degraded, ArtefactState::Degraded)
            } else {
                darksil_obs::counter("serve.job.done", 1);
                (JobState::Done, ArtefactState::Done)
            };
            darksil_obs::counter_add(
                "darksil_serve_jobs_total",
                &[("outcome", job_state.label()), ("tenant", &tenant)],
                1,
            );
            if state
                .journal
                .record_finished(digest, artefact_state, None, attempts.clone(), seconds)
                .is_err()
            {
                darksil_obs::counter("serve.journal.write_failed", 1);
                darksil_obs::counter_add("darksil_serve_journal_write_failures_total", &[], 1);
            }
            state
                .registry
                .finish(digest, job_state, None, attempts, seconds, cache);
        }
        Err(error) => {
            darksil_obs::counter("serve.job.failed", 1);
            darksil_obs::counter_add(
                "darksil_serve_jobs_total",
                &[("outcome", "failed"), ("tenant", &tenant)],
                1,
            );
            let message = error.to_string();
            if state
                .journal
                .record_finished(
                    digest,
                    ArtefactState::Failed,
                    Some(message.clone()),
                    attempts.clone(),
                    seconds,
                )
                .is_err()
            {
                darksil_obs::counter("serve.journal.write_failed", 1);
                darksil_obs::counter_add("darksil_serve_journal_write_failures_total", &[], 1);
            }
            state.registry.finish(
                digest,
                JobState::Failed,
                Some(message),
                attempts,
                seconds,
                cache,
            );
        }
    }
}

fn scenario_error(error: &ScenarioError) -> DarksilError {
    match error {
        ScenarioError::Parse(e) => DarksilError::config(format!("scenario: {e}")),
        ScenarioError::Invalid(msg) => DarksilError::config(format!("scenario: {msg}")),
        ScenarioError::Run(e) => DarksilError::solver(format!("scenario run failed: {e}")),
    }
}

/// Decrements the connection counter even if a handler panics.
struct ConnectionGuard<'a>(&'a AtomicUsize);

impl Drop for ConnectionGuard<'_> {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::SeqCst);
    }
}

fn dispatch(state: &Arc<ServerState>, stream: TcpStream) {
    let active = state.connections.fetch_add(1, Ordering::SeqCst);
    if active >= MAX_CONNECTIONS {
        state.connections.fetch_sub(1, Ordering::SeqCst);
        let error = DarksilError::capacity("connection limit reached");
        respond(
            &stream,
            &Response::error(503, &error).with_header("retry-after", "1"),
        );
        return;
    }
    let handler_state = Arc::clone(state);
    std::thread::spawn(move || {
        let _guard = ConnectionGuard(&handler_state.connections);
        handle_connection(&handler_state, &stream);
    });
}

fn respond(mut stream: &TcpStream, response: &Response) {
    let bytes = response.to_bytes();
    let _ = stream.write_all(&bytes);
    let _ = stream.flush();
    let _ = stream.shutdown(Shutdown::Both);
}

fn handle_connection(state: &Arc<ServerState>, stream: &TcpStream) {
    let _ = stream.set_read_timeout(Some(state.config.io_timeout));
    let _ = stream.set_write_timeout(Some(state.config.io_timeout));
    // One wall-clock budget for the whole request read, no matter how
    // many partial reads it takes — a drip-feeding client cannot renew
    // its welcome.
    let token = CancellationToken::with_deadline_at(Instant::now() + state.config.request_deadline);
    let mut buf: Vec<u8> = Vec::new();
    let mut chunk = [0_u8; 8192];
    let mut reader = stream;
    let request = loop {
        match http::parse_request(&buf) {
            Ok(Parsed::Complete(request, _consumed)) => break request,
            Ok(Parsed::Incomplete) => {}
            Err(error) => {
                state.registry.note_bad_request();
                respond(stream, &Response::from_http_error(&error));
                return;
            }
        }
        if token.is_cancelled() {
            state.registry.note_bad_request();
            let error = DarksilError::deadline("request read deadline exceeded");
            respond(stream, &Response::error(408, &error));
            return;
        }
        match reader.read(&mut chunk) {
            Ok(0) => {
                if !buf.is_empty() {
                    state.registry.note_bad_request();
                    let error = DarksilError::config("connection closed mid-request");
                    respond(stream, &Response::error(400, &error));
                }
                let _ = stream.shutdown(Shutdown::Both);
                return;
            }
            Ok(n) => buf.extend_from_slice(chunk.get(..n).unwrap_or_default()),
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                // Per-read timeout; the loop re-checks the end-to-end
                // deadline above.
            }
            Err(_) => return,
        }
    };
    // The watch long-poll streams chunks itself instead of buffering a
    // [`Response`]; everything else goes through the router.
    if request.method == "GET" {
        if let Some(digest) = request
            .path()
            .strip_prefix("/v1/jobs/")
            .and_then(|rest| rest.strip_suffix("/watch"))
        {
            let digest = digest.to_string();
            handle_watch(state, stream, &digest);
            return;
        }
    }
    let response = route(state, &request);
    respond(stream, &response);
}

/// Stable, bounded endpoint label for request metrics (raw paths would
/// make per-digest label sets and blow the cardinality cap).
fn endpoint_label(path: &str) -> &'static str {
    match path {
        "/healthz" => "/healthz",
        "/metrics" => "/metrics",
        "/v1/stats" => "/v1/stats",
        "/v1/jobs" => "/v1/jobs",
        "/v1/drain" => "/v1/drain",
        p if p.starts_with("/v1/jobs/") => {
            if p.ends_with("/report") {
                "/v1/jobs/{digest}/report"
            } else if p.ends_with("/events") {
                "/v1/jobs/{digest}/events"
            } else if p.ends_with("/watch") {
                "/v1/jobs/{digest}/watch"
            } else {
                "/v1/jobs/{digest}"
            }
        }
        p if p.starts_with("/v1/artefacts/") => "/v1/artefacts/{digest}",
        _ => "other",
    }
}

/// Records the per-request counter and rolling latency histogram.
fn note_request_metrics(method: &str, path: &str, status: u16, seconds: f64) {
    let endpoint = endpoint_label(path);
    let status = status.to_string();
    darksil_obs::counter_add(
        "darksil_serve_requests_total",
        &[
            ("endpoint", endpoint),
            ("method", method),
            ("status", &status),
        ],
        1,
    );
    darksil_obs::observe_rolling(
        "darksil_serve_request_seconds",
        &[("endpoint", endpoint)],
        seconds,
    );
}

fn route(state: &Arc<ServerState>, request: &Request) -> Response {
    let _span = darksil_obs::span("serve.http.request");
    darksil_obs::counter("serve.http.requests", 1);
    let started = Instant::now();
    let response = route_inner(state, request);
    note_request_metrics(
        &request.method,
        request.path(),
        response.status,
        started.elapsed().as_secs_f64(),
    );
    response
}

fn route_inner(state: &Arc<ServerState>, request: &Request) -> Response {
    let path = request.path().to_string();
    match (request.method.as_str(), path.as_str()) {
        ("GET", "/healthz") => {
            // A draining daemon answers 503 so load balancers stop
            // routing to it; `/v1/stats` stays 200 for observers.
            if state.is_draining() {
                return Response::json(
                    503,
                    &Json::Obj(vec![
                        ("status".to_string(), Json::Str("draining".to_string())),
                        ("draining".to_string(), Json::Bool(true)),
                        ("inflight".to_string(), state.registry.inflight().to_json()),
                    ]),
                );
            }
            Response::json(
                200,
                &Json::Obj(vec![
                    ("status".to_string(), Json::Str("ok".to_string())),
                    ("inflight".to_string(), state.registry.inflight().to_json()),
                ]),
            )
        }
        ("GET", "/metrics") => handle_metrics(state),
        ("GET", "/v1/stats") => {
            let mut stats = state.registry.stats_json(state.is_draining());
            // Engine jobs share the process-global factorisation cache;
            // surface its health next to the admission counters.
            if let Json::Obj(pairs) = &mut stats {
                let fc = darksil_numerics::factor_cache_stats();
                pairs.push((
                    "factor_cache".to_string(),
                    Json::Obj(vec![
                        ("hits".to_string(), fc.hits.to_json()),
                        ("misses".to_string(), fc.misses.to_json()),
                        ("entries".to_string(), (fc.entries as u64).to_json()),
                    ]),
                ));
            }
            Response::json(200, &stats)
        }
        ("POST", "/v1/jobs") => handle_submit(state, request),
        ("POST", "/v1/drain") => {
            state.draining.store(true, Ordering::SeqCst);
            Response::json(
                202,
                &Json::Obj(vec![(
                    "status".to_string(),
                    Json::Str("draining".to_string()),
                )]),
            )
        }
        // Before the GET catch-all: a known fixed path with the wrong
        // method is 405, not 404 (correct methods matched above).
        (_, "/healthz" | "/metrics" | "/v1/stats" | "/v1/jobs" | "/v1/drain") => {
            let error = DarksilError::unsupported(format!(
                "method {} not allowed on {path}",
                request.method
            ));
            Response::error(405, &error)
        }
        ("GET", p) => {
            if let Some(rest) = p.strip_prefix("/v1/jobs/") {
                if let Some(digest) = rest.strip_suffix("/report") {
                    handle_report(state, digest)
                } else if let Some(digest) = rest.strip_suffix("/events") {
                    handle_events(state, digest)
                } else {
                    handle_status(state, rest)
                }
            } else if let Some(digest) = p.strip_prefix("/v1/artefacts/") {
                handle_artefact(state, digest)
            } else {
                not_found(p)
            }
        }
        (_, p) => not_found(p),
    }
}

fn not_found(path: &str) -> Response {
    let error = DarksilError::unsupported(format!("no such resource: {path}"));
    Response::error(404, &error)
}

fn valid_digest(digest: &str) -> bool {
    digest.len() == 16 && digest.bytes().all(|b| b.is_ascii_hexdigit())
}

fn valid_tenant(tenant: &str) -> bool {
    !tenant.is_empty()
        && tenant.len() <= 64
        && tenant
            .bytes()
            .all(|b| b.is_ascii_alphanumeric() || b"-_.@".contains(&b))
}

fn handle_submit(state: &Arc<ServerState>, request: &Request) -> Response {
    if state.is_draining() {
        let error = DarksilError::capacity("daemon is draining; not accepting submissions");
        return Response::error(503, &error).with_header("retry-after", "5");
    }
    let bad = |message: String| {
        state.registry.note_bad_request();
        Response::error(400, &DarksilError::config(message).context("submission"))
    };
    let text = match std::str::from_utf8(&request.body) {
        Ok(text) => text,
        Err(_) => return bad("request body is not valid UTF-8".to_string()),
    };
    let doc = match darksil_json::parse(text) {
        Ok(doc) => doc,
        Err(e) => return bad(format!("request body is not valid JSON: {e}")),
    };
    let parsed = (|| -> Result<(String, Json, FaultSpec), darksil_json::JsonError> {
        let mut reader = ObjReader::new(&doc, "submission")?;
        let tenant: String = reader.req("tenant")?;
        let scenario: Json = reader.req("scenario")?;
        let faults = match reader.opt::<Json>("faults")? {
            Some(value) => FaultSpec::from_json(&value)?,
            None => FaultSpec::default(),
        };
        reader.finish()?;
        Ok((tenant, scenario, faults))
    })();
    let (tenant, scenario_raw, faults) = match parsed {
        Ok(parts) => parts,
        Err(e) => return bad(format!("{e}")),
    };
    if !valid_tenant(&tenant) {
        return bad(format!(
            "tenant {tenant:?} is invalid (1-64 chars from [A-Za-z0-9-_.@])"
        ));
    }
    let scenario = match Scenario::from_json(&scenario_raw) {
        Ok(scenario) => scenario,
        Err(e) => return bad(format!("scenario: {e}")),
    };
    if let Err(e) = darksil_scenario::validate_scenario(&scenario) {
        return bad(format!("{}", scenario_error(&e)));
    }
    // Identity is the canonical scenario plus the canonical fault
    // spec: re-ordered fields or explicit defaults hash identically.
    let identity = Json::Obj(vec![
        ("scenario".to_string(), scenario.to_json()),
        ("faults".to_string(), faults.canonical_json()),
    ]);
    let digest = darksil_engine::CacheKey::new("serve", &identity, SERVE_CACHE_SALT).digest_hex();

    match state.registry.admit(&digest, &tenant) {
        Ok(Admission::New) => {
            darksil_obs::counter_add(
                "darksil_serve_tenant_requests_total",
                &[("tenant", &tenant), ("outcome", "admitted")],
                1,
            );
            let spool = SpoolJob {
                digest: digest.clone(),
                tenants: vec![tenant],
                scenario,
                faults,
            };
            let persisted = atomic_write(
                &state.spool_path(&digest),
                spool.to_json().pretty().as_bytes(),
            )
            .and_then(|()| state.journal.ensure(&digest).map(|_| ()));
            if let Err(error) = persisted {
                // Roll the admission back: an unjournalled job would
                // vanish on restart while the client polls forever.
                state.registry.evict(&digest);
                return Response::error(500, &error);
            }
            enqueue(state, &digest);
            Response::json(
                202,
                &Json::Obj(vec![
                    ("job".to_string(), Json::Str(digest.clone())),
                    ("state".to_string(), Json::Str("queued".to_string())),
                    ("deduped".to_string(), Json::Bool(false)),
                    (
                        "status".to_string(),
                        Json::Str(format!("/v1/jobs/{digest}")),
                    ),
                ]),
            )
        }
        Ok(Admission::Duplicate(record)) => {
            darksil_obs::counter_add(
                "darksil_serve_tenant_requests_total",
                &[("tenant", &tenant), ("outcome", "deduped")],
                1,
            );
            let mut body = match record.status_json() {
                Json::Obj(fields) => fields,
                other => vec![("status".to_string(), other)],
            };
            body.push(("deduped".to_string(), Json::Bool(true)));
            Response::json(200, &Json::Obj(body))
        }
        Err(rejection) => {
            let outcome = match &rejection {
                crate::registry::Rejection::TenantQuota { .. } => "rejected_quota",
                crate::registry::Rejection::GlobalInflight { .. } => "rejected_inflight",
            };
            darksil_obs::counter_add(
                "darksil_serve_tenant_requests_total",
                &[("tenant", &tenant), ("outcome", outcome)],
                1,
            );
            Response::error(429, &rejection.to_error()).with_header("retry-after", "1")
        }
    }
}

fn handle_status(state: &Arc<ServerState>, digest: &str) -> Response {
    if !valid_digest(digest) {
        return not_found(&format!("/v1/jobs/{digest}"));
    }
    match state.registry.get(digest) {
        Some(record) => Response::json(200, &record.status_json()),
        None => {
            let error = DarksilError::unsupported(format!("no such job: {digest}"));
            Response::error(404, &error)
        }
    }
}

fn handle_artefact(state: &Arc<ServerState>, digest: &str) -> Response {
    if !valid_digest(digest) {
        return not_found(&format!("/v1/artefacts/{digest}"));
    }
    let Some(record) = state.registry.get(digest) else {
        let error = DarksilError::unsupported(format!("no such job: {digest}"));
        return Response::error(404, &error);
    };
    if !record.state.has_artefact() {
        let error = DarksilError::config(format!(
            "job {digest} is {}; no artefact yet",
            record.state.label()
        ));
        return Response::error(409, &error);
    }
    match std::fs::read(state.artefact_path(digest)) {
        Ok(bytes) => Response::json_bytes(200, bytes),
        Err(e) => {
            let error = io_error(&format!("cannot read artefact {digest}"), &e);
            Response::error(500, &error)
        }
    }
}

fn handle_report(state: &Arc<ServerState>, digest: &str) -> Response {
    if !valid_digest(digest) {
        return not_found(&format!("/v1/jobs/{digest}/report"));
    }
    let Some(record) = state.registry.get(digest) else {
        let error = DarksilError::unsupported(format!("no such job: {digest}"));
        return Response::error(404, &error);
    };
    let artefact = if record.state.has_artefact() {
        std::fs::read_to_string(state.artefact_path(digest))
            .ok()
            .and_then(|text| darksil_json::parse(&text).ok())
    } else {
        None
    };
    Response::html(200, report::render(&record, artefact.as_ref()))
}

/// `GET /metrics`: refresh scrape-time gauges sourced from subsystems
/// the obs crate cannot depend on (numerics factor cache, engine
/// breaker, registry depths), then render the exposition.
fn handle_metrics(state: &Arc<ServerState>) -> Response {
    let fc = darksil_numerics::factor_cache_stats();
    #[allow(clippy::cast_precision_loss)]
    {
        darksil_obs::gauge_set("darksil_factor_cache_hits", &[], fc.hits as f64);
        darksil_obs::gauge_set("darksil_factor_cache_misses", &[], fc.misses as f64);
        darksil_obs::gauge_set("darksil_factor_cache_entries", &[], fc.entries as f64);
        darksil_obs::gauge_set(
            "darksil_serve_queue_depth",
            &[],
            state.registry.queued() as f64,
        );
        darksil_obs::gauge_set(
            "darksil_serve_inflight_jobs",
            &[],
            state.registry.inflight() as f64,
        );
        darksil_obs::gauge_set(
            "darksil_serve_connections",
            &[],
            state.connections.load(Ordering::SeqCst) as f64,
        );
    }
    darksil_obs::gauge_set(
        "darksil_serve_draining",
        &[],
        if state.is_draining() { 1.0 } else { 0.0 },
    );
    let breaker_open = state.supervisor.breaker().is_open("serve.scenario");
    darksil_obs::gauge_set(
        "darksil_serve_breaker_open",
        &[("class", "serve.scenario")],
        if breaker_open { 1.0 } else { 0.0 },
    );
    Response::text(200, darksil_obs::render_prometheus())
}

/// `GET /v1/jobs/{digest}/events`: derived event-stream statistics for
/// a finished job, computed by deterministic replay on first request
/// and persisted to `state/events/<digest>.jsonl`.
fn handle_events(state: &Arc<ServerState>, digest: &str) -> Response {
    if !valid_digest(digest) {
        return not_found(&format!("/v1/jobs/{digest}/events"));
    }
    let Some(record) = state.registry.get(digest) else {
        let error = DarksilError::unsupported(format!("no such job: {digest}"));
        return Response::error(404, &error);
    };
    if !record.state.has_artefact() {
        let error = DarksilError::config(format!(
            "job {digest} is {}; events are derived once a job finishes",
            record.state.label()
        ));
        return Response::error(409, &error);
    }
    let cached = std::fs::read_to_string(state.events_path(digest))
        .ok()
        .and_then(|text| EventStream::from_jsonl(&text).ok());
    let stream = match cached {
        Some(stream) => stream,
        None => match replay_events(state, digest) {
            Ok(stream) => stream,
            Err(error) => return Response::error(500, &error),
        },
    };
    let kinds = Json::Obj(
        stream
            .kind_counts()
            .into_iter()
            .map(|(kind, n)| (kind, (n as u64).to_json()))
            .collect(),
    );
    let above = Json::Arr(
        stream
            .time_above_threshold()
            .into_iter()
            .map(|(core, seconds)| Json::Arr(vec![((core as u64).to_json()), Json::Num(seconds)]))
            .collect(),
    );
    let mut body = vec![
        ("job".to_string(), Json::Str(digest.to_string())),
        ("events".to_string(), (stream.events.len() as u64).to_json()),
        ("kinds".to_string(), kinds),
        (
            "throttle_residency".to_string(),
            stream.throttle_residency().map_or(Json::Null, Json::Num),
        ),
        ("time_above_threshold".to_string(), above),
    ];
    body.push(("summary".to_string(), Json::Str(stream.render_summary())));
    Response::json(200, &Json::Obj(body))
}

/// Re-runs a finished job's scenario with the domain event stream on
/// and persists the drained JSONL. The event machinery is
/// deterministic — keyed by submission order, not wall-clock — so a
/// post-hoc replay produces byte-identical events to a hypothetical
/// live capture. The whole replay happens inside a reserved fork
/// child ([`REPLAY_CHILD`]) so events recorded by concurrently running
/// pool jobs (the recorder gate is process-global) can be filtered
/// out by prefix.
fn replay_events(state: &Arc<ServerState>, digest: &str) -> Result<EventStream, DarksilError> {
    let job = read_spool(state, digest)?;
    let guard = REPLAY_LOCK
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    darksil_obs::enable_events();
    let fork = darksil_obs::event_fork();
    let scope = fork.child(REPLAY_CHILD);
    let result = run_scenario(&job.scenario);
    drop(scope);
    let (_trace, drained) = darksil_obs::drain_all();
    drop(guard);
    result.map_err(|e| scenario_error(&e))?;
    let mut events: Vec<EventRecord> = drained
        .events
        .into_iter()
        .filter(|event| event.seq.get(1) == Some(&REPLAY_CHILD))
        .collect();
    for event in &mut events {
        // Strip the `[fork_base, REPLAY_CHILD]` prefix so the persisted
        // stream is keyed exactly like a direct single-job run.
        event.seq.drain(..2);
    }
    let stream = EventStream { events };
    atomic_write(&state.events_path(digest), stream.to_jsonl().as_bytes())?;
    darksil_obs::counter_add("darksil_serve_events_replayed_total", &[], 1);
    Ok(stream)
}

/// `GET /v1/jobs/{digest}/watch`: a chunked long-poll stream of the
/// job's lifecycle. Each chunk is one JSON line — `{"state": …}`
/// transitions, `{"kind": …}` supervisor attempt/backoff lines, and
/// `{"heartbeat": true}` keep-alives — ending with the zero chunk
/// after the terminal state. A disconnected client fails the next
/// write and the handler exits quietly.
fn handle_watch(state: &Arc<ServerState>, stream: &TcpStream, digest: &str) {
    let started = Instant::now();
    let path = format!("/v1/jobs/{digest}/watch");
    if !valid_digest(digest) || state.registry.get(digest).is_none() {
        let error = DarksilError::unsupported(format!("no such job: {digest}"));
        let response = Response::error(404, &error);
        note_request_metrics("GET", &path, 404, started.elapsed().as_secs_f64());
        respond(stream, &response);
        return;
    }
    note_request_metrics("GET", &path, 200, 0.0);
    darksil_obs::gauge_set(
        "darksil_serve_watchers",
        &[],
        1.0, // refreshed below as the loop runs; last-write-wins
    );
    let mut writer = stream;
    if writer
        .write_all(&http::chunked_head(200, "application/jsonl"))
        .is_err()
    {
        return;
    }
    let deadline = started + WATCH_MAX_LIFETIME;
    let mut cursor = 0_usize;
    loop {
        if Instant::now() >= deadline {
            break;
        }
        match state.registry.watch(digest, cursor, WATCH_HEARTBEAT) {
            WatchStep::Advanced {
                lines,
                cursor: next,
                terminal,
            } => {
                cursor = next;
                for line in &lines {
                    let mut payload = line.compact().into_bytes();
                    payload.push(b'\n');
                    if writer.write_all(&http::encode_chunk(&payload)).is_err() {
                        return;
                    }
                }
                if terminal {
                    break;
                }
            }
            WatchStep::Idle => {
                let payload = b"{\"heartbeat\": true}\n";
                if writer.write_all(&http::encode_chunk(payload)).is_err() {
                    return;
                }
            }
            WatchStep::Unknown => break,
        }
        if state.is_draining() {
            // Don't pin handler threads through a drain; the client
            // can re-poll status after restart.
            let payload = b"{\"state\": \"draining\"}\n";
            let _ = writer.write_all(&http::encode_chunk(payload));
            break;
        }
    }
    let _ = writer.write_all(http::last_chunk());
    let _ = writer.flush();
    let _ = stream.shutdown(Shutdown::Both);
    darksil_obs::observe_rolling(
        "darksil_serve_request_seconds",
        &[("endpoint", "/v1/jobs/{digest}/watch")],
        started.elapsed().as_secs_f64(),
    );
}
