//! Minimal, allocation-bounded HTTP/1.1 request parsing and response
//! serialisation.
//!
//! The parser is a pure function over the bytes received so far: it
//! either produces a complete [`Request`] (plus how many bytes it
//! consumed), asks for more input, or rejects the stream with an
//! [`HttpError`] carrying the 4xx status the connection handler should
//! write back. It never panics and never allocates proportionally to
//! attacker-controlled lengths beyond the hard caps below, which is
//! what makes the daemon slowloris-safe: a client drip-feeding garbage
//! can at worst pin [`MAX_HEAD_BYTES`] + [`MAX_BODY_BYTES`] per
//! connection until the read deadline reaps it.
//!
//! Scope is deliberately narrow — `GET`/`POST`/`DELETE` with an
//! optional `Content-Length` body, one request per connection,
//! `Connection: close` on every response. Chunked transfer encoding
//! on *requests* is rejected outright; *responses* may stream with
//! chunked framing ([`chunked_head`] / [`encode_chunk`] /
//! [`last_chunk`]) — the job-status watch endpoint writes one chunk
//! per transition and closes with the zero-length chunk.

/// Hard cap on the request line plus all headers, in bytes.
pub const MAX_HEAD_BYTES: usize = 16 * 1024;
/// Hard cap on a request body, in bytes. Scenario documents are a few
/// KiB; a megabyte leaves generous headroom for batched sweeps.
pub const MAX_BODY_BYTES: usize = 1024 * 1024;
/// Hard cap on the number of header lines.
pub const MAX_HEADERS: usize = 64;
/// Hard cap on the request target (path + query), in bytes.
pub const MAX_TARGET_BYTES: usize = 2048;

/// A parsed request: method, origin-form target, headers (names
/// lower-cased), and the raw body bytes.
#[derive(Debug, Clone)]
pub struct Request {
    /// Upper-case method token, e.g. `GET`.
    pub method: String,
    /// Origin-form target, e.g. `/v1/jobs/abc123`.
    pub target: String,
    /// Header name/value pairs; names are lower-cased, values trimmed.
    pub headers: Vec<(String, String)>,
    /// Raw body bytes (empty when no `Content-Length` was sent).
    pub body: Vec<u8>,
}

impl Request {
    /// The first header with the given (case-insensitive) name.
    #[must_use]
    pub fn header(&self, name: &str) -> Option<&str> {
        let wanted = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(key, _)| *key == wanted)
            .map(|(_, value)| value.as_str())
    }

    /// The target split into path and query (query without the `?`).
    #[must_use]
    pub fn path(&self) -> &str {
        match self.target.split_once('?') {
            Some((path, _)) => path,
            None => &self.target,
        }
    }
}

/// A protocol-level rejection: the status code to send and a short
/// human-readable reason for the response body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HttpError {
    /// HTTP status code (4xx/5xx).
    pub status: u16,
    /// One-line description, safe to echo to the client.
    pub message: String,
}

impl HttpError {
    fn new(status: u16, message: impl Into<String>) -> Self {
        Self {
            status,
            message: message.into(),
        }
    }
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} {}", self.status, self.message)
    }
}

impl std::error::Error for HttpError {}

/// Outcome of feeding the bytes received so far to the parser.
#[derive(Debug)]
pub enum Parsed {
    /// A full request plus the number of bytes it consumed from the
    /// front of the buffer. Anything after those bytes (pipelined
    /// garbage) is ignored — the server closes after one response.
    Complete(Request, usize),
    /// The buffer holds a syntactically plausible prefix; read more.
    Incomplete,
}

/// Incrementally parses an HTTP/1.1 request from `buf`.
///
/// # Errors
///
/// An [`HttpError`] with the 4xx status the caller should answer
/// with: 400 for malformed syntax, 413 for an oversized body, 431 for
/// an oversized head, 501 for transfer encodings we do not implement.
pub fn parse_request(buf: &[u8]) -> Result<Parsed, HttpError> {
    let Some(head_len) = find_head_end(buf) else {
        if buf.len() >= MAX_HEAD_BYTES {
            return Err(HttpError::new(431, "request head exceeds 16 KiB"));
        }
        // Reject early if what we have so far already cannot be a
        // valid head (bare control bytes before the terminator).
        if buf.contains(&0) {
            return Err(HttpError::new(400, "NUL byte in request head"));
        }
        return Ok(Parsed::Incomplete);
    };
    if head_len > MAX_HEAD_BYTES {
        return Err(HttpError::new(431, "request head exceeds 16 KiB"));
    }
    let head = buf.get(..head_len).unwrap_or_default();
    let head = std::str::from_utf8(head)
        .map_err(|_| HttpError::new(400, "request head is not valid UTF-8"))?;

    let mut lines = head.split("\r\n");
    let request_line = lines
        .next()
        .ok_or_else(|| HttpError::new(400, "empty request"))?;
    let (method, target) = parse_request_line(request_line)?;

    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        if headers.len() >= MAX_HEADERS {
            return Err(HttpError::new(431, "too many headers"));
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| HttpError::new(400, "header line without a colon"))?;
        if name.is_empty() || !name.bytes().all(is_token_byte) {
            return Err(HttpError::new(400, "malformed header name"));
        }
        // Checked before trimming: some control bytes (VT, FF) count
        // as Unicode whitespace and would otherwise be silently
        // trimmed instead of rejected.
        if value.bytes().any(|b| b < 0x20 && b != b'\t') {
            return Err(HttpError::new(400, "control byte in header value"));
        }
        let value = value.trim();
        headers.push((name.to_ascii_lowercase(), value.to_string()));
    }

    if headers
        .iter()
        .any(|(name, value)| name == "transfer-encoding" && !value.eq_ignore_ascii_case("identity"))
    {
        return Err(HttpError::new(501, "transfer encodings are not supported"));
    }

    let body_len = content_length(&headers)?;
    if body_len > MAX_BODY_BYTES {
        return Err(HttpError::new(413, "request body exceeds 1 MiB"));
    }
    let total = head_len.saturating_add(body_len);
    if buf.len() < total {
        return Ok(Parsed::Incomplete);
    }
    let body = buf.get(head_len..total).unwrap_or_default().to_vec();

    Ok(Parsed::Complete(
        Request {
            method,
            target,
            headers,
            body,
        },
        total,
    ))
}

/// Byte offset just past the `\r\n\r\n` head terminator, if present
/// within the scanning window.
fn find_head_end(buf: &[u8]) -> Option<usize> {
    let window = buf.get(..buf.len().min(MAX_HEAD_BYTES + 4)).unwrap_or(buf);
    window
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .map(|at| at + 4)
}

fn parse_request_line(line: &str) -> Result<(String, String), HttpError> {
    let mut parts = line.split(' ');
    let method = parts.next().unwrap_or_default();
    let target = parts.next().unwrap_or_default();
    let version = parts.next().unwrap_or_default();
    if parts.next().is_some() {
        return Err(HttpError::new(400, "malformed request line"));
    }
    if method.is_empty() || method.len() > 16 || !method.bytes().all(|b| b.is_ascii_uppercase()) {
        return Err(HttpError::new(400, "malformed method"));
    }
    if !target.starts_with('/') || target.len() > MAX_TARGET_BYTES {
        return Err(HttpError::new(400, "malformed request target"));
    }
    if target.bytes().any(|b| b <= 0x20 || b == 0x7f) {
        return Err(HttpError::new(400, "control byte in request target"));
    }
    if version != "HTTP/1.1" && version != "HTTP/1.0" {
        return Err(HttpError::new(400, "unsupported HTTP version"));
    }
    Ok((method.to_string(), target.to_string()))
}

fn content_length(headers: &[(String, String)]) -> Result<usize, HttpError> {
    let mut lengths = headers
        .iter()
        .filter(|(name, _)| name == "content-length")
        .map(|(_, value)| value.as_str());
    let Some(first) = lengths.next() else {
        return Ok(0);
    };
    if lengths.any(|other| other != first) {
        return Err(HttpError::new(400, "conflicting content-length headers"));
    }
    first
        .parse::<usize>()
        .map_err(|_| HttpError::new(400, "malformed content-length"))
}

fn is_token_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b"!#$%&'*+-.^_`|~".contains(&b)
}

/// An HTTP response ready to serialise. Every response carries
/// `Connection: close`; the daemon serves exactly one exchange per
/// connection.
#[derive(Debug, Clone)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// Extra headers beyond the always-present set.
    pub headers: Vec<(String, String)>,
    /// Body bytes.
    pub body: Vec<u8>,
    content_type: &'static str,
}

impl Response {
    /// A JSON response rendered with a trailing newline.
    #[must_use]
    pub fn json(status: u16, body: &darksil_json::Json) -> Self {
        let mut bytes = body.pretty().into_bytes();
        bytes.push(b'\n');
        Self {
            status,
            headers: Vec::new(),
            body: bytes,
            content_type: "application/json",
        }
    }

    /// A response whose body is pre-rendered JSON bytes (artefacts are
    /// served byte-for-byte from disk).
    #[must_use]
    pub fn json_bytes(status: u16, body: Vec<u8>) -> Self {
        Self {
            status,
            headers: Vec::new(),
            body,
            content_type: "application/json",
        }
    }

    /// An HTML response.
    #[must_use]
    pub fn html(status: u16, body: String) -> Self {
        Self {
            status,
            headers: Vec::new(),
            body: body.into_bytes(),
            content_type: "text/html; charset=utf-8",
        }
    }

    /// A plain-text response (the Prometheus exposition content type,
    /// which every text consumer also accepts).
    #[must_use]
    pub fn text(status: u16, body: String) -> Self {
        Self {
            status,
            headers: Vec::new(),
            body: body.into_bytes(),
            content_type: "text/plain; version=0.0.4; charset=utf-8",
        }
    }

    /// A typed error response: the body is a JSON envelope holding the
    /// [`DarksilError`](darksil_robust::DarksilError) so clients see the same error shape the CLI
    /// prints.
    #[must_use]
    pub fn error(status: u16, error: &darksil_robust::DarksilError) -> Self {
        use darksil_json::{Json, ToJson};
        let body = Json::Obj(vec![
            ("status".to_string(), Json::Num(f64::from(status))),
            ("error".to_string(), error.to_json()),
        ]);
        Self::json(status, &body)
    }

    /// An error response for a protocol-level [`HttpError`].
    #[must_use]
    pub fn from_http_error(error: &HttpError) -> Self {
        let typed = darksil_robust::DarksilError::config(error.message.clone());
        Self::error(error.status, &typed)
    }

    /// Adds a header (builder style).
    #[must_use]
    pub fn with_header(mut self, name: &str, value: impl Into<String>) -> Self {
        self.headers.push((name.to_string(), value.into()));
        self
    }

    /// The canonical reason phrase for the status code.
    #[must_use]
    pub fn reason(status: u16) -> &'static str {
        match status {
            200 => "OK",
            202 => "Accepted",
            400 => "Bad Request",
            404 => "Not Found",
            405 => "Method Not Allowed",
            408 => "Request Timeout",
            409 => "Conflict",
            413 => "Payload Too Large",
            429 => "Too Many Requests",
            431 => "Request Header Fields Too Large",
            500 => "Internal Server Error",
            501 => "Not Implemented",
            503 => "Service Unavailable",
            _ => "Response",
        }
    }

    /// Serialises the status line, headers, and body.
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = format!(
            "HTTP/1.1 {} {}\r\ncontent-type: {}\r\ncontent-length: {}\r\nconnection: close\r\n",
            self.status,
            Self::reason(self.status),
            self.content_type,
            self.body.len()
        );
        for (name, value) in &self.headers {
            out.push_str(name);
            out.push_str(": ");
            out.push_str(value);
            out.push_str("\r\n");
        }
        out.push_str("\r\n");
        let mut bytes = out.into_bytes();
        bytes.extend_from_slice(&self.body);
        bytes
    }
}

/// Serialises the head of a chunked streaming response: status line,
/// `transfer-encoding: chunked` instead of a `content-length`, and
/// `connection: close`. The caller then writes [`encode_chunk`]ed
/// payloads and finishes with [`last_chunk`]. Streaming bypasses
/// [`Response`] entirely — a [`Response`] always knows its full body
/// up front, a stream by definition does not.
#[must_use]
pub fn chunked_head(status: u16, content_type: &str) -> Vec<u8> {
    format!(
        "HTTP/1.1 {} {}\r\ncontent-type: {}\r\ntransfer-encoding: chunked\r\nconnection: close\r\n\r\n",
        status,
        Response::reason(status),
        content_type
    )
    .into_bytes()
}

/// Encodes one payload as an HTTP/1.1 chunk (`hex-size CRLF payload
/// CRLF`). An empty payload encodes to nothing rather than the
/// zero-length terminator, so a caller cannot end the stream by
/// accident — use [`last_chunk`] to finish.
#[must_use]
pub fn encode_chunk(payload: &[u8]) -> Vec<u8> {
    if payload.is_empty() {
        return Vec::new();
    }
    let mut out = format!("{:x}\r\n", payload.len()).into_bytes();
    out.extend_from_slice(payload);
    out.extend_from_slice(b"\r\n");
    out
}

/// The zero-length chunk that terminates a chunked response.
#[must_use]
pub fn last_chunk() -> &'static [u8] {
    b"0\r\n\r\n"
}

#[cfg(test)]
mod tests {
    use super::*;

    fn complete(raw: &[u8]) -> (Request, usize) {
        match parse_request(raw) {
            Ok(Parsed::Complete(request, used)) => (request, used),
            other => panic!("expected a complete request, got {other:?}"),
        }
    }

    fn rejected(raw: &[u8]) -> HttpError {
        match parse_request(raw) {
            Err(error) => error,
            other => panic!("expected a rejection, got {other:?}"),
        }
    }

    #[test]
    fn parses_a_get_without_a_body() {
        let raw = b"GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n";
        let (request, used) = complete(raw);
        assert_eq!(request.method, "GET");
        assert_eq!(request.target, "/healthz");
        assert_eq!(request.header("host"), Some("x"));
        assert!(request.body.is_empty());
        assert_eq!(used, raw.len());
    }

    #[test]
    fn parses_a_post_with_a_content_length_body() {
        let raw = b"POST /v1/jobs HTTP/1.1\r\nContent-Length: 4\r\n\r\n{\"a\"";
        let (request, used) = complete(raw);
        assert_eq!(request.body, b"{\"a\"");
        assert_eq!(used, raw.len());
    }

    #[test]
    fn pipelined_trailing_bytes_are_not_consumed() {
        let raw = b"GET / HTTP/1.1\r\n\r\nGARBAGE AFTERWARDS";
        let (request, used) = complete(raw);
        assert_eq!(request.target, "/");
        assert_eq!(used, 18);
    }

    #[test]
    fn truncated_requests_ask_for_more_bytes() {
        for raw in [
            &b"GET /healthz HT"[..],
            b"GET / HTTP/1.1\r\nHost: x\r\n",
            b"POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nshort",
        ] {
            assert!(matches!(parse_request(raw), Ok(Parsed::Incomplete)));
        }
    }

    #[test]
    fn header_and_query_helpers() {
        let (request, _) = complete(b"GET /v1/jobs/abc?verbose=1 HTTP/1.1\r\n\r\n");
        assert_eq!(request.path(), "/v1/jobs/abc");
        assert_eq!(request.header("absent"), None);
    }

    #[test]
    fn rejects_malformed_request_lines() {
        assert_eq!(rejected(b"get / HTTP/1.1\r\n\r\n").status, 400);
        assert_eq!(rejected(b"GET noslash HTTP/1.1\r\n\r\n").status, 400);
        assert_eq!(rejected(b"GET / HTTP/9.9\r\n\r\n").status, 400);
        assert_eq!(rejected(b"GET / HTTP/1.1 extra\r\n\r\n").status, 400);
    }

    #[test]
    fn rejects_malformed_headers() {
        assert_eq!(rejected(b"GET / HTTP/1.1\r\nno-colon\r\n\r\n").status, 400);
        assert_eq!(rejected(b"GET / HTTP/1.1\r\n: empty\r\n\r\n").status, 400);
        assert_eq!(
            rejected(b"POST / HTTP/1.1\r\nContent-Length: nope\r\n\r\n").status,
            400
        );
        assert_eq!(
            rejected(b"POST / HTTP/1.1\r\nContent-Length: 2\r\nContent-Length: 3\r\n\r\n").status,
            400
        );
    }

    #[test]
    fn rejects_oversized_heads_and_bodies() {
        let huge_head = format!(
            "GET / HTTP/1.1\r\nx: {}\r\n\r\n",
            "y".repeat(MAX_HEAD_BYTES)
        );
        assert_eq!(rejected(huge_head.as_bytes()).status, 431);
        let huge_body = format!(
            "POST / HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY_BYTES + 1
        );
        assert_eq!(rejected(huge_body.as_bytes()).status, 413);
        let header_storm = format!(
            "GET / HTTP/1.1\r\n{}\r\n",
            "a: b\r\n".repeat(MAX_HEADERS + 1)
        );
        assert_eq!(rejected(header_storm.as_bytes()).status, 431);
    }

    #[test]
    fn rejects_chunked_transfer_encoding() {
        assert_eq!(
            rejected(b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n").status,
            501
        );
    }

    #[test]
    fn duplicate_identical_content_lengths_are_tolerated() {
        let raw = b"POST / HTTP/1.1\r\nContent-Length: 2\r\nContent-Length: 2\r\n\r\nok";
        let (request, _) = complete(raw);
        assert_eq!(request.body, b"ok");
    }

    #[test]
    fn chunked_framing_round_trips() {
        let head = String::from_utf8(chunked_head(200, "application/jsonl")).expect("ascii head");
        assert!(head.starts_with("HTTP/1.1 200 OK\r\n"), "{head}");
        assert!(head.contains("transfer-encoding: chunked\r\n"), "{head}");
        assert!(!head.contains("content-length"), "{head}");
        assert!(head.ends_with("\r\n\r\n"), "{head}");
        assert_eq!(encode_chunk(b"hello\n"), b"6\r\nhello\n\r\n");
        assert_eq!(encode_chunk(&[0_u8; 16]).len(), 2 + 2 + 16 + 2);
        assert!(
            encode_chunk(b"").is_empty(),
            "empty payload is not a terminator"
        );
        assert_eq!(last_chunk(), b"0\r\n\r\n");
    }

    #[test]
    fn response_serialisation_includes_framing_headers() {
        let response =
            Response::json(200, &darksil_json::Json::Null).with_header("retry-after", "1");
        let bytes = response.to_bytes();
        let text = String::from_utf8(bytes).expect("ascii response");
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"), "{text}");
        assert!(text.contains("content-length: 5\r\n"), "{text}");
        assert!(text.contains("connection: close\r\n"), "{text}");
        assert!(text.contains("retry-after: 1\r\n"), "{text}");
        assert!(text.ends_with("null\n"), "{text}");
    }
}
