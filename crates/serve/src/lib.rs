//! `darksil-serve`: the `darksil serve` daemon (a.k.a. `darksil-d`) —
//! a multi-tenant HTTP/1.1 front end over the darksil engine.
//!
//! The paper's design-space exploration pays off when many users probe
//! it interactively; this crate promotes the batch CLI into a
//! long-running service with the robustness properties the rest of the
//! workspace already provides piecemeal:
//!
//! - **Admission control & backpressure** ([`registry`]): per-tenant
//!   quotas and a global in-flight cap, decided atomically; rejections
//!   are `429 + Retry-After` with typed `capacity` errors — memory use
//!   is bounded by construction.
//! - **Content-addressed dedup**: a job's identity is the digest of
//!   its canonical scenario + fault spec; identical submissions from
//!   different tenants share one record, and identical scenarios share
//!   one solve through the engine's [`ResultCache`].
//! - **Slowloris-safe parsing** ([`http`]): a pure, panic-free
//!   incremental parser with hard caps on head, header count, target,
//!   and body, plus per-read socket timeouts and one end-to-end
//!   read deadline per request (a [`CancellationToken`] anchored at
//!   accept time).
//! - **Crash-safe lifecycle** ([`server`]): requests are spooled and
//!   journalled (via `darksil-bench`'s [`Journal`]) before they are
//!   acknowledged, artefacts hit disk before the `done` transition,
//!   and a SIGKILL'd daemon restarts, re-queues unfinished jobs, and
//!   serves byte-identical artefacts.
//! - **Graceful drain** ([`signal`]): SIGTERM/SIGINT (or
//!   `POST /v1/drain`) stops the accept loop, waits out in-flight
//!   jobs up to a grace period, checkpoints the rest, and exits 0.
//!   While draining, `/healthz` answers `503 {"draining": true}` so
//!   load balancers stop routing, but `/v1/stats` and `/metrics`
//!   stay reachable for a final scrape.
//! - **Live telemetry** (`darksil-obs` `metrics`): per-tenant and
//!   per-endpoint counters, scrape-time gauges, and rolling-window
//!   latency histograms exposed as deterministic Prometheus text at
//!   `GET /metrics`; per-job lifecycle streaming at
//!   `GET /v1/jobs/{digest}/watch` (chunked JSON lines driven by the
//!   supervisor's attempt hook); derived event-stream statistics at
//!   `GET /v1/jobs/{digest}/events`.
//!
//! # Protocol
//!
//! | Method & path               | Purpose                                    |
//! |-----------------------------|--------------------------------------------|
//! | `GET /healthz`              | Liveness + in-flight count (503 draining)  |
//! | `GET /metrics`              | Prometheus text exposition                 |
//! | `GET /v1/stats`             | Job-state counts and admission counters    |
//! | `POST /v1/jobs`             | Submit `{tenant, scenario, faults?}`       |
//! | `GET /v1/jobs/{digest}`     | Status + supervisor attempt timeline       |
//! | `GET /v1/jobs/{digest}/report` | Self-contained HTML report              |
//! | `GET /v1/jobs/{digest}/events` | Derived event-stream statistics         |
//! | `GET /v1/jobs/{digest}/watch`  | Chunked JSON-line lifecycle stream      |
//! | `GET /v1/artefacts/{digest}`| Finished artefact bytes (exact)            |
//! | `POST /v1/drain`            | Graceful drain (SIGTERM equivalent)        |
//!
//! [`CancellationToken`]: darksil_robust::CancellationToken
//! [`Journal`]: darksil_bench::Journal
//! [`ResultCache`]: darksil_engine::ResultCache

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod http;
pub mod registry;
pub mod report;
pub mod server;
pub mod signal;

pub use http::{parse_request, HttpError, Parsed, Request, Response};
pub use registry::{Admission, JobRecord, JobState, Registry, Rejection};
pub use server::{DrainSummary, FaultSpec, ServeConfig, Server, SERVE_CACHE_SALT, SPOOL_SCHEMA};
