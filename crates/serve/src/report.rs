//! Self-contained HTML report for one served job.
//!
//! `GET /v1/jobs/<digest>/report` renders the job record — state,
//! tenants, supervisor attempt timeline — plus the artefact JSON into
//! a single dependency-free HTML page, mirroring the run reports the
//! CLI writes under `results/`.

use darksil_json::Json;

use crate::registry::JobRecord;

fn escape(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    for ch in text.chars() {
        match ch {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            _ => out.push(ch),
        }
    }
    out
}

fn attempt_row(attempt: &Json) -> String {
    let field = |name: &str| -> String {
        match attempt {
            Json::Obj(fields) => fields
                .iter()
                .find(|(key, _)| key == name)
                .map(|(_, value)| match value {
                    Json::Str(s) => s.clone(),
                    Json::Num(n) => format!("{n}"),
                    Json::Bool(b) => b.to_string(),
                    Json::Null => String::from("—"),
                    other => other.compact(),
                })
                .unwrap_or_else(|| String::from("—")),
            _ => String::from("—"),
        }
    };
    format!(
        "<tr><td>{}</td><td>{}</td><td>{}</td><td>{}</td><td>{}</td></tr>",
        escape(&field("attempt")),
        escape(&field("outcome")),
        escape(&field("degraded")),
        escape(&field("backoff_ms")),
        escape(&field("error")),
    )
}

/// Renders the report page. `artefact` is the finished payload when
/// one exists.
#[must_use]
pub fn render(record: &JobRecord, artefact: Option<&Json>) -> String {
    let mut html = String::new();
    html.push_str("<!doctype html>\n<html><head><meta charset=\"utf-8\">\n");
    html.push_str(&format!(
        "<title>darksil job {}</title>\n",
        escape(&record.digest)
    ));
    html.push_str(
        "<style>body{font-family:system-ui,sans-serif;margin:2rem;max-width:60rem}\
         table{border-collapse:collapse}td,th{border:1px solid #ccc;padding:.3rem .6rem;\
         text-align:left}pre{background:#f6f6f6;padding:1rem;overflow:auto}\
         .state{font-weight:bold}</style></head><body>\n",
    );
    html.push_str(&format!(
        "<h1>Job <code>{}</code></h1>\n",
        escape(&record.digest)
    ));
    html.push_str(&format!(
        "<p>state: <span class=\"state\">{}</span> · tenants: {} · {:.3}s</p>\n",
        escape(record.state.label()),
        escape(&record.tenants.join(", ")),
        record.seconds
    ));
    if let Some(error) = &record.error {
        html.push_str(&format!("<p>error: <code>{}</code></p>\n", escape(error)));
    }
    if let Some(cache) = &record.cache {
        html.push_str(&format!("<p>cache: {}</p>\n", escape(cache)));
    }
    if record.attempts.is_empty() {
        html.push_str("<p>No attempts recorded yet.</p>\n");
    } else {
        html.push_str(
            "<h2>Attempts</h2>\n<table><tr><th>#</th><th>outcome</th>\
             <th>degraded</th><th>backoff&nbsp;ms</th><th>error</th></tr>\n",
        );
        for attempt in &record.attempts {
            html.push_str(&attempt_row(attempt));
            html.push('\n');
        }
        html.push_str("</table>\n");
    }
    if let Some(payload) = artefact {
        html.push_str("<h2>Artefact</h2>\n<pre>");
        html.push_str(&escape(&payload.pretty()));
        html.push_str("</pre>\n");
    }
    html.push_str("</body></html>\n");
    html
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::JobState;

    #[test]
    fn report_escapes_and_includes_the_timeline() {
        let record = JobRecord {
            digest: "abc123".to_string(),
            tenants: vec!["<script>".to_string()],
            state: JobState::Degraded,
            error: None,
            attempts: vec![Json::Obj(vec![
                ("attempt".to_string(), Json::Num(0.0)),
                ("outcome".to_string(), Json::Str("retried".to_string())),
                ("degraded".to_string(), Json::Bool(false)),
                ("backoff_ms".to_string(), Json::Num(50.0)),
                ("error".to_string(), Json::Str("[solver] boom".to_string())),
            ])],
            seconds: 0.25,
            cache: Some("miss".to_string()),
            transitions: Vec::new(),
        };
        let payload = Json::Obj(vec![("name".to_string(), Json::Str("x".to_string()))]);
        let html = render(&record, Some(&payload));
        assert!(html.contains("&lt;script&gt;"), "tenant must be escaped");
        assert!(html.contains("degraded"), "{html}");
        assert!(html.contains("retried"), "{html}");
        assert!(html.contains("Artefact"), "{html}");
        assert!(!html.contains("<script>"), "no raw tenant injection");
    }
}
