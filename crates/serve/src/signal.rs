//! Minimal, std-only termination-signal latch.
//!
//! The daemon needs exactly one bit from the outside world: "stop
//! accepting and drain". std exposes no signal API, and the workspace
//! is dependency-free, so on Unix we bind the C `signal(2)` entry
//! point directly (std already links libc) and install a handler that
//! does the only async-signal-safe thing possible — store into an
//! atomic. The accept loop polls [`termination_requested`] between
//! accepts. On non-Unix targets the latch still exists but only the
//! `POST /v1/drain` endpoint can trip it.

use std::sync::atomic::{AtomicBool, Ordering};

static TERMINATE: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
mod unix {
    use super::{Ordering, TERMINATE};

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }

    extern "C" fn on_terminate(_signum: i32) {
        // Only an atomic store: anything else (alloc, locks, I/O) is
        // not async-signal-safe.
        TERMINATE.store(true, Ordering::SeqCst);
    }

    /// Installs the SIGTERM/SIGINT handlers. Idempotent.
    pub fn install() {
        let handler = on_terminate as extern "C" fn(i32) as usize;
        // SAFETY: `signal` is the C standard library entry point; the
        // handler is a plain function performing one atomic store.
        unsafe {
            signal(SIGTERM, handler);
            signal(SIGINT, handler);
        }
    }
}

/// Installs the termination handlers where the platform supports
/// them. Safe to call more than once.
pub fn install() {
    #[cfg(unix)]
    unix::install();
}

/// Whether a SIGTERM/SIGINT has been observed (or a drain was
/// requested programmatically).
#[must_use]
pub fn termination_requested() -> bool {
    TERMINATE.load(Ordering::SeqCst)
}

/// Trips the latch without a signal — used by `POST /v1/drain` and by
/// tests.
pub fn request_termination() {
    TERMINATE.store(true, Ordering::SeqCst);
}

/// Clears the latch. Tests (and a daemon restarting its accept loop
/// in-process) need a way back to the accepting state.
pub fn reset() {
    TERMINATE.store(false, Ordering::SeqCst);
}
