//! End-to-end tests for the `darksil serve` daemon: real sockets, the
//! real engine pool, and the real durable state directory.
//!
//! Each test binds port 0 on localhost, drives the daemon with a
//! hand-rolled HTTP/1.1 client (one exchange per connection, matching
//! the server's `Connection: close` contract), and exercises the ISSUE
//! 8 acceptance points that don't need a separate process: submit /
//! poll / fetch, cross-tenant dedup, quota backpressure (429 +
//! Retry-After), typed 4xx rejections, graceful drain, restart
//! serving byte-identical artefacts, resume of journalled-but-
//! unfinished jobs, and FaultPlan chaos through the HTTP path
//! (transient retries and a hang that degrades instead of wedging).
//! The SIGKILL variant of the restart story runs in CI's `service`
//! job, where the daemon is a real child process.

use std::collections::BTreeMap;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use darksil_json::Json;
use darksil_serve::{DrainSummary, ServeConfig, Server};

/// A scratch state directory removed on drop, unique per test.
struct Scratch(PathBuf);

impl Scratch {
    fn new(tag: &str) -> Self {
        static NEXT: AtomicUsize = AtomicUsize::new(0);
        let dir = std::env::temp_dir().join(format!(
            "darksil-serve-test-{}-{}-{}",
            std::process::id(),
            tag,
            NEXT.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&dir).expect("create scratch dir");
        Self(dir)
    }

    fn path(&self) -> &std::path::Path {
        &self.0
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// A daemon running on a background thread; `drain()` asks it to stop
/// and joins for the [`DrainSummary`].
struct Daemon {
    addr: SocketAddr,
    handle: Option<JoinHandle<DrainSummary>>,
}

impl Daemon {
    fn start(config: ServeConfig) -> Self {
        let server = Server::bind(config).expect("bind daemon");
        let addr = server.local_addr().expect("local addr");
        let handle = std::thread::spawn(move || server.run().expect("daemon run"));
        Self {
            addr,
            handle: Some(handle),
        }
    }

    fn drain(mut self) -> DrainSummary {
        let (status, _, _) = request(self.addr, "POST", "/v1/drain", None);
        assert_eq!(status, 202, "drain is acknowledged");
        let handle = self.handle.take().expect("daemon thread");
        handle.join().expect("daemon thread exits cleanly")
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        if let Some(handle) = self.handle.take() {
            let _ = request(self.addr, "POST", "/v1/drain", None);
            let _ = handle.join();
        }
    }
}

/// One HTTP exchange: status code, lowercased headers, body bytes.
fn request(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> (u16, BTreeMap<String, String>, Vec<u8>) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .expect("read timeout");
    let body = body.unwrap_or("");
    let wire = format!(
        "{method} {path} HTTP/1.1\r\nhost: localhost\r\ncontent-length: {}\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(wire.as_bytes()).expect("send request");
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).expect("read response");
    parse_response(&raw)
}

fn parse_response(raw: &[u8]) -> (u16, BTreeMap<String, String>, Vec<u8>) {
    let head_end = raw
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .expect("response head terminator");
    let head = std::str::from_utf8(&raw[..head_end]).expect("UTF-8 response head");
    let mut lines = head.split("\r\n");
    let status_line = lines.next().expect("status line");
    let status: u16 = status_line
        .split(' ')
        .nth(1)
        .expect("status code")
        .parse()
        .expect("numeric status");
    let mut headers = BTreeMap::new();
    for line in lines {
        if let Some((name, value)) = line.split_once(':') {
            headers.insert(name.trim().to_ascii_lowercase(), value.trim().to_string());
        }
    }
    (status, headers, raw[head_end + 4..].to_vec())
}

fn json_body(body: &[u8]) -> Json {
    let text = std::str::from_utf8(body).expect("UTF-8 body");
    darksil_json::parse(text).expect("JSON body")
}

fn scenario_json(name: &str) -> String {
    format!(
        r#"{{"name": "{name}", "node": 16, "cores": 8,
            "workload": [{{"app": "x264", "instances": 1, "threads": 4}}],
            "experiment": {{"type": "policy", "policy": "tdpmap", "tdp_watts": 40.0}}}}"#
    )
}

fn submission(tenant: &str, scenario_name: &str, faults: Option<&str>) -> String {
    let faults = faults.map_or(String::new(), |f| format!(", \"faults\": {f}"));
    format!(
        r#"{{"tenant": "{tenant}", "scenario": {}{faults}}}"#,
        scenario_json(scenario_name)
    )
}

/// Submits and returns the (status, response-json) pair.
fn submit(addr: SocketAddr, body: &str) -> (u16, Json) {
    let (status, _, raw) = request(addr, "POST", "/v1/jobs", Some(body));
    (status, json_body(&raw))
}

fn field<'a>(json: &'a Json, key: &str) -> &'a Json {
    json.get(key)
        .unwrap_or_else(|| panic!("response field `{key}` in {json:?}"))
}

fn str_field(json: &Json, key: &str) -> String {
    field(json, key)
        .as_str()
        .unwrap_or_else(|| panic!("string field `{key}`"))
        .to_string()
}

/// Polls job status until it leaves the queued/running states.
fn await_job(addr: SocketAddr, digest: &str) -> Json {
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let (status, _, raw) = request(addr, "GET", &format!("/v1/jobs/{digest}"), None);
        assert_eq!(status, 200, "job {digest} visible while polling");
        let json = json_body(&raw);
        let state = str_field(&json, "state");
        if state != "queued" && state != "running" {
            return json;
        }
        assert!(
            Instant::now() < deadline,
            "job {digest} still `{state}` after 60 s"
        );
        std::thread::sleep(Duration::from_millis(25));
    }
}

fn test_config(scratch: &Scratch) -> ServeConfig {
    ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        jobs: 2,
        state_dir: scratch.path().to_path_buf(),
        drain_grace: Duration::from_secs(20),
        ..ServeConfig::default()
    }
}

#[test]
fn submit_poll_fetch_and_cross_tenant_dedup() {
    let scratch = Scratch::new("dedup");
    let daemon = Daemon::start(test_config(&scratch));

    let (status, ack) = submit(daemon.addr, &submission("acme", "steady", None));
    assert_eq!(status, 202, "fresh submissions are acknowledged: {ack:?}");
    assert_eq!(field(&ack, "deduped"), &Json::Bool(false));
    let digest = str_field(&ack, "job");
    assert_eq!(digest.len(), 16, "digest is the 16-hex cache key");

    let done = await_job(daemon.addr, &digest);
    assert_eq!(str_field(&done, "state"), "done", "job finishes: {done:?}");

    let (status, _, artefact) =
        request(daemon.addr, "GET", &format!("/v1/artefacts/{digest}"), None);
    assert_eq!(status, 200);
    let report = json_body(&artefact);
    assert_eq!(str_field(&report, "name"), "steady");

    // The same scenario from another tenant is the same job: no second
    // solve, an immediate 200, and both tenants on the record.
    let (status, dup) = submit(daemon.addr, &submission("globex", "steady", None));
    assert_eq!(status, 200, "duplicate submissions return the record");
    assert_eq!(field(&dup, "deduped"), &Json::Bool(true));
    assert_eq!(str_field(&dup, "job"), digest);
    let tenants = format!("{:?}", field(&dup, "tenants"));
    assert!(
        tenants.contains("acme") && tenants.contains("globex"),
        "{tenants}"
    );

    let (status, _, page) = request(
        daemon.addr,
        "GET",
        &format!("/v1/jobs/{digest}/report"),
        None,
    );
    assert_eq!(status, 200);
    let page = String::from_utf8(page).expect("UTF-8 report");
    assert!(
        page.contains("steady") && page.contains("<html"),
        "HTML report"
    );

    let (status, _, raw) = request(daemon.addr, "GET", "/v1/stats", None);
    assert_eq!(status, 200);
    let stats = json_body(&raw).compact().to_string();
    assert!(
        stats.contains("deduped"),
        "stats expose dedup counts: {stats}"
    );
    assert!(
        stats.contains("factor_cache"),
        "stats expose factorisation-cache health: {stats}"
    );

    let summary = daemon.drain();
    assert!(summary.drained, "all work finished before the grace period");
    assert_eq!(summary.unfinished, 0);
}

#[test]
fn tenant_quota_rejections_are_429_with_retry_after() {
    let scratch = Scratch::new("quota");
    let config = ServeConfig {
        tenant_quota: 1,
        ..test_config(&scratch)
    };
    let daemon = Daemon::start(config);

    // A slow job pins the tenant's single quota slot.
    let (status, ack) = submit(
        daemon.addr,
        &submission("acme", "slowpoke", Some(r#"{"slow_ms": 1500}"#)),
    );
    assert_eq!(status, 202, "{ack:?}");
    let digest = str_field(&ack, "job");

    // A *different* scenario from the same tenant now exceeds the
    // quota: 429, Retry-After, and a typed capacity error.
    let (status, headers, raw) = request(
        daemon.addr,
        "POST",
        "/v1/jobs",
        Some(&submission("acme", "rejected", None)),
    );
    assert_eq!(status, 429, "over-quota submissions are backpressured");
    assert!(headers.contains_key("retry-after"), "Retry-After present");
    let error = json_body(&raw);
    let rendered = error.compact().to_string();
    assert!(
        rendered.contains("capacity"),
        "typed capacity error: {rendered}"
    );
    assert!(
        rendered.contains("acme"),
        "error names the tenant: {rendered}"
    );

    // Another tenant is unaffected by acme's quota.
    let (status, other) = submit(daemon.addr, &submission("globex", "rejected", None));
    assert_eq!(status, 202, "{other:?}");

    let done = await_job(daemon.addr, &digest);
    assert_eq!(str_field(&done, "state"), "done");
    daemon.drain();
}

#[test]
fn malformed_submissions_get_typed_4xx_not_panics() {
    let scratch = Scratch::new("badreq");
    let daemon = Daemon::start(test_config(&scratch));

    // Body is not JSON.
    let (status, _, raw) = request(daemon.addr, "POST", "/v1/jobs", Some("{nope"));
    assert_eq!(status, 400);
    assert!(json_body(&raw).compact().to_string().contains("error"));

    // JSON but no tenant.
    let body = format!(r#"{{"scenario": {}}}"#, scenario_json("orphan"));
    let (status, _, _) = request(daemon.addr, "POST", "/v1/jobs", Some(&body));
    assert_eq!(status, 400);

    // Tenant name outside the allowed charset.
    let (status, _, _) = request(
        daemon.addr,
        "POST",
        "/v1/jobs",
        Some(&submission("bad tenant!", "x", None)),
    );
    assert_eq!(status, 400);

    // Invalid scenario (unknown node) is a 400, not a queued failure.
    let body = r#"{"tenant": "acme", "scenario": {"name": "x", "node": 3,
        "workload": [{"app": "x264", "instances": 1, "threads": 4}],
        "experiment": {"type": "policy", "policy": "tdpmap", "tdp_watts": 40.0}}}"#;
    let (status, _, _) = request(daemon.addr, "POST", "/v1/jobs", Some(body));
    assert_eq!(status, 400);

    // Unknown job digests and paths are 404; wrong methods are 405.
    let (status, _, _) = request(daemon.addr, "GET", "/v1/jobs/0123456789abcdef", None);
    assert_eq!(status, 404);
    let (status, _, _) = request(daemon.addr, "GET", "/v1/nope", None);
    assert_eq!(status, 404);
    let (status, _, _) = request(daemon.addr, "GET", "/v1/jobs", None);
    assert_eq!(status, 405);

    let (status, _, raw) = request(daemon.addr, "GET", "/healthz", None);
    assert_eq!(status, 200, "daemon still healthy after abuse");
    assert!(json_body(&raw).compact().to_string().contains("ok"));
    daemon.drain();
}

#[test]
fn restart_serves_byte_identical_artefacts() {
    let scratch = Scratch::new("restart");

    // First incarnation: solve one scenario, remember the bytes.
    let daemon = Daemon::start(test_config(&scratch));
    let addr = daemon.addr;
    let (status, ack) = submit(addr, &submission("acme", "durable", None));
    assert_eq!(status, 202, "{ack:?}");
    let digest = str_field(&ack, "job");
    await_job(addr, &digest);
    let (status, _, first_bytes) = request(addr, "GET", &format!("/v1/artefacts/{digest}"), None);
    assert_eq!(status, 200);
    let summary = daemon.drain();
    assert!(summary.drained);

    // Second incarnation on the same state directory: the job is
    // restored as done and the artefact is byte-identical.
    let daemon = Daemon::start(test_config(&scratch));
    let (status, _, raw) = request(daemon.addr, "GET", &format!("/v1/jobs/{digest}"), None);
    assert_eq!(status, 200, "restart restores the finished record");
    assert_eq!(str_field(&json_body(&raw), "state"), "done");
    let (status, _, second_bytes) =
        request(daemon.addr, "GET", &format!("/v1/artefacts/{digest}"), None);
    assert_eq!(status, 200);
    assert_eq!(first_bytes, second_bytes, "artefact bytes survive restart");
    daemon.drain();
}

#[test]
fn restart_resumes_journalled_unfinished_jobs() {
    let scratch = Scratch::new("resume");
    let digest = "00112233445566aa";

    // Fabricate the durable state a SIGKILL'd daemon leaves behind: a
    // journal entry still Pending and its spooled request, but no
    // artefact. The spool layout is the daemon's own (schema'd) file.
    let fingerprint = Json::Obj(vec![
        (
            "service".to_string(),
            Json::Str("darksil-serve".to_string()),
        ),
        ("schema".to_string(), Json::Num(1.0)),
    ]);
    let journal =
        darksil_bench::Journal::create(scratch.path().join("journal.json"), fingerprint, &[]);
    journal.ensure(digest).expect("journal the fabricated job");
    let spool = format!(
        r#"{{"schema": "{}", "digest": "{digest}", "tenants": ["acme"],
            "scenario": {}, "faults": {{}}}}"#,
        darksil_serve::SPOOL_SCHEMA,
        scenario_json("interrupted")
    );
    let jobs_dir = scratch.path().join("jobs");
    std::fs::create_dir_all(&jobs_dir).expect("jobs dir");
    std::fs::write(jobs_dir.join(format!("{digest}.json")), spool).expect("spool file");

    // A fresh daemon picks the job up with no new submission and runs
    // it to completion.
    let daemon = Daemon::start(test_config(&scratch));
    let done = await_job(daemon.addr, digest);
    assert_eq!(
        str_field(&done, "state"),
        "done",
        "resumed job ran: {done:?}"
    );
    let (status, _, raw) = request(daemon.addr, "GET", &format!("/v1/artefacts/{digest}"), None);
    assert_eq!(status, 200);
    assert_eq!(str_field(&json_body(&raw), "name"), "interrupted");
    daemon.drain();
}

#[test]
fn chaos_through_http_transient_retries_and_hang_degrades() {
    let scratch = Scratch::new("chaos");
    let config = ServeConfig {
        job_deadline: Duration::from_millis(250),
        ..test_config(&scratch)
    };
    let daemon = Daemon::start(config);

    // Two transient failures: the supervisor retries through them and
    // the attempt timeline shows the injected errors.
    let (status, ack) = submit(
        daemon.addr,
        &submission("acme", "flaky", Some(r#"{"transient": 2}"#)),
    );
    assert_eq!(status, 202, "{ack:?}");
    let flaky = str_field(&ack, "job");
    let done = await_job(daemon.addr, &flaky);
    assert_eq!(str_field(&done, "state"), "done");
    let timeline = field(&done, "attempts").compact().to_string();
    assert!(timeline.contains("injected"), "retries visible: {timeline}");

    // A hang eats every full-fidelity attempt's deadline, then the
    // degraded attempt completes: degraded state, artefact still
    // served (the "degraded-but-200" acceptance point).
    let (status, ack) = submit(
        daemon.addr,
        &submission("acme", "wedged", Some(r#"{"hang": true}"#)),
    );
    assert_eq!(status, 202, "{ack:?}");
    let wedged = str_field(&ack, "job");
    let outcome = await_job(daemon.addr, &wedged);
    assert_eq!(
        str_field(&outcome, "state"),
        "degraded",
        "hang degrades instead of wedging: {outcome:?}"
    );
    let (status, _, raw) = request(daemon.addr, "GET", &format!("/v1/artefacts/{wedged}"), None);
    assert_eq!(status, 200, "degraded artefacts are still served");
    assert_eq!(str_field(&json_body(&raw), "name"), "wedged");

    // A NaN poison is non-retryable: failed state, typed error, 409
    // when the artefact is requested.
    let (status, ack) = submit(
        daemon.addr,
        &submission("acme", "poisoned", Some(r#"{"nan": true}"#)),
    );
    assert_eq!(status, 202, "{ack:?}");
    let poisoned = str_field(&ack, "job");
    let outcome = await_job(daemon.addr, &poisoned);
    assert_eq!(str_field(&outcome, "state"), "failed");
    assert!(
        str_field(&outcome, "error").contains("non-finite")
            || str_field(&outcome, "error").contains("NaN"),
        "typed non-finite error: {outcome:?}"
    );
    let (status, _, _) = request(
        daemon.addr,
        "GET",
        &format!("/v1/artefacts/{poisoned}"),
        None,
    );
    assert_eq!(status, 409, "no artefact for a failed job");
    daemon.drain();
}
