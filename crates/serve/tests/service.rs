//! End-to-end tests for the `darksil serve` daemon: real sockets, the
//! real engine pool, and the real durable state directory.
//!
//! Each test binds port 0 on localhost, drives the daemon with a
//! hand-rolled HTTP/1.1 client (one exchange per connection, matching
//! the server's `Connection: close` contract), and exercises the ISSUE
//! 8 acceptance points that don't need a separate process: submit /
//! poll / fetch, cross-tenant dedup, quota backpressure (429 +
//! Retry-After), typed 4xx rejections, graceful drain, restart
//! serving byte-identical artefacts, resume of journalled-but-
//! unfinished jobs, and FaultPlan chaos through the HTTP path
//! (transient retries and a hang that degrades instead of wedging).
//! The SIGKILL variant of the restart story runs in CI's `service`
//! job, where the daemon is a real child process.

use std::collections::BTreeMap;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use darksil_json::Json;
use darksil_serve::{DrainSummary, ServeConfig, Server};

/// A scratch state directory removed on drop, unique per test.
struct Scratch(PathBuf);

impl Scratch {
    fn new(tag: &str) -> Self {
        static NEXT: AtomicUsize = AtomicUsize::new(0);
        let dir = std::env::temp_dir().join(format!(
            "darksil-serve-test-{}-{}-{}",
            std::process::id(),
            tag,
            NEXT.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&dir).expect("create scratch dir");
        Self(dir)
    }

    fn path(&self) -> &std::path::Path {
        &self.0
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// A daemon running on a background thread; `drain()` asks it to stop
/// and joins for the [`DrainSummary`].
struct Daemon {
    addr: SocketAddr,
    handle: Option<JoinHandle<DrainSummary>>,
}

impl Daemon {
    fn start(config: ServeConfig) -> Self {
        let server = Server::bind(config).expect("bind daemon");
        let addr = server.local_addr().expect("local addr");
        let handle = std::thread::spawn(move || server.run().expect("daemon run"));
        Self {
            addr,
            handle: Some(handle),
        }
    }

    fn drain(mut self) -> DrainSummary {
        let (status, _, _) = request(self.addr, "POST", "/v1/drain", None);
        assert_eq!(status, 202, "drain is acknowledged");
        let handle = self.handle.take().expect("daemon thread");
        handle.join().expect("daemon thread exits cleanly")
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        if let Some(handle) = self.handle.take() {
            let _ = request(self.addr, "POST", "/v1/drain", None);
            let _ = handle.join();
        }
    }
}

/// One HTTP exchange: status code, lowercased headers, body bytes.
fn request(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> (u16, BTreeMap<String, String>, Vec<u8>) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .expect("read timeout");
    let body = body.unwrap_or("");
    let wire = format!(
        "{method} {path} HTTP/1.1\r\nhost: localhost\r\ncontent-length: {}\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(wire.as_bytes()).expect("send request");
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).expect("read response");
    parse_response(&raw)
}

fn parse_response(raw: &[u8]) -> (u16, BTreeMap<String, String>, Vec<u8>) {
    let head_end = raw
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .expect("response head terminator");
    let head = std::str::from_utf8(&raw[..head_end]).expect("UTF-8 response head");
    let mut lines = head.split("\r\n");
    let status_line = lines.next().expect("status line");
    let status: u16 = status_line
        .split(' ')
        .nth(1)
        .expect("status code")
        .parse()
        .expect("numeric status");
    let mut headers = BTreeMap::new();
    for line in lines {
        if let Some((name, value)) = line.split_once(':') {
            headers.insert(name.trim().to_ascii_lowercase(), value.trim().to_string());
        }
    }
    (status, headers, raw[head_end + 4..].to_vec())
}

fn json_body(body: &[u8]) -> Json {
    let text = std::str::from_utf8(body).expect("UTF-8 body");
    darksil_json::parse(text).expect("JSON body")
}

fn scenario_json(name: &str) -> String {
    format!(
        r#"{{"name": "{name}", "node": 16, "cores": 8,
            "workload": [{{"app": "x264", "instances": 1, "threads": 4}}],
            "experiment": {{"type": "policy", "policy": "tdpmap", "tdp_watts": 40.0}}}}"#
    )
}

fn submission(tenant: &str, scenario_name: &str, faults: Option<&str>) -> String {
    let faults = faults.map_or(String::new(), |f| format!(", \"faults\": {f}"));
    format!(
        r#"{{"tenant": "{tenant}", "scenario": {}{faults}}}"#,
        scenario_json(scenario_name)
    )
}

/// Submits and returns the (status, response-json) pair.
fn submit(addr: SocketAddr, body: &str) -> (u16, Json) {
    let (status, _, raw) = request(addr, "POST", "/v1/jobs", Some(body));
    (status, json_body(&raw))
}

fn field<'a>(json: &'a Json, key: &str) -> &'a Json {
    json.get(key)
        .unwrap_or_else(|| panic!("response field `{key}` in {json:?}"))
}

fn str_field(json: &Json, key: &str) -> String {
    field(json, key)
        .as_str()
        .unwrap_or_else(|| panic!("string field `{key}`"))
        .to_string()
}

/// Polls job status until it leaves the queued/running states.
fn await_job(addr: SocketAddr, digest: &str) -> Json {
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let (status, _, raw) = request(addr, "GET", &format!("/v1/jobs/{digest}"), None);
        assert_eq!(status, 200, "job {digest} visible while polling");
        let json = json_body(&raw);
        let state = str_field(&json, "state");
        if state != "queued" && state != "running" {
            return json;
        }
        assert!(
            Instant::now() < deadline,
            "job {digest} still `{state}` after 60 s"
        );
        std::thread::sleep(Duration::from_millis(25));
    }
}

fn test_config(scratch: &Scratch) -> ServeConfig {
    ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        jobs: 2,
        state_dir: scratch.path().to_path_buf(),
        drain_grace: Duration::from_secs(20),
        ..ServeConfig::default()
    }
}

#[test]
fn submit_poll_fetch_and_cross_tenant_dedup() {
    let scratch = Scratch::new("dedup");
    let daemon = Daemon::start(test_config(&scratch));

    let (status, ack) = submit(daemon.addr, &submission("acme", "steady", None));
    assert_eq!(status, 202, "fresh submissions are acknowledged: {ack:?}");
    assert_eq!(field(&ack, "deduped"), &Json::Bool(false));
    let digest = str_field(&ack, "job");
    assert_eq!(digest.len(), 16, "digest is the 16-hex cache key");

    let done = await_job(daemon.addr, &digest);
    assert_eq!(str_field(&done, "state"), "done", "job finishes: {done:?}");

    let (status, _, artefact) =
        request(daemon.addr, "GET", &format!("/v1/artefacts/{digest}"), None);
    assert_eq!(status, 200);
    let report = json_body(&artefact);
    assert_eq!(str_field(&report, "name"), "steady");

    // The same scenario from another tenant is the same job: no second
    // solve, an immediate 200, and both tenants on the record.
    let (status, dup) = submit(daemon.addr, &submission("globex", "steady", None));
    assert_eq!(status, 200, "duplicate submissions return the record");
    assert_eq!(field(&dup, "deduped"), &Json::Bool(true));
    assert_eq!(str_field(&dup, "job"), digest);
    let tenants = format!("{:?}", field(&dup, "tenants"));
    assert!(
        tenants.contains("acme") && tenants.contains("globex"),
        "{tenants}"
    );

    let (status, _, page) = request(
        daemon.addr,
        "GET",
        &format!("/v1/jobs/{digest}/report"),
        None,
    );
    assert_eq!(status, 200);
    let page = String::from_utf8(page).expect("UTF-8 report");
    assert!(
        page.contains("steady") && page.contains("<html"),
        "HTML report"
    );

    let (status, _, raw) = request(daemon.addr, "GET", "/v1/stats", None);
    assert_eq!(status, 200);
    let stats = json_body(&raw).compact().to_string();
    assert!(
        stats.contains("deduped"),
        "stats expose dedup counts: {stats}"
    );
    assert!(
        stats.contains("factor_cache"),
        "stats expose factorisation-cache health: {stats}"
    );

    let summary = daemon.drain();
    assert!(summary.drained, "all work finished before the grace period");
    assert_eq!(summary.unfinished, 0);
}

#[test]
fn tenant_quota_rejections_are_429_with_retry_after() {
    let scratch = Scratch::new("quota");
    let config = ServeConfig {
        tenant_quota: 1,
        ..test_config(&scratch)
    };
    let daemon = Daemon::start(config);

    // A slow job pins the tenant's single quota slot.
    let (status, ack) = submit(
        daemon.addr,
        &submission("acme", "slowpoke", Some(r#"{"slow_ms": 1500}"#)),
    );
    assert_eq!(status, 202, "{ack:?}");
    let digest = str_field(&ack, "job");

    // A *different* scenario from the same tenant now exceeds the
    // quota: 429, Retry-After, and a typed capacity error.
    let (status, headers, raw) = request(
        daemon.addr,
        "POST",
        "/v1/jobs",
        Some(&submission("acme", "rejected", None)),
    );
    assert_eq!(status, 429, "over-quota submissions are backpressured");
    assert!(headers.contains_key("retry-after"), "Retry-After present");
    let error = json_body(&raw);
    let rendered = error.compact().to_string();
    assert!(
        rendered.contains("capacity"),
        "typed capacity error: {rendered}"
    );
    assert!(
        rendered.contains("acme"),
        "error names the tenant: {rendered}"
    );

    // Another tenant is unaffected by acme's quota.
    let (status, other) = submit(daemon.addr, &submission("globex", "rejected", None));
    assert_eq!(status, 202, "{other:?}");

    let done = await_job(daemon.addr, &digest);
    assert_eq!(str_field(&done, "state"), "done");
    daemon.drain();
}

#[test]
fn malformed_submissions_get_typed_4xx_not_panics() {
    let scratch = Scratch::new("badreq");
    let daemon = Daemon::start(test_config(&scratch));

    // Body is not JSON.
    let (status, _, raw) = request(daemon.addr, "POST", "/v1/jobs", Some("{nope"));
    assert_eq!(status, 400);
    assert!(json_body(&raw).compact().to_string().contains("error"));

    // JSON but no tenant.
    let body = format!(r#"{{"scenario": {}}}"#, scenario_json("orphan"));
    let (status, _, _) = request(daemon.addr, "POST", "/v1/jobs", Some(&body));
    assert_eq!(status, 400);

    // Tenant name outside the allowed charset.
    let (status, _, _) = request(
        daemon.addr,
        "POST",
        "/v1/jobs",
        Some(&submission("bad tenant!", "x", None)),
    );
    assert_eq!(status, 400);

    // Invalid scenario (unknown node) is a 400, not a queued failure.
    let body = r#"{"tenant": "acme", "scenario": {"name": "x", "node": 3,
        "workload": [{"app": "x264", "instances": 1, "threads": 4}],
        "experiment": {"type": "policy", "policy": "tdpmap", "tdp_watts": 40.0}}}"#;
    let (status, _, _) = request(daemon.addr, "POST", "/v1/jobs", Some(body));
    assert_eq!(status, 400);

    // Unknown job digests and paths are 404; wrong methods are 405.
    let (status, _, _) = request(daemon.addr, "GET", "/v1/jobs/0123456789abcdef", None);
    assert_eq!(status, 404);
    let (status, _, _) = request(daemon.addr, "GET", "/v1/nope", None);
    assert_eq!(status, 404);
    let (status, _, _) = request(daemon.addr, "GET", "/v1/jobs", None);
    assert_eq!(status, 405);

    let (status, _, raw) = request(daemon.addr, "GET", "/healthz", None);
    assert_eq!(status, 200, "daemon still healthy after abuse");
    assert!(json_body(&raw).compact().to_string().contains("ok"));
    daemon.drain();
}

#[test]
fn restart_serves_byte_identical_artefacts() {
    let scratch = Scratch::new("restart");

    // First incarnation: solve one scenario, remember the bytes.
    let daemon = Daemon::start(test_config(&scratch));
    let addr = daemon.addr;
    let (status, ack) = submit(addr, &submission("acme", "durable", None));
    assert_eq!(status, 202, "{ack:?}");
    let digest = str_field(&ack, "job");
    await_job(addr, &digest);
    let (status, _, first_bytes) = request(addr, "GET", &format!("/v1/artefacts/{digest}"), None);
    assert_eq!(status, 200);
    let summary = daemon.drain();
    assert!(summary.drained);

    // Second incarnation on the same state directory: the job is
    // restored as done and the artefact is byte-identical.
    let daemon = Daemon::start(test_config(&scratch));
    let (status, _, raw) = request(daemon.addr, "GET", &format!("/v1/jobs/{digest}"), None);
    assert_eq!(status, 200, "restart restores the finished record");
    assert_eq!(str_field(&json_body(&raw), "state"), "done");
    let (status, _, second_bytes) =
        request(daemon.addr, "GET", &format!("/v1/artefacts/{digest}"), None);
    assert_eq!(status, 200);
    assert_eq!(first_bytes, second_bytes, "artefact bytes survive restart");
    daemon.drain();
}

#[test]
fn restart_resumes_journalled_unfinished_jobs() {
    let scratch = Scratch::new("resume");
    let digest = "00112233445566aa";

    // Fabricate the durable state a SIGKILL'd daemon leaves behind: a
    // journal entry still Pending and its spooled request, but no
    // artefact. The spool layout is the daemon's own (schema'd) file.
    let fingerprint = Json::Obj(vec![
        (
            "service".to_string(),
            Json::Str("darksil-serve".to_string()),
        ),
        ("schema".to_string(), Json::Num(1.0)),
    ]);
    let journal =
        darksil_bench::Journal::create(scratch.path().join("journal.json"), fingerprint, &[]);
    journal.ensure(digest).expect("journal the fabricated job");
    let spool = format!(
        r#"{{"schema": "{}", "digest": "{digest}", "tenants": ["acme"],
            "scenario": {}, "faults": {{}}}}"#,
        darksil_serve::SPOOL_SCHEMA,
        scenario_json("interrupted")
    );
    let jobs_dir = scratch.path().join("jobs");
    std::fs::create_dir_all(&jobs_dir).expect("jobs dir");
    std::fs::write(jobs_dir.join(format!("{digest}.json")), spool).expect("spool file");

    // A fresh daemon picks the job up with no new submission and runs
    // it to completion.
    let daemon = Daemon::start(test_config(&scratch));
    let done = await_job(daemon.addr, digest);
    assert_eq!(
        str_field(&done, "state"),
        "done",
        "resumed job ran: {done:?}"
    );
    let (status, _, raw) = request(daemon.addr, "GET", &format!("/v1/artefacts/{digest}"), None);
    assert_eq!(status, 200);
    assert_eq!(str_field(&json_body(&raw), "name"), "interrupted");
    daemon.drain();
}

#[test]
fn chaos_through_http_transient_retries_and_hang_degrades() {
    let scratch = Scratch::new("chaos");
    let config = ServeConfig {
        job_deadline: Duration::from_millis(250),
        ..test_config(&scratch)
    };
    let daemon = Daemon::start(config);

    // Two transient failures: the supervisor retries through them and
    // the attempt timeline shows the injected errors.
    let (status, ack) = submit(
        daemon.addr,
        &submission("acme", "flaky", Some(r#"{"transient": 2}"#)),
    );
    assert_eq!(status, 202, "{ack:?}");
    let flaky = str_field(&ack, "job");
    let done = await_job(daemon.addr, &flaky);
    assert_eq!(str_field(&done, "state"), "done");
    let timeline = field(&done, "attempts").compact().to_string();
    assert!(timeline.contains("injected"), "retries visible: {timeline}");

    // A hang eats every full-fidelity attempt's deadline, then the
    // degraded attempt completes: degraded state, artefact still
    // served (the "degraded-but-200" acceptance point).
    let (status, ack) = submit(
        daemon.addr,
        &submission("acme", "wedged", Some(r#"{"hang": true}"#)),
    );
    assert_eq!(status, 202, "{ack:?}");
    let wedged = str_field(&ack, "job");
    let outcome = await_job(daemon.addr, &wedged);
    assert_eq!(
        str_field(&outcome, "state"),
        "degraded",
        "hang degrades instead of wedging: {outcome:?}"
    );
    let (status, _, raw) = request(daemon.addr, "GET", &format!("/v1/artefacts/{wedged}"), None);
    assert_eq!(status, 200, "degraded artefacts are still served");
    assert_eq!(str_field(&json_body(&raw), "name"), "wedged");

    // A NaN poison is non-retryable: failed state, typed error, 409
    // when the artefact is requested.
    let (status, ack) = submit(
        daemon.addr,
        &submission("acme", "poisoned", Some(r#"{"nan": true}"#)),
    );
    assert_eq!(status, 202, "{ack:?}");
    let poisoned = str_field(&ack, "job");
    let outcome = await_job(daemon.addr, &poisoned);
    assert_eq!(str_field(&outcome, "state"), "failed");
    assert!(
        str_field(&outcome, "error").contains("non-finite")
            || str_field(&outcome, "error").contains("NaN"),
        "typed non-finite error: {outcome:?}"
    );
    let (status, _, _) = request(
        daemon.addr,
        "GET",
        &format!("/v1/artefacts/{poisoned}"),
        None,
    );
    assert_eq!(status, 409, "no artefact for a failed job");
    daemon.drain();
}

/// Scrapes `/metrics` and returns the exposition text.
fn scrape(addr: SocketAddr) -> String {
    let (status, headers, body) = request(addr, "GET", "/metrics", None);
    assert_eq!(status, 200, "/metrics is served");
    assert!(
        headers
            .get("content-type")
            .is_some_and(|t| t.starts_with("text/plain")),
        "exposition content type: {headers:?}"
    );
    String::from_utf8(body).expect("UTF-8 exposition")
}

#[test]
fn metrics_exposition_is_deterministic_with_tenant_counters_and_quantiles() {
    let scratch = Scratch::new("metrics");
    let daemon = Daemon::start(test_config(&scratch));

    // Unique tenant names per test run: the metrics registry is
    // process-global and the test binary runs tests in parallel, so
    // all assertions filter down to this test's own label values.
    let tenant_a = format!("mt-{}-a", std::process::id());
    let tenant_b = format!("mt-{}-b", std::process::id());
    let (status, ack) = submit(daemon.addr, &submission(&tenant_a, "observed", None));
    assert_eq!(status, 202, "{ack:?}");
    let digest = str_field(&ack, "job");
    await_job(daemon.addr, &digest);
    // Same scenario again from tenant B: a dedup hit.
    let (status, _) = submit(daemon.addr, &submission(&tenant_b, "observed", None));
    assert_eq!(status, 200);

    let first = scrape(daemon.addr);
    assert!(
        first.contains("# TYPE darksil_serve_requests_total counter"),
        "typed counter section: {first}"
    );
    assert!(
        first.contains(&format!(
            "darksil_serve_tenant_requests_total{{outcome=\"admitted\",tenant=\"{tenant_a}\"}} 1"
        )),
        "per-tenant admitted counter: {first}"
    );
    assert!(
        first.contains(&format!(
            "darksil_serve_tenant_requests_total{{outcome=\"deduped\",tenant=\"{tenant_b}\"}} 1"
        )),
        "per-tenant dedup counter: {first}"
    );
    assert!(
        first.contains("darksil_serve_request_seconds{endpoint=\"/v1/jobs\",quantile=\"0.95\"}"),
        "rolling p95 request latency: {first}"
    );
    assert!(
        first.contains("darksil_serve_request_seconds_count{endpoint=\"/v1/jobs\"}"),
        "summary count line: {first}"
    );

    // Byte-determinism: with no intervening traffic for these tenants,
    // a second scrape renders their series byte-identically (same
    // names, same label order, same values).
    let second = scrape(daemon.addr);
    let tenant_lines = |body: &str| -> Vec<String> {
        body.lines()
            .filter(|l| l.contains("mt-") && l.contains(&tenant_a[..tenant_a.len() - 2]))
            .map(str::to_string)
            .collect()
    };
    assert_eq!(
        tenant_lines(&first),
        tenant_lines(&second),
        "tenant series are byte-deterministic across scrapes"
    );
    assert!(!tenant_lines(&first).is_empty(), "tenant series rendered");

    // Counter monotonicity: scraping /metrics bumps its own endpoint
    // counter, so the total across scrapes strictly increases.
    let requests_total = |body: &str| -> f64 {
        body.lines()
            .filter(|l| l.starts_with("darksil_serve_requests_total{"))
            .filter_map(|l| l.rsplit_once(' ')?.1.parse::<f64>().ok())
            .sum()
    };
    assert!(
        requests_total(&second) > requests_total(&first),
        "request counters are monotone: {} then {}",
        requests_total(&first),
        requests_total(&second)
    );
    daemon.drain();
}

/// Reads one chunked-transfer response from `stream` to EOF and
/// returns the decoded JSON lines.
fn read_watch_stream(mut stream: TcpStream) -> Vec<Json> {
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).expect("read watch stream");
    let head_end = raw
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .expect("watch head terminator");
    let head = std::str::from_utf8(&raw[..head_end]).expect("UTF-8 head");
    assert!(head.contains(" 200 "), "watch streams 200: {head}");
    assert!(
        head.to_ascii_lowercase()
            .contains("transfer-encoding: chunked"),
        "watch is chunked: {head}"
    );
    let mut body = &raw[head_end + 4..];
    let mut decoded = Vec::new();
    loop {
        let line_end = body
            .windows(2)
            .position(|w| w == b"\r\n")
            .expect("chunk size line");
        let size = usize::from_str_radix(
            std::str::from_utf8(&body[..line_end]).expect("UTF-8 chunk size"),
            16,
        )
        .expect("hex chunk size");
        body = &body[line_end + 2..];
        if size == 0 {
            break;
        }
        decoded.extend_from_slice(&body[..size]);
        body = &body[size + 2..];
    }
    String::from_utf8(decoded)
        .expect("UTF-8 watch payload")
        .lines()
        .map(|line| darksil_json::parse(line).expect("JSON watch line"))
        .collect()
}

#[test]
fn watch_streams_the_full_job_lifecycle_over_a_real_socket() {
    let scratch = Scratch::new("watch");
    let daemon = Daemon::start(test_config(&scratch));

    // A slow job so the watcher can attach while it is still running.
    let (status, ack) = submit(
        daemon.addr,
        &submission("acme", "watched", Some(r#"{"slow_ms": 400}"#)),
    );
    assert_eq!(status, 202, "{ack:?}");
    let digest = str_field(&ack, "job");

    let mut stream = TcpStream::connect(daemon.addr).expect("connect watcher");
    stream
        .set_read_timeout(Some(Duration::from_secs(60)))
        .expect("read timeout");
    let wire = format!("GET /v1/jobs/{digest}/watch HTTP/1.1\r\nhost: localhost\r\n\r\n");
    stream.write_all(wire.as_bytes()).expect("send watch");
    let lines = read_watch_stream(stream);

    let states: Vec<&str> = lines
        .iter()
        .filter_map(|l| l.get("state").and_then(Json::as_str))
        .collect();
    assert_eq!(
        states.first(),
        Some(&"queued"),
        "history starts at admission: {states:?}"
    );
    assert!(states.contains(&"running"), "running observed: {states:?}");
    assert_eq!(
        states.last(),
        Some(&"done"),
        "stream ends at the terminal state: {states:?}"
    );
    // Supervisor attempt transitions ride the same stream.
    assert!(
        lines
            .iter()
            .any(|l| l.get("kind").and_then(Json::as_str) == Some("attempt")),
        "attempt transitions streamed: {lines:?}"
    );

    // Unknown digests get a plain 404, not a stream.
    let (status, _, _) = request(daemon.addr, "GET", "/v1/jobs/ffffffffffffffff/watch", None);
    assert_eq!(status, 404);
    daemon.drain();
}

#[test]
fn events_endpoint_serves_deterministic_derived_statistics() {
    let scratch = Scratch::new("events");
    let daemon = Daemon::start(test_config(&scratch));

    let (status, ack) = submit(daemon.addr, &submission("acme", "evented", None));
    assert_eq!(status, 202, "{ack:?}");
    let digest = str_field(&ack, "job");
    await_job(daemon.addr, &digest);

    let (status, _, first) = request(
        daemon.addr,
        "GET",
        &format!("/v1/jobs/{digest}/events"),
        None,
    );
    assert_eq!(status, 200, "events derived for a finished job");
    let body = json_body(&first);
    assert_eq!(str_field(&body, "job"), digest);
    assert!(
        field(&body, "events").as_f64().unwrap_or(0.0) > 0.0,
        "{body:?}"
    );
    assert!(body.get("kinds").is_some() && body.get("summary").is_some());

    // Second request is served from the persisted JSONL, byte-equal.
    let (status, _, second) = request(
        daemon.addr,
        "GET",
        &format!("/v1/jobs/{digest}/events"),
        None,
    );
    assert_eq!(status, 200);
    assert_eq!(first, second, "derived statistics are deterministic");

    // Unknown digest: 404. Unfinished-job 409 is covered by submitting
    // a slow job and asking immediately.
    let (status, _, _) = request(daemon.addr, "GET", "/v1/jobs/ffffffffffffffff/events", None);
    assert_eq!(status, 404);
    let (status, ack) = submit(
        daemon.addr,
        &submission("acme", "still-going", Some(r#"{"slow_ms": 1000}"#)),
    );
    assert_eq!(status, 202, "{ack:?}");
    let slow = str_field(&ack, "job");
    let (status, _, _) = request(daemon.addr, "GET", &format!("/v1/jobs/{slow}/events"), None);
    assert_eq!(status, 409, "events only derive once the job finishes");
    await_job(daemon.addr, &slow);
    daemon.drain();
}

#[test]
fn draining_flips_healthz_to_503_but_stats_stay_reachable() {
    let scratch = Scratch::new("drainhealth");
    let daemon = Daemon::start(test_config(&scratch));

    // An in-flight slow job holds the daemon in its drain grace period
    // so the observability surface can be probed mid-drain.
    let (status, ack) = submit(
        daemon.addr,
        &submission("acme", "lingering", Some(r#"{"slow_ms": 1500}"#)),
    );
    assert_eq!(status, 202, "{ack:?}");

    let (status, _, _) = request(daemon.addr, "POST", "/v1/drain", None);
    assert_eq!(status, 202);

    let (status, _, raw) = request(daemon.addr, "GET", "/healthz", None);
    assert_eq!(status, 503, "healthz flips while draining");
    let health = json_body(&raw);
    assert_eq!(field(&health, "draining"), &Json::Bool(true), "{health:?}");

    let (status, _, raw) = request(daemon.addr, "GET", "/v1/stats", None);
    assert_eq!(status, 200, "stats stay reachable while draining");
    assert_eq!(
        field(&json_body(&raw), "draining"),
        &Json::Bool(true),
        "stats report the drain"
    );
    let (status, _, _) = request(daemon.addr, "GET", "/metrics", None);
    assert_eq!(status, 200, "a final scrape works while draining");

    // New submissions are refused mid-drain.
    let (status, _, _) = request(
        daemon.addr,
        "POST",
        "/v1/jobs",
        Some(&submission("acme", "late", None)),
    );
    assert_eq!(status, 503, "no admissions while draining");

    let handle = {
        let mut daemon = daemon;
        daemon.handle.take().expect("daemon thread")
    };
    let summary = handle.join().expect("daemon exits after the grace period");
    assert!(summary.drained, "the slow job finished within the grace");
}

#[test]
fn factor_cache_counters_survive_restart_and_never_decrease() {
    let scratch = Scratch::new("fcmono");

    let factor_cache = |addr: SocketAddr| -> (f64, f64) {
        let (status, _, raw) = request(addr, "GET", "/v1/stats", None);
        assert_eq!(status, 200);
        let stats = json_body(&raw);
        let fc = field(&stats, "factor_cache");
        (
            field(fc, "hits").as_f64().expect("hits"),
            field(fc, "misses").as_f64().expect("misses"),
        )
    };

    // First incarnation: solve once, note the counters.
    let daemon = Daemon::start(test_config(&scratch));
    let (status, ack) = submit(daemon.addr, &submission("acme", "mono", None));
    assert_eq!(status, 202, "{ack:?}");
    let digest = str_field(&ack, "job");
    await_job(daemon.addr, &digest);
    let (hits_before, misses_before) = factor_cache(daemon.addr);
    daemon.drain();

    // Second incarnation on the same state dir: the counters are
    // still visible and have not decreased (the factorisation cache
    // is monotone by construction — nothing resets it on restart).
    let daemon = Daemon::start(test_config(&scratch));
    let (hits_after, misses_after) = factor_cache(daemon.addr);
    assert!(
        hits_after >= hits_before && misses_after >= misses_before,
        "factor-cache counters never decrease: \
         ({hits_before},{misses_before}) then ({hits_after},{misses_after})"
    );
    // And they keep counting: re-running the same scenario via resume
    // of the restored record costs no solve, but a fresh scenario does.
    let (status, ack) = submit(daemon.addr, &submission("acme", "mono-2", None));
    assert_eq!(status, 202, "{ack:?}");
    let digest = str_field(&ack, "job");
    await_job(daemon.addr, &digest);
    let (hits_final, misses_final) = factor_cache(daemon.addr);
    assert!(
        hits_final + misses_final >= hits_after + misses_after,
        "counters are monotone under new work"
    );
    daemon.drain();
}
