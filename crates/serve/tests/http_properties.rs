//! Property tests for the HTTP/1.1 request parser.
//!
//! The parser is the daemon's attack surface: every byte a socket
//! delivers flows through [`parse_request`] before anything else looks
//! at it. These properties pin the robustness contract from ISSUE 8:
//! arbitrary byte soup, truncated heads, oversized bodies, and
//! pipelined garbage all produce a clean typed outcome — `Complete`,
//! `Incomplete`, or a 4xx/5xx [`HttpError`] — and never a panic. The
//! parser is pure (no I/O, no loops over anything but the input), so
//! "never hangs past the read deadline" reduces to termination on
//! every input, which each property exercises by construction.

use darksil_serve::http::{
    parse_request, HttpError, Parsed, Request, MAX_BODY_BYTES, MAX_HEADERS, MAX_HEAD_BYTES,
};
use proptest::prelude::*;

/// Drives the parser and asserts the outcome is one of the three legal
/// shapes; any `Err` must carry a client/server error status.
fn outcome(raw: &[u8]) -> Result<Parsed, HttpError> {
    let result = parse_request(raw);
    if let Err(error) = &result {
        assert!(
            (400..=599).contains(&error.status),
            "rejection must be 4xx/5xx, got {} for input {:?}",
            error.status,
            &raw[..raw.len().min(80)]
        );
    }
    result
}

/// A syntactically valid request assembled from constrained parts, so
/// round-trip properties know exactly what the parser should recover.
fn build_request(method: &str, target: &str, headers: &[(String, String)], body: &[u8]) -> Vec<u8> {
    let mut raw = Vec::new();
    raw.extend_from_slice(method.as_bytes());
    raw.push(b' ');
    raw.extend_from_slice(target.as_bytes());
    raw.extend_from_slice(b" HTTP/1.1\r\n");
    for (name, value) in headers {
        raw.extend_from_slice(name.as_bytes());
        raw.extend_from_slice(b": ");
        raw.extend_from_slice(value.as_bytes());
        raw.extend_from_slice(b"\r\n");
    }
    raw.extend_from_slice(format!("content-length: {}\r\n", body.len()).as_bytes());
    raw.extend_from_slice(b"\r\n");
    raw.extend_from_slice(body);
    raw
}

/// Draws a token from an alphabet by index, for printable header names
/// and targets without relying on string strategies the shim lacks.
fn pick(alphabet: &[u8], indices: &[usize]) -> String {
    indices
        .iter()
        .map(|i| char::from(alphabet[i % alphabet.len()]))
        .collect()
}

const METHODS: [&str; 5] = ["GET", "POST", "PUT", "DELETE", "HEAD"];
const TARGET_CHARS: &[u8] = b"abcdefghijklmnopqrstuvwxyz0123456789-_./";
const NAME_CHARS: &[u8] = b"abcdefghijklmnopqrstuvwxyz-";
const VALUE_CHARS: &[u8] = b"abcdefghijklmnopqrstuvwxyz0123456789 ,;=/";

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Arbitrary byte soup: the parser classifies every input without
    /// panicking, and whatever it rejects carries a 4xx/5xx status.
    #[test]
    fn byte_soup_never_panics(raw in prop::collection::vec(any::<u8>(), 0..512)) {
        let _ = outcome(&raw);
    }

    /// Byte soup that at least starts like HTTP exercises the deeper
    /// header/body paths; still no panics, still typed outcomes.
    #[test]
    fn http_shaped_soup_never_panics(
        method_idx in 0_usize..METHODS.len(),
        tail in prop::collection::vec(any::<u8>(), 0..256),
    ) {
        let mut raw = METHODS[method_idx].as_bytes().to_vec();
        raw.extend_from_slice(b" /v1/jobs HTTP/1.1\r\n");
        raw.extend_from_slice(&tail);
        let _ = outcome(&raw);
    }

    /// Every truncation of a valid request is either `Incomplete`
    /// (more bytes could still complete it) or a clean rejection —
    /// never `Complete`, never a panic.
    #[test]
    fn truncated_requests_never_parse_as_complete(
        target_idx in prop::collection::vec(0_usize..TARGET_CHARS.len(), 1..24),
        body in prop::collection::vec(any::<u8>(), 0..64),
        cut_scale in 0.0_f64..1.0,
    ) {
        let target = format!("/{}", pick(TARGET_CHARS, &target_idx));
        let raw = build_request("POST", &target, &[], &body);
        let cut = ((raw.len() as f64) * cut_scale) as usize;
        prop_assume!(cut < raw.len());
        match outcome(&raw[..cut]) {
            Ok(Parsed::Complete(..)) => panic!("{cut}-byte prefix of a {}-byte request parsed as complete", raw.len()),
            Ok(Parsed::Incomplete) | Err(_) => {}
        }
    }

    /// A declared body larger than the cap is refused with 413 as soon
    /// as the head is readable — the daemon never buffers toward an
    /// unbounded content-length.
    #[test]
    fn oversized_bodies_are_rejected_with_413(excess in 1_u64..1_000_000) {
        let declared = MAX_BODY_BYTES as u64 + excess;
        let raw = format!("POST /v1/jobs HTTP/1.1\r\ncontent-length: {declared}\r\n\r\n");
        match outcome(raw.as_bytes()) {
            Err(error) => prop_assert_eq!(error.status, 413),
            Ok(parsed) => panic!("oversized declaration accepted: {parsed:?}"),
        }
    }

    /// A head that never terminates is cut off at the head cap with
    /// 431 instead of being buffered forever (slowloris).
    #[test]
    fn unterminated_heads_hit_the_431_cap(filler in any::<u8>(), pad in 0_usize..64) {
        let mut raw = b"GET / HTTP/1.1\r\n".to_vec();
        let printable = if filler.is_ascii_graphic() { filler } else { b'x' };
        raw.resize(MAX_HEAD_BYTES + pad, printable);
        match outcome(&raw) {
            Err(error) => prop_assert_eq!(error.status, 431),
            Ok(parsed) => panic!("unterminated head accepted: {parsed:?}"),
        }
    }

    /// More headers than the cap is 431 regardless of their content.
    #[test]
    fn header_floods_are_rejected(extra in 1_usize..16) {
        let mut raw = String::from("GET / HTTP/1.1\r\n");
        for i in 0..(MAX_HEADERS + extra) {
            raw.push_str(&format!("x-h{i}: v\r\n"));
        }
        raw.push_str("\r\n");
        match outcome(raw.as_bytes()) {
            Err(error) => prop_assert_eq!(error.status, 431),
            Ok(parsed) => panic!("header flood accepted: {parsed:?}"),
        }
    }

    /// Round trip: a well-formed request parses back to exactly the
    /// method, target, headers, and body it was built from, and the
    /// consumed length covers precisely the request's own bytes.
    #[test]
    fn well_formed_requests_round_trip(
        method_idx in 0_usize..METHODS.len(),
        target_idx in prop::collection::vec(0_usize..TARGET_CHARS.len(), 1..32),
        name_idx in prop::collection::vec(0_usize..NAME_CHARS.len(), 1..12),
        value_idx in prop::collection::vec(0_usize..VALUE_CHARS.len(), 0..24),
        body in prop::collection::vec(any::<u8>(), 0..128),
    ) {
        let method = METHODS[method_idx];
        let target = format!("/{}", pick(TARGET_CHARS, &target_idx));
        let name = pick(NAME_CHARS, &name_idx);
        prop_assume!(name != "content-length" && name != "transfer-encoding");
        let value = pick(VALUE_CHARS, &value_idx);
        let value = value.trim().to_string();
        let headers = vec![(name.clone(), value.clone())];
        let raw = build_request(method, &target, &headers, &body);
        match outcome(&raw) {
            Ok(Parsed::Complete(request, used)) => {
                prop_assert_eq!(used, raw.len());
                prop_assert_eq!(request.method.as_str(), method);
                prop_assert_eq!(request.target.as_str(), target.as_str());
                prop_assert_eq!(request.header(&name), Some(value.as_str()));
                prop_assert_eq!(request.body.as_slice(), body.as_slice());
            }
            other => panic!("well-formed request not parsed: {other:?}"),
        }
    }

    /// Pipelined garbage after a complete request is left untouched:
    /// the reported consumed length stops at the first request's end,
    /// whatever bytes follow.
    #[test]
    fn pipelined_garbage_is_not_consumed(
        body in prop::collection::vec(any::<u8>(), 0..64),
        garbage in prop::collection::vec(any::<u8>(), 1..256),
    ) {
        let raw = build_request("POST", "/v1/jobs", &[], &body);
        let mut wire = raw.clone();
        wire.extend_from_slice(&garbage);
        match outcome(&wire) {
            Ok(Parsed::Complete(request, used)) => {
                prop_assert_eq!(used, raw.len());
                prop_assert_eq!(request.body.as_slice(), body.as_slice());
            }
            other => panic!("request followed by garbage not parsed: {other:?}"),
        }
    }

    /// Interior NUL and control bytes in the head are rejected, not
    /// smuggled into header values.
    #[test]
    fn control_bytes_in_the_head_are_rejected(ctl in 0_u8..32, position in 0_usize..8) {
        prop_assume!(ctl != b'\r' && ctl != b'\n' && ctl != b'\t');
        let mut value = b"benign".to_vec();
        value.insert(position % (value.len() + 1), ctl);
        let mut raw = b"GET / HTTP/1.1\r\nx-smuggle: ".to_vec();
        raw.extend_from_slice(&value);
        raw.extend_from_slice(b"\r\n\r\n");
        match outcome(&raw) {
            Err(error) => prop_assert_eq!(error.status, 400),
            Ok(Parsed::Complete(request, _)) => {
                panic!("control byte {ctl:#04x} smuggled into {:?}", request.headers)
            }
            Ok(Parsed::Incomplete) => panic!("control byte {ctl:#04x} stalled the parser"),
        }
    }
}

/// Non-property check kept alongside: the canonical submission path
/// parses, so the generators above cannot drift away from reality.
#[test]
fn canonical_submission_parses() {
    let raw = build_request("POST", "/v1/jobs", &[], br#"{"tenant":"acme"}"#);
    match parse_request(&raw) {
        Ok(Parsed::Complete(request, used)) => {
            assert_eq!(used, raw.len());
            assert_eq!(request.path(), "/v1/jobs");
        }
        other => panic!("canonical request failed: {other:?}"),
    }
}

/// `Request::path` splits the query string without allocating a new
/// target; exercised here because routing depends on it.
#[test]
fn path_strips_query() {
    let raw = build_request("GET", "/v1/stats?verbose=1", &[], b"");
    match parse_request(&raw) {
        Ok(Parsed::Complete(request, _)) => {
            let request: Request = request;
            assert_eq!(request.path(), "/v1/stats");
        }
        other => panic!("query target failed: {other:?}"),
    }
}
