//! Offline, API-compatible subset of the `proptest` crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace ships this shim under the same name. It implements exactly
//! the surface the darksil test suite uses — the [`proptest!`] macro
//! with `#![proptest_config(…)]`, range/tuple/`vec`/`any::<bool>()`
//! strategies, `prop_map`, and the `prop_assert*`/`prop_assume!`
//! macros — with deterministic case generation seeded per test name.
//!
//! Differences from real proptest, by design:
//!
//! - no shrinking: a failing case reports its inputs and stops;
//! - the default case count is 64 (not 256) to keep `cargo test` fast;
//! - no persistence files (`*.proptest-regressions` are ignored).
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

use std::cell::Cell;
use std::ops::Range;

/// Runner configuration; only `cases` is honoured.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of accepted cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// Deterministic generator handed to strategies (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds from raw state.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next raw value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    #[allow(clippy::cast_precision_loss)]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1_u64 << 53) as f64
    }

    /// Uniform in `[0, bound)`; 0 when `bound == 0`.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            0
        } else {
            self.next_u64() % bound
        }
    }
}

/// Builds the per-test generator; the seed is a hash of the test path
/// so every run replays the same cases.
#[must_use]
pub fn test_rng(name: &str) -> TestRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    TestRng::new(h)
}

thread_local! {
    static REJECTED: Cell<bool> = const { Cell::new(false) };
}

/// Marks the current case as rejected (`prop_assume!` failed).
pub fn reject_case() {
    REJECTED.with(|r| r.set(true));
}

/// Consumes and returns the rejection flag for the current case.
pub fn take_rejection() -> bool {
    REJECTED.with(|r| r.replace(false))
}

/// A value generator.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// The result of [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Always generates a clone of the carried value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        if self.end <= self.start {
            self.start
        } else {
            self.start + (self.end - self.start) * rng.next_f64()
        }
    }
}

macro_rules! int_range_strategy {
    ($($ty:ty),+) => {$(
        impl Strategy for Range<$ty> {
            type Value = $ty;

            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss, clippy::cast_possible_wrap)]
            fn generate(&self, rng: &mut TestRng) -> $ty {
                if self.end <= self.start {
                    self.start
                } else {
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.next_below(span) as i128) as $ty
                }
            }
        }
    )+};
}

int_range_strategy!(usize, u8, u16, u32, u64, i8, i16, i32, i64);

macro_rules! tuple_strategy {
    ($(($($name:ident : $idx:tt),+))+) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )+};
}

tuple_strategy! {
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
}

/// Types with a canonical unconstrained strategy ([`any`]).
pub trait Arbitrary: Sized {
    /// Draws an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for u8 {
    #[allow(clippy::cast_possible_truncation)]
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() as u8
    }
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64()
    }
}

/// Strategy returned by [`any`].
#[derive(Debug, Clone, Copy, Default)]
pub struct AnyStrategy<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T`.
#[must_use]
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy {
        _marker: std::marker::PhantomData,
    }
}

/// Element-count specification for [`prop::collection::vec`].
#[derive(Debug, Clone)]
pub struct SizeRange {
    min: usize,
    max_exclusive: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        Self {
            min: n,
            max_exclusive: n + 1,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        Self {
            min: r.start,
            max_exclusive: r.end.max(r.start + 1),
        }
    }
}

/// Strategy returned by [`prop::collection::vec`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    #[allow(clippy::cast_possible_truncation)]
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.max_exclusive - self.size.min) as u64;
        let len = self.size.min + rng.next_below(span) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// Mirrors proptest's `prop` module tree.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use super::super::{SizeRange, Strategy, VecStrategy};

        /// Generates vectors of `element` with a length drawn from
        /// `size` (an exact `usize` or a `Range<usize>`).
        pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy {
                element,
                size: size.into(),
            }
        }
    }
}

/// Everything a property-test file needs.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assume, proptest, Arbitrary, Just,
        ProptestConfig, Strategy,
    };
}

/// Asserts a condition inside a property, reporting the failing case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond);
    };
    ($cond:expr, $($fmt:tt)+) => {
        assert!($cond, $($fmt)+);
    };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        assert_eq!($left, $right);
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        assert_eq!($left, $right, $($fmt)+);
    };
}

/// Discards the current case when the precondition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            $crate::reject_case();
            return;
        }
    };
}

/// Defines property tests: each `fn` runs `cases` times with inputs
/// drawn from the strategies after `in`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    (($cfg:expr); $( $(#[$meta:meta])* fn $name:ident ( $( $arg:ident in $strat:expr ),+ $(,)? ) $body:block )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::test_rng(concat!(module_path!(), "::", stringify!($name)));
                let mut accepted: u32 = 0;
                let mut attempts: u32 = 0;
                let limit = config.cases.saturating_mul(20).max(1000);
                while accepted < config.cases {
                    attempts += 1;
                    assert!(
                        attempts <= limit,
                        "prop_assume! rejected too many cases in {}",
                        stringify!($name)
                    );
                    $( let $arg = $crate::Strategy::generate(&($strat), &mut rng); )+
                    let case_desc = format!("{:?}", ($(&$arg),+ ,));
                    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        $body
                    }));
                    if $crate::take_rejection() {
                        continue;
                    }
                    match outcome {
                        Ok(()) => accepted += 1,
                        Err(payload) => {
                            eprintln!(
                                "property {} failed after {} cases with inputs: {}",
                                stringify!($name),
                                accepted,
                                case_desc
                            );
                            std::panic::resume_unwind(payload);
                        }
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn ranges_respect_bounds(x in -3.0_f64..3.0, n in 1_usize..9) {
            prop_assert!((-3.0..3.0).contains(&x));
            prop_assert!((1..9).contains(&n));
        }

        #[test]
        fn vec_and_tuple_strategies(
            v in prop::collection::vec((0_usize..4, -1.0_f64..1.0), 1..10),
            flag in any::<bool>(),
        ) {
            prop_assert!(!v.is_empty() && v.len() < 10);
            for (i, x) in &v {
                prop_assert!(*i < 4 && (-1.0..1.0).contains(x));
            }
            prop_assert!(u8::from(flag) <= 1);
        }

        #[test]
        fn assume_discards_without_failing(n in 0_usize..10) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }
    }

    #[test]
    fn prop_map_and_just() {
        let mut rng = crate::test_rng("map");
        let doubled = (1_usize..5).prop_map(|n| n * 2);
        for _ in 0..20 {
            let v = doubled.generate(&mut rng);
            assert!(v % 2 == 0 && (2..10).contains(&v));
        }
        assert_eq!(Just(7).generate(&mut rng), 7);
    }

    #[test]
    fn deterministic_replay() {
        let mut a = crate::test_rng("same-name");
        let mut b = crate::test_rng("same-name");
        for _ in 0..10 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
