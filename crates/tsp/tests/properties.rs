//! Property tests for Thermal Safe Power.

use darksil_floorplan::{CoreId, Floorplan};
use darksil_thermal::{PackageConfig, ThermalModel};
use darksil_tsp::TspCalculator;
use darksil_units::{Celsius, SquareMillimeters, Watts};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// For any active set, powering every active core at exactly the
    /// TSP value lands the peak exactly on the threshold.
    #[test]
    fn tsp_is_exact_for_any_mapping(
        mask in prop::collection::vec(any::<bool>(), 25),
    ) {
        let plan = Floorplan::grid(5, 5, SquareMillimeters::new(5.1)).unwrap();
        let model = ThermalModel::new(&plan, PackageConfig::paper_dac15()).unwrap();
        let tsp = TspCalculator::new(&plan, &model, Celsius::new(80.0));
        let active: Vec<CoreId> = mask
            .iter()
            .enumerate()
            .filter(|(_, &on)| on)
            .map(|(i, _)| CoreId(i))
            .collect();
        prop_assume!(!active.is_empty());
        let budget = tsp.for_mapping(&active).unwrap();
        let mut power = vec![Watts::zero(); 25];
        for c in &active {
            power[c.index()] = budget;
        }
        let peak = model.steady_state(&power).unwrap().peak();
        prop_assert!((peak.value() - 80.0).abs() < 0.05, "peak {peak}");
    }

    /// Adding a core to the active set never raises the per-core TSP.
    #[test]
    fn tsp_antitone_under_set_growth(
        mask in prop::collection::vec(any::<bool>(), 25),
        extra in 0_usize..25,
    ) {
        let plan = Floorplan::grid(5, 5, SquareMillimeters::new(5.1)).unwrap();
        let model = ThermalModel::new(&plan, PackageConfig::paper_dac15()).unwrap();
        let tsp = TspCalculator::new(&plan, &model, Celsius::new(80.0));
        let mut active: Vec<CoreId> = mask
            .iter()
            .enumerate()
            .filter(|(_, &on)| on)
            .map(|(i, _)| CoreId(i))
            .collect();
        prop_assume!(!active.is_empty());
        prop_assume!(!active.contains(&CoreId(extra)));
        let before = tsp.for_mapping(&active).unwrap();
        active.push(CoreId(extra));
        let after = tsp.for_mapping(&active).unwrap();
        prop_assert!(after <= before + Watts::new(1e-9), "{after} > {before}");
    }

    /// The worst-case (centred blob) budget never exceeds the budget of
    /// the same-size spread set.
    #[test]
    fn worst_case_is_pessimal_vs_spread(m in 1_usize..25) {
        let plan = Floorplan::grid(5, 5, SquareMillimeters::new(5.1)).unwrap();
        let model = ThermalModel::new(&plan, PackageConfig::paper_dac15()).unwrap();
        let tsp = TspCalculator::new(&plan, &model, Celsius::new(80.0));
        let blob = tsp.worst_case(m).unwrap();
        // Spread the same count with a fixed stride pattern.
        let spread: Vec<CoreId> = (0..25)
            .map(CoreId)
            .filter(|c| c.index() * m / 25 != (c.index() + 1) * m / 25)
            .collect();
        prop_assume!(spread.len() == m);
        let spread_budget = tsp.for_mapping(&spread).unwrap();
        prop_assert!(
            blob.value() <= spread_budget.value() * (1.0 + 1e-9),
            "blob {blob} > spread {spread_budget}"
        );
    }
}
