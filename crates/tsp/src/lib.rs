//! TSP — Thermal Safe Power (§5).
//!
//! TSP (Pagani et al., CODES+ISSS 2014) is a power budget expressed *as
//! a function of the number of active cores*: `TSP(m)` is the highest
//! per-core power such that, when `m` active cores each consume it, the
//! maximum temperature across the chip stays below the critical
//! threshold. Unlike a single chip-level TDP, TSP adapts to how many
//! cores are on — few active cores may each burn much more power than
//! `TDP/m` would allow, while many active cores must throttle below it.
//!
//! Because the thermal RC network is linear, TSP has a closed form for
//! any concrete mapping: solving the network with **1 W** on each active
//! core yields a per-watt temperature-rise map `u`, and
//!
//! `TSP = (T_DTM − T_idle_peak) / max(u)`
//!
//! The *worst-case* TSP over all mappings of `m` cores is approached
//! by the most thermally concentrated arrangements;
//! [`TspCalculator::worst_case_mapping`] evaluates a centred and a
//! corner-anchored contiguous blob and keeps the hotter of the two
//! (corners lose lateral escape paths and win for small `m`).
//!
//! # Examples
//!
//! ```
//! use darksil_floorplan::Floorplan;
//! use darksil_thermal::{PackageConfig, ThermalModel};
//! use darksil_tsp::TspCalculator;
//! use darksil_units::{Celsius, SquareMillimeters};
//!
//! let plan = Floorplan::grid(10, 10, SquareMillimeters::new(5.1))?;
//! let model = ThermalModel::new(&plan, PackageConfig::paper_dac15())?;
//! let tsp = TspCalculator::new(&plan, &model, Celsius::new(80.0));
//!
//! // Fewer active cores ⇒ larger per-core budget.
//! let p20 = tsp.worst_case(20)?;
//! let p80 = tsp.worst_case(80)?;
//! assert!(p20 > p80);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

use darksil_floorplan::{CoreId, Floorplan};
use darksil_thermal::{ThermalError, ThermalModel};
use darksil_units::{Celsius, Watts};

/// Computes Thermal Safe Power budgets over a thermal model.
#[derive(Debug)]
pub struct TspCalculator<'a> {
    plan: &'a Floorplan,
    model: &'a ThermalModel,
    t_dtm: Celsius,
}

impl<'a> TspCalculator<'a> {
    /// Creates a calculator for the given plan/model and critical
    /// temperature (the paper uses `T_DTM = 80 °C`).
    ///
    /// # Panics
    ///
    /// Panics if the model was built for a different core count than
    /// the plan.
    #[must_use]
    pub fn new(plan: &'a Floorplan, model: &'a ThermalModel, t_dtm: Celsius) -> Self {
        assert_eq!(
            plan.core_count(),
            model.core_count(),
            "floorplan and thermal model disagree on core count"
        );
        Self { plan, model, t_dtm }
    }

    /// The critical temperature this calculator budgets against.
    #[must_use]
    pub fn critical_temperature(&self) -> Celsius {
        self.t_dtm
    }

    /// Per-core TSP for a *specific* set of active cores: the uniform
    /// per-active-core power at which the hottest core reaches exactly
    /// `T_DTM` (inactive cores are power-gated).
    ///
    /// # Errors
    ///
    /// Returns [`ThermalError::PowerMapMismatch`] for out-of-range core
    /// ids and [`ThermalError::Solver`] on solver failure. An empty
    /// active set yields an unbounded budget reported as infinite watts.
    pub fn for_mapping(&self, active: &[CoreId]) -> Result<Watts, ThermalError> {
        let n = self.plan.core_count();
        if active.is_empty() {
            return Ok(Watts::new(f64::INFINITY));
        }
        let mut unit = vec![Watts::zero(); n];
        for core in active {
            if core.index() >= n {
                return Err(ThermalError::PowerMapMismatch {
                    got: core.index(),
                    expected: n,
                });
            }
            unit[core.index()] = Watts::new(1.0);
        }
        let rise_map = self.model.steady_state(&unit)?;
        let peak_rise = rise_map.peak() - self.model.ambient();
        let headroom = self.t_dtm - self.model.ambient();
        if peak_rise <= 0.0 {
            return Ok(Watts::new(f64::INFINITY));
        }
        let budget = headroom / peak_rise;
        if darksil_obs::events_enabled() {
            let active_count = active.len() as u64;
            darksil_obs::event("tsp.budget", || {
                vec![
                    ("active", active_count.into()),
                    ("per_core_w", budget.into()),
                    ("headroom_c", headroom.into()),
                    ("peak_rise_c", peak_rise.into()),
                ]
            });
        }
        Ok(Watts::new(budget))
    }

    /// The most thermally adverse arrangement of `m` active cores found
    /// among two candidate families: a centred contiguous blob
    /// (concentrated heat in the middle of the die) and a corner-anchored
    /// blob (concentrated heat with the least lateral escape). For small
    /// `m` the corner is typically worse; for larger `m` the centre is.
    ///
    /// # Panics
    ///
    /// Panics if `m` exceeds the core count.
    #[must_use]
    pub fn worst_case_mapping(&self, m: usize) -> Vec<CoreId> {
        let n = self.plan.core_count();
        assert!(m <= n, "cannot activate {m} of {n} cores");
        let centre = self.blob(
            m,
            self.plan.rows() as f64 / 2.0,
            self.plan.cols() as f64 / 2.0,
        );
        let corner = self.blob(m, 0.0, 0.0);
        // Lower budget = hotter arrangement = worse case.
        let b_centre = self.for_mapping(&centre);
        let b_corner = self.for_mapping(&corner);
        match (b_centre, b_corner) {
            (Ok(pc), Ok(pk)) if pk < pc => corner,
            _ => centre,
        }
    }

    /// The `m` cores nearest to a grid anchor point `(row, col)`.
    fn blob(&self, m: usize, anchor_row: f64, anchor_col: f64) -> Vec<CoreId> {
        let mut cores: Vec<CoreId> = self.plan.cores().collect();
        cores.sort_by(|a, b| {
            let da = Self::anchor_distance(self.plan, *a, anchor_row, anchor_col);
            let db = Self::anchor_distance(self.plan, *b, anchor_row, anchor_col);
            da.total_cmp(&db).then(a.cmp(b))
        });
        cores.truncate(m);
        cores
    }

    fn anchor_distance(plan: &Floorplan, core: CoreId, anchor_row: f64, anchor_col: f64) -> f64 {
        // Cores come from the plan's own iterator; an out-of-range id
        // sorts last rather than panicking.
        let Ok((r, c)) = plan.coordinates(core) else {
            return f64::INFINITY;
        };
        let dr = r as f64 + 0.5 - anchor_row;
        let dc = c as f64 + 0.5 - anchor_col;
        dr * dr + dc * dc
    }

    /// Worst-case per-core TSP for `m` active cores (the Figure 10
    /// abstraction): safe no matter *which* `m` cores are activated
    /// (within the candidate families of
    /// [`TspCalculator::worst_case_mapping`]).
    ///
    /// # Errors
    ///
    /// Propagates [`TspCalculator::for_mapping`] errors.
    ///
    /// # Panics
    ///
    /// Panics if `m` exceeds the core count.
    pub fn worst_case(&self, m: usize) -> Result<Watts, ThermalError> {
        self.for_mapping(&self.worst_case_mapping(m))
    }

    /// The whole TSP curve `m ↦ m · TSP(m)` (total chip power) for
    /// `m = 1..=core_count`, useful for plotting against a flat TDP.
    ///
    /// # Errors
    ///
    /// Propagates [`TspCalculator::for_mapping`] errors.
    pub fn total_power_curve(&self) -> Result<Vec<(usize, Watts)>, ThermalError> {
        (1..=self.plan.core_count())
            .map(|m| Ok((m, self.worst_case(m)? * m as f64)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use darksil_thermal::PackageConfig;
    use darksil_units::SquareMillimeters;

    fn setup() -> (Floorplan, ThermalModel) {
        let plan = Floorplan::grid(10, 10, SquareMillimeters::new(5.1)).expect("valid floorplan");
        let model =
            ThermalModel::new(&plan, PackageConfig::paper_dac15()).expect("valid thermal model");
        (plan, model)
    }

    #[test]
    fn tsp_decreases_with_active_cores() {
        let (plan, model) = setup();
        let tsp = TspCalculator::new(&plan, &model, Celsius::new(80.0));
        let mut last = Watts::new(f64::INFINITY);
        for m in [1, 10, 25, 50, 75, 100] {
            let p = tsp.worst_case(m).expect("test value");
            assert!(p < last, "TSP({m}) = {p} not below previous {last}");
            assert!(p.value() > 0.0);
            last = p;
        }
    }

    #[test]
    fn mapping_at_tsp_reaches_threshold_exactly() {
        let (plan, model) = setup();
        let tsp = TspCalculator::new(&plan, &model, Celsius::new(80.0));
        let active = tsp.worst_case_mapping(40);
        let budget = tsp.for_mapping(&active).expect("test value");
        let mut power = vec![Watts::zero(); 100];
        for c in &active {
            power[c.index()] = budget;
        }
        let peak = model.steady_state(&power).expect("solve succeeds").peak();
        assert!(
            (peak.value() - 80.0).abs() < 0.01,
            "peak at TSP = {peak}, want 80 °C"
        );
    }

    #[test]
    fn spread_mapping_gets_higher_budget_than_worst_case() {
        let (plan, model) = setup();
        let tsp = TspCalculator::new(&plan, &model, Celsius::new(80.0));
        // 25 cores: centred blob vs every-4th spread.
        let blob = tsp.worst_case_mapping(25);
        let spread: Vec<CoreId> = plan.cores().step_by(4).collect();
        assert_eq!(spread.len(), 25);
        let p_blob = tsp.for_mapping(&blob).expect("test value");
        let p_spread = tsp.for_mapping(&spread).expect("test value");
        assert!(
            p_spread > p_blob,
            "spread {p_spread} should beat blob {p_blob}"
        );
    }

    #[test]
    fn worst_case_mapping_is_a_contiguous_blob() {
        let (plan, model) = setup();
        let tsp = TspCalculator::new(&plan, &model, Celsius::new(80.0));
        let blob = tsp.worst_case_mapping(9);
        assert_eq!(blob.len(), 9);
        // The nine cores span at most a 4×4 bounding box (contiguous
        // blob, whether centred or corner-anchored).
        let coords: Vec<(usize, usize)> = blob
            .iter()
            .map(|c| plan.coordinates(*c).expect("test value"))
            .collect();
        let rmin = coords.iter().map(|c| c.0).min().expect("test value");
        let rmax = coords.iter().map(|c| c.0).max().expect("test value");
        let cmin = coords.iter().map(|c| c.1).min().expect("test value");
        let cmax = coords.iter().map(|c| c.1).max().expect("test value");
        assert!(rmax - rmin <= 3 && cmax - cmin <= 3, "{coords:?}");
        // And it is genuinely the worse of the two candidate anchors.
        let budget = tsp.for_mapping(&blob).expect("test value");
        let spread: Vec<CoreId> = plan.cores().step_by(11).take(9).collect();
        assert!(budget <= tsp.for_mapping(&spread).expect("test value"));
    }

    #[test]
    fn full_chip_tsp_matches_paper_scale() {
        // At 100 active cores the total TSP budget should be in the same
        // range as the paper's TDP values (≈185–230 W) — that is the
        // whole point of the comparison.
        let (plan, model) = setup();
        let tsp = TspCalculator::new(&plan, &model, Celsius::new(80.0));
        let per_core = tsp.worst_case(100).expect("test value");
        let total = per_core * 100.0;
        assert!(
            total.value() > 170.0 && total.value() < 300.0,
            "TSP(100)·100 = {total}"
        );
    }

    #[test]
    fn total_power_curve_is_increasing_in_m() {
        // Although per-core TSP falls, the *total* safe power grows
        // with more (spread) active cores... for the worst-case blob it
        // grows monotonically as edge relief accumulates.
        let (plan, model) = setup();
        let tsp = TspCalculator::new(&plan, &model, Celsius::new(80.0));
        let curve = tsp.total_power_curve().expect("test value");
        assert_eq!(curve.len(), 100);
        let first = curve.first().expect("test value").1;
        let last = curve.last().expect("test value").1;
        assert!(last > first);
    }

    #[test]
    fn empty_mapping_is_unbounded() {
        let (plan, model) = setup();
        let tsp = TspCalculator::new(&plan, &model, Celsius::new(80.0));
        assert!(tsp
            .for_mapping(&[])
            .expect("numerics succeed")
            .value()
            .is_infinite());
    }

    #[test]
    fn out_of_range_core_rejected() {
        let (plan, model) = setup();
        let tsp = TspCalculator::new(&plan, &model, Celsius::new(80.0));
        assert!(tsp.for_mapping(&[CoreId(500)]).is_err());
    }

    #[test]
    fn higher_threshold_higher_budget() {
        let (plan, model) = setup();
        let t80 = TspCalculator::new(&plan, &model, Celsius::new(80.0));
        let t90 = TspCalculator::new(&plan, &model, Celsius::new(90.0));
        assert!(t90.worst_case(50).expect("test value") > t80.worst_case(50).expect("test value"));
        assert_eq!(t80.critical_temperature(), Celsius::new(80.0));
    }
}
