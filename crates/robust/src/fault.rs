//! Deterministic fault injection for the thermal feedback loop.

use crate::SplitMix64;

/// One class of injected fault.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Fault {
    /// Additive Gaussian noise on every thermal sensor reading.
    SensorNoise {
        /// Standard deviation in °C.
        sigma_celsius: f64,
    },
    /// Every `period`-th control step, one sensor reading is dropped
    /// (replaced by NaN, as a dead sensor reports).
    SensorDropout {
        /// Steps between dropouts; 1 drops a sensor every step.
        period: u64,
    },
    /// Every `period`-th control step, one power sample becomes NaN.
    PowerNan {
        /// Steps between poisoned samples.
        period: u64,
    },
    /// Caps the CG iteration budget, forcing [`ConvergenceFailure`]
    /// so the fallback chain must engage.
    ///
    /// [`ConvergenceFailure`]: https://en.wikipedia.org/wiki/Conjugate_gradient_method
    CgIterationCap {
        /// The forced maximum iteration count.
        cap: usize,
    },
    /// Replaces the requested operating frequency with an off-ladder
    /// value; a graceful consumer throttles to the nearest safe level.
    OffLadderFrequency {
        /// The bogus request in GHz.
        ghz: f64,
    },
}

/// A deterministic schedule of faults, seeded so every run (and every
/// shrunk test case) replays identically.
///
/// The plan is *passive*: consumers ask it to corrupt their sensor or
/// power buffers at each control step and to report solver caps or
/// bogus frequency requests. An empty plan is a no-op, so
/// fault-tolerant code paths can take a `&FaultPlan` unconditionally.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    seed: u64,
    faults: Vec<Fault>,
}

impl FaultPlan {
    /// An empty plan: corrupts nothing, caps nothing.
    #[must_use]
    pub fn none() -> Self {
        Self {
            seed: 0,
            faults: Vec::new(),
        }
    }

    /// An empty plan with a seed, ready for [`Self::with`].
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            faults: Vec::new(),
        }
    }

    /// Adds a fault (builder style).
    #[must_use]
    pub fn with(mut self, fault: Fault) -> Self {
        self.faults.push(fault);
        self
    }

    /// Whether the plan injects anything at all.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// The faults in the plan.
    #[must_use]
    pub fn faults(&self) -> &[Fault] {
        &self.faults
    }

    fn rng_for(&self, step: u64, salt: u64) -> SplitMix64 {
        SplitMix64::new(
            self.seed
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(step)
                .wrapping_add(salt.wrapping_mul(0x517C_C1B7_2722_0A95)),
        )
    }

    /// Corrupts thermal sensor readings (°C) for control step `step`.
    /// Returns the number of entries touched.
    pub fn corrupt_temperatures(&self, step: u64, temps_celsius: &mut [f64]) -> usize {
        if temps_celsius.is_empty() {
            return 0;
        }
        let mut touched = 0;
        for fault in &self.faults {
            match *fault {
                Fault::SensorNoise { sigma_celsius } if sigma_celsius > 0.0 => {
                    let mut rng = self.rng_for(step, 1);
                    for t in temps_celsius.iter_mut() {
                        *t += sigma_celsius * rng.next_gaussian();
                    }
                    touched += temps_celsius.len();
                }
                Fault::SensorDropout { period } if period > 0 && step.is_multiple_of(period) => {
                    let mut rng = self.rng_for(step, 2);
                    let idx = rng.next_below(temps_celsius.len() as u64) as usize;
                    temps_celsius[idx] = f64::NAN;
                    touched += 1;
                }
                _ => {}
            }
        }
        touched
    }

    /// Corrupts a power map (watts) for control step `step`. Returns
    /// the number of entries touched.
    pub fn corrupt_power(&self, step: u64, power_watts: &mut [f64]) -> usize {
        if power_watts.is_empty() {
            return 0;
        }
        let mut touched = 0;
        for fault in &self.faults {
            if let Fault::PowerNan { period } = *fault {
                if period > 0 && step.is_multiple_of(period) {
                    let mut rng = self.rng_for(step, 3);
                    let idx = rng.next_below(power_watts.len() as u64) as usize;
                    power_watts[idx] = f64::NAN;
                    touched += 1;
                }
            }
        }
        touched
    }

    /// The forced CG iteration cap, if the plan carries one.
    #[must_use]
    pub fn cg_iteration_cap(&self) -> Option<usize> {
        self.faults.iter().find_map(|f| match f {
            Fault::CgIterationCap { cap } => Some(*cap),
            _ => None,
        })
    }

    /// The off-ladder frequency request, if the plan carries one.
    #[must_use]
    pub fn off_ladder_frequency_ghz(&self) -> Option<f64> {
        self.faults.iter().find_map(|f| match f {
            Fault::OffLadderFrequency { ghz } => Some(*ghz),
            _ => None,
        })
    }
}

impl Default for FaultPlan {
    fn default() -> Self {
        Self::none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_is_a_no_op() {
        let plan = FaultPlan::none();
        let mut temps = vec![60.0, 61.0];
        let mut power = vec![2.0, 3.0];
        assert_eq!(plan.corrupt_temperatures(0, &mut temps), 0);
        assert_eq!(plan.corrupt_power(0, &mut power), 0);
        assert_eq!(temps, vec![60.0, 61.0]);
        assert!(plan.cg_iteration_cap().is_none());
        assert!(plan.is_empty());
    }

    #[test]
    fn dropout_and_nan_follow_the_period() {
        let plan = FaultPlan::new(9)
            .with(Fault::SensorDropout { period: 3 })
            .with(Fault::PowerNan { period: 2 });
        let mut dropped = 0;
        let mut poisoned = 0;
        for step in 0..12 {
            let mut temps = vec![70.0; 8];
            let mut power = vec![2.5; 8];
            dropped += plan.corrupt_temperatures(step, &mut temps);
            poisoned += plan.corrupt_power(step, &mut power);
            if step % 3 == 0 {
                assert_eq!(temps.iter().filter(|t| t.is_nan()).count(), 1);
            }
            if step % 2 == 0 {
                assert_eq!(power.iter().filter(|p| p.is_nan()).count(), 1);
            }
        }
        assert_eq!(dropped, 4);
        assert_eq!(poisoned, 6);
    }

    #[test]
    fn noise_is_deterministic_per_step() {
        let plan = FaultPlan::new(5).with(Fault::SensorNoise { sigma_celsius: 2.0 });
        let mut a = vec![60.0; 4];
        let mut b = vec![60.0; 4];
        plan.corrupt_temperatures(7, &mut a);
        plan.corrupt_temperatures(7, &mut b);
        assert_eq!(a, b);
        let mut c = vec![60.0; 4];
        plan.corrupt_temperatures(8, &mut c);
        assert_ne!(a, c);
        assert!(a.iter().all(|t| (t - 60.0).abs() < 20.0));
    }

    #[test]
    fn caps_and_off_ladder_queries() {
        let plan = FaultPlan::new(1)
            .with(Fault::CgIterationCap { cap: 2 })
            .with(Fault::OffLadderFrequency { ghz: 3.333 });
        assert_eq!(plan.cg_iteration_cap(), Some(2));
        assert_eq!(plan.off_ladder_frequency_ghz(), Some(3.333));
    }
}
