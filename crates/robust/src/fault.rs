//! Deterministic fault injection for the thermal feedback loop and
//! the job-supervision layer.

use std::time::Duration;

use crate::{DarksilError, SplitMix64};

/// One class of injected fault.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Fault {
    /// Additive Gaussian noise on every thermal sensor reading.
    SensorNoise {
        /// Standard deviation in °C.
        sigma_celsius: f64,
    },
    /// Every `period`-th control step, one sensor reading is dropped
    /// (replaced by NaN, as a dead sensor reports).
    SensorDropout {
        /// Steps between dropouts; 1 drops a sensor every step.
        period: u64,
    },
    /// Every `period`-th control step, one power sample becomes NaN.
    PowerNan {
        /// Steps between poisoned samples.
        period: u64,
    },
    /// Caps the CG iteration budget, forcing [`ConvergenceFailure`]
    /// so the fallback chain must engage.
    ///
    /// [`ConvergenceFailure`]: https://en.wikipedia.org/wiki/Conjugate_gradient_method
    CgIterationCap {
        /// The forced maximum iteration count.
        cap: usize,
    },
    /// Replaces the requested operating frequency with an off-ladder
    /// value; a graceful consumer throttles to the nearest safe level.
    OffLadderFrequency {
        /// The bogus request in GHz.
        ghz: f64,
    },
    /// The job spins forever (cooperatively observing its cancellation
    /// token), modelling a diverging solve. A supervisor must cancel it
    /// at the deadline; a declared *degraded* attempt skips the hang,
    /// modelling the relaxed solve that does converge.
    Hang,
    /// The job sleeps for `millis` before doing any work, modelling an
    /// overloaded stage that may or may not beat its deadline.
    SlowJob {
        /// Added latency in milliseconds.
        millis: u64,
    },
    /// The job fails with an `injected`-class error on its first
    /// `failures` attempts and succeeds afterwards, exercising the
    /// retry machinery end-to-end.
    TransientThenSucceed {
        /// Attempts that fail before the first success.
        failures: u32,
    },
}

/// A deterministic schedule of faults, seeded so every run (and every
/// shrunk test case) replays identically.
///
/// The plan is *passive*: consumers ask it to corrupt their sensor or
/// power buffers at each control step and to report solver caps or
/// bogus frequency requests. An empty plan is a no-op, so
/// fault-tolerant code paths can take a `&FaultPlan` unconditionally.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    seed: u64,
    faults: Vec<Fault>,
}

impl FaultPlan {
    /// An empty plan: corrupts nothing, caps nothing.
    #[must_use]
    pub fn none() -> Self {
        Self {
            seed: 0,
            faults: Vec::new(),
        }
    }

    /// An empty plan with a seed, ready for [`Self::with`].
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            faults: Vec::new(),
        }
    }

    /// Adds a fault (builder style).
    #[must_use]
    pub fn with(mut self, fault: Fault) -> Self {
        self.faults.push(fault);
        self
    }

    /// Whether the plan injects anything at all.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// The faults in the plan.
    #[must_use]
    pub fn faults(&self) -> &[Fault] {
        &self.faults
    }

    fn rng_for(&self, step: u64, salt: u64) -> SplitMix64 {
        SplitMix64::new(
            self.seed
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(step)
                .wrapping_add(salt.wrapping_mul(0x517C_C1B7_2722_0A95)),
        )
    }

    /// Corrupts thermal sensor readings (°C) for control step `step`.
    /// Returns the number of entries touched.
    pub fn corrupt_temperatures(&self, step: u64, temps_celsius: &mut [f64]) -> usize {
        if temps_celsius.is_empty() {
            return 0;
        }
        let mut touched = 0;
        for fault in &self.faults {
            match *fault {
                Fault::SensorNoise { sigma_celsius } if sigma_celsius > 0.0 => {
                    let mut rng = self.rng_for(step, 1);
                    for t in temps_celsius.iter_mut() {
                        *t += sigma_celsius * rng.next_gaussian();
                    }
                    touched += temps_celsius.len();
                }
                Fault::SensorDropout { period } if period > 0 && step.is_multiple_of(period) => {
                    let mut rng = self.rng_for(step, 2);
                    let idx = rng.next_below(temps_celsius.len() as u64) as usize;
                    temps_celsius[idx] = f64::NAN;
                    touched += 1;
                }
                _ => {}
            }
        }
        touched
    }

    /// Corrupts a power map (watts) for control step `step`. Returns
    /// the number of entries touched.
    pub fn corrupt_power(&self, step: u64, power_watts: &mut [f64]) -> usize {
        if power_watts.is_empty() {
            return 0;
        }
        let mut touched = 0;
        for fault in &self.faults {
            if let Fault::PowerNan { period } = *fault {
                if period > 0 && step.is_multiple_of(period) {
                    let mut rng = self.rng_for(step, 3);
                    let idx = rng.next_below(power_watts.len() as u64) as usize;
                    power_watts[idx] = f64::NAN;
                    touched += 1;
                }
            }
        }
        touched
    }

    /// The forced CG iteration cap, if the plan carries one.
    #[must_use]
    pub fn cg_iteration_cap(&self) -> Option<usize> {
        self.faults.iter().find_map(|f| match f {
            Fault::CgIterationCap { cap } => Some(*cap),
            _ => None,
        })
    }

    /// The off-ladder frequency request, if the plan carries one.
    #[must_use]
    pub fn off_ladder_frequency_ghz(&self) -> Option<f64> {
        self.faults.iter().find_map(|f| match f {
            Fault::OffLadderFrequency { ghz } => Some(*ghz),
            _ => None,
        })
    }

    /// Whether the plan carries a [`Fault::Hang`].
    #[must_use]
    pub fn hangs(&self) -> bool {
        self.faults.iter().any(|f| matches!(f, Fault::Hang))
    }

    /// The added job latency, if the plan carries a [`Fault::SlowJob`].
    #[must_use]
    pub fn slow_job_millis(&self) -> Option<u64> {
        self.faults.iter().find_map(|f| match f {
            Fault::SlowJob { millis } => Some(*millis),
            _ => None,
        })
    }

    /// The number of leading attempts that must fail, if the plan
    /// carries a [`Fault::TransientThenSucceed`].
    #[must_use]
    pub fn transient_failures(&self) -> Option<u32> {
        self.faults.iter().find_map(|f| match f {
            Fault::TransientThenSucceed { failures } => Some(*failures),
            _ => None,
        })
    }

    /// Applies the job-level faults (slow start, transient failure,
    /// hang) under the current [`RunContext`](crate::RunContext),
    /// describing the job as `what` in any error.
    ///
    /// - [`Fault::SlowJob`] sleeps, then re-polls the deadline.
    /// - [`Fault::TransientThenSucceed`] fails with an `injected`-class
    ///   error while [`crate::current_attempt`] is below the configured
    ///   count, and passes afterwards.
    /// - [`Fault::Hang`] spins observing the token until it trips,
    ///   returning the resulting `deadline`-class error — unless the
    ///   current attempt is declared degraded, which skips the hang
    ///   (the degraded re-run is the supervisor's escape hatch for a
    ///   diverging solve).
    ///
    /// # Errors
    ///
    /// `injected`-class for a transient failure, `deadline`-class when
    /// a hang (or slow start) runs into the token.
    pub fn inject_job_faults(&self, what: &str) -> Result<(), DarksilError> {
        if let Some(millis) = self.slow_job_millis() {
            std::thread::sleep(Duration::from_millis(millis));
            crate::check_deadline(what)?;
        }
        if let Some(failures) = self.transient_failures() {
            let attempt = crate::current_attempt();
            if attempt < failures {
                return Err(DarksilError::injected(format!(
                    "{what}: injected transient fault (attempt {attempt} of {failures} failing)"
                )));
            }
        }
        if self.hangs() && !crate::is_degraded() {
            loop {
                crate::check_deadline(what)?;
                std::thread::sleep(Duration::from_millis(1));
            }
        }
        Ok(())
    }
}

impl Default for FaultPlan {
    fn default() -> Self {
        Self::none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_is_a_no_op() {
        let plan = FaultPlan::none();
        let mut temps = vec![60.0, 61.0];
        let mut power = vec![2.0, 3.0];
        assert_eq!(plan.corrupt_temperatures(0, &mut temps), 0);
        assert_eq!(plan.corrupt_power(0, &mut power), 0);
        assert_eq!(temps, vec![60.0, 61.0]);
        assert!(plan.cg_iteration_cap().is_none());
        assert!(plan.is_empty());
    }

    #[test]
    fn dropout_and_nan_follow_the_period() {
        let plan = FaultPlan::new(9)
            .with(Fault::SensorDropout { period: 3 })
            .with(Fault::PowerNan { period: 2 });
        let mut dropped = 0;
        let mut poisoned = 0;
        for step in 0..12 {
            let mut temps = vec![70.0; 8];
            let mut power = vec![2.5; 8];
            dropped += plan.corrupt_temperatures(step, &mut temps);
            poisoned += plan.corrupt_power(step, &mut power);
            if step % 3 == 0 {
                assert_eq!(temps.iter().filter(|t| t.is_nan()).count(), 1);
            }
            if step % 2 == 0 {
                assert_eq!(power.iter().filter(|p| p.is_nan()).count(), 1);
            }
        }
        assert_eq!(dropped, 4);
        assert_eq!(poisoned, 6);
    }

    #[test]
    fn noise_is_deterministic_per_step() {
        let plan = FaultPlan::new(5).with(Fault::SensorNoise { sigma_celsius: 2.0 });
        let mut a = vec![60.0; 4];
        let mut b = vec![60.0; 4];
        plan.corrupt_temperatures(7, &mut a);
        plan.corrupt_temperatures(7, &mut b);
        assert_eq!(a, b);
        let mut c = vec![60.0; 4];
        plan.corrupt_temperatures(8, &mut c);
        assert_ne!(a, c);
        assert!(a.iter().all(|t| (t - 60.0).abs() < 20.0));
    }

    #[test]
    fn caps_and_off_ladder_queries() {
        let plan = FaultPlan::new(1)
            .with(Fault::CgIterationCap { cap: 2 })
            .with(Fault::OffLadderFrequency { ghz: 3.333 });
        assert_eq!(plan.cg_iteration_cap(), Some(2));
        assert_eq!(plan.off_ladder_frequency_ghz(), Some(3.333));
    }

    #[test]
    fn supervision_fault_queries() {
        let plan = FaultPlan::new(1)
            .with(Fault::Hang)
            .with(Fault::SlowJob { millis: 15 })
            .with(Fault::TransientThenSucceed { failures: 2 });
        assert!(plan.hangs());
        assert_eq!(plan.slow_job_millis(), Some(15));
        assert_eq!(plan.transient_failures(), Some(2));
        let empty = FaultPlan::none();
        assert!(!empty.hangs());
        assert_eq!(empty.slow_job_millis(), None);
        assert_eq!(empty.transient_failures(), None);
        empty.inject_job_faults("noop").expect("empty plan passes");
    }

    #[test]
    fn transient_fault_respects_the_attempt_counter() {
        let plan = FaultPlan::new(1).with(Fault::TransientThenSucceed { failures: 2 });
        for attempt in 0..2 {
            let ctx = crate::RunContext::unbounded().attempt_number(attempt);
            let err = crate::scoped(&ctx, || plan.inject_job_faults("job"))
                .expect_err("early attempts fail");
            assert_eq!(err.class(), crate::ErrorClass::Injected);
        }
        let ctx = crate::RunContext::unbounded().attempt_number(2);
        crate::scoped(&ctx, || plan.inject_job_faults("job")).expect("third attempt passes");
    }

    #[test]
    fn hang_is_cancelled_at_the_deadline_and_skipped_when_degraded() {
        let plan = FaultPlan::new(1).with(Fault::Hang);
        let bounded = crate::RunContext::with_token(crate::CancellationToken::with_deadline(
            Duration::from_millis(20),
        ));
        let err = crate::scoped(&bounded, || plan.inject_job_faults("hung solve"))
            .expect_err("deadline cancels the hang");
        assert_eq!(err.class(), crate::ErrorClass::Deadline);
        let degraded = crate::RunContext::unbounded().degraded_mode(true);
        crate::scoped(&degraded, || plan.inject_job_faults("hung solve"))
            .expect("degraded attempt skips the hang");
    }
}
