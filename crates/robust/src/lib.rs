//! Resilience layer for the darksil pipeline.
//!
//! Two halves:
//!
//! - [`DarksilError`], the workspace-level error taxonomy. Every crate
//!   keeps its own local error enum (so callers can still match on
//!   domain-specific failures) and provides `From<LocalError> for
//!   DarksilError` so drivers — the CLI, the `repro` harness, a future
//!   service — can classify any failure into a small, stable set of
//!   machine-readable classes without downcasting.
//! - [`FaultPlan`], the fault-injection harness. Tests and the `repro
//!   --inject` flag use it to corrupt sensor readings, poison power
//!   samples with NaN, cap CG iteration budgets, and request
//!   off-ladder frequencies, verifying that DTM and DsRem *degrade*
//!   (throttle, report extra dark silicon) instead of panicking.

mod error;
mod fault;
mod rng;

pub use error::{DarksilError, ErrorClass};
pub use fault::{Fault, FaultPlan};
pub use rng::SplitMix64;
