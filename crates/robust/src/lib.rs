//! Resilience layer for the darksil pipeline.
//!
//! Two halves:
//!
//! - [`DarksilError`], the workspace-level error taxonomy. Every crate
//!   keeps its own local error enum (so callers can still match on
//!   domain-specific failures) and provides `From<LocalError> for
//!   DarksilError` so drivers — the CLI, the `repro` harness, a future
//!   service — can classify any failure into a small, stable set of
//!   machine-readable classes without downcasting.
//! - [`FaultPlan`], the fault-injection harness. Tests and the `repro
//!   --inject` flag use it to corrupt sensor readings, poison power
//!   samples with NaN, cap CG iteration budgets, request off-ladder
//!   frequencies, and simulate hung/slow/transiently-failing jobs,
//!   verifying that DTM, DsRem and the job supervisor *degrade*
//!   (throttle, retry, relax tolerances) instead of panicking.
//! - [`CancellationToken`] / [`RunContext`], cooperative cancellation
//!   with wall-clock deadlines. The context is thread-scoped (see
//!   [`scoped`]) so CG iterations and per-step policy loops can poll
//!   [`check_deadline`] without every solver signature growing a token
//!   parameter.

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

mod cancel;
mod error;
mod fault;
mod rng;

pub use cancel::{
    check_deadline, current_attempt, is_degraded, run_context, scoped, CancellationToken,
    RunContext,
};
pub use error::{DarksilError, ErrorClass};
pub use fault::{Fault, FaultPlan};
pub use rng::SplitMix64;
