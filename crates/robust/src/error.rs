//! The workspace-level error taxonomy.

use std::fmt;

use darksil_json::{Json, ToJson};

/// Machine-readable classification of a [`DarksilError`].
///
/// Drivers branch on the class (retry solver failures, reject config
/// errors, page on internal errors); the variant payloads carry the
/// human-readable context.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ErrorClass {
    /// A linear/ODE solver failed after exhausting its fallback chain.
    Solver,
    /// A NaN or infinity reached a numeric input.
    NonFinite,
    /// A configuration or scenario file was invalid.
    Config,
    /// Mismatched dimensions between coupled inputs.
    Dimension,
    /// A resource budget (cores, power, levels) cannot accommodate the
    /// request.
    Capacity,
    /// A request outside the supported envelope (off-ladder frequency,
    /// unknown policy, …).
    Unsupported,
    /// Filesystem or serialisation failure.
    Io,
    /// A result-cache entry was corrupt, stale, or unwritable; the
    /// computation was (or must be) redone from scratch.
    Cache,
    /// A deliberately injected fault surfaced to the caller.
    Injected,
    /// A job exceeded its wall-clock budget (or was cancelled) and
    /// stopped cooperatively at an iteration boundary.
    Deadline,
    /// An invariant the library promises internally was broken.
    Internal,
}

impl ErrorClass {
    /// Stable lowercase label used in JSON error reports.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Self::Solver => "solver",
            Self::NonFinite => "non_finite",
            Self::Config => "config",
            Self::Dimension => "dimension",
            Self::Capacity => "capacity",
            Self::Unsupported => "unsupported",
            Self::Io => "io",
            Self::Cache => "cache",
            Self::Injected => "injected",
            Self::Deadline => "deadline",
            Self::Internal => "internal",
        }
    }

    /// Whether a supervisor may retry a failure of this class.
    ///
    /// Transient-by-nature classes (a stalled solver, an injected
    /// fault, a corrupt cache entry, a filesystem hiccup, an expired
    /// deadline) are worth a fresh attempt; deterministic rejections
    /// (bad config, mismatched dimensions, exceeded capacity) would
    /// fail identically every time.
    #[must_use]
    pub fn is_retryable(self) -> bool {
        matches!(
            self,
            Self::Solver | Self::Injected | Self::Cache | Self::Io | Self::Deadline
        )
    }
}

impl fmt::Display for ErrorClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// A classified, context-carrying error for the whole workspace.
///
/// Constructed via the class-named helpers ([`DarksilError::solver`],
/// [`DarksilError::config`], …) or via the `From` impls each crate
/// provides for its local error type.
#[derive(Debug, Clone, PartialEq)]
pub struct DarksilError {
    class: ErrorClass,
    message: String,
    /// Outermost-first chain of contexts added by [`Self::context`].
    trail: Vec<String>,
}

impl DarksilError {
    /// Builds an error of the given class.
    #[must_use]
    pub fn new(class: ErrorClass, message: impl Into<String>) -> Self {
        Self {
            class,
            message: message.into(),
            trail: Vec::new(),
        }
    }

    /// A solver failure (convergence, singularity).
    #[must_use]
    pub fn solver(message: impl Into<String>) -> Self {
        Self::new(ErrorClass::Solver, message)
    }

    /// A NaN/Inf guard firing.
    #[must_use]
    pub fn non_finite(message: impl Into<String>) -> Self {
        Self::new(ErrorClass::NonFinite, message)
    }

    /// An invalid configuration or scenario.
    #[must_use]
    pub fn config(message: impl Into<String>) -> Self {
        Self::new(ErrorClass::Config, message)
    }

    /// Mismatched input dimensions.
    #[must_use]
    pub fn dimension(message: impl Into<String>) -> Self {
        Self::new(ErrorClass::Dimension, message)
    }

    /// An exhausted resource budget.
    #[must_use]
    pub fn capacity(message: impl Into<String>) -> Self {
        Self::new(ErrorClass::Capacity, message)
    }

    /// A request outside the supported envelope.
    #[must_use]
    pub fn unsupported(message: impl Into<String>) -> Self {
        Self::new(ErrorClass::Unsupported, message)
    }

    /// A filesystem or serialisation failure.
    #[must_use]
    pub fn io(message: impl Into<String>) -> Self {
        Self::new(ErrorClass::Io, message)
    }

    /// A corrupt, stale, or unwritable result-cache entry.
    #[must_use]
    pub fn cache(message: impl Into<String>) -> Self {
        Self::new(ErrorClass::Cache, message)
    }

    /// A deliberately injected fault.
    #[must_use]
    pub fn injected(message: impl Into<String>) -> Self {
        Self::new(ErrorClass::Injected, message)
    }

    /// An exceeded wall-clock budget or observed cancellation.
    #[must_use]
    pub fn deadline(message: impl Into<String>) -> Self {
        Self::new(ErrorClass::Deadline, message)
    }

    /// A broken internal invariant.
    #[must_use]
    pub fn internal(message: impl Into<String>) -> Self {
        Self::new(ErrorClass::Internal, message)
    }

    /// The machine-readable class.
    #[must_use]
    pub fn class(&self) -> ErrorClass {
        self.class
    }

    /// The innermost message, without the context trail.
    #[must_use]
    pub fn message(&self) -> &str {
        &self.message
    }

    /// Wraps the error with an outer context line ("while solving the
    /// steady state for fig5: …").
    #[must_use]
    pub fn context(mut self, what: impl Into<String>) -> Self {
        self.trail.insert(0, what.into());
        self
    }
}

impl fmt::Display for DarksilError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] ", self.class)?;
        for ctx in &self.trail {
            write!(f, "{ctx}: ")?;
        }
        f.write_str(&self.message)
    }
}

impl std::error::Error for DarksilError {}

impl ToJson for DarksilError {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            (
                "class".to_string(),
                Json::Str(self.class.label().to_string()),
            ),
            ("message".to_string(), Json::Str(self.message.clone())),
            (
                "context".to_string(),
                Json::Arr(self.trail.iter().map(|c| Json::Str(c.clone())).collect()),
            ),
        ])
    }
}

impl From<darksil_json::JsonError> for DarksilError {
    fn from(e: darksil_json::JsonError) -> Self {
        Self::config(e.to_string())
    }
}

impl From<std::io::Error> for DarksilError {
    fn from(e: std::io::Error) -> Self {
        Self::io(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_carries_class_and_context() {
        let e = DarksilError::solver("CG stalled at residual 3e-2")
            .context("steady state")
            .context("fig5");
        let shown = e.to_string();
        assert!(shown.starts_with("[solver] "), "{shown}");
        assert!(shown.contains("fig5: steady state: CG stalled"), "{shown}");
        assert_eq!(e.class(), ErrorClass::Solver);
    }

    #[test]
    fn json_form_is_machine_readable() {
        let e = DarksilError::non_finite("power[3] is NaN").context("rhs assembly");
        let j = e.to_json();
        assert_eq!(j.get("class"), Some(&Json::Str("non_finite".into())));
        assert!(matches!(j.get("context"), Some(Json::Arr(a)) if a.len() == 1));
    }

    #[test]
    fn every_class_has_a_stable_label() {
        let classes = [
            ErrorClass::Solver,
            ErrorClass::NonFinite,
            ErrorClass::Config,
            ErrorClass::Dimension,
            ErrorClass::Capacity,
            ErrorClass::Unsupported,
            ErrorClass::Io,
            ErrorClass::Cache,
            ErrorClass::Injected,
            ErrorClass::Deadline,
            ErrorClass::Internal,
        ];
        let mut labels: Vec<_> = classes.iter().map(|c| c.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), classes.len(), "labels must be unique");
    }

    #[test]
    fn retryability_matches_the_supervision_policy() {
        for class in [
            ErrorClass::Solver,
            ErrorClass::Injected,
            ErrorClass::Cache,
            ErrorClass::Io,
            ErrorClass::Deadline,
        ] {
            assert!(class.is_retryable(), "{class} should be retryable");
        }
        for class in [
            ErrorClass::Config,
            ErrorClass::Dimension,
            ErrorClass::Capacity,
            ErrorClass::Unsupported,
            ErrorClass::NonFinite,
            ErrorClass::Internal,
        ] {
            assert!(!class.is_retryable(), "{class} should not be retryable");
        }
    }
}
