//! A tiny deterministic PRNG for fault injection and shim testing.

/// SplitMix64: fast, dependency-free, and statistically adequate for
/// test-input generation and fault scheduling (not cryptography).
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Seeds the generator.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    #[allow(clippy::cast_precision_loss)]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1_u64 << 53) as f64
    }

    /// Uniform in `[0, bound)`; returns 0 for `bound == 0`.
    #[allow(clippy::cast_possible_truncation)]
    pub fn next_below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            0
        } else {
            self.next_u64() % bound
        }
    }

    /// A roughly standard-normal sample (sum of 12 uniforms, shifted) —
    /// plenty for sensor-noise injection.
    pub fn next_gaussian(&mut self) -> f64 {
        let mut acc = 0.0;
        for _ in 0..12 {
            acc += self.next_f64();
        }
        acc - 6.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_a_seed() {
        let a: Vec<u64> = {
            let mut r = SplitMix64::new(42);
            (0..5).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = SplitMix64::new(42);
            (0..5).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        let mut r = SplitMix64::new(43);
        assert_ne!(a[0], r.next_u64());
    }

    #[test]
    fn uniform_and_gaussian_are_sane() {
        let mut r = SplitMix64::new(7);
        let mut sum = 0.0;
        for _ in 0..1000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        assert!((sum / 1000.0 - 0.5).abs() < 0.05);
        let g: f64 = (0..1000).map(|_| r.next_gaussian()).sum::<f64>() / 1000.0;
        assert!(g.abs() < 0.2);
    }
}
