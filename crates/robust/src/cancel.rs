//! Cooperative cancellation with wall-clock deadlines.
//!
//! Long-running kernels (CG iterations, per-step policy loops) cannot
//! be interrupted from outside without leaving shared state in an
//! undefined shape, so cancellation here is *cooperative*: a
//! [`CancellationToken`] carries a cancel flag and an optional
//! deadline, and the running code polls it at iteration boundaries via
//! [`check_deadline`]. A tripped check surfaces as a [`DarksilError`]
//! of class `deadline`, which unwinds the solve through the ordinary
//! error path — no wedged workers, no poisoned locks.
//!
//! The token travels in a thread-scoped [`RunContext`] rather than as
//! an extra parameter on every solver signature: a supervisor installs
//! the context with [`scoped`] around a job, the execution engine
//! re-installs the caller's context inside its workers, and any kernel
//! anywhere below can poll [`check_deadline`] (or consult
//! [`is_degraded`] / [`current_attempt`]) without its API knowing about
//! supervision at all. Code running outside any scope sees an
//! unbounded, non-degraded context, so the checks are free to sprinkle
//! unconditionally.

use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::DarksilError;

/// Shared cancellation state: a manual cancel flag plus an optional
/// wall-clock deadline. Cheap to clone (an `Arc` bump) and safe to
/// observe from any thread.
#[derive(Debug, Clone)]
pub struct CancellationToken {
    inner: Arc<TokenState>,
}

#[derive(Debug)]
struct TokenState {
    cancelled: AtomicBool,
    deadline: Option<Instant>,
}

impl CancellationToken {
    /// A token that never expires on its own; only [`cancel`]
    /// (from any clone) trips it.
    ///
    /// [`cancel`]: Self::cancel
    #[must_use]
    pub fn unbounded() -> Self {
        Self {
            inner: Arc::new(TokenState {
                cancelled: AtomicBool::new(false),
                deadline: None,
            }),
        }
    }

    /// A token that expires `budget` from now.
    #[must_use]
    pub fn with_deadline(budget: Duration) -> Self {
        Self {
            inner: Arc::new(TokenState {
                cancelled: AtomicBool::new(false),
                deadline: Some(Instant::now() + budget),
            }),
        }
    }

    /// A token that expires at the absolute instant `at`. Connection
    /// handlers that amortise one wall-clock budget across several
    /// blocking reads anchor the deadline once and re-check it between
    /// reads, instead of granting a fresh budget per read.
    #[must_use]
    pub fn with_deadline_at(at: Instant) -> Self {
        Self {
            inner: Arc::new(TokenState {
                cancelled: AtomicBool::new(false),
                deadline: Some(at),
            }),
        }
    }

    /// Trips the token; every clone observes it.
    pub fn cancel(&self) {
        self.inner.cancelled.store(true, Ordering::SeqCst);
    }

    /// Whether the token is tripped — manually cancelled or past its
    /// deadline.
    #[must_use]
    pub fn is_cancelled(&self) -> bool {
        if self.inner.cancelled.load(Ordering::SeqCst) {
            return true;
        }
        self.inner
            .deadline
            .is_some_and(|deadline| Instant::now() >= deadline)
    }

    /// Time left before the deadline; `None` for unbounded tokens.
    /// Zero once expired.
    #[must_use]
    pub fn remaining(&self) -> Option<Duration> {
        self.inner
            .deadline
            .map(|deadline| deadline.saturating_duration_since(Instant::now()))
    }

    /// Polls the token, describing the interrupted work as `what` in
    /// the error.
    ///
    /// # Errors
    ///
    /// A [`DarksilError`] of class `deadline` when the token is
    /// tripped.
    pub fn check(&self, what: &str) -> Result<(), DarksilError> {
        if !self.is_cancelled() {
            return Ok(());
        }
        if self.inner.cancelled.load(Ordering::SeqCst) {
            Err(DarksilError::deadline(format!("{what}: cancelled")))
        } else {
            Err(DarksilError::deadline(format!(
                "{what}: wall-clock deadline exceeded"
            )))
        }
    }
}

/// Everything a supervised job needs to know about how it is being
/// run: its cancellation token, whether this is a declared degraded
/// attempt, and which attempt (0-based) it is.
#[derive(Debug, Clone)]
pub struct RunContext {
    token: CancellationToken,
    degraded: bool,
    attempt: u32,
}

impl RunContext {
    /// An unbounded, non-degraded, first-attempt context — what
    /// unsupervised code implicitly runs under.
    #[must_use]
    pub fn unbounded() -> Self {
        Self {
            token: CancellationToken::unbounded(),
            degraded: false,
            attempt: 0,
        }
    }

    /// A context around an existing token.
    #[must_use]
    pub fn with_token(token: CancellationToken) -> Self {
        Self {
            token,
            degraded: false,
            attempt: 0,
        }
    }

    /// Marks (or clears) the declared-degraded flag (builder style).
    #[must_use]
    pub fn degraded_mode(mut self, degraded: bool) -> Self {
        self.degraded = degraded;
        self
    }

    /// Records the 0-based attempt number (builder style).
    #[must_use]
    pub fn attempt_number(mut self, attempt: u32) -> Self {
        self.attempt = attempt;
        self
    }

    /// The cancellation token.
    #[must_use]
    pub fn token(&self) -> &CancellationToken {
        &self.token
    }

    /// Whether the job should run in declared degraded mode (relaxed
    /// solver tolerances, coarser grids).
    #[must_use]
    pub fn is_degraded(&self) -> bool {
        self.degraded
    }

    /// The 0-based attempt number.
    #[must_use]
    pub fn attempt(&self) -> u32 {
        self.attempt
    }
}

impl Default for RunContext {
    fn default() -> Self {
        Self::unbounded()
    }
}

thread_local! {
    static CURRENT: RefCell<Option<RunContext>> = const { RefCell::new(None) };
}

/// Restores the previously installed context on drop, so a panic
/// unwinding through [`scoped`] (caught by the engine's isolation)
/// cannot leak a stale context into the next job on the worker.
struct ScopeGuard {
    previous: Option<RunContext>,
}

impl Drop for ScopeGuard {
    fn drop(&mut self) {
        CURRENT.with(|current| {
            *current.borrow_mut() = self.previous.take();
        });
    }
}

/// Runs `f` with `context` installed as the thread's current
/// [`RunContext`]; the previous context (if any) is restored
/// afterwards, panic or not.
pub fn scoped<T>(context: &RunContext, f: impl FnOnce() -> T) -> T {
    let previous = CURRENT.with(|current| current.borrow_mut().replace(context.clone()));
    let _guard = ScopeGuard { previous };
    f()
}

/// The thread's current [`RunContext`], or the unbounded default when
/// none is installed.
#[must_use]
pub fn run_context() -> RunContext {
    CURRENT
        .with(|current| current.borrow().clone())
        .unwrap_or_default()
}

/// Polls the current context's token, describing the interrupted work
/// as `what`. Outside any scope this is always `Ok`.
///
/// # Errors
///
/// A [`DarksilError`] of class `deadline` when the current token is
/// tripped.
pub fn check_deadline(what: &str) -> Result<(), DarksilError> {
    CURRENT.with(|current| match current.borrow().as_ref() {
        Some(context) => context.token().check(what),
        None => Ok(()),
    })
}

/// Whether the current context runs in declared degraded mode.
#[must_use]
pub fn is_degraded() -> bool {
    CURRENT.with(|current| {
        current
            .borrow()
            .as_ref()
            .is_some_and(RunContext::is_degraded)
    })
}

/// The current context's 0-based attempt number (0 outside any scope).
#[must_use]
pub fn current_attempt() -> u32 {
    CURRENT.with(|current| current.borrow().as_ref().map_or(0, RunContext::attempt))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ErrorClass;

    #[test]
    fn unbounded_token_never_trips_on_its_own() {
        let token = CancellationToken::unbounded();
        assert!(!token.is_cancelled());
        assert!(token.remaining().is_none());
        token.check("idle").expect("unbounded token passes");
        token.cancel();
        assert!(token.is_cancelled());
        let err = token.check("idle").expect_err("cancelled token trips");
        assert_eq!(err.class(), ErrorClass::Deadline);
        assert!(err.to_string().contains("cancelled"), "{err}");
    }

    #[test]
    fn expired_deadline_trips_with_a_deadline_message() {
        let token = CancellationToken::with_deadline(Duration::from_millis(0));
        assert!(token.is_cancelled());
        assert_eq!(token.remaining(), Some(Duration::ZERO));
        let err = token.check("cg iteration").expect_err("expired");
        assert_eq!(err.class(), ErrorClass::Deadline);
        assert!(err.to_string().contains("deadline exceeded"), "{err}");
        assert!(err.to_string().contains("cg iteration"), "{err}");
    }

    #[test]
    fn absolute_deadlines_anchor_to_the_given_instant() {
        let expired = CancellationToken::with_deadline_at(Instant::now());
        assert!(expired.is_cancelled());
        let future = CancellationToken::with_deadline_at(Instant::now() + Duration::from_secs(60));
        assert!(!future.is_cancelled());
        assert!(future.remaining().expect("bounded") > Duration::from_secs(30));
    }

    #[test]
    fn generous_deadline_passes() {
        let token = CancellationToken::with_deadline(Duration::from_secs(3600));
        assert!(!token.is_cancelled());
        assert!(token.remaining().expect("bounded") > Duration::from_secs(3000));
        token.check("step").expect("far-future deadline passes");
    }

    #[test]
    fn cancellation_is_shared_across_clones_and_threads() {
        let token = CancellationToken::unbounded();
        let clone = token.clone();
        std::thread::spawn(move || clone.cancel())
            .join()
            .expect("cancelling thread");
        assert!(token.is_cancelled());
    }

    #[test]
    fn scoped_context_is_visible_and_restored() {
        assert!(check_deadline("outside").is_ok());
        assert!(!is_degraded());
        assert_eq!(current_attempt(), 0);

        let context = RunContext::with_token(CancellationToken::unbounded())
            .degraded_mode(true)
            .attempt_number(3);
        scoped(&context, || {
            assert!(is_degraded());
            assert_eq!(current_attempt(), 3);
            // Nested scopes shadow and then restore the outer one.
            let inner = RunContext::unbounded();
            scoped(&inner, || {
                assert!(!is_degraded());
                assert_eq!(current_attempt(), 0);
            });
            assert!(is_degraded());
            assert_eq!(current_attempt(), 3);
        });
        assert!(!is_degraded());
        assert_eq!(current_attempt(), 0);
    }

    #[test]
    fn scoped_restores_after_a_panic() {
        let context =
            RunContext::with_token(CancellationToken::with_deadline(Duration::from_millis(0)));
        let unwound = std::panic::catch_unwind(|| {
            scoped(&context, || panic!("job blew up"));
        });
        assert!(unwound.is_err());
        // The expired context did not leak out of the scope.
        assert!(check_deadline("after panic").is_ok());
    }

    #[test]
    fn check_deadline_observes_the_installed_token() {
        let context =
            RunContext::with_token(CancellationToken::with_deadline(Duration::from_millis(0)));
        let err = scoped(&context, || check_deadline("loop step"))
            .expect_err("expired context trips the free function");
        assert_eq!(err.class(), ErrorClass::Deadline);
    }
}
