//! Declarative experiment scenarios.
//!
//! A [`Scenario`] is a JSON-serialisable description of one experiment:
//! the platform (node, optional core count / DTM threshold / variation
//! seed), a workload (application instances), and what to do with it —
//! budget-constrained mapping, a thermal-constraint evaluation, one of
//! the mapping policies, or a transient boosting-vs-constant run. The
//! `darksil run <file.json>` subcommand executes scenarios; library
//! users call [`run_scenario`] directly.
//!
//! ```json
//! {
//!   "name": "x264 under TDP",
//!   "node": 16,
//!   "workload": [{ "app": "x264", "instances": 12, "threads": 8 }],
//!   "experiment": { "type": "policy", "policy": "dsrem", "tdp_watts": 185.0 }
//! }
//! ```
//!
//! This crate hosts the types, the strict validator and the executor so
//! downstream tooling (the `darksil` CLI, the fuzzing arena) can share
//! them without depending on the root crate; `darksil::scenario`
//! re-exports everything here.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

use darksil_boost::{run_boosting, run_constant, PolicyConfig};
use darksil_json::{Json, JsonError, ObjReader, ToJson};
use darksil_mapping::{place_contiguous, DsRem, Platform, TdpMap};
use darksil_power::{TechnologyNode, VariationModel};
use darksil_units::{Celsius, Hertz, Seconds, Watts};
use darksil_workload::{AppInstance, ParsecApp, Workload, MAX_THREADS_PER_INSTANCE};

/// One workload line: `instances` copies of `app`, each with `threads`
/// threads.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkloadSpec {
    /// Application name (`x264`, `canneal`, …).
    pub app: String,
    /// Number of instances.
    pub instances: usize,
    /// Threads per instance (1–8).
    pub threads: usize,
}

darksil_json::impl_json!(struct WorkloadSpec { app, instances, threads });

/// What to do with the platform and workload.
#[derive(Debug, Clone, PartialEq)]
pub enum ExperimentSpec {
    /// Map instances in order until the budget is exhausted (TDPmap).
    PowerBudget {
        /// The TDP in watts.
        tdp_watts: f64,
    },
    /// Map the whole workload contiguously and report the thermal
    /// outcome.
    Thermal {
        /// Frequency in GHz; the node's nominal maximum if omitted.
        frequency_ghz: Option<f64>,
    },
    /// Run a mapping policy.
    Policy {
        /// `"tdpmap"` or `"dsrem"`.
        policy: String,
        /// The TDP in watts.
        tdp_watts: f64,
    },
    /// Transient boosting vs constant frequency.
    Boost {
        /// Simulated seconds.
        duration_s: f64,
        /// Control period in seconds (defaults to 0.01).
        period_s: f64,
    },
}

impl ToJson for ExperimentSpec {
    fn to_json(&self) -> Json {
        let mut fields: Vec<(String, Json)> = Vec::new();
        match self {
            Self::PowerBudget { tdp_watts } => {
                fields.push(("type".into(), Json::Str("power_budget".into())));
                fields.push(("tdp_watts".into(), tdp_watts.to_json()));
            }
            Self::Thermal { frequency_ghz } => {
                fields.push(("type".into(), Json::Str("thermal".into())));
                if let Some(f) = frequency_ghz {
                    fields.push(("frequency_ghz".into(), f.to_json()));
                }
            }
            Self::Policy { policy, tdp_watts } => {
                fields.push(("type".into(), Json::Str("policy".into())));
                fields.push(("policy".into(), policy.to_json()));
                fields.push(("tdp_watts".into(), tdp_watts.to_json()));
            }
            Self::Boost {
                duration_s,
                period_s,
            } => {
                fields.push(("type".into(), Json::Str("boost".into())));
                fields.push(("duration_s".into(), duration_s.to_json()));
                fields.push(("period_s".into(), period_s.to_json()));
            }
        }
        Json::Obj(fields)
    }
}

impl darksil_json::FromJson for ExperimentSpec {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        let mut r = ObjReader::new(v, "experiment")?;
        let tag: String = r.req("type")?;
        let spec = match tag.as_str() {
            "power_budget" => Self::PowerBudget {
                tdp_watts: r.req("tdp_watts")?,
            },
            "thermal" => Self::Thermal {
                frequency_ghz: r.opt("frequency_ghz")?,
            },
            "policy" => Self::Policy {
                policy: r.req("policy")?,
                tdp_watts: r.req("tdp_watts")?,
            },
            "boost" => Self::Boost {
                duration_s: r.req("duration_s")?,
                period_s: r.opt_or("period_s", 0.01)?,
            },
            other => {
                return Err(JsonError::msg(format!(
                    "unknown experiment type `{other}` (expected power_budget, thermal, policy or boost)"
                ))
                .in_field("type"))
            }
        };
        r.finish()?;
        Ok(spec)
    }
}

/// A complete scenario file.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// Human-readable name, echoed into the report.
    pub name: String,
    /// Technology node in nm (22, 16, 11 or 8).
    pub node: u32,
    /// Core count override (the node's evaluated count if omitted).
    pub cores: Option<usize>,
    /// DTM threshold override in °C (80 if omitted).
    pub t_dtm_celsius: Option<f64>,
    /// Process-variation seed; an ideal chip if omitted.
    pub variation_seed: Option<u64>,
    /// Log-leakage spread σ (power-scale variability); the typical 0.25
    /// if omitted while a variation is in effect.
    pub leakage_sigma: Option<f64>,
    /// Frequency spread σ (perf-scale variability); the typical 0.03 if
    /// omitted while a variation is in effect.
    pub frequency_sigma: Option<f64>,
    /// The workload.
    pub workload: Vec<WorkloadSpec>,
    /// The experiment to run.
    pub experiment: ExperimentSpec,
}

darksil_json::impl_json!(struct Scenario { name, node, workload, experiment } opt {
    cores,
    t_dtm_celsius,
    variation_seed,
    leakage_sigma,
    frequency_sigma,
});

/// The outcome of a scenario run — JSON-serialisable, one per scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioReport {
    /// Echo of the scenario name.
    pub name: String,
    /// Active cores after mapping (or during the transient).
    pub active_cores: usize,
    /// Dark-silicon fraction.
    pub dark_fraction: f64,
    /// Total throughput in GIPS.
    pub total_gips: f64,
    /// Total power in watts (steady state / peak for transients).
    pub total_power_w: f64,
    /// Peak die temperature in °C.
    pub peak_temperature_c: f64,
    /// Whether the DTM threshold was exceeded.
    pub thermal_violation: bool,
    /// Extra per-experiment detail lines.
    pub notes: Vec<String>,
}

darksil_json::impl_json!(struct ScenarioReport {
    name,
    active_cores,
    dark_fraction,
    total_gips,
    total_power_w,
    peak_temperature_c,
    thermal_violation,
    notes,
});

/// Errors from scenario parsing/execution.
#[derive(Debug)]
pub enum ScenarioError {
    /// The JSON was syntactically or structurally invalid; carries the
    /// field path (and file, when parsed from one).
    Parse(JsonError),
    /// A field value was out of range.
    Invalid(String),
    /// An inner toolkit error.
    Run(Box<dyn std::error::Error>),
}

impl std::fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Parse(e) => write!(f, "scenario parse error: {e}"),
            Self::Invalid(msg) => write!(f, "invalid scenario: {msg}"),
            Self::Run(e) => write!(f, "scenario failed: {e}"),
        }
    }
}

impl std::error::Error for ScenarioError {}

impl From<JsonError> for ScenarioError {
    fn from(e: JsonError) -> Self {
        Self::Parse(e)
    }
}

fn run_err<E: std::error::Error + 'static>(e: E) -> ScenarioError {
    ScenarioError::Run(Box::new(e))
}

/// Parses and validates a scenario from JSON text.
///
/// # Errors
///
/// Returns [`ScenarioError::Parse`] for malformed JSON and for field
/// values that fail [validation](validate_scenario) — the error names
/// the offending field.
pub fn parse_scenario(json: &str) -> Result<Scenario, ScenarioError> {
    let scenario: Scenario = darksil_json::from_str(json)?;
    validate_scenario(&scenario)?;
    Ok(scenario)
}

/// Reads, parses and validates a scenario file; errors name both the
/// offending field and the file.
///
/// # Errors
///
/// Returns [`ScenarioError::Parse`] for unreadable files, malformed
/// JSON, and validation failures.
pub fn parse_scenario_file(path: &std::path::Path) -> Result<Scenario, ScenarioError> {
    let file = path.display().to_string();
    let text = std::fs::read_to_string(path)
        .map_err(|e| JsonError::msg(format!("cannot read file: {e}")).in_file(&file))?;
    match parse_scenario(&text) {
        Ok(s) => Ok(s),
        Err(ScenarioError::Parse(e)) => Err(ScenarioError::Parse(e.in_file(&file))),
        Err(other) => Err(other),
    }
}

/// Frequencies must sit on the standard 200 MHz DVFS grid; anything
/// else is an off-ladder request the hardware cannot honour.
fn on_ladder_grid(ghz: f64) -> bool {
    let steps = ghz / 0.2;
    ghz > 0.0 && (steps - steps.round()).abs() < 1e-6
}

fn field_err(message: String, field: &str) -> JsonError {
    JsonError::msg(message).in_field(field)
}

/// Strict semantic validation of a parsed scenario.
///
/// Rejects NaN/Inf/non-positive power budgets, zero-core floorplans,
/// off-ladder frequencies, empty or out-of-range workload lines and
/// unknown node/application names. Every error names the offending
/// field.
///
/// # Errors
///
/// Returns [`ScenarioError::Parse`] with the field path on the first
/// violation.
pub fn validate_scenario(s: &Scenario) -> Result<(), ScenarioError> {
    if s.name.trim().is_empty() {
        return Err(field_err("scenario name must not be empty".into(), "name").into());
    }
    if !TechnologyNode::ALL.iter().any(|n| n.nanometers() == s.node) {
        return Err(field_err(
            format!(
                "unknown technology node {} nm (expected 22, 16, 11 or 8)",
                s.node
            ),
            "node",
        )
        .into());
    }
    if let Some(cores) = s.cores {
        if cores == 0 {
            return Err(field_err("core count must be at least 1".into(), "cores").into());
        }
    }
    if let Some(t) = s.t_dtm_celsius {
        if !t.is_finite() || t <= 0.0 {
            return Err(field_err(
                format!("t_dtm_celsius must be positive and finite, got {t}"),
                "t_dtm_celsius",
            )
            .into());
        }
    }
    if let Some(sigma) = s.leakage_sigma {
        if !sigma.is_finite() || !(0.0..=2.0).contains(&sigma) {
            return Err(field_err(
                format!("leakage_sigma must be finite in 0..=2, got {sigma}"),
                "leakage_sigma",
            )
            .into());
        }
    }
    if let Some(sigma) = s.frequency_sigma {
        if !sigma.is_finite() || !(0.0..=0.5).contains(&sigma) {
            return Err(field_err(
                format!("frequency_sigma must be finite in 0..=0.5, got {sigma}"),
                "frequency_sigma",
            )
            .into());
        }
    }
    if s.workload.is_empty() {
        return Err(field_err("workload must not be empty".into(), "workload").into());
    }
    for (i, line) in s.workload.iter().enumerate() {
        let line_err = |message: String, field: &str| {
            ScenarioError::Parse(
                JsonError::msg(message)
                    .in_field(field)
                    .at_index(i)
                    .in_field("workload"),
            )
        };
        if !ParsecApp::ALL.iter().any(|a| a.name() == line.app) {
            return Err(line_err(
                format!("unknown application `{}`", line.app),
                "app",
            ));
        }
        if line.instances == 0 {
            return Err(line_err("instances must be at least 1".into(), "instances"));
        }
        if line.threads == 0 || line.threads > MAX_THREADS_PER_INSTANCE {
            return Err(line_err(
                format!(
                    "threads must be 1..={MAX_THREADS_PER_INSTANCE}, got {}",
                    line.threads
                ),
                "threads",
            ));
        }
    }
    let experiment_err = |message: String, field: &str| {
        ScenarioError::Parse(
            JsonError::msg(message)
                .in_field(field)
                .in_field("experiment"),
        )
    };
    let check_tdp = |tdp: f64| {
        if !tdp.is_finite() || tdp <= 0.0 {
            Err(experiment_err(
                format!("tdp_watts must be positive and finite, got {tdp}"),
                "tdp_watts",
            ))
        } else {
            Ok(())
        }
    };
    match &s.experiment {
        ExperimentSpec::PowerBudget { tdp_watts } => check_tdp(*tdp_watts)?,
        ExperimentSpec::Thermal { frequency_ghz } => {
            if let Some(ghz) = frequency_ghz {
                if !ghz.is_finite() || !on_ladder_grid(*ghz) {
                    return Err(experiment_err(
                        format!("frequency {ghz} GHz is not on the 200 MHz DVFS ladder"),
                        "frequency_ghz",
                    ));
                }
            }
        }
        ExperimentSpec::Policy { policy, tdp_watts } => {
            check_tdp(*tdp_watts)?;
            if policy != "tdpmap" && policy != "dsrem" {
                return Err(experiment_err(
                    format!("unknown policy `{policy}` (use tdpmap|dsrem)"),
                    "policy",
                ));
            }
        }
        ExperimentSpec::Boost {
            duration_s,
            period_s,
        } => {
            if !duration_s.is_finite() || *duration_s <= 0.0 {
                return Err(experiment_err(
                    format!("duration_s must be positive and finite, got {duration_s}"),
                    "duration_s",
                ));
            }
            if !period_s.is_finite() || *period_s <= 0.0 || period_s > duration_s {
                return Err(experiment_err(
                    format!(
                        "period_s must be positive, finite and at most duration_s, got {period_s}"
                    ),
                    "period_s",
                ));
            }
        }
    }
    Ok(())
}

fn node_of(nm: u32) -> Result<TechnologyNode, ScenarioError> {
    TechnologyNode::ALL
        .iter()
        .find(|n| n.nanometers() == nm)
        .copied()
        .ok_or_else(|| ScenarioError::Invalid(format!("unknown node {nm} nm")))
}

fn app_of(name: &str) -> Result<ParsecApp, ScenarioError> {
    ParsecApp::ALL
        .iter()
        .find(|a| a.name() == name)
        .copied()
        .ok_or_else(|| ScenarioError::Invalid(format!("unknown application '{name}'")))
}

/// Builds the [`Platform`] a scenario describes (node, optional core
/// count / DTM threshold / variation overrides). Exposed so tooling
/// that probes the platform directly — the fuzzing arena's TSP and DTM
/// probes — constructs exactly the chip [`run_scenario`] would.
///
/// # Errors
///
/// Returns [`ScenarioError::Invalid`] for unknown nodes and
/// [`ScenarioError::Run`] for platform-construction failures.
pub fn build_platform(s: &Scenario) -> Result<Platform, ScenarioError> {
    let node = node_of(s.node)?;
    let mut platform = match s.cores {
        Some(cores) => Platform::with_core_count(node, cores).map_err(run_err)?,
        None => Platform::for_node(node).map_err(run_err)?,
    };
    if let Some(t) = s.t_dtm_celsius {
        platform = platform.with_t_dtm(Celsius::new(t));
    }
    if s.variation_seed.is_some() || s.leakage_sigma.is_some() || s.frequency_sigma.is_some() {
        let seed = s.variation_seed.unwrap_or(0);
        let model = match (s.leakage_sigma, s.frequency_sigma) {
            (None, None) => VariationModel::typical(seed),
            (leak, freq) => VariationModel::new(leak.unwrap_or(0.25), freq.unwrap_or(0.03), seed)
                .map_err(run_err)?,
        };
        platform = platform.with_variation(model);
    }
    Ok(platform)
}

/// Builds the [`Workload`] a scenario describes — one [`AppInstance`]
/// per requested instance. Exposed for the same probing tools as
/// [`build_platform`].
///
/// # Errors
///
/// Returns [`ScenarioError::Invalid`] for unknown applications or an
/// empty expansion, and [`ScenarioError::Run`] for instance-construction
/// failures.
pub fn build_workload(s: &Scenario) -> Result<Workload, ScenarioError> {
    let mut w = Workload::new();
    for line in &s.workload {
        let app = app_of(&line.app)?;
        for _ in 0..line.instances {
            w.push(AppInstance::new(app, line.threads).map_err(run_err)?);
        }
    }
    if w.is_empty() {
        return Err(ScenarioError::Invalid("workload is empty".into()));
    }
    Ok(w)
}

fn report_mapping(
    name: &str,
    platform: &Platform,
    mapping: &darksil_mapping::Mapping,
    notes: Vec<String>,
) -> Result<ScenarioReport, ScenarioError> {
    let (peak, power) = if mapping.entries().is_empty() {
        (platform.thermal().ambient(), Watts::zero())
    } else {
        let map = mapping.steady_temperatures(platform).map_err(run_err)?;
        let temps: Vec<Celsius> = map.die_temperatures().collect();
        let power: Watts = mapping.power_map_at(platform, &temps).iter().sum();
        (map.peak(), power)
    };
    Ok(ScenarioReport {
        name: name.to_string(),
        active_cores: mapping.active_core_count(),
        dark_fraction: mapping.dark_fraction(),
        total_gips: mapping.total_gips(platform).value(),
        total_power_w: power.value(),
        peak_temperature_c: peak.value(),
        thermal_violation: peak > platform.t_dtm(),
        notes,
    })
}

/// Executes a scenario and returns its report.
///
/// # Errors
///
/// Returns [`ScenarioError::Invalid`] for out-of-range fields and
/// [`ScenarioError::Run`] for toolkit failures (workload too large,
/// solver failure, …).
pub fn run_scenario(scenario: &Scenario) -> Result<ScenarioReport, ScenarioError> {
    let platform = build_platform(scenario)?;
    let workload = build_workload(scenario)?;

    match &scenario.experiment {
        ExperimentSpec::PowerBudget { tdp_watts } => {
            if !tdp_watts.is_finite() || *tdp_watts <= 0.0 {
                return Err(ScenarioError::Invalid("tdp_watts must be positive".into()));
            }
            let mapping = TdpMap::new(Watts::new(*tdp_watts))
                .map(&platform, &workload)
                .map_err(run_err)?;
            report_mapping(
                &scenario.name,
                &platform,
                &mapping,
                vec![format!("TDPmap admission under {tdp_watts} W")],
            )
        }
        ExperimentSpec::Thermal { frequency_ghz } => {
            let f = frequency_ghz.map_or(platform.node().nominal_max_frequency(), Hertz::from_ghz);
            let level = platform
                .dvfs()
                .floor(f)
                .ok_or_else(|| ScenarioError::Invalid(format!("frequency {f} below ladder")))?;
            let mapping =
                place_contiguous(platform.floorplan(), &workload, level).map_err(run_err)?;
            report_mapping(
                &scenario.name,
                &platform,
                &mapping,
                vec![format!(
                    "whole workload at {:.1} GHz",
                    level.frequency.as_ghz()
                )],
            )
        }
        ExperimentSpec::Policy { policy, tdp_watts } => {
            if !tdp_watts.is_finite() || *tdp_watts <= 0.0 {
                return Err(ScenarioError::Invalid("tdp_watts must be positive".into()));
            }
            let tdp = Watts::new(*tdp_watts);
            let mapping = match policy.as_str() {
                "tdpmap" => TdpMap::new(tdp)
                    .map(&platform, &workload)
                    .map_err(run_err)?,
                "dsrem" => DsRem::new(tdp)
                    .map_err(run_err)?
                    .map(&platform, &workload)
                    .map_err(run_err)?,
                other => {
                    return Err(ScenarioError::Invalid(format!(
                        "unknown policy '{other}' (use tdpmap|dsrem)"
                    )))
                }
            };
            report_mapping(
                &scenario.name,
                &platform,
                &mapping,
                vec![format!("{policy} under {tdp_watts} W")],
            )
        }
        ExperimentSpec::Boost {
            duration_s,
            period_s,
        } => {
            let platform = platform
                .with_boost_levels(node_of(scenario.node)?.nominal_max_frequency() * 1.25)
                .map_err(run_err)?;
            let mapping = darksil_mapping::place_patterned(
                platform.floorplan(),
                &workload,
                platform.max_level(),
            )
            .map_err(run_err)?;
            let config = PolicyConfig {
                period: Seconds::new(*period_s),
                ..PolicyConfig::default()
            };
            let horizon = Seconds::new(*duration_s);
            let boost = run_boosting(&platform, &mapping, horizon, &config).map_err(run_err)?;
            let constant = run_constant(&platform, &mapping, horizon, &config).map_err(run_err)?;
            Ok(ScenarioReport {
                name: scenario.name.clone(),
                active_cores: mapping.active_core_count(),
                dark_fraction: mapping.dark_fraction(),
                total_gips: boost.average_gips_tail(0.5).value(),
                total_power_w: boost.peak_power().value(),
                peak_temperature_c: boost.peak_temperature().value(),
                thermal_violation: boost.peak_temperature() > platform.t_dtm() + 1.0,
                notes: vec![
                    format!(
                        "boosting avg {:.1} GIPS / peak {:.0} W",
                        boost.average_gips_tail(0.5).value(),
                        boost.peak_power().value()
                    ),
                    format!(
                        "constant avg {:.1} GIPS / peak {:.0} W",
                        constant.average_gips_tail(0.5).value(),
                        constant.peak_power().value()
                    ),
                ],
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn policy_scenario() -> Scenario {
        Scenario {
            name: "mix under DsRem".into(),
            node: 16,
            cores: Some(36),
            t_dtm_celsius: None,
            variation_seed: None,
            leakage_sigma: None,
            frequency_sigma: None,
            workload: vec![
                WorkloadSpec {
                    app: "x264".into(),
                    instances: 2,
                    threads: 8,
                },
                WorkloadSpec {
                    app: "canneal".into(),
                    instances: 1,
                    threads: 4,
                },
            ],
            experiment: ExperimentSpec::Policy {
                policy: "dsrem".into(),
                tdp_watts: 60.0,
            },
        }
    }

    #[test]
    fn json_round_trip() {
        let s = policy_scenario();
        let json = darksil_json::to_string_pretty(&s);
        let back = parse_scenario(&json).expect("round trip");
        assert_eq!(s, back);
    }

    #[test]
    fn validation_names_field_and_file() {
        let mut s = policy_scenario();
        s.experiment = ExperimentSpec::Policy {
            policy: "dsrem".into(),
            tdp_watts: f64::NAN,
        };
        // NaN cannot round-trip through JSON (it serialises as null and
        // strict parsing rejects it), so validate the in-memory value.
        let err = validate_scenario(&s).expect_err("NaN TDP rejected");
        assert!(err.to_string().contains("experiment.tdp_watts"), "{err}");

        let mut s = policy_scenario();
        s.cores = Some(0);
        let err = validate_scenario(&s).expect_err("zero cores rejected");
        assert!(err.to_string().contains("cores"), "{err}");

        let mut s = policy_scenario();
        s.experiment = ExperimentSpec::Thermal {
            frequency_ghz: Some(3.33),
        };
        let err = validate_scenario(&s).expect_err("off-ladder rejected");
        assert!(err.to_string().contains("frequency_ghz"), "{err}");

        let mut s = policy_scenario();
        s.workload[1].threads = 99;
        let err = validate_scenario(&s).expect_err("thread bound");
        assert!(err.to_string().contains("workload[1].threads"), "{err}");

        // File-level parse errors carry the file name.
        let err = parse_scenario_file(std::path::Path::new("/nonexistent/s.json"))
            .expect_err("missing file");
        assert!(err.to_string().contains("/nonexistent/s.json"), "{err}");
    }

    #[test]
    fn parses_external_style_json() {
        let json = r#"{
            "name": "quick look",
            "node": 16,
            "workload": [{ "app": "swaptions", "instances": 3, "threads": 8 }],
            "experiment": { "type": "power_budget", "tdp_watts": 100.0 }
        }"#;
        let s = parse_scenario(json).unwrap();
        assert_eq!(s.cores, None);
        assert!(matches!(
            s.experiment,
            ExperimentSpec::PowerBudget { tdp_watts } if tdp_watts == 100.0
        ));
    }

    #[test]
    fn runs_policy_scenario() {
        let report = run_scenario(&policy_scenario()).unwrap();
        assert_eq!(report.name, "mix under DsRem");
        assert!(report.active_cores > 0);
        assert!(report.total_gips > 0.0);
        assert!(!report.thermal_violation);
        assert!(report.total_power_w <= 61.0);
    }

    #[test]
    fn runs_thermal_scenario() {
        let mut s = policy_scenario();
        s.experiment = ExperimentSpec::Thermal {
            frequency_ghz: Some(2.8),
        };
        let report = run_scenario(&s).unwrap();
        assert_eq!(report.active_cores, 20);
        assert!(report.peak_temperature_c > 45.0);
    }

    #[test]
    fn runs_boost_scenario() {
        let mut s = policy_scenario();
        s.experiment = ExperimentSpec::Boost {
            duration_s: 5.0,
            period_s: 0.05,
        };
        let report = run_scenario(&s).unwrap();
        assert_eq!(report.notes.len(), 2);
        assert!(report.total_gips > 0.0);
    }

    #[test]
    fn invalid_scenarios_are_reported() {
        let mut s = policy_scenario();
        s.node = 14;
        assert!(matches!(run_scenario(&s), Err(ScenarioError::Invalid(_))));

        let mut s = policy_scenario();
        s.workload.clear();
        assert!(matches!(run_scenario(&s), Err(ScenarioError::Invalid(_))));

        let mut s = policy_scenario();
        s.workload[0].app = "doom".into();
        assert!(run_scenario(&s).is_err());

        let mut s = policy_scenario();
        s.experiment = ExperimentSpec::Policy {
            policy: "magic".into(),
            tdp_watts: 60.0,
        };
        assert!(run_scenario(&s).is_err());

        assert!(parse_scenario("{not json").is_err());
    }

    #[test]
    fn variation_and_threshold_overrides_apply() {
        let mut s = policy_scenario();
        s.t_dtm_celsius = Some(70.0);
        s.variation_seed = Some(9);
        let report = run_scenario(&s).unwrap();
        assert!(report.peak_temperature_c <= 70.2);
    }

    #[test]
    fn variation_sigmas_validate_and_change_the_outcome() {
        let mut s = policy_scenario();
        s.leakage_sigma = Some(3.0);
        let err = validate_scenario(&s).expect_err("σ bound");
        assert!(err.to_string().contains("leakage_sigma"), "{err}");

        let mut s = policy_scenario();
        s.frequency_sigma = Some(f64::NAN);
        let err = validate_scenario(&s).expect_err("NaN σ");
        assert!(err.to_string().contains("frequency_sigma"), "{err}");

        // Sigmas take effect even without an explicit seed, and a wider
        // leakage spread yields a different report than the typical one.
        let mut typical = policy_scenario();
        typical.variation_seed = Some(5);
        let mut wide = typical.clone();
        wide.leakage_sigma = Some(0.8);
        validate_scenario(&wide).expect("valid σ");
        let a = run_scenario(&typical).unwrap();
        let b = run_scenario(&wide).unwrap();
        assert_ne!(a, b);

        // Round trip keeps the new optional fields.
        let json = darksil_json::to_string_pretty(&wide);
        let back = parse_scenario(&json).expect("round trip");
        assert_eq!(wide, back);
    }
}
