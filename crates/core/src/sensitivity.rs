//! Cooling-solution sensitivity of dark silicon.
//!
//! The paper's thesis makes dark silicon a *thermal* quantity — which
//! means it is not a property of the chip alone but of the chip **and
//! its cooling**. This module quantifies that: the same die under a
//! laptop sink, the paper's desktop package and a server sink yields
//! very different temperature-constrained dark-silicon fractions, and a
//! fixed TDP cannot express any of it.

use darksil_mapping::Platform;
use darksil_power::TechnologyNode;
use darksil_thermal::PackageConfig;
use darksil_units::{Celsius, Hertz, Watts};
use darksil_workload::ParsecApp;

use crate::{DarkSiliconEstimator, EstimateError};

/// One point of a cooling sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CoolingPoint {
    /// Sink-to-ambient convection resistance in K/W.
    pub convection_resistance: f64,
    /// Temperature-constrained dark fraction.
    pub dark_fraction: f64,
    /// Active cores at the constraint.
    pub active_cores: usize,
    /// Total power drawn at the constraint.
    pub total_power: Watts,
}

/// Sweeps the convection resistance and reports the
/// temperature-constrained dark silicon at each point.
///
/// # Errors
///
/// Propagates platform-construction and estimation failures.
///
/// # Panics
///
/// Panics if `resistances` contains non-positive values (rejected by
/// the package validation as an error, not a panic — the panic applies
/// only to NaN ordering).
pub fn cooling_sweep(
    node: TechnologyNode,
    app: ParsecApp,
    frequency: Hertz,
    resistances: &[f64],
) -> Result<Vec<CoolingPoint>, EstimateError> {
    let mut points = Vec::with_capacity(resistances.len());
    for &r in resistances {
        let package = PackageConfig::paper_dac15().with_convection_resistance(r);
        let platform = Platform::with_package(node, node.evaluated_core_count(), package)?;
        let est = DarkSiliconEstimator::new(platform);
        let e = est.under_temperature_constraint(app, 8, frequency)?;
        points.push(CoolingPoint {
            convection_resistance: r,
            dark_fraction: e.dark_fraction,
            active_cores: e.active_cores,
            total_power: e.total_power,
        });
    }
    Ok(points)
}

/// One row of the package comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct PackagePoint {
    /// Package label.
    pub package: String,
    /// Temperature-constrained dark fraction.
    pub dark_fraction: f64,
    /// Active cores at the constraint.
    pub active_cores: usize,
    /// Peak temperature at the constraint.
    pub peak_temperature: Celsius,
}

/// Compares the laptop / desktop (paper) / server packages for one
/// application at the node's nominal maximum frequency.
///
/// # Errors
///
/// Propagates platform-construction and estimation failures.
pub fn package_comparison(
    node: TechnologyNode,
    app: ParsecApp,
) -> Result<Vec<PackagePoint>, EstimateError> {
    let f = node.nominal_max_frequency();
    let packages = [
        ("laptop", PackageConfig::laptop()),
        ("desktop (paper)", PackageConfig::paper_dac15()),
        ("server", PackageConfig::server()),
    ];
    let mut rows = Vec::new();
    for (label, package) in packages {
        let platform = Platform::with_package(node, node.evaluated_core_count(), package)?;
        let est = DarkSiliconEstimator::new(platform);
        let e = est.under_temperature_constraint(app, 8, f)?;
        rows.push(PackagePoint {
            package: label.to_string(),
            dark_fraction: e.dark_fraction,
            active_cores: e.active_cores,
            peak_temperature: e.peak_temperature,
        });
    }
    Ok(rows)
}

darksil_json::impl_json!(struct CoolingPoint {
    convection_resistance,
    dark_fraction,
    active_cores,
    total_power,
});
darksil_json::impl_json!(struct PackagePoint {
    package,
    dark_fraction,
    active_cores,
    peak_temperature,
});

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weaker_cooling_means_more_dark_silicon() {
        let points = cooling_sweep(
            TechnologyNode::Nm16,
            ParsecApp::Swaptions,
            Hertz::from_ghz(3.6),
            &[0.05, 0.1, 0.2, 0.4],
        )
        .expect("test value");
        assert_eq!(points.len(), 4);
        for w in points.windows(2) {
            assert!(
                w[1].dark_fraction >= w[0].dark_fraction,
                "dark silicon fell as cooling got worse: {w:?}"
            );
        }
        // The endpoints must differ substantially — cooling is a
        // first-order knob.
        assert!(points[3].dark_fraction - points[0].dark_fraction > 0.2);
    }

    #[test]
    fn package_ladder_is_ordered() {
        let rows = package_comparison(TechnologyNode::Nm16, ParsecApp::X264).expect("test value");
        assert_eq!(rows.len(), 3);
        // laptop ≥ desktop ≥ server dark fractions.
        assert!(rows[0].dark_fraction >= rows[1].dark_fraction);
        assert!(rows[1].dark_fraction >= rows[2].dark_fraction);
        // The server package lights (almost) the whole chip.
        assert!(
            rows[2].dark_fraction < 0.15,
            "server dark {}",
            rows[2].dark_fraction
        );
        // No row violates the threshold (temperature-constrained by
        // construction).
        for r in &rows {
            assert!(r.peak_temperature <= Celsius::new(80.01));
        }
    }

    #[test]
    fn cooling_point_power_tracks_active_cores() {
        let points = cooling_sweep(
            TechnologyNode::Nm16,
            ParsecApp::Canneal,
            Hertz::from_ghz(3.0),
            &[0.1, 0.3],
        )
        .expect("test value");
        assert!(points[0].active_cores >= points[1].active_cores);
        assert!(points[0].total_power >= points[1].total_power);
    }
}
