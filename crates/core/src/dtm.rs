//! Dynamic Thermal Management response (§3.1).
//!
//! "Exceeding this critical temperature triggers Dynamic Thermal
//! Management (DTM) on the chip … which might power down additional
//! cores, resulting in more dark silicon." This module simulates that
//! reactive response: starting from a TDP-admitted mapping, while the
//! steady-state peak exceeds `T_DTM` the instance owning the hottest
//! core is powered down, and the *effective* dark silicon after DTM is
//! reported. It quantifies the hidden cost of optimistic TDP values —
//! the nominal estimate undercounts dark cores that DTM later creates.

use darksil_mapping::{failsafe_peak, hottest_core, place_contiguous, Mapping};
use darksil_robust::FaultPlan;
use darksil_units::{Celsius, Hertz, Watts};
use darksil_workload::{ParsecApp, Workload};

use crate::{DarkSiliconEstimator, Estimate, EstimateError};

/// The outcome of letting DTM react to a TDP-admitted mapping.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DtmOutcome {
    /// The estimate as admitted by the TDP (what the budget view
    /// reports as dark silicon).
    pub admitted: Estimate,
    /// The estimate after DTM finished powering cores down (what the
    /// chip actually sustains).
    pub sustained: Estimate,
    /// Instances DTM powered down.
    pub instances_powered_down: usize,
    /// Whether DTM fired at all.
    pub triggered: bool,
}

impl DtmOutcome {
    /// Extra dark-silicon fraction created by DTM beyond the admitted
    /// estimate.
    #[must_use]
    pub fn hidden_dark_fraction(&self) -> f64 {
        self.sustained.dark_fraction - self.admitted.dark_fraction
    }
}

/// Admits instances of `app` under `tdp` (like
/// [`DarkSiliconEstimator::under_power_budget`]) and then simulates the
/// DTM reaction: while the leakage-coupled steady-state peak exceeds
/// `T_DTM`, the instance whose cores contain the hottest core is
/// powered down.
///
/// # Errors
///
/// Returns [`EstimateError::UnknownLevel`] for off-ladder frequencies
/// and propagates mapping/thermal failures.
pub fn simulate_dtm(
    est: &DarkSiliconEstimator,
    app: ParsecApp,
    threads: usize,
    frequency: Hertz,
    tdp: Watts,
) -> Result<DtmOutcome, EstimateError> {
    simulate_dtm_with_faults(est, app, threads, frequency, tdp, &FaultPlan::none())
}

/// Like [`simulate_dtm`] but with an injected [`FaultPlan`] corrupting
/// the per-step sensor readings and (optionally) the requested
/// frequency.
///
/// Degradation is graceful and fail-safe:
///
/// - An off-ladder frequency fault is throttled to the nearest ladder
///   level at or below the request instead of erroring.
/// - NaN (dropped) or noise-perturbed sensor readings make DTM power
///   down the implicated instance — extra dark silicon, never a panic
///   and never a trusted-but-bogus reading.
///
/// # Errors
///
/// Returns [`EstimateError::UnknownLevel`] for off-ladder frequencies
/// in the *request* (fault-free path) and propagates mapping/thermal
/// failures.
pub fn simulate_dtm_with_faults(
    est: &DarkSiliconEstimator,
    app: ParsecApp,
    threads: usize,
    frequency: Hertz,
    tdp: Watts,
    faults: &FaultPlan,
) -> Result<DtmOutcome, EstimateError> {
    // A faulty governor may request a frequency that is not on the
    // ladder; throttle it to the nearest safe level.
    let frequency = match faults.off_ladder_frequency_ghz() {
        Some(ghz) => est
            .platform()
            .dvfs()
            .clamp_to_ladder(Hertz::from_ghz(ghz))
            .map_or(frequency, |level| level.frequency),
        None => frequency,
    };
    let admitted = est.under_power_budget(app, threads, frequency, tdp)?;

    // Rebuild the admitted mapping so we can dismantle it.
    let level = est.level_for(frequency)?;
    let platform = est.platform();
    let instances = admitted.active_cores / threads;
    let workload = Workload::uniform(app, instances, threads)?;
    let mut mapping = place_contiguous(platform.floorplan(), &workload, level)?;

    let mut powered_down = 0;
    let t_dtm = platform.t_dtm();
    let mut step = 0_usize;
    loop {
        if mapping.entries().is_empty() {
            break;
        }
        let map = mapping.steady_temperatures(platform)?;
        let mut die: Vec<f64> = map.die_temperatures().map(|t| t.value()).collect();
        faults.corrupt_temperatures(step as u64, &mut die);
        step += 1;
        let peak = if faults.is_empty() {
            map.peak()
        } else {
            Celsius::new(failsafe_peak(&die))
        };
        if peak <= t_dtm {
            break;
        }
        // Power down the instance owning the hottest core; if the
        // hottest core is already dark (edge heating), drop the last
        // instance.
        let Some(hottest) = hottest_core(die.iter().copied()) else {
            break;
        };
        let owner = mapping
            .entries()
            .iter()
            .position(|e| e.cores.iter().any(|c| c.index() == hottest))
            .unwrap_or(mapping.entries().len() - 1);
        mapping = rebuild_without(&mapping, owner)?;
        powered_down += 1;
    }

    let sustained = est.evaluate_mapping(&mapping)?;
    Ok(DtmOutcome {
        admitted,
        sustained,
        instances_powered_down: powered_down,
        triggered: powered_down > 0,
    })
}

fn rebuild_without(mapping: &Mapping, skip: usize) -> Result<Mapping, EstimateError> {
    let mut rebuilt = Mapping::new(mapping.core_count());
    for (i, e) in mapping.entries().iter().enumerate() {
        if i != skip {
            rebuilt.push(e.clone())?;
        }
    }
    Ok(rebuilt)
}

#[cfg(test)]
mod tests {
    use super::*;
    use darksil_power::TechnologyNode;

    fn estimator() -> DarkSiliconEstimator {
        DarkSiliconEstimator::for_node(TechnologyNode::Nm16).expect("valid platform")
    }

    #[test]
    fn optimistic_tdp_triggers_dtm() {
        // §3.1: the 220 W TDP admits a mapping that violates T_DTM, so
        // DTM powers cores down — the real dark silicon exceeds the
        // admitted estimate.
        let est = estimator();
        let out = simulate_dtm(
            &est,
            ParsecApp::Swaptions,
            8,
            Hertz::from_ghz(3.6),
            Watts::new(220.0),
        )
        .expect("test value");
        assert!(out.admitted.thermal_violation);
        assert!(out.triggered);
        assert!(out.instances_powered_down >= 1);
        assert!(!out.sustained.thermal_violation);
        assert!(
            out.hidden_dark_fraction() > 0.0,
            "DTM created no extra dark silicon"
        );
        assert!(out.sustained.total_gips < out.admitted.total_gips);
    }

    #[test]
    fn pessimistic_tdp_never_triggers() {
        let est = estimator();
        for app in [ParsecApp::X264, ParsecApp::Swaptions, ParsecApp::Canneal] {
            let out = simulate_dtm(&est, app, 8, Hertz::from_ghz(3.6), Watts::new(185.0))
                .expect("test value");
            assert!(!out.triggered, "{app} triggered DTM at 185 W");
            assert_eq!(out.hidden_dark_fraction(), 0.0);
            assert_eq!(out.sustained, out.admitted);
        }
    }

    #[test]
    fn dtm_sustained_state_matches_thermal_constraint_estimate() {
        // After DTM settles, the surviving active-core count cannot
        // exceed what the temperature-constrained estimator allows
        // (same placement policy, same constraint).
        let est = estimator();
        let out = simulate_dtm(
            &est,
            ParsecApp::Swaptions,
            8,
            Hertz::from_ghz(3.6),
            Watts::new(500.0), // absurd budget: DTM is the only limiter
        )
        .expect("test value");
        let thermal = est
            .under_temperature_constraint(ParsecApp::Swaptions, 8, Hertz::from_ghz(3.6))
            .expect("test value");
        assert!(out.triggered);
        assert!(out.sustained.active_cores <= thermal.active_cores + 8);
        assert!(!out.sustained.thermal_violation);
    }

    #[test]
    fn faulty_sensors_only_add_dark_silicon() {
        use darksil_robust::Fault;
        let est = estimator();
        let clean = simulate_dtm(
            &est,
            ParsecApp::Swaptions,
            8,
            Hertz::from_ghz(3.6),
            Watts::new(220.0),
        )
        .expect("clean run");
        let faults = FaultPlan::new(3)
            .with(Fault::SensorDropout { period: 2 })
            .with(Fault::SensorNoise { sigma_celsius: 2.0 });
        let faulty = simulate_dtm_with_faults(
            &est,
            ParsecApp::Swaptions,
            8,
            Hertz::from_ghz(3.6),
            Watts::new(220.0),
            &faults,
        )
        .expect("faulty run degrades gracefully");
        // The fail-safe direction: corrupted readings power cores down,
        // so the sustained dark fraction never shrinks below the
        // admitted one and never below the clean sustained run's.
        assert!(faulty.sustained.dark_fraction >= faulty.admitted.dark_fraction);
        assert!(faulty.sustained.dark_fraction >= clean.admitted.dark_fraction);
    }

    #[test]
    fn off_ladder_request_is_throttled_not_rejected() {
        use darksil_robust::Fault;
        let est = estimator();
        let faults = FaultPlan::new(1).with(Fault::OffLadderFrequency { ghz: 3.33 });
        let out = simulate_dtm_with_faults(
            &est,
            ParsecApp::X264,
            8,
            Hertz::from_ghz(3.6),
            Watts::new(185.0),
            &faults,
        )
        .expect("off-ladder request must be clamped, not rejected");
        assert!(out.admitted.active_cores > 0);
    }

    #[test]
    fn low_frequency_needs_no_dtm_even_at_huge_budget() {
        let est = estimator();
        let out = simulate_dtm(
            &est,
            ParsecApp::Canneal,
            8,
            Hertz::from_ghz(2.0),
            Watts::new(500.0),
        )
        .expect("test value");
        assert!(!out.triggered);
    }
}
