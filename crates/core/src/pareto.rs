//! The performance/power configuration space and its Pareto frontier.
//!
//! §3.3 frames DVFS in the dark-silicon era as a trade-off: more
//! threads at lower V/f versus fewer threads at higher V/f, bounded by
//! the thermal constraint. This module makes that space explicit: for
//! one application on one platform, every `(threads, level, instances)`
//! configuration is evaluated into a [`ConfigPoint`] (throughput, power,
//! dark fraction, thermal feasibility), and
//! [`pareto_frontier`] extracts the set of non-dominated feasible
//! points — the menu a runtime manager actually chooses from.

use darksil_mapping::{place_patterned, Platform};
use darksil_units::{Celsius, Gips, Hertz, Watts};
use darksil_workload::{ParsecApp, Workload, MAX_THREADS_PER_INSTANCE};

use crate::EstimateError;

/// One evaluated configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConfigPoint {
    /// Threads per instance.
    pub threads: usize,
    /// Instances mapped.
    pub instances: usize,
    /// Frequency of every instance.
    pub frequency: Hertz,
    /// Total throughput.
    pub total_gips: Gips,
    /// Total power at the converged temperatures.
    pub total_power: Watts,
    /// Dark-silicon fraction.
    pub dark_fraction: f64,
    /// Peak steady-state temperature.
    pub peak_temperature: Celsius,
    /// Whether the point respects `T_DTM`.
    pub feasible: bool,
}

impl ConfigPoint {
    /// Whether `self` dominates `other`: at least as fast and at most
    /// as power-hungry, strictly better in one of the two.
    #[must_use]
    pub fn dominates(&self, other: &Self) -> bool {
        let ge_perf = self.total_gips >= other.total_gips;
        let le_power = self.total_power <= other.total_power;
        let strict = self.total_gips > other.total_gips || self.total_power < other.total_power;
        ge_perf && le_power && strict
    }
}

/// Evaluates the whole `(threads, level)` grid for `app`, mapping as
/// many instances as fit on the chip at each configuration (dark
/// silicon patterning placement). Levels walk the platform ladder with
/// `level_stride` (1 = every 200 MHz level).
///
/// # Errors
///
/// Propagates mapping/thermal failures.
///
/// # Panics
///
/// Panics if `level_stride` is zero.
pub fn explore(
    platform: &Platform,
    app: ParsecApp,
    level_stride: usize,
) -> Result<Vec<ConfigPoint>, EstimateError> {
    assert!(level_stride > 0, "level stride must be positive");
    let n = platform.core_count();
    let mut points = Vec::new();
    for threads in 1..=MAX_THREADS_PER_INSTANCE {
        let instances = n / threads;
        if instances == 0 {
            continue;
        }
        for level in platform.dvfs().levels().iter().step_by(level_stride) {
            if level.frequency > platform.node().nominal_max_frequency() {
                break;
            }
            let workload = Workload::uniform(app, instances, threads)?;
            let mapping = place_patterned(platform.floorplan(), &workload, *level)?;
            let map = mapping.steady_temperatures(platform)?;
            let temps: Vec<Celsius> = map.die_temperatures().collect();
            let power: Watts = mapping.power_map_at(platform, &temps).iter().sum();
            points.push(ConfigPoint {
                threads,
                instances,
                frequency: level.frequency,
                total_gips: mapping.total_gips(platform),
                total_power: power,
                dark_fraction: mapping.dark_fraction(),
                peak_temperature: map.peak(),
                feasible: map.peak() <= platform.t_dtm(),
            });
        }
    }
    Ok(points)
}

/// Extracts the Pareto frontier (maximal GIPS, minimal power) of the
/// *feasible* points, sorted by ascending power.
#[must_use]
pub fn pareto_frontier(points: &[ConfigPoint]) -> Vec<ConfigPoint> {
    let mut feasible: Vec<ConfigPoint> = points.iter().copied().filter(|p| p.feasible).collect();
    feasible.sort_by(|a, b| {
        a.total_power
            .value()
            .total_cmp(&b.total_power.value())
            .then(b.total_gips.value().total_cmp(&a.total_gips.value()))
    });
    let mut frontier: Vec<ConfigPoint> = Vec::new();
    let mut best_gips = Gips::zero();
    for p in feasible {
        if p.total_gips > best_gips {
            best_gips = p.total_gips;
            frontier.push(p);
        }
    }
    frontier
}

darksil_json::impl_json!(struct ConfigPoint {
    threads,
    instances,
    frequency,
    total_gips,
    total_power,
    dark_fraction,
    peak_temperature,
    feasible,
});

#[cfg(test)]
mod tests {
    use super::*;
    use darksil_power::TechnologyNode;

    fn points() -> Vec<ConfigPoint> {
        let platform = Platform::with_core_count(TechnologyNode::Nm16, 36).expect("valid platform");
        explore(&platform, ParsecApp::X264, 3).expect("test value")
    }

    #[test]
    fn exploration_covers_the_grid() {
        let pts = points();
        // 8 thread counts × ~6 levels (stride 3 over 18).
        assert!(pts.len() >= 40, "only {} points", pts.len());
        // Feasibility is not trivially all-true or all-false on a chip
        // driven to its nominal maximum.
        assert!(pts.iter().any(|p| p.feasible));
    }

    #[test]
    fn frontier_is_nondominated_and_sorted() {
        let pts = points();
        let frontier = pareto_frontier(&pts);
        assert!(!frontier.is_empty());
        for w in frontier.windows(2) {
            assert!(w[1].total_power >= w[0].total_power);
            assert!(w[1].total_gips > w[0].total_gips);
        }
        // No frontier point is dominated by any feasible point.
        for f in &frontier {
            for p in pts.iter().filter(|p| p.feasible) {
                assert!(!p.dominates(f), "{p:?} dominates frontier point {f:?}");
            }
        }
    }

    #[test]
    fn frontier_members_come_from_the_input() {
        let pts = points();
        let frontier = pareto_frontier(&pts);
        for f in &frontier {
            assert!(pts.contains(f));
        }
    }

    #[test]
    fn dominance_is_irreflexive_and_antisymmetric() {
        let pts = points();
        for p in pts.iter().take(20) {
            assert!(!p.dominates(p));
        }
        for a in pts.iter().take(10) {
            for b in pts.iter().take(10) {
                assert!(!(a.dominates(b) && b.dominates(a)));
            }
        }
    }

    #[test]
    fn infeasible_points_never_reach_the_frontier() {
        let pts = points();
        let frontier = pareto_frontier(&pts);
        assert!(frontier.iter().all(|p| p.feasible));
    }

    #[test]
    fn frontier_mixes_thread_counts() {
        // The §3.3 story: the frontier is not a single-thread or
        // single-frequency family — both axes matter.
        let platform = Platform::with_core_count(TechnologyNode::Nm16, 64).expect("valid platform");
        let pts = explore(&platform, ParsecApp::X264, 2).expect("test value");
        let frontier = pareto_frontier(&pts);
        let thread_kinds: std::collections::BTreeSet<usize> =
            frontier.iter().map(|p| p.threads).collect();
        assert!(
            thread_kinds.len() >= 2,
            "frontier collapsed to one thread count: {thread_kinds:?}"
        );
    }
}
