//! System performance under TSP budgets (§5, Figure 10).
//!
//! For a target dark-silicon percentage the number of active cores is
//! fixed; TSP for that count gives the safe per-core power; each
//! application instance then picks the highest V/f level whose per-core
//! power fits the TSP value. Figure 10 evaluates 20 % dark at 16 nm,
//! 30 % at 11 nm and 40 % at 8 nm and finds total performance *still
//! rising* with technology scaling despite the growing dark fraction.

use darksil_engine::Engine;
use darksil_robust::DarksilError;
use darksil_tsp::TspCalculator;
use darksil_units::{Celsius, Gips, Watts};
use darksil_workload::{ParsecApp, MAX_THREADS_PER_INSTANCE};

use crate::DarkSiliconEstimator;

/// Result of one TSP-budgeted evaluation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TspPerformance {
    /// Requested dark-silicon fraction.
    pub dark_fraction: f64,
    /// Active cores implied by the fraction.
    pub active_cores: usize,
    /// Worst-case per-core TSP budget for that count.
    pub tsp_per_core: Watts,
    /// Total throughput of the mapped mix at TSP-respecting levels.
    pub total_gips: Gips,
    /// Total power actually drawn (≤ `active_cores · tsp_per_core`).
    pub total_power: Watts,
}

/// Evaluates the Figure 10 experiment on one platform: a mix of the
/// seven applications (8 threads each) fills `1 − dark_fraction` of the
/// chip; every instance runs at the fastest ladder level whose per-core
/// power stays within the worst-case TSP for that active-core count.
///
/// The per-instance level search fans out over the execution engine
/// (`--jobs` / `DARKSIL_JOBS`); contributions are summed in instance
/// order, so the result is bit-identical at any worker count.
///
/// # Errors
///
/// Propagates thermal failures, classified into the workspace taxonomy.
pub fn tsp_performance(
    est: &DarkSiliconEstimator,
    dark_fraction: f64,
) -> Result<TspPerformance, DarksilError> {
    assert!(
        (0.0..1.0).contains(&dark_fraction),
        "dark fraction must be in [0, 1)"
    );
    let platform = est.platform();
    let n = platform.core_count();
    let active = ((1.0 - dark_fraction) * n as f64).floor() as usize;
    let instances = active / MAX_THREADS_PER_INSTANCE;
    let used_cores = instances * MAX_THREADS_PER_INSTANCE;

    let tsp_calc = TspCalculator::new(platform.floorplan(), platform.thermal(), platform.t_dtm());
    let tsp = tsp_calc.for_mapping(&tsp_calc.worst_case_mapping(used_cores.max(1)))?;

    let admission = Celsius::new(80.0);
    let contributions = Engine::auto().try_par_map((0..instances).collect(), |i| {
        let app = ParsecApp::ALL[i % ParsecApp::ALL.len()];
        let profile = app.profile();
        let model = platform.app_model(app);
        let alpha = profile.activity(MAX_THREADS_PER_INSTANCE);
        // Fastest level whose per-core power fits the TSP budget.
        let mut chosen = None;
        for level in platform.dvfs().levels().iter().rev() {
            if level.frequency > platform.node().nominal_max_frequency() {
                continue;
            }
            let per_core = model.power(alpha, level.voltage, level.frequency, admission);
            if per_core <= tsp {
                chosen = Some((*level, per_core));
                break;
            }
        }
        Ok(chosen.map(|(level, per_core)| {
            (
                profile.instance_gips(
                    platform.core_model(),
                    MAX_THREADS_PER_INSTANCE,
                    level.frequency,
                ),
                per_core * MAX_THREADS_PER_INSTANCE as f64,
            )
        }))
    })?;
    // Sum in submission (instance) order: float addition is not
    // associative, so this is what keeps the result independent of the
    // worker count.
    let mut total_gips = Gips::zero();
    let mut total_power = Watts::zero();
    for (gips, power) in contributions.into_iter().flatten() {
        total_gips += gips;
        total_power += power;
    }

    Ok(TspPerformance {
        dark_fraction,
        active_cores: used_cores,
        tsp_per_core: tsp,
        total_gips,
        total_power,
    })
}

darksil_json::impl_json!(struct TspPerformance {
    dark_fraction,
    active_cores,
    tsp_per_core,
    total_gips,
    total_power,
});

#[cfg(test)]
mod tests {
    use super::*;
    use darksil_power::TechnologyNode;

    #[test]
    fn figure10_performance_rises_across_nodes() {
        // 20 % dark at 16 nm, 30 % at 11 nm, 40 % at 8 nm — total
        // performance must increase monotonically despite the growing
        // dark fraction.
        let cases = [
            (TechnologyNode::Nm16, 0.20),
            (TechnologyNode::Nm11, 0.30),
            (TechnologyNode::Nm8, 0.40),
        ];
        let mut last = 0.0;
        for (node, dark) in cases {
            let est = DarkSiliconEstimator::for_node(node).expect("valid platform");
            let perf = tsp_performance(&est, dark).expect("test value");
            assert!(
                perf.total_gips.value() > last,
                "{node}: {} not above {last}",
                perf.total_gips
            );
            last = perf.total_gips.value();
        }
    }

    #[test]
    fn figure10_11_to_8nm_gain_is_large() {
        // "This increment from 11 nm to 8 nm is on average 60 %."
        let g11 = tsp_performance(
            &DarkSiliconEstimator::for_node(TechnologyNode::Nm11).expect("valid platform"),
            0.30,
        )
        .expect("test value")
        .total_gips
        .value();
        let g8 = tsp_performance(
            &DarkSiliconEstimator::for_node(TechnologyNode::Nm8).expect("valid platform"),
            0.40,
        )
        .expect("test value")
        .total_gips
        .value();
        let gain = g8 / g11;
        assert!(gain > 1.15, "gain only {gain}");
        assert!(gain < 2.5, "gain {gain} implausible");
    }

    #[test]
    fn tsp_budget_is_respected() {
        let est = DarkSiliconEstimator::for_node(TechnologyNode::Nm16).expect("valid platform");
        let perf = tsp_performance(&est, 0.20).expect("test value");
        let cap = perf.tsp_per_core * perf.active_cores as f64;
        assert!(perf.total_power <= cap, "{} > {cap}", perf.total_power);
        assert!(perf.total_power.value() > 0.0);
    }

    #[test]
    fn more_dark_cores_higher_per_core_budget() {
        let est = DarkSiliconEstimator::for_node(TechnologyNode::Nm16).expect("valid platform");
        let sparse = tsp_performance(&est, 0.60).expect("valid json");
        let dense = tsp_performance(&est, 0.10).expect("test value");
        assert!(sparse.tsp_per_core > dense.tsp_per_core);
    }

    #[test]
    fn more_dark_does_not_always_mean_less_performance() {
        // §5: "having more dark cores does not always imply ... lower
        // performance" — near the thermal wall, fewer-but-faster cores
        // can compete. Verify the curve is at least non-trivial: the
        // best fraction is not the fully-lit chip... or if it is, the
        // margin to 20 % dark is small.
        let est = DarkSiliconEstimator::for_node(TechnologyNode::Nm8).expect("valid platform");
        let full = tsp_performance(&est, 0.0)
            .expect("numerics succeed")
            .total_gips
            .value();
        let some_dark = tsp_performance(&est, 0.2)
            .expect("numerics succeed")
            .total_gips
            .value();
        assert!(
            some_dark > full * 0.8,
            "20 % dark collapses performance: {some_dark} vs {full}"
        );
    }

    #[test]
    #[should_panic(expected = "dark fraction")]
    fn invalid_fraction_panics() {
        let est = DarkSiliconEstimator::for_node(TechnologyNode::Nm16).expect("valid platform");
        let _ = tsp_performance(&est, 1.0);
    }
}
